//! Quickstart: build a mosaic system, run a workload, compare TLB misses.
//!
//! ```text
//! cargo run --release -p mosaic-core --example quickstart
//! ```

use mosaic_core::prelude::*;

fn main() {
    // A mosaic system with the paper's defaults scaled down: 256-entry
    // 8-way TLB, arity-4 mosaic pages (four 7-bit CPFNs per entry).
    let config = MosaicConfig::builder()
        .tlb_entries(256)
        .tlb_associativity(Associativity::Ways(8))
        .arity(4)
        .kernel(None)
        .seed(42)
        .build();
    let mut system = MosaicSystem::new(&config);

    // A BTree index workload: 60k keys, 20k random point lookups.
    let mut workload = BTreeWorkload::new(
        BTreeConfig {
            num_keys: 60_000,
            num_lookups: 20_000,
        },
        7,
    );
    let meta = workload.meta();
    println!("workload: {meta}");

    let report = system.run(&mut workload);
    println!(
        "vanilla TLB: {} accesses, {} misses ({:.2}% miss rate)",
        report.vanilla.accesses,
        report.vanilla.misses,
        report.vanilla.miss_rate() * 100.0
    );
    println!(
        "mosaic  TLB: {} accesses, {} misses ({:.2}% miss rate)",
        report.mosaic.accesses,
        report.mosaic.misses,
        report.mosaic.miss_rate() * 100.0
    );
    println!(
        "mosaic pages reduce TLB misses by {:.1}%",
        report.miss_reduction_percent()
    );

    assert!(
        report.mosaic.misses < report.vanilla.misses,
        "expected a reduction on a tree-descent workload"
    );
}
