//! Shared memory with location IDs — the §2.5 extension.
//!
//! Base Mosaic hashes `(ASID, VPN)`, so candidate sets of different
//! address spaces are disjoint and pages can't be shared. This example
//! demonstrates the paper's proposed fix: ToCs get random *location IDs*
//! and placement hashes `(location ID, i)`, so one set of frames (and one
//! set of CPFNs) serves any number of mappings.
//!
//! ```text
//! cargo run --release -p mosaic-core --example shared_memory
//! ```

use mosaic_core::mem::sharing::SharedMosaicMemory;
use mosaic_core::prelude::*;

fn main() {
    let layout = MemoryLayout::new(IcebergConfig::paper_default(16));
    let mut mm = SharedMosaicMemory::new(layout, 4, 42);
    let (producer, consumer) = (Asid::new(1), Asid::new(2));

    // The producer creates a 4-page shared region (one mosaic page) and
    // both processes map it — at *different* virtual addresses.
    let shared = mm.create_location();
    mm.map(producer, 0, shared).unwrap(); // producer VPNs 0..4
    mm.map(consumer, 25, shared).unwrap(); // consumer VPNs 100..104
    println!("shared region {shared} mapped into two address spaces");

    // Producer writes all four pages.
    let mut now = 0;
    for off in 0..4u64 {
        now += 1;
        mm.access(producer, Vpn::new(off), AccessKind::Store, now);
    }
    println!("producer faulted in 4 pages ({} minor faults)", mm.stats().minor_faults);

    // Consumer reads them: every access is a hit on the *same frames*.
    for off in 0..4u64 {
        now += 1;
        let outcome = mm.access(consumer, Vpn::new(100 + off), AccessKind::Load, now);
        let p = mm.resident_pfn_of(producer, Vpn::new(off)).unwrap();
        let c = mm.resident_pfn_of(consumer, Vpn::new(100 + off)).unwrap();
        println!(
            "  offset {off}: producer {p} == consumer {c} ({outcome:?}), cpfn {}",
            mm.cpfn_of(shared, off as usize).unwrap()
        );
        assert_eq!(p, c);
        assert_eq!(outcome, AccessOutcome::Hit);
    }

    // Private (anonymous) memory stays private: same VPN, different frames.
    now += 1;
    mm.access(producer, Vpn::new(400), AccessKind::Store, now);
    now += 1;
    mm.access(consumer, Vpn::new(400), AccessKind::Store, now);
    let p = mm.resident_pfn_of(producer, Vpn::new(400)).unwrap();
    let c = mm.resident_pfn_of(consumer, Vpn::new(400)).unwrap();
    assert_ne!(p, c);
    println!("anonymous pages at the same VPN stay distinct: {p} vs {c}");

    // A duplicate mmap in one address space also works.
    let dup = mm.create_location();
    mm.map(producer, 50, dup).unwrap();
    mm.map(producer, 60, dup).unwrap();
    now += 1;
    mm.access(producer, Vpn::new(200), AccessKind::Store, now);
    assert_eq!(
        mm.resident_pfn_of(producer, Vpn::new(200)),
        mm.resident_pfn_of(producer, Vpn::new(240)),
    );
    println!("duplicate mmap aliases within one address space, too");
}
