//! Memory pressure: what happens when the working set outgrows DRAM.
//!
//! Demonstrates the §4.2–4.3 claims directly on the memory managers: the
//! Mosaic allocator's first associativity conflict arrives only at ~98 %
//! utilization, ghosts carry utilization to ~100 %, and once memory is
//! over-committed Horizon LRU swaps comparably to (usually less than)
//! the Linux-like baseline.
//!
//! ```text
//! cargo run --release -p mosaic-core --example memory_pressure
//! ```

use mosaic_core::prelude::*;

fn main() {
    // 2048 frames (8 MiB) of managed memory.
    let layout = MemoryLayout::new(IcebergConfig::paper_default(32));
    let mut mosaic = MosaicMemory::new(layout, 7);
    let mut linux = LinuxMemory::new(layout);
    let frames = layout.num_frames() as u64;
    println!("managing {} frames ({} MiB)", frames, layout.bytes() >> 20);

    // An XSBench working set at 120% of memory, streamed through both.
    let footprint = layout.bytes() * 6 / 5;
    let mut now = 0u64;
    for (name, manager) in [
        ("mosaic", &mut mosaic as &mut dyn MemoryManager),
        ("linux ", &mut linux as &mut dyn MemoryManager),
    ] {
        let mut w = XsBench::with_footprint(footprint, footprint / PAGE_SIZE * 6, 3);
        w.run(&mut |a| {
            now += 1;
            let key = PageKey::new(Asid::new(1), a.addr.vpn());
            manager.access(key, a.kind, now);
        });
        manager.sample_utilization();
        let stats = manager.stats();
        println!(
            "{name}: faults {:>7} minor / {:>7} major | swap {:>7} in / {:>7} out | util {:.2}%",
            stats.minor_faults,
            stats.major_faults,
            stats.swapped_in,
            stats.swapped_out,
            manager.utilization() * 100.0,
        );
    }

    if let Some(first) = mosaic.utilization_tracker().first_conflict() {
        println!(
            "mosaic first associativity conflict at {:.2}% utilization (paper: ~98%)",
            first * 100.0
        );
        assert!(first > 0.94, "conflict arrived far too early");
    }
    println!(
        "mosaic ghosts currently resident: {} (logically evicted, physically present)",
        mosaic.ghost_count()
    );
    println!(
        "swap totals — mosaic: {}, linux: {}",
        mosaic.stats().swap_ops(),
        linux.stats().swap_ops()
    );
}
