//! Iceberg hashing as a standalone data structure: stability, low
//! associativity, and ~98 % load before the first conflict (§2.3).
//!
//! ```text
//! cargo run --release -p mosaic-core --example iceberg_table
//! ```

use mosaic_core::hash::{SplitMix64, XxFamily};
use mosaic_core::iceberg::{experiments, IcebergConfig, IcebergTable};

fn main() {
    let cfg = IcebergConfig::paper_default(256); // 16 Ki slots
    println!("geometry: {cfg}");
    println!("CPFN width: {} bits (encodes one of h = {} candidate slots)\n",
        cfg.cpfn_bits(), cfg.associativity());

    // 1. Fill until the first associativity conflict.
    let fill = experiments::fill_to_first_conflict(cfg, 42);
    println!(
        "first conflict after {} inserts: {:.2}% load (paper: δ ≈ 2%, i.e. ~98%)",
        fill.inserted,
        fill.first_conflict_percent()
    );
    println!(
        "backyard holds {:.2}% of entries at that point\n",
        fill.at_first_conflict.backyard_fraction() * 100.0
    );

    // 2. Stability under churn: once placed, keys never move.
    let mut table: IcebergTable<u64, u64, _> =
        IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 7));
    let mut rng = SplitMix64::new(9);
    let mut tracked = Vec::new();
    for i in 0..10_000u64 {
        if table.insert(i, i).is_ok() && i % 1000 == 0 {
            tracked.push((i, table.slot_of(&i).unwrap()));
        }
    }
    // Heavy churn around the tracked keys.
    for _ in 0..50_000 {
        let k = 10_000 + rng.next_below(100_000);
        match table.insert(k, 0) {
            Ok(_) => {
                if rng.next_below(2) == 0 {
                    table.remove(&k);
                }
            }
            Err(_) => {
                // Conflict near capacity: make room like an evictor would.
                let victim = rng.next_below(10_000) + 10_000;
                table.remove(&victim);
            }
        }
    }
    for (k, slot) in &tracked {
        assert_eq!(
            table.slot_of(k).as_ref(),
            Some(slot),
            "key {k} moved — stability violated!"
        );
    }
    println!(
        "stability: {} tracked keys still in their original slots after 50k churn ops",
        tracked.len()
    );
    println!("final load factor: {:.2}%", table.load_factor() * 100.0);

    // 3. Churn conflict rate at high load.
    let conflicts = experiments::churn_conflicts(cfg, 3, 0.95, 5_000);
    println!("churn at 95% load: {conflicts} conflicts in 5000 delete+insert pairs");
}
