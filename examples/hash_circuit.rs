//! The hardware story (§4.4): the probing tabulation-hash circuit that
//! sits on the TLB critical path, its bit-exact gate-level model, and the
//! FPGA / 28 nm synthesis results of Table 5.
//!
//! ```text
//! cargo run --release -p mosaic-core --example hash_circuit
//! ```

use mosaic_core::hash::TabulationHasher;
use mosaic_core::hw::{asic, circuit::TabHashCircuit, fpga};

fn main() {
    // One set of tables, seven probed outputs: 1 front-yard choice + 6
    // backyard choices, exactly what a mosaic allocation needs.
    let hasher = TabulationHasher::new(5, 7, 0xC1C0_17E5);
    let circuit = TabHashCircuit::from_hasher(hasher.clone());

    let key = 0x0012_3456_789Au64; // an (ASID, VPN) pair packed to 64 bits
    let (outputs, counts) = circuit.evaluate(key);
    println!("probed hash outputs for key {key:#x}:");
    for (i, o) in outputs.iter().enumerate() {
        let role = if i == 0 { "front yard" } else { "backyard" };
        println!("  h{i} = {o:#010x}  ({role})");
    }
    assert_eq!(outputs, hasher.hash_all(key), "gate-level model diverged");
    println!(
        "datapath ops: {} ROM reads, {} XORs, {} mux steps (all off the critical path)\n",
        counts.rom_reads, counts.xor_ops, counts.mux_ops
    );

    println!("FPGA synthesis (Artix-7), per hash-function count:");
    for r in fpga::table5(&[1, 2, 4, 8]) {
        println!(
            "  H={}: {:>5} LUTs, {:>2} regs, {:>4} F7, {:>3} F8, {:.3} ns ({:.0} MHz)",
            r.hash_functions,
            r.luts,
            r.registers,
            r.f7_muxes,
            r.f8_muxes,
            r.latency_ns,
            r.max_frequency_mhz()
        );
    }

    println!("\n28 nm CMOS synthesis (worst-case corner):");
    let r = asic::synthesize(8);
    println!(
        "  {} GHz max frequency, {} ps latency, {:+} ps slack, {:.3} KGE",
        r.max_freq_ghz, r.latency_ps, r.slack_ps, r.area_kge
    );
    assert!(r.meets_4ghz());
    println!("  -> adding the hash to the TLB path is unlikely to affect clock frequency");
}
