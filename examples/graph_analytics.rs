//! Graph analytics (the paper's motivating domain): BFS over a Kronecker
//! graph, sweeping mosaic arity to show how TLB reach scales.
//!
//! ```text
//! cargo run --release -p mosaic-core --example graph_analytics
//! ```

use mosaic_core::prelude::*;
use mosaic_core::sim::report::{humanize, Table};

fn main() {
    let graph_cfg = Graph500Config {
        scale: 14, // 16 Ki vertices
        edgefactor: 16,
        num_roots: 1,
    };
    println!(
        "Graph500: 2^{} vertices, edgefactor {} — irregular pointer chasing",
        graph_cfg.scale, graph_cfg.edgefactor
    );

    let mut table = Table::new(vec![
        "TLB design".into(),
        "Misses".into(),
        "Miss rate".into(),
        "Reduction vs vanilla".into(),
    ])
    .with_title("BFS TLB behaviour, 256-entry 8-way TLB");

    let mut vanilla_misses = None;
    for arity in [1usize, 4, 8, 16, 32, 64] {
        let config = MosaicConfig::builder()
            .tlb_entries(256)
            .tlb_associativity(Associativity::Ways(8))
            .arity(arity)
            .kernel(None)
            .seed(1)
            .build();
        let mut system = MosaicSystem::new(&config);
        let mut workload = Graph500::new(graph_cfg, 99);
        let report = system.run(&mut workload);

        // Arity 1 is the vanilla-equivalent baseline row.
        let (label, misses, rate) = if arity == 1 {
            vanilla_misses = Some(report.vanilla.misses);
            (
                "Vanilla".to_string(),
                report.vanilla.misses,
                report.vanilla.miss_rate(),
            )
        } else {
            (
                format!("Mosaic-{arity}"),
                report.mosaic.misses,
                report.mosaic.miss_rate(),
            )
        };
        let reduction = vanilla_misses
            .map(|v| format!("{:+.1}%", (1.0 - misses as f64 / v as f64) * 100.0))
            .unwrap_or_default();
        table.row(vec![
            label,
            humanize(misses),
            format!("{:.2}%", rate * 100.0),
            reduction,
        ]);
    }
    println!("{}", table.render());
    println!("Paper (Fig. 6a): arity 4 cuts Graph500 misses substantially; larger\narities approach zero because one entry spans up to 256 KiB of virtual space.");
}
