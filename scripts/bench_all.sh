#!/usr/bin/env bash
# Reruns every bench suite (bench_obs, bench_parallel, bench_tenants,
# bench_isolation, bench_step, bench_iceberg — each rewrites its
# BENCH_*.json in place) and then
# prints percent deltas against the baselines committed at HEAD via
# bench_delta.sh. Deltas are warn-only: wall times are host-dependent;
# what must NOT drift (miss-reduction headlines, fault-rate outputs) is
# gated hard in scripts/check.sh instead.
#
#   bench_all.sh [--skip suite[,suite...]]
set -euo pipefail
cd "$(dirname "$0")/.."

SUITES=(obs parallel tenants isolation step iceberg)
skip=""
if [[ "${1:-}" == "--skip" ]]; then
    skip=",${2:?--skip needs a comma-separated suite list},"
fi

BASE="$(mktemp -d)"
trap 'rm -rf "$BASE"' EXIT
for s in "${SUITES[@]}"; do
    git show "HEAD:BENCH_${s}.json" > "$BASE/BENCH_${s}.json" 2>/dev/null \
        || cp "BENCH_${s}.json" "$BASE/BENCH_${s}.json"
done

for s in "${SUITES[@]}"; do
    if [[ "$skip" == *",${s},"* ]]; then
        echo "[bench_all] skipping bench_${s}.sh" >&2
        continue
    fi
    echo "[bench_all] running bench_${s}.sh ..." >&2
    "scripts/bench_${s}.sh"
done

echo "[bench_all] deltas vs baselines committed at HEAD (warn-only):"
for s in "${SUITES[@]}"; do
    scripts/bench_delta.sh "$BASE/BENCH_${s}.json" "BENCH_${s}.json"
done
