#!/usr/bin/env bash
# Measures observability overhead on the fig6 sweep and writes
# BENCH_obs.json: per workload, wall time with obs off, with the JSONL
# stream on (--obs-out + --obs-interval 5000), and with attribution on
# top (--attrib, which adds the 3C/blame tables to the stream).
#
# The miss-reduction headline is a pure function of the flags and must
# be identical in all three modes — collection and classification are
# observational. Wall times are host-dependent (host_cores records the
# regime), so the bench-delta check against this baseline is warn-only.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p mosaic-bench
BIN=target/release
HOST_CORES=$(nproc)
WORKLOADS=(graph500 btree gups xsbench)
FIG6_FLAGS=(--scale 0 --entries 64)

OUT_TMP="$(mktemp -d)"
trap 'rm -rf "$OUT_TMP"' EXIT

# Wall time of one invocation, in milliseconds.
time_ms() {
    local start end
    start=$(date +%s%N)
    "$@" >/dev/null 2>&1
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 ))
}

# "Mosaic-4 vs vanilla at 8-way: +31.1% miss reduction" -> 31.1
headline() {
    awk -F'[+%]' '/Mosaic-4 vs vanilla at 8-way/ { print $2; exit }' "$1"
}

entries=""
for wl in "${WORKLOADS[@]}"; do
    echo "[bench_obs] ${wl}: obs off / on / attrib ..." >&2
    off_ms="$(time_ms "$BIN/fig6" "$wl" "${FIG6_FLAGS[@]}")"
    "$BIN/fig6" "$wl" "${FIG6_FLAGS[@]}" > "$OUT_TMP/$wl.off.txt" 2>/dev/null
    off_pct="$(headline "$OUT_TMP/$wl.off.txt")"

    on_ms="$(time_ms "$BIN/fig6" "$wl" "${FIG6_FLAGS[@]}" \
        --obs-out "$OUT_TMP/$wl.jsonl" --obs-interval 5000)"
    "$BIN/fig6" "$wl" "${FIG6_FLAGS[@]}" \
        --obs-out "$OUT_TMP/$wl.jsonl" --obs-interval 5000 \
        > "$OUT_TMP/$wl.on.txt" 2>/dev/null
    on_pct="$(headline "$OUT_TMP/$wl.on.txt")"
    on_records="$(wc -l < "$OUT_TMP/$wl.jsonl")"

    at_ms="$(time_ms "$BIN/fig6" "$wl" "${FIG6_FLAGS[@]}" --attrib \
        --obs-out "$OUT_TMP/$wl.at.jsonl" --obs-interval 5000)"
    "$BIN/fig6" "$wl" "${FIG6_FLAGS[@]}" --attrib \
        --obs-out "$OUT_TMP/$wl.at.jsonl" --obs-interval 5000 \
        > "$OUT_TMP/$wl.at.txt" 2>/dev/null
    at_pct="$(headline "$OUT_TMP/$wl.at.txt")"
    at_records="$(wc -l < "$OUT_TMP/$wl.at.jsonl")"

    if [[ "$off_pct" != "$on_pct" || "$off_pct" != "$at_pct" ]]; then
        echo "[bench_obs] ERROR: ${wl} headline changed with collection on" >&2
        echo "  off=${off_pct} on=${on_pct} attrib=${at_pct}" >&2
        exit 1
    fi

    obs_overhead="$(awk -v a="$off_ms" -v b="$on_ms" \
        'BEGIN { d = 0; if (a > 0) d = (b - a) * 100.0 / a; printf "%.1f", d }')"
    attrib_overhead="$(awk -v a="$off_ms" -v b="$at_ms" \
        'BEGIN { d = 0; if (a > 0) d = (b - a) * 100.0 / a; printf "%.1f", d }')"

    entries+="    \"${wl}\": {
      \"obs_off\": {\"wall_time_s\": $(awk -v m="$off_ms" 'BEGIN{printf "%.3f", m/1000}'), \"mosaic4_8way_miss_reduction_pct\": ${off_pct}},
      \"obs_on\": {\"wall_time_s\": $(awk -v m="$on_ms" 'BEGIN{printf "%.3f", m/1000}'), \"mosaic4_8way_miss_reduction_pct\": ${on_pct}, \"jsonl_records\": ${on_records}},
      \"attrib_on\": {\"wall_time_s\": $(awk -v m="$at_ms" 'BEGIN{printf "%.3f", m/1000}'), \"mosaic4_8way_miss_reduction_pct\": ${at_pct}, \"jsonl_records\": ${at_records}},
      \"obs_overhead_pct\": ${obs_overhead},
      \"attrib_overhead_pct\": ${attrib_overhead}
    },"$'\n'
done

cat > BENCH_obs.json <<EOF
{
  "benchmark": "obs overhead and miss-rate baseline (fig6, --scale 0, --entries 64, seed 0xF166)",
  "recorded": "$(date -u +%F)",
  "host_cores": ${HOST_CORES},
  "note": "wall_time_s is end-to-end binary wall time; obs_on adds --obs-out + --obs-interval 5000, attrib_on adds --attrib on top (3C + blame tables in the stream). The Mosaic-4 vs vanilla 8-way miss-reduction headline must be identical in all three modes (enforced by this script).",
  "workloads": {
$(printf '%s' "${entries%,$'\n'}")
  }
}
EOF
echo "[bench_obs] wrote BENCH_obs.json (host_cores=${HOST_CORES})" >&2
