#!/usr/bin/env bash
# Measures the concurrent Iceberg allocator: insert/remove throughput at
# 1/2/4/8 threads (85 % load) and the probe-length distribution vs the
# serial table at 85/95 % load, written to BENCH_iceberg.json.
#
# Throughput is host-dependent; host_cores records the regime. On a
# single-core container the multi-thread rows measure contention
# overhead, not speedup — that is an honest number, not a bug. The probe
# summaries are deterministic and must be identical serial vs concurrent
# (the single-thread placement-identity claim, also proptested).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p mosaic-bench --benches
HOST_CORES=$(nproc)

OUT_TMP="$(mktemp)"
trap 'rm -f "$OUT_TMP"' EXIT
echo "[bench_iceberg] running iceberg_concurrent ..." >&2
cargo bench -q --offline -p mosaic-bench --bench iceberg_concurrent 2>/dev/null \
    | grep '^iceberg_concurrent ' > "$OUT_TMP"

field() { # line-pattern key
    awk -v pat="$1" -v key="$2" '
        $0 ~ pat {
            for (i = 1; i <= NF; i++) {
                split($i, kv, "=");
                if (kv[1] == key) { print kv[2]; exit }
            }
        }' "$OUT_TMP"
}

thread_records() {
    local out="" t
    for t in 1 2 4 8; do
        out+="    {\"threads\": $t, \
\"insert_mops\": $(field "threads=$t phase=insert" mops), \
\"remove_mops\": $(field "threads=$t phase=remove" mops), \
\"insert_wall_ns\": $(field "threads=$t phase=insert" wall_ns), \
\"remove_wall_ns\": $(field "threads=$t phase=remove" wall_ns), \
\"ops\": $(field "threads=$t phase=insert" ops)},"$'\n'
    done
    printf '%s' "${out%,$'\n'}"
}

probe_records() {
    local out="" pct tbl
    for pct in 85 95; do
        for tbl in serial concurrent; do
            out+="    {\"load_pct\": $pct, \"table\": \"$tbl\", \
\"mean_candidate_index\": $(field "probe load_pct=$pct table=$tbl" mean_cand_idx), \
\"front_yard_pct\": $(field "probe load_pct=$pct table=$tbl" front_pct)},"$'\n'
        done
    done
    printf '%s' "${out%,$'\n'}"
}

cat > BENCH_iceberg.json <<EOF
{
  "host_cores": ${HOST_CORES},
  "config": "paper_default(256) = 16384 slots, fill to 85% load, disjoint per-thread keys",
  "throughput": [
$(thread_records)
  ],
  "probe_distribution": [
$(probe_records)
  ],
  "note": "Throughput in million ops/s is host-dependent; with host_cores=1 the multi-thread rows measure contention overhead on one core, not parallel speedup. Probe rows are deterministic: serial and concurrent must match exactly at every load (single-thread placement identity, proptested in crates/iceberg/tests/concurrent_oracle.rs)."
}
EOF
echo "[bench_iceberg] wrote BENCH_iceberg.json (host_cores=${HOST_CORES})" >&2
