#!/usr/bin/env bash
# Measures serial-vs-parallel wall times for the sweep drivers and
# writes BENCH_parallel.json.
#
# The engine's contract is byte-identical output at any --jobs value;
# the speedup is whatever the host's cores allow. On a single-CPU
# container the fan-out cannot beat the serial engine — the numbers
# then record the engine's overhead honestly (host_cores in the JSON
# says which regime a record came from).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p mosaic-bench
BIN=target/release
HOST_CORES=$(nproc)
JOBS_SWEEP=(1 2 4 8)

# Wall time of one invocation in milliseconds, plus the ns/access figure
# the binary reports on stderr (0 if it printed none). Echoes "ms ns".
time_ms_ns() {
    local start end err ns
    err=$(mktemp)
    start=$(date +%s%N)
    "$@" >/dev/null 2>"$err"
    end=$(date +%s%N)
    ns=$(grep -oE '[0-9]+(\.[0-9]+)? ns/access' "$err" | tail -1 | awk '{print $1}')
    rm -f "$err"
    echo "$(( (end - start) / 1000000 )) ${ns:-0}"
}

fig6_times=()
fig6_ns=()
table4_times=()
table4_ns=()
for jobs in "${JOBS_SWEEP[@]}"; do
    echo "[bench_parallel] fig6 gups --scale 1 --jobs ${jobs}" >&2
    read -r ms ns <<< "$(time_ms_ns "$BIN/fig6" gups --scale 1 --jobs "$jobs")"
    fig6_times+=("$ms"); fig6_ns+=("$ns")
    echo "[bench_parallel] table4 --jobs ${jobs}" >&2
    read -r ms ns <<< "$(time_ms_ns "$BIN/table4" --jobs "$jobs")"
    table4_times+=("$ms"); table4_ns+=("$ns")
done

join_records() {
    local -n times=$1
    local -n nss=$2
    local out="" i
    for i in "${!JOBS_SWEEP[@]}"; do
        out+="      {\"jobs\": ${JOBS_SWEEP[$i]}, \"wall_ms\": ${times[$i]}, \"ns_per_access\": ${nss[$i]}},"$'\n'
    done
    printf '%s' "${out%,$'\n'}"
}

speedup() {
    local -n times=$1
    awk -v s="${times[0]}" -v p="${times[${#times[@]}-1]}" \
        'BEGIN { printf (p > 0 ? "%.2f" : "0"), s / p }'
}

cat > BENCH_parallel.json <<EOF
{
  "host_cores": ${HOST_CORES},
  "jobs_sweep": [$(IFS=,; echo "${JOBS_SWEEP[*]}")],
  "benchmarks": [
    {
      "name": "fig6_gups_scale1",
      "command": "fig6 gups --scale 1 --jobs N",
      "cells": 30,
      "runs": [
$(join_records fig6_times fig6_ns)
      ],
      "speedup_at_max_jobs": $(speedup fig6_times)
    },
    {
      "name": "table4_default",
      "command": "table4 --jobs N",
      "cells": 30,
      "runs": [
$(join_records table4_times table4_ns)
      ],
      "speedup_at_max_jobs": $(speedup table4_times)
    }
  ],
  "note": "Wall-clock times from scripts/bench_parallel.sh. Output is byte-identical at every jobs value (gated in scripts/check.sh and crates/sim/tests/parallel_determinism.rs); speedup scales with host_cores. On a host_cores=1 container the parallel engine cannot beat the serial one and these numbers record its overhead instead — rerun on a multi-core host for real scaling."
}
EOF
echo "[bench_parallel] wrote BENCH_parallel.json (host_cores=${HOST_CORES})" >&2
