#!/usr/bin/env bash
# Prints percent deltas between two BENCH_*.json files, numeric leaf by
# numeric leaf. Warn-only by design: wall times are host-dependent, so
# drift is reported, never fatal — the script always exits 0 (aside
# from usage errors). Lines over the warn threshold are prefixed
# "WARN"; structural drift (a key present on one side only) is listed
# too, since that usually means a suite or field was renamed.
#
#   bench_delta.sh <baseline.json> <fresh.json> [warn_pct]
#
# warn_pct defaults to 25.
set -euo pipefail

if [[ $# -lt 2 || $# -gt 3 ]]; then
    echo "usage: bench_delta.sh <baseline.json> <fresh.json> [warn_pct]" >&2
    exit 2
fi
base="$1"
fresh="$2"
warn_pct="${3:-25}"

# Flatten every numeric leaf to "dotted.path value".
flatten() {
    jq -r 'paths(type == "number") as $p
           | "\($p | map(tostring) | join(".")) \(getpath($p))"' "$1" | sort
}

label="$(basename "$fresh")"
join_out="$(join -j 1 -a 1 -a 2 -e MISSING -o 0,1.2,2.2 \
    <(flatten "$base") <(flatten "$fresh"))"

printf '%s\n' "$join_out" | awk -v warn="$warn_pct" -v label="$label" '
{
    path = $1; old = $2; new = $3
    if (old == "MISSING") { printf "  %s %-52s baseline missing (fresh=%s)\n", label, path, new; next }
    if (new == "MISSING") { printf "  %s %-52s fresh missing (baseline=%s)\n", label, path, old; next }
    if (old == new) next
    if (old == 0) { printf "  %s %-52s %s -> %s\n", label, path, old, new; next }
    pct = (new - old) * 100.0 / old
    mark = (pct < 0 ? -pct : pct) > warn ? "WARN" : "    "
    printf "%s %s %-52s %s -> %s (%+.1f%%)\n", mark, label, path, old, new, pct
}
END { if (NR == 0) printf "  %s no numeric drift\n", label }'
exit 0
