#!/usr/bin/env bash
# Runs the full-step criterion benches (crates/bench/benches/step.rs)
# and writes BENCH_step.json: ns/access per benchmark label (min over
# $RUNS repeats, default 3 — the shared hosts are noisy) plus the
# scalar-vs-batched speedup of the batched translation pipeline on the
# Figure 6 grid.
#
# ns/access figures are host-dependent; the bench-delta check against
# this baseline is warn-only. What must NOT drift (byte-identical
# goldens for scalar vs batched and across --jobs) is gated hard in
# scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-3}"
# Stretch each measurement well past the host's scheduler-noise floor:
# 100 iterations x ~10-25 ms per 8192-access trace = 1-2.5 s per label.
export CRITERION_ITERS="${CRITERION_ITERS:-100}"
HOST_CORES=$(nproc)

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for i in $(seq "$RUNS"); do
    echo "[bench_step] cargo bench --bench step (run ${i}/${RUNS}) ..." >&2
    cargo bench -q --offline -p mosaic-bench --bench step >> "$TMP/raw.txt"
done

# Shim lines look like:
#   bench dual_sim_batch/scalar/no_kernel    1.23ms/iter (10 iters)
# Durations use Rust's Duration debug format (ns/µs/ms/s). The batch
# and design groups replay an 8192-access trace per iteration;
# dual_sim_step times a single access.
awk '
/^bench / {
    label = $2
    dur = $3
    sub(/\/iter$/, "", dur)
    match(dur, /^[0-9.]+/)
    num = substr(dur, 1, RLENGTH) + 0
    unit = substr(dur, RLENGTH + 1)
    mult = 1
    if (unit == "\302\265s" || unit == "us") mult = 1000
    else if (unit == "ms") mult = 1000000
    else if (unit == "s") mult = 1000000000
    ns = num * mult
    per = (label ~ /^dual_sim_step\//) ? 1 : 8192
    ns /= per
    if (!(label in best) || ns < best[label]) best[label] = ns
    if (!(label in idx)) { idx[label] = ++n; names[n] = label }
}
END {
    for (i = 1; i <= n; i++)
        printf "%s %.2f\n", names[i], best[names[i]]
}
' "$TMP/raw.txt" > "$TMP/best.txt"

ns_of() {
    awk -v l="$1" '$1 == l { print $2 }' "$TMP/best.txt"
}

entries=""
while read -r label ns; do
    entries+="    \"${label}\": ${ns},"$'\n'
done < "$TMP/best.txt"

speedup() { # scalar_label batched_label
    awk -v s="$(ns_of "$1")" -v b="$(ns_of "$2")" \
        'BEGIN { printf (b > 0 ? "%.2f" : "0"), s / b }'
}
speedup_nk="$(speedup dual_sim_batch/scalar/no_kernel dual_sim_batch/batched/no_kernel)"
speedup_wk="$(speedup dual_sim_batch/scalar/with_kernel dual_sim_batch/batched/with_kernel)"

cat > BENCH_step.json <<EOF
{
  "benchmark": "full-step ns/access budget (benches/step.rs, min of ${RUNS} runs)",
  "recorded": "$(date -u +%F)",
  "host_cores": ${HOST_CORES},
  "accesses_per_iter": {"dual_sim_step": 1, "dual_sim_batch": 8192, "design_step": 8192},
  "ns_per_access": {
$(printf '%s' "${entries%,$'\n'}")
  },
  "scalar_vs_batched_speedup": {
    "no_kernel": ${speedup_nk},
    "with_kernel": ${speedup_wk}
  },
  "note": "dual_sim_batch drives the full Figure 6 grid (5 associativities x [vanilla + 5 mosaic arities] = 30 instances) at the paper's 1024-entry TLB over a 16384-page pool with obs counters bound, so ns/access here is per workload access across all 30 instances. The scalar arm shares every data-structure optimisation (SoA sets, intrusive LRU lists, walk memos, ToC recycling) with the batched arm, so the speedup shown is the batched replay's remaining structural advantage (instance-major order, per-batch memo reuse, deferred obs flushes). Against the pre-pipeline growth seed the same scalar geometry measured 5632-7448 ns/access on this host class -- the batched pipeline end-to-end is 6.7-10x that baseline (see PERFORMANCE.md)."
}
EOF
echo "[bench_step] wrote BENCH_step.json (host_cores=${HOST_CORES}, scalar/batched no_kernel=${speedup_nk}x with_kernel=${speedup_wk}x)" >&2
