#!/usr/bin/env bash
# Measures the adversarial-isolation study: wall time per load point and
# the victim-inflation medians with quotas on vs off, written to
# BENCH_isolation.json.
#
# The study's *output* is a pure function of the flags (byte-identical
# at any --jobs; gated in scripts/check.sh); only the wall times here
# depend on the host. host_cores records which regime a run came from.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p mosaic-bench
BIN=target/release
HOST_CORES=$(nproc)
LOADS=(105 120)
ISO_FLAGS=(--tenants 16 --buckets 64 --steps 800000 --churn 20000
           --hostile thrasher --quota-frac 125 --priority-spread 2)

# Wall time of one invocation, in milliseconds.
time_ms() {
    local start end
    start=$(date +%s%N)
    "$@" >/dev/null 2>&1
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 ))
}

OUT_TMP="$(mktemp -d)"
trap 'rm -rf "$OUT_TMP"' EXIT

# One timed run per load point (serial); the table rows give the
# quotas-on and quotas-off mosaic inflation p50 (x100 hundredths).
declare -a LOAD_MS ON_P50 OFF_P50 SELF_EVICT
for i in "${!LOADS[@]}"; do
    pct="${LOADS[$i]}"
    echo "[bench_isolation] load ${pct}% ..." >&2
    LOAD_MS[i]="$(time_ms "$BIN/tenants" "${ISO_FLAGS[@]}" --loads "$pct" --jobs 1)"
    "$BIN/tenants" "${ISO_FLAGS[@]}" --loads "$pct" --jobs 1 \
        > "$OUT_TMP/load$pct.txt" 2>/dev/null
    # Rows: "<load> on <p50>x <max>x ..." / "<load> off ..." — strip the
    # "N.NNx" multiplier back to hundredths for the JSON.
    ON_P50[i]="$(awk -v p="$pct" '$1 == p && $2 == "on"  { gsub(/[x.]/, "", $3); print $3+0; exit }' "$OUT_TMP/load$pct.txt")"
    OFF_P50[i]="$(awk -v p="$pct" '$1 == p && $2 == "off" { gsub(/[x.]/, "", $3); print $3+0; exit }' "$OUT_TMP/load$pct.txt")"
    SELF_EVICT[i]="$(awk -v p="$pct" '$1 == p && $2 == "on" { split($8, a, "/"); print a[1]; exit }' "$OUT_TMP/load$pct.txt")"
done

echo "[bench_isolation] full study --jobs ${HOST_CORES} ..." >&2
STUDY_MS="$(time_ms "$BIN/tenants" "${ISO_FLAGS[@]}" --loads "$(IFS=,; echo "${LOADS[*]}")" --jobs "$HOST_CORES")"

records() {
    local out="" i
    for i in "${!LOADS[@]}"; do
        out+="    {\"load_pct\": ${LOADS[$i]}, \"wall_ms\": ${LOAD_MS[$i]}, \"quotas_on_infl_p50_x100\": ${ON_P50[$i]}, \"quotas_off_infl_p50_x100\": ${OFF_P50[$i]}, \"mosaic_self_evictions\": ${SELF_EVICT[$i]}},"$'\n'
    done
    printf '%s' "${out%,$'\n'}"
}

cat > BENCH_isolation.json <<EOF
{
  "host_cores": ${HOST_CORES},
  "config": "tenants 16, buckets 64, thrasher attacker (4x share), quota 125% of fair share, priority spread 2, steps 800000, churn 20000",
  "load_points": [
$(records)
  ],
  "full_study_wall_ms_at_host_cores": ${STUDY_MS},
  "note": "Victim inflation is the per-slot mixed/solo fault-rate ratio in hundredths (100 = no inflation). Each load point replays one schedule with quotas on and off against per-slot solo baselines; byte-identical at any --jobs (gated in scripts/check.sh). Wall times are host-dependent."
}
EOF
echo "[bench_isolation] wrote BENCH_isolation.json (host_cores=${HOST_CORES})" >&2
