#!/usr/bin/env bash
# Full offline quality gate: release build, test suite, and clippy with
# warnings denied (including the per-crate `clippy::unwrap_used` gates).
# Run from anywhere; the script cd's to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test (offline)"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings (offline)"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "All checks passed."
