#!/usr/bin/env bash
# Full offline quality gate: release build, test suite, and clippy with
# warnings denied (including the per-crate `clippy::unwrap_used` gates).
# Run from anywhere; the script cd's to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test (offline)"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings (offline)"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "==> unwrap gate (hash crate production code must stay unwrap-free)"
cargo clippy -q --offline -p mosaic-hash -- -D warnings -D clippy::unwrap_used

echo "==> obs access-path microbench (noop handle must stay ~free)"
cargo bench -q --offline -p mosaic-bench --bench obs

echo "==> obs golden determinism gate (fixed-seed GUPS JSONL, two runs)"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
for run in 1 2; do
  ./target/release/fig6 gups --scale 0 --entries 64 --no-kernel \
    --obs-out "$OBS_TMP/run$run.jsonl" --obs-interval 5000 \
    > "$OBS_TMP/stdout$run.txt" 2>/dev/null
done
cmp "$OBS_TMP/run1.jsonl" "$OBS_TMP/run2.jsonl"
cmp "$OBS_TMP/stdout1.txt" "$OBS_TMP/stdout2.txt"
./target/release/obs_report "$OBS_TMP/run1.jsonl" > "$OBS_TMP/report.txt"
grep -q "interval curve" "$OBS_TMP/report.txt"

echo "==> parallel determinism gate (fig6 --jobs 1 vs --jobs 4, stdout + JSONL)"
for jobs in 1 4; do
  ./target/release/fig6 gups --scale 0 --entries 64 --no-kernel --jobs "$jobs" \
    --obs-out "$OBS_TMP/par$jobs.jsonl" --obs-interval 5000 \
    > "$OBS_TMP/parout$jobs.txt" 2>/dev/null
done
diff "$OBS_TMP/parout1.txt" "$OBS_TMP/parout4.txt"
# The parallel export is self-deterministic: a second --jobs 4 run must
# reproduce the first byte-for-byte.
./target/release/fig6 gups --scale 0 --entries 64 --no-kernel --jobs 4 \
  --obs-out "$OBS_TMP/par4b.jsonl" --obs-interval 5000 \
  > "$OBS_TMP/parout4b.txt" 2>/dev/null
cmp "$OBS_TMP/par4.jsonl" "$OBS_TMP/par4b.jsonl"
cmp "$OBS_TMP/parout4.txt" "$OBS_TMP/parout4b.txt"
./target/release/obs_report "$OBS_TMP/par4.jsonl" > "$OBS_TMP/parreport.txt"
grep -q "interval curve" "$OBS_TMP/parreport.txt"

echo "==> batched-pipeline gate (fig6: --batch 1 scalar loop vs batched, --jobs 8)"
# The batched engine's contract: stdout and the JSONL export are
# byte-identical to the scalar per-access loop and at every --jobs value.
# par1.* above were produced with the default batch at --jobs 1.
./target/release/fig6 gups --scale 0 --entries 64 --no-kernel --batch 1 \
  --obs-out "$OBS_TMP/scalar.jsonl" --obs-interval 5000 \
  > "$OBS_TMP/scalarout.txt" 2>/dev/null
cmp "$OBS_TMP/scalarout.txt" "$OBS_TMP/parout1.txt"
cmp "$OBS_TMP/scalar.jsonl" "$OBS_TMP/par1.jsonl"
# Across jobs values the contract is stdout byte-identity (the JSONL
# stream layout is engine-specific; its self-determinism is gated above).
./target/release/fig6 gups --scale 0 --entries 64 --no-kernel --jobs 8 \
  --obs-out "$OBS_TMP/par8.jsonl" --obs-interval 5000 \
  > "$OBS_TMP/parout8.txt" 2>/dev/null
cmp "$OBS_TMP/parout8.txt" "$OBS_TMP/parout1.txt"

echo "==> batched-pipeline gate (table4: --batch 1 vs batched across --jobs 1/4/8)"
./target/release/table4 --buckets 16 --batch 1 --jobs 1 \
  > "$OBS_TMP/t4scalar.txt" 2>/dev/null
for jobs in 1 4 8; do
  ./target/release/table4 --buckets 16 --jobs "$jobs" \
    > "$OBS_TMP/t4j$jobs.txt" 2>/dev/null
  cmp "$OBS_TMP/t4j$jobs.txt" "$OBS_TMP/t4scalar.txt"
done

echo "==> table4 golden gate (batched default must reproduce results_table4.txt)"
./target/release/table4 --jobs 4 > "$OBS_TMP/t4gold.txt" 2>/dev/null
cmp "$OBS_TMP/t4gold.txt" results_table4.txt

echo "==> tenant determinism gate (tenants --jobs 1 vs --jobs 4, clean + faults)"
TEN_FLAGS=(--tenants 16 --buckets 16 --steps 60000 --churn 10000 --loads 90,110)
for jobs in 1 4; do
  ./target/release/tenants "${TEN_FLAGS[@]}" --jobs "$jobs" \
    > "$OBS_TMP/ten$jobs.txt" 2>/dev/null
  ./target/release/tenants "${TEN_FLAGS[@]}" --fault-ppm 200 --jobs "$jobs" \
    > "$OBS_TMP/tenf$jobs.txt" 2>/dev/null
done
cmp "$OBS_TMP/ten1.txt" "$OBS_TMP/ten4.txt"
cmp "$OBS_TMP/tenf1.txt" "$OBS_TMP/tenf4.txt"
grep -q "per-tenant fault ppm" "$OBS_TMP/ten1.txt"

echo "==> tenants golden gate (default sweep must reproduce results_tenants.txt)"
./target/release/tenants --jobs 4 > "$OBS_TMP/tengold.txt" 2>/dev/null
cmp "$OBS_TMP/tengold.txt" results_tenants.txt

echo "==> concurrent-determinism gate (--concurrent-alloc must not change stdout)"
# The lock-free mirror is observational: the golden sweep with the
# shadow on (cross-checked at every verify) must stay byte-identical,
# and so must a jobs-1-vs-8 pair with sharing and the shadow both on.
./target/release/tenants --jobs 4 --concurrent-alloc > "$OBS_TMP/tenshadow.txt" 2>/dev/null
cmp "$OBS_TMP/tenshadow.txt" results_tenants.txt
CON_FLAGS=(--tenants 16 --buckets 16 --steps 60000 --churn 10000 --loads 90,110
           --shared-traces --concurrent-alloc)
for jobs in 1 8; do
  ./target/release/tenants "${CON_FLAGS[@]}" --jobs "$jobs" \
    > "$OBS_TMP/con$jobs.txt" 2>/dev/null
done
cmp "$OBS_TMP/con1.txt" "$OBS_TMP/con8.txt"

echo "==> seeded-interleaving stress gate (concurrent table vs serial oracle)"
cargo test -q --offline -p mosaic-iceberg --test concurrent_oracle

echo "==> hostile-tenant determinism gate (thrasher + faults, --jobs 1 vs 8)"
ISO_FLAGS=(--tenants 16 --buckets 16 --steps 60000 --churn 10000 --loads 90,105
           --hostile thrasher --quota-frac 125 --priority-spread 2 --fault-ppm 200)
for jobs in 1 8; do
  ./target/release/tenants "${ISO_FLAGS[@]}" --jobs "$jobs" \
    > "$OBS_TMP/iso$jobs.txt" 2>/dev/null
done
cmp "$OBS_TMP/iso1.txt" "$OBS_TMP/iso8.txt"
grep -q "Victim inflation" "$OBS_TMP/iso1.txt"

echo "==> isolation golden gate (must reproduce results_isolation.txt)"
./target/release/tenants --tenants 16 --buckets 64 --steps 800000 --churn 20000 \
  --loads 105,120 --hostile thrasher --quota-frac 125 --priority-spread 2 \
  --jobs 4 > "$OBS_TMP/isogold.txt" 2>/dev/null
cmp "$OBS_TMP/isogold.txt" results_isolation.txt

echo "==> attribution determinism gate (attrib --jobs 1 vs 8, fault-injected JSONL)"
for jobs in 1 8; do
  ./target/release/attrib --fault-ppm 20000 --jobs "$jobs" \
    --obs-out "$OBS_TMP/at$jobs.jsonl" --obs-interval 20000 \
    > "$OBS_TMP/atout$jobs.txt" 2>/dev/null
done
cmp "$OBS_TMP/at1.jsonl" "$OBS_TMP/at8.jsonl"
cmp "$OBS_TMP/atout1.txt" "$OBS_TMP/atout8.txt"
grep -q '"t":"attrib"' "$OBS_TMP/at1.jsonl"
./target/release/obs_report "$OBS_TMP/at1.jsonl" > "$OBS_TMP/atreport.txt"
grep -q "conflict removed by" "$OBS_TMP/atreport.txt"
grep -q "per-tenant blame" "$OBS_TMP/atreport.txt"

echo "==> attribution golden gate (must reproduce results_attrib.txt)"
./target/release/attrib --jobs 4 > "$OBS_TMP/atgold.txt" 2>/dev/null
cmp "$OBS_TMP/atgold.txt" results_attrib.txt

echo "==> bench-delta (warn-only) vs BENCH_*.json baselines committed at HEAD"
for s in obs parallel tenants isolation step iceberg; do
  if git show "HEAD:BENCH_${s}.json" > "$OBS_TMP/BENCH_${s}.base.json" 2>/dev/null; then
    scripts/bench_delta.sh "$OBS_TMP/BENCH_${s}.base.json" "BENCH_${s}.json" || true
  fi
done

echo "All checks passed."
