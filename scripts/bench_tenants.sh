#!/usr/bin/env bash
# Measures the multi-tenant sweep: wall time and per-tenant p99 fault
# rates at three load points, written to BENCH_tenants.json.
#
# The sweep's *output* is a pure function of the flags (byte-identical
# at any --jobs; gated in scripts/check.sh); only the wall times here
# depend on the host. host_cores records which regime a run came from.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p mosaic-bench
BIN=target/release
HOST_CORES=$(nproc)
LOADS=(90 105 120)
TEN_FLAGS=(--tenants 64 --buckets 64 --steps 400000 --churn 20000)

# Wall time of one invocation, in milliseconds.
time_ms() {
    local start end
    start=$(date +%s%N)
    "$@" >/dev/null 2>&1
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 ))
}

OUT_TMP="$(mktemp -d)"
trap 'rm -rf "$OUT_TMP"' EXIT

# One timed run per load point (serial), plus the full sweep at the
# host's core count for the parallel wall time.
declare -a LOAD_MS MOSAIC_P99 LINUX_P99
for i in "${!LOADS[@]}"; do
    pct="${LOADS[$i]}"
    echo "[bench_tenants] load ${pct}% ..." >&2
    LOAD_MS[i]="$(time_ms "$BIN/tenants" "${TEN_FLAGS[@]}" --loads "$pct" --jobs 1)"
    "$BIN/tenants" "${TEN_FLAGS[@]}" --loads "$pct" --jobs 1 \
        > "$OUT_TMP/load$pct.txt" 2>/dev/null
    # The percentile line: "... mosaic p50 A / p99 B / max C | linux p50 D / p99 E / max F"
    MOSAIC_P99[i]="$(awk '/per-tenant fault ppm/ { print $9; exit }' "$OUT_TMP/load$pct.txt")"
    LINUX_P99[i]="$(awk '/per-tenant fault ppm/ { print $19; exit }' "$OUT_TMP/load$pct.txt")"
done

echo "[bench_tenants] full sweep --jobs ${HOST_CORES} ..." >&2
SWEEP_MS="$(time_ms "$BIN/tenants" "${TEN_FLAGS[@]}" --loads "$(IFS=,; echo "${LOADS[*]}")" --jobs "$HOST_CORES")"

records() {
    local out="" i
    for i in "${!LOADS[@]}"; do
        out+="    {\"load_pct\": ${LOADS[$i]}, \"wall_ms\": ${LOAD_MS[$i]}, \"mosaic_p99_fault_ppm\": ${MOSAIC_P99[$i]}, \"linux_p99_fault_ppm\": ${LINUX_P99[$i]}},"$'\n'
    done
    printf '%s' "${out%,$'\n'}"
}

cat > BENCH_tenants.json <<EOF
{
  "host_cores": ${HOST_CORES},
  "config": "tenants 64, buckets 64, Zipf theta 0.99, steps 400000, churn 20000",
  "load_points": [
$(records)
  ],
  "full_sweep_wall_ms_at_host_cores": ${SWEEP_MS},
  "note": "Per-tenant p99 fault rates (ppm) from the fairness percentile line of each load point; byte-identical at any --jobs (gated in scripts/check.sh). Wall times are host-dependent; on a single-core container the parallel sweep records engine overhead, not speedup."
}
EOF
echo "[bench_tenants] wrote BENCH_tenants.json (host_cores=${HOST_CORES})" >&2
