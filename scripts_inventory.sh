#!/bin/sh
# Repository inventory: line counts, test counts, deliverable checklist.
set -e
cd "$(dirname "$0")"
echo "== Lines of Rust =="
find crates tests examples -name '*.rs' | xargs wc -l | tail -1
echo "== Tests passed (from last test_output.txt) =="
python3 - <<'PY'
import re
s = open('test_output.txt').read()
print(sum(int(m) for m in re.findall(r'test result: ok\. (\d+) passed', s)), 'tests')
print('failures:', len(re.findall(r'FAILED', s)))
PY
echo "== Experiment regenerators =="
ls crates/bench/src/bin/
echo "== Archived results =="
ls results_*.txt
