//! Offline shim of the `rayon` data-parallelism API surface this
//! workspace uses.
//!
//! The build environment has no reachable crates.io registry, so — like
//! the `proptest` and `criterion` shims next to it — this crate is an
//! original implementation of just the public API the repo calls, not a
//! copy of upstream:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] /
//!   [`current_num_threads`];
//! * `prelude::*` with [`IntoParallelIterator`] for `Vec<T>` and
//!   `Range<usize>`, and a `ParIter::map(..).collect::<Vec<_>>()`
//!   pipeline.
//!
//! Work items are executed on `std::thread::scope` workers, each seeded
//! with a contiguous chunk of the input in a per-worker deque. A worker
//! drains its own deque from the back (keeping its chunk cache-hot) and,
//! when empty, steals half of another worker's remaining items from the
//! front — upstream rayon's steal-half policy, here over mutexed deques
//! instead of lock-free Chase-Lev (the shim is `forbid(unsafe)`). Each
//! worker accumulates `(index, result)` pairs locally; `collect` scatters
//! them back into input order, so the output is byte-identical at any
//! thread count regardless of scheduling — the property the simulator's
//! determinism gates rely on. A panic in any work item propagates out of
//! `collect` (the scope joins its workers first), matching upstream.
//!
//! Nested parallelism is not modelled: worker threads do not inherit the
//! installed pool and run nested `collect` calls serially, which is
//! sufficient (and deterministic) for this workspace.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

thread_local! {
    /// Thread count installed by the innermost enclosing
    /// [`ThreadPool::install`] on this thread, if any.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel iterators on this thread will use: the
/// installed pool's size, or the machine's available parallelism outside
/// any [`ThreadPool::install`].
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error building a [`ThreadPool`]. The shim's pools are plain
/// configuration and cannot actually fail to build; the type exists for
/// API compatibility with upstream.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`] with a configured thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration (machine parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count; `0` means "use the machine default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this shim; the `Result` mirrors upstream's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A configured degree of parallelism. Unlike upstream, no threads are
/// kept alive between operations: workers are scoped threads spawned per
/// `collect`, which keeps the shim dependency-free and `forbid(unsafe)`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the previously installed thread count when dropped, even on
/// unwind.
struct InstallGuard {
    prev: Option<usize>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool installed: parallel iterators inside it
    /// use the pool's thread count.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard = INSTALLED_THREADS.with(|c| {
            let prev = c.get();
            c.set(Some(self.num_threads));
            InstallGuard { prev }
        });
        op()
    }
}

/// Runs `f` over `items` on up to `current_num_threads()` scoped worker
/// threads with steal-half work stealing, returning results in input
/// order.
fn execute<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n).max(1);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // Seed each worker with a contiguous chunk so the uncontended case is
    // one lock per item on the worker's own deque.
    let chunk = n.div_ceil(workers);
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> = {
        let mut it = items.into_iter().enumerate();
        (0..workers)
            .map(|_| Mutex::new(it.by_ref().take(chunk).collect()))
            .collect()
    };
    let worker_outs: Vec<Vec<(usize, R)>> = {
        let (f, deques) = (&f, &deques);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            // Own deque first, back end: LIFO keeps the
                            // seeded chunk cache-hot and leaves the front
                            // exposed to thieves.
                            let own = deques[w]
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .pop_back();
                            if let Some((i, t)) = own {
                                out.push((i, f(t)));
                                continue;
                            }
                            // Empty: steal half of the first non-empty
                            // victim's items from its front, holding only
                            // the victim's lock during the drain.
                            let mut batch: VecDeque<(usize, T)> = VecDeque::new();
                            for off in 1..workers {
                                let v = (w + off) % workers;
                                let mut q =
                                    deques[v].lock().unwrap_or_else(|e| e.into_inner());
                                let take = q.len().div_ceil(2);
                                if take > 0 {
                                    batch.extend(q.drain(..take));
                                    break;
                                }
                            }
                            if batch.is_empty() {
                                // A thief may still hold in-flight items it
                                // drained but has not re-queued; it will
                                // process them itself, so an empty sweep
                                // only ever ends a worker early, never
                                // drops work.
                                break;
                            }
                            deques[w]
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .append(&mut batch);
                        }
                        out
                    })
                })
                .collect();
            // Join explicitly so a worker panic resurfaces with its
            // original payload (upstream rayon's behavior), not the
            // scope's generic message.
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
    };
    // Scatter the per-worker (index, result) runs back into input order.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in worker_outs.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "work item {i} executed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker completed without storing a result"))
        .collect()
}

pub mod iter {
    //! The parallel-iterator subset: `into_par_iter().map(..).collect()`.

    use super::execute;

    /// Conversion into a [`ParIter`].
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Converts `self` into a parallel iterator over its elements.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    /// A parallel iterator over an owned list of items.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Maps each item through `f` (in parallel at collect time).
        pub fn map<R, F>(self, f: F) -> ParMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// A mapped parallel iterator, executed by [`ParMap::collect`].
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, F> ParMap<T, F>
    where
        T: Send,
    {
        /// Runs the map on the installed pool and collects the results in
        /// input order.
        pub fn collect<C, R>(self) -> C
        where
            R: Send,
            F: Fn(T) -> R + Sync,
            C: From<Vec<R>>,
        {
            C::from(execute(self.items, self.f))
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude::*`.
    pub use crate::iter::{IntoParallelIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_input_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..100).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_source_and_single_thread() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<String> = pool.install(|| {
            vec!["a", "b", "c"]
                .into_par_iter()
                .map(|s| s.to_uppercase())
                .collect()
        });
        assert_eq!(out, vec!["A", "B", "C"]);
    }

    #[test]
    fn install_sets_and_restores_thread_count() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 7));
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn zero_threads_means_machine_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..64)
                .into_par_iter()
                .map(|_| {
                    // A tiny stall so several workers get a slice of the work.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    std::thread::current().id()
                })
                .collect()
        });
        // On a single-core host the scheduler may still serialize onto one
        // worker; the hard guarantee is only that results exist for all items.
        assert_eq!(ids.len(), 64);
    }

    #[test]
    fn skewed_costs_still_collect_in_order() {
        // Front-loaded cost: worker 0's seeded chunk is slow, so the
        // other workers drain their chunks and steal from it. Whatever
        // the interleaving, the scatter restores input order exactly.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..128)
                .into_par_iter()
                .map(|i| {
                    if i < 32 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i * 3
                })
                .collect()
        });
        assert_eq!(out, (0..128).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_items() {
        let pool = ThreadPoolBuilder::new().num_threads(16).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..3).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input_collects_empty() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| Vec::<usize>::new().into_par_iter().map(|i| i).collect());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let _: Vec<()> = pool.install(|| {
            (0..8)
                .into_par_iter()
                .map(|i| {
                    if i == 3 {
                        panic!("boom");
                    }
                })
                .collect()
        });
    }
}
