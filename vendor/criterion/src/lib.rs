//! A minimal, fully offline stand-in for the `criterion` crate.
//!
//! The real `criterion` cannot be fetched in this build environment. This
//! shim keeps the workspace's benches compiling and runnable: each bench
//! executes its closure a small fixed number of times and prints a coarse
//! per-iteration wall-clock time. It makes no statistical claims.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An expressed measurement throughput (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        Self {
            name: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives one benchmark's timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, calling it a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / iters as u32
    };
    println!("bench {label:<48} {per_iter:>12.2?}/iter ({iters} iters)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim runs a fixed iteration
    /// count regardless.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<ID: Display, F: FnMut(&mut Bencher)>(&mut self, id: ID, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), self.iters, &mut f);
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<ID: Display, I: ?Sized, F>(&mut self, id: ID, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.iters,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    /// 10 iterations by default; `CRITERION_ITERS=N` overrides it.
    /// Per-iteration wall time on a shared host carries ~10% scheduler
    /// noise, so benches whose verdicts matter (the ns/access budget in
    /// scripts/bench_step.sh) raise the count to stretch each
    /// measurement well past the noise floor.
    fn default() -> Self {
        let iters = std::env::var("CRITERION_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(10);
        Self { iters }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.iters, &mut f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let iters = self.iters;
        BenchmarkGroup {
            name: name.into(),
            iters,
            _parent: self,
        }
    }
}

/// Collects bench functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
