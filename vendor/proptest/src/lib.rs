//! A minimal, fully offline stand-in for the `proptest` crate.
//!
//! The real `proptest` cannot be fetched in this build environment, so this
//! shim implements the subset of its API the workspace's property tests
//! use: `proptest!`, `prop_assert*`, `prop_assume!`, `prop_oneof!`,
//! `any::<T>()`, integer-range strategies, tuple strategies,
//! `prop::collection::{vec, hash_set}`, `.prop_map(..)`, and
//! `ProptestConfig::with_cases`.
//!
//! Generation is deterministic: each test function derives its RNG stream
//! from a hash of its own name, so a failing case reproduces on every run.
//! There is no shrinking — the failure message reports the case seed
//! instead.

use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::Range;

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it is not counted.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

/// The result type `proptest!` bodies implicitly produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest default is 256; 96 keeps debug-profile suite
        // times reasonable while still exercising plenty of inputs.
        Self { cases: 96 }
    }
}

/// SplitMix64: the deterministic generation stream behind every strategy.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a over a string, used to give each test its own seed stream.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x1000_0000_01B3);
        i += 1;
    }
    hash
}

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut Rng) -> V {
        self.0.generate(rng)
    }
}

/// The `.prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut Rng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                assert!(span > 0, "empty range strategy");
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        })*
    };
}
range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// `proptest::collection`: sized containers of generated elements.
pub mod collection {
    use super::{Hash, HashSet, Range, Rng, Strategy};

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy for `HashSet<S::Value>` with a target size in `size`.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates hash sets whose size lies in `size` (best-effort for
    /// narrow element domains).
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            let target = self.size.clone().generate(rng);
            let mut out = HashSet::new();
            let mut tries = 0usize;
            while out.len() < target && tries < target * 16 + 64 {
                out.insert(self.elem.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

/// The `proptest::prelude` the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

pub use prelude::prop;

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Discards the current case (uncounted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut passed = 0u32;
                let mut attempts = 0u32;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(32).saturating_add(256),
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    seed = seed.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(1);
                    let case_seed = seed;
                    let outcome: $crate::TestCaseResult = (|| -> $crate::TestCaseResult {
                        let mut __proptest_rng = $crate::Rng::new(case_seed);
                        $(
                            let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);
                        )+
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest case failed in {} (case seed {:#x}):\n{}",
                            stringify!($name),
                            case_seed,
                            msg
                        ),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = (0..8).map({
            let mut r = Rng::new(7);
            move |_| r.next_u64()
        }).collect();
        let b: Vec<u64> = (0..8).map({
            let mut r = Rng::new(7);
            move |_| r.next_u64()
        }).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = Rng::new(9);
        for _ in 0..100 {
            let v = collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = collection::hash_set(any::<u32>(), 3..6).generate(&mut rng);
            assert!(s.len() < 6);
        }
    }

    proptest! {
        #[test]
        fn macro_works(x in 0u64..100, flip in any::<bool>()) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            if flip {
                prop_assert_eq!(x, x);
            } else {
                prop_assert_ne!(x, x + 1);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn oneof_and_map(v in prop::collection::vec(
            prop_oneof![
                (0u32..10).prop_map(|x| x * 2),
                (0u32..10).prop_map(|x| x * 2 + 1),
            ],
            1..20
        )) {
            prop_assert!(v.iter().all(|&x| x < 20));
        }
    }
}
