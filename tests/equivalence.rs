//! Equivalence and ordering properties across the TLB design space.

use mosaic_core::prelude::*;
use mosaic_core::sim::fig6::{run_workload, Fig6Config, TlbKind};
use mosaic_core::workloads::standard_suite;

fn quick_cfg(arities: &[usize]) -> Fig6Config {
    Fig6Config {
        tlb_entries: 128,
        associativities: vec![
            Associativity::Ways(1),
            Associativity::Ways(2),
            Associativity::Ways(8),
            Associativity::Full,
        ],
        arities: arities.iter().map(|&a| Arity::new(a)).collect(),
        kernel: None,
        seed: 17,
        batch: mosaic_core::sim::fig6::DEFAULT_BATCH,
    }
}

#[test]
fn arity_one_mosaic_equals_vanilla_everywhere() {
    // With no kernel model, an arity-1 mosaic TLB is semantically a
    // vanilla TLB: same indexing, same LRU, one page per entry. Misses
    // must match exactly for every workload and associativity.
    let cfg = quick_cfg(&[1]);
    for mut w in standard_suite(0, 5) {
        let rows = run_workload(&cfg, w.as_mut());
        for assoc in &cfg.associativities {
            let vanilla = rows
                .iter()
                .find(|r| r.assoc == *assoc && r.kind == TlbKind::Vanilla)
                .unwrap();
            let mosaic1 = rows
                .iter()
                .find(|r| r.assoc == *assoc && r.kind == TlbKind::Mosaic(Arity::new(1)))
                .unwrap();
            assert_eq!(
                vanilla.misses(),
                mosaic1.misses(),
                "{} at {assoc}: vanilla vs mosaic-1",
                vanilla.workload
            );
        }
    }
}

#[test]
fn associativity_never_hurts_at_full() {
    // Full associativity removes conflict misses: for every design, the
    // fully-associative count is within noise of the best in its row.
    let cfg = quick_cfg(&[4]);
    for mut w in standard_suite(0, 6) {
        let rows = run_workload(&cfg, w.as_mut());
        for kind in [TlbKind::Vanilla, TlbKind::Mosaic(Arity::new(4))] {
            let direct = rows
                .iter()
                .find(|r| r.assoc == Associativity::Ways(1) && r.kind == kind)
                .unwrap()
                .misses();
            let full = rows
                .iter()
                .find(|r| r.assoc == Associativity::Full && r.kind == kind)
                .unwrap()
                .misses();
            assert!(
                full <= direct + direct / 20,
                "{}: full ({full}) worse than direct ({direct}) for {kind:?}",
                rows[0].workload
            );
        }
    }
}

#[test]
fn locality_workloads_improve_with_arity() {
    // The paper's arity sweep: for Graph500/BTree/XSBench (virtual
    // locality), larger ToCs reduce misses at 8-way associativity.
    // A 32-entry TLB keeps even Mosaic-4's reach below the footprints, so
    // capacity misses (not just cold misses) are in play.
    let mut cfg = quick_cfg(&[4, 16, 64]);
    cfg.tlb_entries = 32;
    for mut w in standard_suite(0, 7) {
        let name = w.meta().name;
        if name == "GUPS" {
            continue; // random accesses: arity does not monotonically help
        }
        let rows = run_workload(&cfg, w.as_mut());
        let miss = |a: usize| {
            rows.iter()
                .find(|r| {
                    r.assoc == Associativity::Ways(8) && r.kind == TlbKind::Mosaic(Arity::new(a))
                })
                .unwrap()
                .misses()
        };
        let (m4, m16, m64) = (miss(4), miss(16), miss(64));
        assert!(
            m16 <= m4 + m4 / 10,
            "{name}: Mosaic-16 ({m16}) much worse than Mosaic-4 ({m4})"
        );
        assert!(
            m64 <= m16 + m16 / 10,
            "{name}: Mosaic-64 ({m64}) much worse than Mosaic-16 ({m16})"
        );
        assert!(
            m64 < m4,
            "{name}: the largest arity should win outright ({m64} vs {m4})"
        );
    }
}

#[test]
fn mosaic_beats_vanilla_on_locality_workloads() {
    // The §4.1 headline at the paper's nearest-to-hardware point (8-way):
    // Mosaic-4 reduces misses on every locality workload.
    let cfg = quick_cfg(&[4]);
    for mut w in standard_suite(0, 8) {
        let name = w.meta().name;
        if name == "GUPS" {
            continue;
        }
        let rows = run_workload(&cfg, w.as_mut());
        let red = mosaic_core::sim::fig6::reduction_percent(
            &rows,
            Associativity::Ways(8),
            Arity::new(4),
        )
        .unwrap();
        assert!(red > 0.0, "{name}: Mosaic-4 reduction {red:.1}% not positive");
    }
}

#[test]
fn mosaic_is_insensitive_to_associativity() {
    // §4.1: "the performance of Mosaic is not significantly impacted by
    // TLB associativity" (beyond direct-mapped). Compare 2-way vs full.
    let cfg = quick_cfg(&[8]);
    for mut w in standard_suite(0, 9) {
        let name = w.meta().name;
        let rows = run_workload(&cfg, w.as_mut());
        let at = |assoc| {
            rows.iter()
                .find(|r| r.assoc == assoc && r.kind == TlbKind::Mosaic(Arity::new(8)))
                .unwrap()
                .misses() as f64
        };
        let two = at(Associativity::Ways(2));
        let full = at(Associativity::Full);
        assert!(
            two <= full * 1.6 + 50.0,
            "{name}: mosaic-8 2-way ({two}) >> full ({full})"
        );
    }
}
