//! Invariants of the swapping experiments (Tables 3–4) across the stack.

use mosaic_core::prelude::*;
use mosaic_core::sim::pressure::{run_pressure, PressureConfig, PressureWorkload};

fn cfg(seed: u64) -> PressureConfig {
    PressureConfig {
        mem_buckets: 16, // 1024 frames = 4 MiB: fast
        seed,
        batch: mosaic_core::sim::fig6::DEFAULT_BATCH,
    }
}

#[test]
fn no_swapping_when_memory_suffices() {
    // §4.2: "as long as ... the application(s) fit into DRAM, conflicts
    // are not observed".
    for w in PressureWorkload::ALL {
        let row = run_pressure(w, 0.70, &cfg(1));
        assert_eq!(row.mosaic_swaps, 0, "{}: mosaic swapped under no pressure", row.workload);
        assert_eq!(row.linux_swaps, 0, "{}: linux swapped under no pressure", row.workload);
        assert_eq!(row.first_conflict_pct, None, "{}: conflict without pressure", row.workload);
    }
}

#[test]
fn first_conflict_close_to_98_percent() {
    // Table 3's headline: δ ≈ 2 %. Small pools have more variance; accept
    // anything above 94 %.
    for w in PressureWorkload::ALL {
        let row = run_pressure(w, 1.20, &cfg(2));
        let fc = row
            .first_conflict_pct
            .expect("overcommit must conflict eventually");
        assert!(
            (94.0..=100.0).contains(&fc),
            "{}: first conflict at {fc:.2}%",
            row.workload
        );
    }
}

#[test]
fn steady_state_utilization_is_high() {
    // §4.2: ghosts push steady-state utilization past 1 − δ, above 99 %.
    for w in PressureWorkload::ALL {
        let row = run_pressure(w, 1.20, &cfg(3));
        let ss = row.steady_state_pct.expect("sampled during run");
        assert!(ss > 98.0, "{}: steady-state only {ss:.2}%", row.workload);
    }
}

#[test]
fn linux_steady_state_capped_by_watermark() {
    // The baseline reclaims below its low watermark, so its utilization
    // saturates near 99.2 % — the number the paper quotes for stock Linux.
    let row = run_pressure(PressureWorkload::BTree, 1.30, &cfg(4));
    let linux = row.linux_steady_pct.expect("sampled");
    assert!(
        (97.5..=99.5).contains(&linux),
        "linux steady-state {linux:.2}% outside the watermark band"
    );
}

#[test]
fn swap_volume_grows_with_footprint() {
    // Table 4's rows increase monotonically (mod noise) in footprint.
    for w in PressureWorkload::ALL {
        let small = run_pressure(w, 1.10, &cfg(5));
        let large = run_pressure(w, 1.50, &cfg(5));
        assert!(
            large.mosaic_swaps > small.mosaic_swaps,
            "{}: mosaic swaps did not grow ({} -> {})",
            w.name(),
            small.mosaic_swaps,
            large.mosaic_swaps
        );
        assert!(
            large.linux_swaps > small.linux_swaps,
            "{}: linux swaps did not grow",
            w.name()
        );
    }
}

#[test]
fn mosaic_swapping_is_comparable_to_linux() {
    // §4.3's claim is *comparability* plus frequent wins: at a mid
    // footprint, Mosaic stays within a small factor of the (idealised
    // exact-LRU) baseline for every workload.
    for w in PressureWorkload::ALL {
        let row = run_pressure(w, 1.25, &cfg(6));
        let ratio = row.mosaic_swaps as f64 / row.linux_swaps.max(1) as f64;
        assert!(
            ratio < 1.30,
            "{}: mosaic swaps {:.2}x linux's",
            row.workload,
            ratio
        );
    }
}

#[test]
fn managers_agree_on_resident_set_size_bounds() {
    // Direct manager-level invariant under a shared stream.
    let layout = MemoryLayout::new(IcebergConfig::paper_default(16));
    let mut mosaic = MosaicMemory::new(layout, 9);
    let mut linux = LinuxMemory::new(layout);
    let frames = layout.num_frames() as u64;
    let mut now = 0;
    for i in 0..frames * 3 {
        now += 1;
        let key = PageKey::new(Asid::new(1), Vpn::new((i * 131) % (frames * 5 / 4)));
        mosaic.access(key, AccessKind::Store, now);
        linux.access(key, AccessKind::Store, now);
        assert!(mosaic.resident_frames() <= mosaic.num_frames());
        assert!(linux.resident_frames() <= linux.num_frames());
    }
    // Mosaic packs tighter than the watermark-bounded baseline.
    assert!(mosaic.utilization() >= linux.utilization() - 0.02);
}

#[test]
fn pressure_run_survives_one_percent_alloc_faults() {
    // ISSUE acceptance: a 1 % transient-allocation-fault plan must not
    // panic or corrupt structure — every interval and the final verify()
    // pass, and the run still produces a sane Table 4 row.
    use mosaic_core::sim::pressure::{run_pressure_resilient, ResilienceConfig};

    let res = ResilienceConfig {
        plan: FaultPlan::NONE.with_alloc_failures(10_000), // 1 %
        fault_seed: 0x5EED,
        verify_every: 100_000,
    };
    let (row, rep) = run_pressure_resilient(PressureWorkload::XsBench, 1.25, &cfg(7), &res)
        .expect("run must survive transient allocation faults");
    let all = rep.combined();
    assert!(all.alloc_faults_injected > 0, "plan must actually fire");
    assert!(all.alloc_retries > 0, "transient faults are retried");
    assert!(
        rep.verify_passes >= 2,
        "interval and final verify() must both run (got {})",
        rep.verify_passes
    );
    assert!(row.mosaic_swaps > 0, "the experiment still exercises swap");
    assert!(
        rep.dropped() < all.alloc_faults_injected,
        "retries absorb most transient faults ({} dropped of {})",
        rep.dropped(),
        all.alloc_faults_injected
    );
}

#[test]
fn faulty_and_fault_free_runs_share_workload_stream() {
    // The injector must not perturb the access stream itself: footprint
    // and access counts match the fault-free row exactly.
    use mosaic_core::sim::pressure::{run_pressure, run_pressure_resilient, ResilienceConfig};

    let clean = run_pressure(PressureWorkload::BTree, 1.20, &cfg(8));
    let res = ResilienceConfig {
        plan: FaultPlan::NONE.with_alloc_failures(5_000),
        fault_seed: 1,
        verify_every: 0,
    };
    let (faulty, _) = run_pressure_resilient(PressureWorkload::BTree, 1.20, &cfg(8), &res)
        .expect("survives");
    assert_eq!(clean.footprint_bytes, faulty.footprint_bytes);
    assert_eq!(clean.workload, faulty.workload);
}
