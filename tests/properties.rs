//! Cross-crate property-based tests (proptest) on the system's core
//! invariants: CPFN round trips, placement containment, Iceberg
//! stability, and Horizon LRU's relationship to exact LRU.

use mosaic_core::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Every valid candidate index round-trips through the CPFN codec,
    /// for arbitrary (legal) geometries.
    #[test]
    fn cpfn_round_trip_any_geometry(
        front in 1usize..=64,
        back in 1usize..=8,
        d in 1usize..=7,
        idx_seed in any::<u64>(),
    ) {
        let cfg = IcebergConfig::new(16, front, back, d.min(16));
        let codec = CpfnCodec::new(cfg);
        let h = cfg.associativity();
        let idx = (idx_seed % h as u64) as usize;
        let cpfn = codec.encode_index(idx);
        prop_assert_ne!(cpfn, codec.unmapped());
        prop_assert_eq!(codec.decode_index(cpfn), Some(idx));
    }

    /// The Mosaic allocator never places a page outside its hashed
    /// candidate set, no matter the access pattern.
    #[test]
    fn allocator_respects_candidate_sets(seed in any::<u64>(), ops in 1usize..400) {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let mut mm = MosaicMemory::new(layout, seed);
        let mut rng = SplitMix64::new(seed ^ 1);
        for now in 0..ops as u64 {
            let vpn = Vpn::new(rng.next_below(1024));
            let key = PageKey::new(Asid::new(1), vpn);
            mm.access(key, AccessKind::Store, now + 1);
            let pfn = mm.resident_pfn(key).unwrap();
            let slot = mm.layout().slot_of_pfn(pfn);
            let cands = mm.candidates(key);
            prop_assert!(
                cands.index_of_slot(mm.layout().config(), slot).is_some(),
                "page placed outside its candidate set"
            );
        }
    }

    /// Iceberg stability: across arbitrary insert/remove sequences, a
    /// surviving key's slot never changes from where it was first placed.
    #[test]
    fn iceberg_stability(seed in any::<u64>(), ops in 1usize..600) {
        let cfg = IcebergConfig::paper_default(8);
        let mut t: IcebergTable<u64, u64, XxFamily> =
            IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), seed));
        let mut rng = SplitMix64::new(seed);
        let mut placed = std::collections::HashMap::new();
        for _ in 0..ops {
            let k = rng.next_below(300);
            if rng.next_below(3) == 0 {
                t.remove(&k);
                placed.remove(&k);
            } else if let Ok(outcome) = t.insert(k, 0) {
                let slot = outcome.slot();
                let prior = placed.entry(k).or_insert(slot);
                prop_assert_eq!(*prior, slot, "key {} moved", k);
            }
        }
    }

    /// Horizon LRU over-commit: total swap I/O on a scan pattern never
    /// falls below the baseline's by more than the δ-headroom explains,
    /// and both managers keep perfect residency conservation.
    #[test]
    fn swap_accounting_conserves(seed in any::<u64>()) {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(6));
        let frames = layout.num_frames() as u64; // 384
        let mut mm = MosaicMemory::new(layout, seed);
        let mut now = 0;
        for round in 0..3u64 {
            for p in 0..frames + 40 {
                now += 1;
                mm.access(PageKey::new(Asid::new(1), Vpn::new(p)), AccessKind::Store, now);
            }
            prop_assert!(mm.resident_frames() <= mm.num_frames(), "round {}", round);
        }
        let s = mm.stats();
        // Every swap-in must correspond to a prior swap-out of that page.
        prop_assert!(s.swapped_in <= s.swapped_out);
        // Fault accounting: every access is a hit, ghost hit, or fault.
        prop_assert_eq!(s.accesses,
            s.minor_faults + s.major_faults
            + (s.accesses - s.faults()) /* hits */);
    }

    /// The vanilla TLB with arity-1 mosaic equivalence, property-style:
    /// random page streams give identical miss counts.
    #[test]
    fn vanilla_equals_arity1(seed in any::<u64>(), len in 100usize..2000) {
        let mut sim = mosaic_core::sim::dual::DualSim::new(
            32,
            &[Associativity::Ways(4)],
            &[Arity::new(1)],
            256,
            None,
            seed,
        );
        let mut rng = SplitMix64::new(seed);
        for _ in 0..len {
            let page = rng.next_below(96);
            sim.access(mosaic_core::workloads::Access::load(VirtAddr(page * PAGE_SIZE)));
        }
        let results = sim.results();
        let vanilla = results.iter().find(|(_, k, _)| k.is_none()).unwrap().2;
        let mosaic = results.iter().find(|(_, k, _)| k.is_some()).unwrap().2;
        prop_assert_eq!(vanilla.misses, mosaic.misses);
        prop_assert_eq!(vanilla.hits, mosaic.hits);
    }

    /// Tabulation and xxHash families always agree with themselves and
    /// stay in range under `hash_to` for arbitrary keys and bounds.
    #[test]
    fn hash_families_bounded(key in any::<u64>(), bound in 1usize..10_000) {
        let tab = TabulationFamily::new(7, 3);
        let xx = XxFamily::new(7, 3);
        for i in 0..7 {
            prop_assert!(tab.hash_to(key, i, bound) < bound);
            prop_assert!(xx.hash_to(key, i, bound) < bound);
            prop_assert_eq!(tab.hash(key, i), tab.hash(key, i));
        }
    }
}

proptest! {
    /// Fault injection is replayable: two injectors built from the same
    /// `(plan, seed)` make identical decisions under an interleaved
    /// query pattern.
    #[test]
    fn fault_injector_is_deterministic(
        seed in any::<u64>(),
        alloc_ppm in 0u32..200_000,
        io_ppm in 0u32..200_000,
        burst in 0u32..4,
        toc_ppm in 0u32..200_000,
    ) {
        let plan = FaultPlan::NONE
            .with_alloc_failures(alloc_ppm)
            .with_io_failures(io_ppm, burst)
            .with_toc_flips(toc_ppm);
        let mut a = FaultInjector::new(plan, seed);
        let mut b = FaultInjector::new(plan, seed);
        for i in 0..256u32 {
            match i % 3 {
                0 => prop_assert_eq!(a.alloc_should_fail(), b.alloc_should_fail()),
                1 => prop_assert_eq!(a.io_should_fail(), b.io_should_fail()),
                _ => prop_assert_eq!(a.toc_should_flip(), b.toc_should_flip()),
            }
        }
    }

    /// The empty plan never fires, for any seed — the behavioural half of
    /// the zero-fault bit-identity guarantee.
    #[test]
    fn empty_plan_never_fires(seed in any::<u64>()) {
        let mut inj = FaultInjector::new(FaultPlan::NONE, seed);
        for _ in 0..512 {
            prop_assert!(!inj.alloc_should_fail());
            prop_assert!(!inj.io_should_fail());
            prop_assert!(!inj.toc_should_flip());
            prop_assert!(!inj.trace_should_truncate());
        }
    }

    /// A single-event upset flips exactly one bit, inside the stated width.
    #[test]
    fn flip_bit_flips_one_in_range(
        seed in any::<u64>(),
        raw in any::<u8>(),
        width in 1u32..=8,
    ) {
        let mut inj = FaultInjector::new(FaultPlan::NONE.with_toc_flips(1), seed);
        let flipped = inj.flip_bit(raw, width);
        let diff = raw ^ flipped;
        prop_assert_eq!(diff.count_ones(), 1);
        prop_assert!(diff.trailing_zeros() < width);
    }

    /// Disabled fault classes draw no randomness, so adding one to a plan
    /// at ppm 0 leaves an enabled class's decision stream untouched.
    #[test]
    fn disabled_classes_do_not_perturb(seed in any::<u64>(), ppm in 1u32..500_000) {
        let solo = FaultPlan::NONE.with_alloc_failures(ppm);
        let mixed = solo.with_io_failures(0, 3).with_trace_truncation(0);
        let mut a = FaultInjector::new(solo, seed);
        let mut b = FaultInjector::new(mixed, seed);
        for _ in 0..256 {
            prop_assert!(!b.io_should_fail());
            prop_assert!(!b.trace_should_truncate());
            prop_assert_eq!(a.alloc_should_fail(), b.alloc_should_fail());
        }
    }
}
