//! Cross-crate integration tests for the reproduction's extension
//! experiments: fragmentation, cache coloring, coalescing, sharing, and
//! the Zipf locality knob — the end-to-end paths the extension drivers
//! exercise.

use mosaic_core::mem::sharing::SharedMosaicMemory;
use mosaic_core::prelude::*;
use mosaic_core::sim::dcache::{run_coloring, Placement};
use mosaic_core::sim::frag::{run_frag, FragConfig};
use mosaic_core::workloads::{ZipfGups, ZipfGupsConfig};

#[test]
fn fragmentation_sweep_shape_end_to_end() {
    let run = |frag: f64| {
        let mut w = Gups::new(
            GupsConfig {
                table_bytes: 3 << 20, // 768 pages > 4x 64-entry reach
                updates: 60_000,
            },
            3,
        );
        let mut cfg = FragConfig::new(frag, 9);
        cfg.tlb_entries = 64;
        run_frag(&cfg, &mut w)
    };
    let clean = run(0.0);
    let dirty = run(0.5);

    // THP sweeps the table almost for free when every region promotes.
    assert_eq!(clean.huge_formed, clean.huge_regions);
    assert!(clean.thp_misses * 5 < clean.vanilla_misses);
    // Fragmentation takes the promotions away...
    assert!(dirty.huge_formed < dirty.huge_regions);
    // ...but cannot touch mosaic.
    let drift = dirty.mosaic_misses as f64 / clean.mosaic_misses.max(1) as f64;
    assert!((0.85..1.15).contains(&drift), "mosaic drifted {drift:.2}x");
}

#[test]
fn coloring_policies_rank_correctly() {
    let make = || {
        Gups::new(
            GupsConfig {
                table_bytes: 80 * 4096,
                updates: 30_000,
            },
            5,
        )
    };
    let miss = |p| run_coloring(p, 256 << 10, 4, &mut make(), 3).miss_rate;
    let colored = miss(Placement::Colored);
    let bad = miss(Placement::Pathological);
    let mosaic = miss(Placement::Mosaic);
    assert!(bad > colored * 2.0, "pathology invisible: {bad} vs {colored}");
    assert!(
        mosaic < bad / 2.0,
        "mosaic should dodge the pathology: {mosaic} vs {bad}"
    );
}

#[test]
fn shared_location_pages_survive_memory_pressure() {
    // Sharing composes with Horizon LRU: over-commit the pool and verify
    // shared pages keep resolving consistently across both ASIDs.
    let layout = MemoryLayout::new(IcebergConfig::paper_default(8)); // 512 frames
    let mut mm = SharedMosaicMemory::new(layout, 4, 3);
    let loc = mm.create_location();
    mm.map(Asid::new(1), 0, loc).unwrap();
    mm.map(Asid::new(2), 50, loc).unwrap();

    let mut now = 0u64;
    // Keep the shared mosaic page hot while streaming private pressure.
    for round in 0..3_000u64 {
        now += 1;
        mm.access(Asid::new(1), Vpn::new(round % 4), AccessKind::Store, now);
        now += 1;
        mm.access(Asid::new(1), Vpn::new(100 + (round % 700)), AccessKind::Store, now);
    }
    for off in 0..4u64 {
        let a = mm.resident_pfn_of(Asid::new(1), Vpn::new(off));
        let b = mm.resident_pfn_of(Asid::new(2), Vpn::new(200 + off));
        assert_eq!(a, b, "offset {off}: bindings diverged under pressure");
        assert!(a.is_some(), "hot shared page evicted");
    }
    assert!(mm.stats().evictions() > 0, "pressure never materialised");
}

#[test]
fn zipf_locality_drives_mosaic_gains() {
    // The locality driver's core claim as a fast test: spatial skew must
    // beat scrambled skew by a clear margin at the same theta.
    let run = |scramble: bool| {
        let config = MosaicConfig::builder()
            .tlb_entries(128)
            .arity(4)
            .kernel(None)
            .seed(5)
            .build();
        let mut w = ZipfGups::new(
            ZipfGupsConfig {
                table_bytes: 16 << 20,
                updates: 300_000,
                theta: 1.1,
                scramble,
            },
            4,
        );
        MosaicSystem::new(&config)
            .run(&mut w)
            .miss_reduction_percent()
    };
    let spatial = run(false);
    let scrambled = run(true);
    assert!(
        spatial > scrambled + 5.0,
        "spatial {spatial:.1}% vs scrambled {scrambled:.1}%"
    );
}

#[test]
fn scanner_mode_composes_with_full_system() {
    use mosaic_core::mem::scanner::ScannerConfig;
    // Scanner-driven timestamps through a real workload under pressure.
    let layout = MemoryLayout::new(IcebergConfig::paper_default(16)); // 1024 frames
    let mut mm = MosaicMemory::with_scanner(
        layout,
        7,
        ScannerConfig {
            interval: 2_048,
            ..Default::default()
        },
    );
    let mut w = XsBench::with_footprint(layout.bytes() * 5 / 4, 4_000, 2);
    let mut now = 0;
    w.run(&mut |a| {
        now += 1;
        mm.access(PageKey::new(Asid::new(1), a.addr.vpn()), a.kind, now);
    });
    assert!(mm.scanner().unwrap().stats().scans > 0);
    assert!(mm.stats().swap_ops() > 0);
    assert!(mm.resident_frames() <= mm.num_frames());
}

#[test]
fn trace_file_round_trip_preserves_tlb_behaviour() {
    use mosaic_core::workloads::{load_trace, save_trace, RecordedTrace};
    // Saving and replaying a trace gives identical TLB counts.
    let mut original = Gups::new(
        GupsConfig {
            table_bytes: 1 << 20,
            updates: 20_000,
        },
        8,
    );
    let path = std::env::temp_dir().join(format!("mosaic-ext-trace-{}", std::process::id()));
    save_trace(&path, &mut original).unwrap();
    let mut replay = RecordedTrace::new(load_trace(&path).unwrap());
    std::fs::remove_file(&path).unwrap();

    let config = MosaicConfig::builder()
        .tlb_entries(64)
        .kernel(None)
        .seed(1)
        .build();
    let direct = MosaicSystem::new(&config).run(&mut Gups::new(
        GupsConfig {
            table_bytes: 1 << 20,
            updates: 20_000,
        },
        8,
    ));
    let replayed = MosaicSystem::new(&config).run(&mut replay);
    assert_eq!(direct.vanilla, replayed.vanilla);
    assert_eq!(direct.mosaic, replayed.mosaic);
}
