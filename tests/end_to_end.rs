//! Cross-crate integration: exact, hand-checkable end-to-end runs
//! through the full stack (workload → OS → page tables → both TLBs).

use mosaic_core::prelude::*;
use mosaic_core::sim::dual::DualSim;
use mosaic_core::workloads::Access;

fn feed_pages(sim: &mut DualSim, pages: impl IntoIterator<Item = u64>) {
    for p in pages {
        sim.access(Access::load(VirtAddr(p * PAGE_SIZE)));
    }
}

fn stats_of(
    sim: &DualSim,
    assoc: Associativity,
    arity: Option<usize>,
) -> mosaic_core::mmu::TlbStats {
    sim.results()
        .into_iter()
        .find(|(a, k, _)| *a == assoc && k.map(|x| x.get()) == arity)
        .expect("configured instance")
        .2
}

#[test]
fn cold_misses_are_exactly_one_per_page() {
    let mut sim = DualSim::new(
        256,
        &[Associativity::Full],
        &[Arity::new(4)],
        512,
        None,
        1,
    );
    // 200 distinct pages, each touched twice.
    feed_pages(&mut sim, (0..200).chain(0..200));
    let vanilla = stats_of(&sim, Associativity::Full, None);
    let mosaic = stats_of(&sim, Associativity::Full, Some(4));
    assert_eq!(vanilla.accesses, 400);
    assert_eq!(vanilla.misses, 200, "one cold miss per page");
    // Mosaic: 50 whole-entry misses (one per mosaic page) + 150 sub-misses.
    assert_eq!(mosaic.misses, 200);
    assert_eq!(mosaic.sub_entry_misses, 150);
    // Second pass is all hits for both.
    assert_eq!(vanilla.hits, 200);
    assert_eq!(mosaic.hits, 200);
}

#[test]
fn capacity_cycling_shows_reach_multiplier() {
    // Working set of 256 pages over a 64-entry TLB: vanilla thrashes
    // (LRU cycle), mosaic-4 covers it exactly (64 x 4 = 256).
    let mut sim = DualSim::new(
        64,
        &[Associativity::Full],
        &[Arity::new(4)],
        512,
        None,
        1,
    );
    for _ in 0..10 {
        feed_pages(&mut sim, 0..256);
    }
    let vanilla = stats_of(&sim, Associativity::Full, None);
    let mosaic = stats_of(&sim, Associativity::Full, Some(4));
    assert_eq!(
        vanilla.misses, 2560,
        "every access misses in a looping over-capacity LRU cycle"
    );
    assert_eq!(mosaic.misses, 256, "only the cold pass misses");
}

#[test]
fn sub_page_invalidation_semantics_via_toc() {
    // Drive a run, then verify the OS-side ToCs agree with the manager's
    // CPFNs for every touched page, across two arities.
    let mut sim = DualSim::new(
        128,
        &[Associativity::Ways(4)],
        &[Arity::new(4), Arity::new(16)],
        4096,
        None,
        3,
    );
    feed_pages(&mut sim, (0..1000).map(|i| (i * 7) % 600));
    let os = sim.os();
    for vpn in 0..600u64 {
        let cpfn = os.cpfn_of(Vpn(vpn)).expect("touched page mapped");
        let key = PageKey::new(Asid::new(1), Vpn(vpn));
        let mm = os.mosaic();
        let cands = mm.candidates(key);
        let slot = mm.codec().decode_slot(&cands, cpfn).expect("valid cpfn");
        assert_eq!(
            mm.layout().pfn_of_slot(slot),
            mm.resident_pfn(key).unwrap(),
            "vpn {vpn}: ToC CPFN decodes to the page's actual frame"
        );
    }
}

#[test]
fn kernel_huge_pages_cost_vanilla_almost_nothing() {
    use mosaic_core::sim::dual::KernelConfig;
    // Kernel-only traffic: 512 kernel pages = exactly one 2 MiB mapping.
    let mut sim = DualSim::new(
        64,
        &[Associativity::Full],
        &[Arity::new(4)],
        64,
        Some(KernelConfig {
            pages: 512,
            period: 1,
        }),
        5,
    );
    // Each user access injects one kernel access.
    feed_pages(&mut sim, (0..2000).map(|i| i % 4));
    let vanilla = stats_of(&sim, Associativity::Full, None);
    let mosaic = stats_of(&sim, Associativity::Full, Some(4));
    // Vanilla: 4 user pages + 1 huge kernel entry = 5 cold misses.
    assert_eq!(vanilla.misses, 5);
    // Mosaic must map each kernel page individually: 512 cold misses for
    // kernel + 4 user, then 128 kernel ToCs + 1 user entry fit in 64
    // entries? No — 129 entries > 64, so kernel churn keeps missing.
    assert!(
        mosaic.misses > vanilla.misses * 20,
        "mosaic {} vs vanilla {}",
        mosaic.misses,
        vanilla.misses
    );
}

#[test]
fn mosaic_system_facade_matches_dual_sim() {
    // The core facade must report the same counts as driving DualSim
    // directly with the same config and workload.
    let config = MosaicConfig::builder()
        .tlb_entries(128)
        .tlb_associativity(Associativity::Ways(8))
        .arity(8)
        .kernel(None)
        .seed(11)
        .build();
    let make = || {
        Gups::new(
            GupsConfig {
                table_bytes: 1 << 21,
                updates: 30_000,
            },
            2,
        )
    };
    let report = MosaicSystem::new(&config).run(&mut make());

    let mut w = make();
    let meta = w.meta();
    let mut sim = DualSim::new(
        128,
        &[Associativity::Ways(8)],
        &[Arity::new(8)],
        meta.footprint_bytes.div_ceil(PAGE_SIZE) + 16,
        None,
        11,
    );
    w.run(&mut |a| sim.access(a));
    assert_eq!(report.vanilla, stats_of(&sim, Associativity::Ways(8), None));
    assert_eq!(report.mosaic, stats_of(&sim, Associativity::Ways(8), Some(8)));
}
