//! Compressed Physical Frame Numbers (CPFNs), bit-exact per paper §3.1.
//!
//! A CPFN records *which of a page's `h` candidate slots* the allocator
//! chose, so it needs only `log₂ h` bits instead of a full PFN. The paper's
//! 7-bit encoding (for the 56 + 6 × 8 geometry):
//!
//! ```text
//!   unmapped            : 111_1111  (all ones)
//!   front yard          : 0  oooooo   (6-bit slot offset, 0..56)
//!   backyard            : 1  ccc ooo  (3-bit choice 0..6, 3-bit offset 0..8)
//! ```
//!
//! [`CpfnCodec`] generalises the same field layout to other geometries
//! (used by the arity sweeps), deriving field widths from the
//! [`IcebergConfig`].

use mosaic_iceberg::{CandidateSet, IcebergConfig, SlotRef};

/// A compressed physical frame number: an index into a page's candidate
/// set, or the unmapped sentinel.
///
/// The raw byte layout is produced by a [`CpfnCodec`]; a bare `Cpfn` is
/// meaningful only together with the codec that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cpfn(pub u8);

impl Cpfn {
    /// The paper's unmapped sentinel for the 7-bit encoding (all ones).
    pub const UNMAPPED_7BIT: Cpfn = Cpfn(0x7F);
}

impl core::fmt::Display for Cpfn {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cpfn:{:#09b}", self.0)
    }
}

impl core::fmt::Binary for Cpfn {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Binary::fmt(&self.0, f)
    }
}

/// Encodes and decodes CPFNs for a given Iceberg geometry.
///
/// # Example
///
/// ```
/// use mosaic_mem::cpfn::CpfnCodec;
/// use mosaic_iceberg::IcebergConfig;
///
/// let codec = CpfnCodec::new(IcebergConfig::paper_default(64));
/// assert_eq!(codec.bits(), 7);
/// // Candidate 0 is front-yard slot 0.
/// let c = codec.encode_index(0);
/// assert_eq!(codec.decode_index(c), Some(0));
/// assert_eq!(codec.decode_index(codec.unmapped()), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpfnCodec {
    cfg: IcebergConfig,
    /// Bits for the backyard slot offset.
    slot_bits: u32,
    /// Bits for the backyard choice field.
    choice_bits: u32,
    /// Total CPFN width including the front/back lead bit.
    bits: u32,
}

fn bits_for(n: usize) -> u32 {
    // Number of bits to represent values 0..n (n >= 1).
    usize::BITS - (n - 1).leading_zeros()
}

impl CpfnCodec {
    /// Creates a codec for a geometry.
    ///
    /// # Panics
    ///
    /// Panics if the encoding would exceed 8 bits (the `Cpfn` payload).
    pub fn new(cfg: IcebergConfig) -> Self {
        let slot_bits = bits_for(cfg.back_slots());
        let choice_bits = bits_for(cfg.d_choices());
        let front_bits = bits_for(cfg.front_slots());
        let payload = front_bits.max(choice_bits + slot_bits);
        let mut bits = payload + 1;
        // If the largest backyard encoding would be all ones (the paper's
        // geometry avoids this because d = 6 leaves choice 0b111 unused),
        // widen by one bit so the unmapped sentinel stays distinct.
        let max_back = (1u16 << (bits - 1))
            | (((cfg.d_choices() - 1) as u16) << slot_bits)
            | (cfg.back_slots() - 1) as u16;
        if max_back == (1 << bits) - 1 {
            bits += 1;
        }
        assert!(
            bits <= 8,
            "geometry needs {bits} bits, exceeding the u8 CPFN payload"
        );
        Self {
            cfg,
            slot_bits,
            choice_bits,
            bits,
        }
    }

    /// The geometry this codec encodes for.
    pub fn config(&self) -> &IcebergConfig {
        &self.cfg
    }

    /// Total CPFN width in bits, including the front/back lead bit.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The unmapped sentinel: all ones in [`bits`](Self::bits) bits.
    pub fn unmapped(&self) -> Cpfn {
        Cpfn(((1u16 << self.bits()) - 1) as u8)
    }

    /// Encodes a candidate index (`0 .. h`) into a CPFN.
    ///
    /// # Panics
    ///
    /// Panics if `index >= cfg.associativity()`.
    pub fn encode_index(&self, index: usize) -> Cpfn {
        let h = self.cfg.associativity();
        assert!(index < h, "candidate index {index} out of range (h = {h})");
        let raw = if index < self.cfg.front_slots() {
            index as u8
        } else {
            let rest = index - self.cfg.front_slots();
            let (choice, offset) = self.cfg.back_split(rest);
            let lead = 1u8 << (self.bits() - 1);
            lead | ((choice as u8) << self.slot_bits) | offset as u8
        };
        let cpfn = Cpfn(raw);
        debug_assert_ne!(cpfn, self.unmapped(), "encoding collided with sentinel");
        cpfn
    }

    /// Decodes a CPFN back to a candidate index; `None` if unmapped.
    ///
    /// # Panics
    ///
    /// Panics if the CPFN is not a valid encoding for this geometry
    /// (a corrupted value, not merely unmapped).
    pub fn decode_index(&self, cpfn: Cpfn) -> Option<usize> {
        if cpfn == self.unmapped() {
            return None;
        }
        let lead = 1u8 << (self.bits() - 1);
        if cpfn.0 & lead == 0 {
            let idx = cpfn.0 as usize;
            assert!(idx < self.cfg.front_slots(), "invalid front-yard CPFN {cpfn}");
            Some(idx)
        } else {
            let payload = cpfn.0 & !lead;
            let choice = (payload >> self.slot_bits) as usize;
            let offset = (payload & ((1 << self.slot_bits) - 1)) as usize;
            assert!(choice < self.cfg.d_choices(), "invalid backyard choice in {cpfn}");
            assert!(offset < self.cfg.back_slots(), "invalid backyard offset in {cpfn}");
            Some(self.cfg.front_slots() + choice * self.cfg.back_slots() + offset)
        }
    }

    /// Encodes the CPFN for a concrete slot within a candidate set.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not in the candidate set.
    pub fn encode_slot(&self, cands: &CandidateSet, slot: SlotRef) -> Cpfn {
        let index = cands
            .index_of_slot(&self.cfg, slot)
            .expect("slot is not a candidate for this key");
        self.encode_index(index)
    }

    /// Decodes a CPFN to the concrete slot it denotes for a candidate set.
    ///
    /// Returns `None` for the unmapped sentinel.
    pub fn decode_slot(&self, cands: &CandidateSet, cpfn: Cpfn) -> Option<SlotRef> {
        self.decode_index(cpfn)
            .map(|idx| cands.slot_for_index(&self.cfg, idx))
    }

    /// Non-panicking variant of [`decode_index`](Self::decode_index) for
    /// possibly-corrupted bits (e.g. a bit-flipped TLB ToC entry):
    /// `Ok(None)` for the unmapped sentinel, `Err(cpfn)` when the bits are
    /// not a valid encoding for this geometry.
    pub fn try_decode_index(&self, cpfn: Cpfn) -> Result<Option<usize>, Cpfn> {
        if cpfn == self.unmapped() {
            return Ok(None);
        }
        let lead = 1u8 << (self.bits() - 1);
        if cpfn.0 & lead == 0 {
            let idx = cpfn.0 as usize;
            if idx < self.cfg.front_slots() {
                Ok(Some(idx))
            } else {
                Err(cpfn)
            }
        } else {
            let payload = cpfn.0 & !lead;
            let choice = (payload >> self.slot_bits) as usize;
            let offset = (payload & ((1 << self.slot_bits) - 1)) as usize;
            if choice < self.cfg.d_choices() && offset < self.cfg.back_slots() {
                Ok(Some(self.cfg.front_slots() + choice * self.cfg.back_slots() + offset))
            } else {
                Err(cpfn)
            }
        }
    }

    /// Non-panicking variant of [`decode_slot`](Self::decode_slot), with
    /// the same error convention as [`try_decode_index`](Self::try_decode_index).
    pub fn try_decode_slot(
        &self,
        cands: &CandidateSet,
        cpfn: Cpfn,
    ) -> Result<Option<SlotRef>, Cpfn> {
        Ok(self
            .try_decode_index(cpfn)?
            .map(|idx| cands.slot_for_index(&self.cfg, idx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_hash::XxFamily;

    fn codec() -> CpfnCodec {
        CpfnCodec::new(IcebergConfig::paper_default(64))
    }

    #[test]
    fn paper_bit_layout() {
        let c = codec();
        assert_eq!(c.bits(), 7);
        assert_eq!(c.unmapped(), Cpfn(0x7F));
        // Front-yard slot 0 and 55.
        assert_eq!(c.encode_index(0), Cpfn(0b000_0000));
        assert_eq!(c.encode_index(55), Cpfn(0b011_0111));
        // First backyard slot: lead bit set, choice 0, offset 0.
        assert_eq!(c.encode_index(56), Cpfn(0b100_0000));
        // Backyard choice 1, offset 0.
        assert_eq!(c.encode_index(64), Cpfn(0b100_1000));
        // Last backyard slot: choice 5, offset 7 = 0b1_101_111.
        assert_eq!(c.encode_index(103), Cpfn(0b110_1111));
    }

    #[test]
    fn round_trip_all_indices() {
        let c = codec();
        for idx in 0..104 {
            let cpfn = c.encode_index(idx);
            assert_eq!(c.decode_index(cpfn), Some(idx), "index {idx}");
            assert_ne!(cpfn, c.unmapped());
        }
    }

    #[test]
    fn unmapped_decodes_to_none() {
        assert_eq!(codec().decode_index(Cpfn::UNMAPPED_7BIT), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_out_of_range_panics() {
        codec().encode_index(104);
    }

    #[test]
    #[should_panic(expected = "invalid backyard choice")]
    fn decode_corrupt_backyard_panics() {
        // choice 6 (0b110) does not exist with d = 6 and offset fields 3 bits:
        // 0b1_110_000 = 0x70.
        codec().decode_index(Cpfn(0x70));
    }

    #[test]
    fn slot_round_trip_via_candidates() {
        let cfg = IcebergConfig::paper_default(64);
        let c = CpfnCodec::new(cfg);
        let family = XxFamily::new(cfg.hash_count(), 5);
        let cands = CandidateSet::compute(&family, &cfg, 0xABCDEF);
        for (idx, slot) in cands.slots(&cfg).enumerate() {
            let cpfn = c.encode_slot(&cands, slot);
            let back = c.decode_slot(&cands, cpfn).unwrap();
            assert_eq!(back, cands.slot_for_index(&cfg, idx));
        }
    }

    #[test]
    fn small_geometry_uses_fewer_bits() {
        // 8 front slots (3 bits), 3 backyard slots (2 bits), d = 2 (1 bit);
        // the largest backyard code 0b1_1_10 leaves the sentinel free.
        let cfg = IcebergConfig::new(8, 8, 3, 2);
        let c = CpfnCodec::new(cfg);
        assert_eq!(c.bits(), 4);
        assert_eq!(c.unmapped(), Cpfn(0xF));
        for idx in 0..cfg.associativity() {
            assert_eq!(c.decode_index(c.encode_index(idx)), Some(idx));
        }
    }

    #[test]
    fn sentinel_collision_widens_encoding() {
        // back = 4, d = 2 makes the top backyard code all-ones; the codec
        // must widen rather than collide with the unmapped sentinel.
        let cfg = IcebergConfig::new(8, 8, 4, 2);
        let c = CpfnCodec::new(cfg);
        assert_eq!(c.bits(), 5);
        for idx in 0..cfg.associativity() {
            let e = c.encode_index(idx);
            assert_ne!(e, c.unmapped());
            assert_eq!(c.decode_index(e), Some(idx));
        }
    }

    #[test]
    fn encodings_are_distinct() {
        let c = codec();
        let mut seen = std::collections::HashSet::new();
        for idx in 0..104 {
            assert!(seen.insert(c.encode_index(idx)), "duplicate encoding");
        }
    }

    #[test]
    #[should_panic(expected = "exceeding the u8")]
    fn oversized_geometry_panics() {
        // 200 front slots needs 8 bits + lead = 9 bits.
        CpfnCodec::new(IcebergConfig::new(16, 200, 8, 6));
    }
}
