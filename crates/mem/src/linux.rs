//! The baseline: an unconstrained, Linux-like memory manager.
//!
//! This is what Tables 3 and 4 compare Mosaic against. Any page may occupy
//! any frame (full associativity); reclaim is watermark-driven: when free
//! frames dip below the low watermark (0.8 % of memory, matching the
//! paper's observation that "the standard Linux allocator begins swapping
//! at about 99.2 % memory utilization"), the manager evicts pages in strict
//! LRU order until free memory recovers to the high watermark — the
//! batched, kswapd-style reclaim that evicts ahead of demand.

use crate::addr::{PageKey, Pfn};
use crate::error::{MosaicError, MosaicResult};
use crate::fault::{FaultInjector, FaultPlan};
use crate::frame::{FrameEntry, FrameTable};
use crate::invariants;
use crate::layout::MemoryLayout;
use crate::lru::LruIndex;
use crate::manager::{AccessKind, AccessOutcome, MemoryManager};
use crate::obs::MemObs;
use crate::quota::{QuotaStats, QuotaTable, TenantQuota};
use crate::stats::{PagingStats, ResilienceStats, UtilizationTracker};
use mosaic_obs::ObsHandle;
use std::collections::{HashMap, HashSet};

/// Default low watermark: reclaim begins when free frames fall below
/// 0.8 % of memory (per-zone watermarks in stock Linux; §4.2).
pub const DEFAULT_LOW_WATERMARK_PERMILLE: usize = 8;

/// Default high watermark: reclaim stops once 1.2 % of memory is free.
pub const DEFAULT_HIGH_WATERMARK_PERMILLE: usize = 12;

/// How far down the LRU list quota-aware reclaim scans for a preferred
/// victim (over-quota or low-priority) before settling for the strict
/// LRU page. Bounds the per-eviction cost like kswapd's scan batches.
const QUOTA_SCAN_WINDOW: usize = 64;

/// A fully-associative memory manager with watermark-triggered LRU reclaim.
///
/// # Example
///
/// ```
/// use mosaic_mem::prelude::*;
///
/// let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
/// let mut mm = LinuxMemory::new(layout);
/// let key = PageKey::new(Asid::new(1), Vpn::new(3));
/// assert_eq!(mm.access(key, AccessKind::Store, 1), AccessOutcome::MinorFault);
/// assert_eq!(mm.access(key, AccessKind::Load, 2), AccessOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct LinuxMemory {
    frames: FrameTable,
    /// Free-frame stack.
    free: Vec<Pfn>,
    /// Exact LRU over resident pages.
    lru: LruIndex<PageKey>,
    resident: HashMap<PageKey, Pfn>,
    swapped: HashSet<PageKey>,
    low_watermark: usize,
    high_watermark: usize,
    /// Per-tenant working-set quotas; `None` keeps every path
    /// byte-identical to the quota-less manager.
    quotas: Option<QuotaTable>,
    /// When present, injects deterministic swap I/O (and allocation)
    /// faults, mirroring the Mosaic manager's robustness harness.
    fault: Option<FaultInjector>,
    resilience: ResilienceStats,
    stats: PagingStats,
    util: UtilizationTracker,
    obs: MemObs,
    /// Reference count of the in-flight access, for event timestamps.
    obs_now: u64,
    /// ASID of the in-flight access, for blaming reclaim on the tenant
    /// whose fault forced it.
    obs_requester: u16,
}

impl LinuxMemory {
    /// Creates a manager with the default (stock-Linux-like) watermarks.
    pub fn new(layout: MemoryLayout) -> Self {
        let total = layout.num_frames();
        let low = (total * DEFAULT_LOW_WATERMARK_PERMILLE / 1000).max(1);
        let high = (total * DEFAULT_HIGH_WATERMARK_PERMILLE / 1000).max(low + 1);
        Self::with_watermarks(layout, low, high)
    }

    /// Creates a manager with explicit watermarks, in frames.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low < high <= total frames`.
    pub fn with_watermarks(layout: MemoryLayout, low: usize, high: usize) -> Self {
        let total = layout.num_frames();
        assert!(low > 0, "low watermark must be positive");
        assert!(low < high, "low watermark must be below high");
        assert!(high <= total, "high watermark exceeds memory");
        Self {
            free: (0..total as u64).rev().map(Pfn).collect(),
            frames: FrameTable::new(layout),
            lru: LruIndex::new(),
            resident: HashMap::new(),
            swapped: HashSet::new(),
            low_watermark: low,
            high_watermark: high,
            quotas: None,
            fault: None,
            resilience: ResilienceStats::new(),
            stats: PagingStats::new(),
            util: UtilizationTracker::new(),
            obs: MemObs::noop(),
            obs_now: 0,
            obs_requester: 0,
        }
    }

    /// Attaches a deterministic fault injector executing `plan`, seeded by
    /// `seed`. With [`FaultPlan::NONE`] this is behaviorally identical to
    /// not attaching one.
    pub fn with_fault_injector(mut self, plan: FaultPlan, seed: u64) -> Self {
        self.fault = Some(FaultInjector::new(plan, seed));
        self
    }

    /// The fault injector, if one is attached.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// The memory layout.
    pub fn layout(&self) -> &MemoryLayout {
        self.frames.layout()
    }

    /// Free frames right now.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// The low (reclaim-trigger) watermark in frames.
    pub fn low_watermark(&self) -> usize {
        self.low_watermark
    }

    /// Forgets page `key` entirely: frees its frame (if resident) and
    /// drops any swap copy, with no swap I/O and no eviction accounting
    /// (process-exit reclaim, not displacement). Returns whether a frame
    /// was actually freed.
    pub fn release(&mut self, key: PageKey) -> bool {
        self.swapped.remove(&key);
        let Some(pfn) = self.resident.remove(&key) else {
            return false;
        };
        self.lru.remove(&key);
        if let Some(q) = self.quotas.as_mut() {
            q.note_evict(key);
        }
        let entry = self.frames.evict(pfn);
        debug_assert_eq!(entry.key, key);
        self.free.push(pfn);
        true
    }

    /// One (simulated) swap-device transfer, absorbing injected errors
    /// with bounded retries and counted exponential backoff.
    fn swap_io(&mut self, write: bool) -> MosaicResult<()> {
        let Some(max) = self.fault.as_ref().map(|i| i.plan().max_io_retries) else {
            return Ok(());
        };
        let mut retries = 0u32;
        loop {
            let failed = self.fault.as_mut().is_some_and(|i| i.io_should_fail());
            if !failed {
                return Ok(());
            }
            self.resilience.io_faults_injected += 1;
            self.obs.record_fault_injected(self.obs_now, "io");
            if retries >= max {
                self.resilience.io_failures += 1;
                self.obs
                    .record_fault_unrecovered(self.obs_now, "io", "budget-exhausted");
                return Err(MosaicError::SwapIoFailed { retries, write });
            }
            retries += 1;
            self.resilience.io_retries += 1;
            self.resilience.io_backoff_ticks += 1u64 << retries.min(16);
            self.obs.record_fault_recovered(self.obs_now, "io", "retry");
        }
    }

    /// Evicts `victim` with full displacement accounting (write-back
    /// first, so an I/O error leaves it resident and the reclaim
    /// retryable). `quota_self` marks quota-forced self-evictions for
    /// the fault-attribution table.
    fn evict_page(&mut self, victim: PageKey, quota_self: bool) -> MosaicResult<()> {
        let pfn = self
            .resident
            .get(&victim)
            .copied()
            .ok_or(MosaicError::internal("LRU tracks only resident pages"))?;
        let needs_writeback = self
            .frames
            .entry(pfn)
            .ok_or(MosaicError::internal("resident page has no frame entry"))?
            .eviction_needs_writeback();
        if needs_writeback {
            self.swap_io(true)?;
        }
        self.lru.remove(&victim);
        self.resident.remove(&victim);
        if let Some(q) = self.quotas.as_mut() {
            q.note_evict(victim);
        }
        let entry = self.frames.evict(pfn);
        debug_assert_eq!(entry.key, victim);
        self.obs
            .attrib_evicted(self.obs_requester, victim.asid.0, quota_self);
        self.stats.live_evictions += 1;
        self.obs.live_evictions.inc();
        if entry.eviction_needs_writeback() {
            self.stats.swapped_out += 1;
            self.obs.swapped_out.inc();
            self.swapped.insert(victim);
        } else {
            self.stats.clean_drops += 1;
            self.obs.clean_drops.inc();
            if entry.has_swap_copy {
                self.swapped.insert(victim);
            }
        }
        self.free.push(pfn);
        Ok(())
    }

    /// The next reclaim victim. Without quotas this is the strict LRU
    /// page. With quotas, a bounded scan from the LRU end prefers
    /// over-quota owners, then low priority, then age; when nothing in
    /// the window is distinguished, the oldest page wins — identical to
    /// the quota-less choice.
    fn reclaim_victim(&self) -> Option<PageKey> {
        match self.quotas.as_ref() {
            None => self.lru.peek_oldest().map(|(k, _)| k),
            Some(q) => self
                .lru
                .iter_oldest()
                .take(QUOTA_SCAN_WINDOW)
                .enumerate()
                .min_by_key(|&(idx, (k, _))| (q.victim_class(k.asid), idx))
                .map(|(_, (k, _))| k),
        }
    }

    fn evict_lru_page(&mut self) -> MosaicResult<()> {
        let victim = self
            .reclaim_victim()
            .ok_or(MosaicError::internal("reclaim with no resident pages"))?;
        let was_quota_steered = self.quotas.is_some()
            && self.lru.peek_oldest().map(|(k, _)| k) != Some(victim);
        if was_quota_steered {
            if let Some(q) = self.quotas.as_mut() {
                q.note_quota_eviction();
            }
            self.obs.quota_evictions.inc();
        }
        self.evict_page(victim, false)
    }

    /// Admission control for a tenant at its cap: evict its own LRU
    /// pages until it is back under quota, or — if it has nothing
    /// resident to self-serve with — defer the admission with typed
    /// backpressure and counted backoff.
    fn enforce_quota(&mut self, key: PageKey) -> MosaicResult<()> {
        while self
            .quotas
            .as_ref()
            .is_some_and(|q| q.at_capacity(key.asid))
        {
            let own = self
                .quotas
                .as_ref()
                .and_then(|q| q.own_lru_oldest(key.asid));
            match own {
                Some(victim) => {
                    self.evict_page(victim, true)?;
                    if let Some(q) = self.quotas.as_mut() {
                        q.note_self_eviction();
                    }
                    self.obs.quota_self_evictions.inc();
                }
                None => {
                    let (resident, quota) = self
                        .quotas
                        .as_ref()
                        .map(|q| {
                            (
                                q.resident(key.asid) as u64,
                                q.quota(key.asid).map_or(0, |t| t.frames as u64),
                            )
                        })
                        .unwrap_or((0, 0));
                    let ticks = self
                        .quotas
                        .as_mut()
                        .map_or(0, |q| q.note_deferred(key.asid));
                    self.obs
                        .record_quota_deferred(self.obs_now, key.asid.0, ticks);
                    return Err(MosaicError::QuotaExceeded {
                        asid: key.asid.0,
                        resident,
                        quota,
                    });
                }
            }
        }
        Ok(())
    }

    /// kswapd-style reclaim: once free memory dips below the low watermark,
    /// evict LRU pages until it recovers to the high watermark. Degrades
    /// gracefully under injected I/O failure: reclaim stops early rather
    /// than aborting, as long as at least one frame is free for the
    /// current allocation.
    fn reclaim_if_needed(&mut self) -> MosaicResult<()> {
        if self.free.len() >= self.low_watermark {
            return Ok(());
        }
        while self.free.len() < self.high_watermark && !self.lru.is_empty() {
            if let Err(e) = self.evict_lru_page() {
                // Batched reclaim is opportunistic; only a fully-exhausted
                // free list makes the failure fatal for this access.
                if self.free.is_empty() {
                    return Err(e);
                }
                return Ok(());
            }
        }
        Ok(())
    }
}

impl MemoryManager for LinuxMemory {
    fn try_access(
        &mut self,
        key: PageKey,
        kind: AccessKind,
        now: u64,
    ) -> MosaicResult<AccessOutcome> {
        self.stats.accesses += 1;
        self.obs.accesses.inc();
        self.obs_now = now;
        self.obs_requester = key.asid.0;

        if let Some(&pfn) = self.resident.get(&key) {
            self.frames.touch(pfn, now, kind.is_write());
            self.lru.touch(key, now);
            if let Some(q) = self.quotas.as_mut() {
                q.note_touch(key, now);
            }
            self.obs.hits.inc();
            return Ok(AccessOutcome::Hit);
        }

        if self
            .quotas
            .as_ref()
            .is_some_and(|q| q.at_capacity(key.asid))
        {
            self.enforce_quota(key)?;
        }
        self.reclaim_if_needed()?;
        let pfn = self
            .free
            .pop()
            .ok_or(MosaicError::internal(
                "reclaim keeps the free list non-empty",
            ))?;
        let from_swap = self.swapped.contains(&key);
        if from_swap {
            // The swap-in read; a persistent failure returns the frame to
            // the free list and leaves the page on swap, retryable.
            if let Err(e) = self.swap_io(false) {
                self.free.push(pfn);
                return Err(e);
            }
            self.swapped.remove(&key);
        }
        self.frames.install(
            pfn,
            FrameEntry {
                key,
                last_access: now,
                dirty: kind.is_write(),
                has_swap_copy: from_swap && !kind.is_write(),
            },
        );
        self.resident.insert(key, pfn);
        self.lru.touch(key, now);
        if let Some(q) = self.quotas.as_mut() {
            q.note_install(key, now);
        }
        Ok(if from_swap {
            self.stats.major_faults += 1;
            self.stats.swapped_in += 1;
            self.obs.major_faults.inc();
            self.obs.swapped_in.inc();
            AccessOutcome::MajorFault
        } else {
            self.stats.minor_faults += 1;
            self.obs.minor_faults.inc();
            self.obs.attrib_cold(key.asid.0);
            AccessOutcome::MinorFault
        })
    }

    fn resident_pfn(&self, key: PageKey) -> Option<Pfn> {
        self.resident.get(&key).copied()
    }

    fn release_asid(&mut self, asid: crate::addr::Asid) -> u64 {
        let mut keys: Vec<PageKey> = self
            .resident
            .keys()
            .chain(self.swapped.iter())
            .filter(|k| k.asid == asid)
            .copied()
            .collect();
        // Freed frames return to the free stack in key order, so the
        // placement of later allocations is independent of hash-map
        // iteration order (byte-identical replays need this). The key
        // itself breaks any hash_key tie — the packing is injective so
        // ties cannot happen today, but determinism must not hinge on
        // that side fact.
        keys.sort_unstable_by_key(|k| (k.hash_key(), k.asid.0, k.vpn.0));
        let mut freed = 0;
        for key in keys {
            if self.release(key) {
                freed += 1;
            }
        }
        if let Some(q) = self.quotas.as_mut() {
            q.remove_tenant(asid);
        }
        self.obs.attrib_shootdown(asid.0, freed);
        freed
    }

    fn set_quota(&mut self, asid: crate::addr::Asid, quota: TenantQuota) {
        let table = self.quotas.get_or_insert_with(QuotaTable::new);
        table.set(asid, quota);
        if table.resident(asid) == 0 {
            // Seed the table from pages resident before the quota existed,
            // in a deterministic (timestamp, key) order so replays agree.
            let mut seed: Vec<(u64, PageKey)> = self
                .resident
                .iter()
                .filter(|(k, _)| k.asid == asid)
                .filter_map(|(&k, &pfn)| {
                    self.frames.entry(pfn).map(|e| (e.last_access, k))
                })
                .collect();
            seed.sort_unstable_by_key(|&(ts, k)| (ts, k.hash_key()));
            if let Some(table) = self.quotas.as_mut() {
                for (ts, k) in seed {
                    table.note_install(k, ts);
                }
            }
        }
    }

    fn quota_stats(&self) -> QuotaStats {
        self.quotas.as_ref().map_or(QuotaStats::ZERO, |q| q.stats())
    }

    fn num_frames(&self) -> usize {
        self.frames.num_frames()
    }

    fn resident_frames(&self) -> usize {
        self.frames.resident()
    }

    fn stats(&self) -> &PagingStats {
        &self.stats
    }

    fn utilization_tracker(&self) -> &UtilizationTracker {
        &self.util
    }

    fn sample_utilization(&mut self) {
        let u = self.utilization();
        self.util.sample(u);
    }

    fn resilience(&self) -> &ResilienceStats {
        &self.resilience
    }

    fn set_obs(&mut self, obs: &ObsHandle, prefix: &str) {
        self.obs = MemObs::register(obs, prefix);
    }

    fn publish_obs(&self) {
        self.obs.util.set(self.utilization());
        if let Some(inj) = self.fault.as_ref() {
            self.obs
                .io_burst_remaining
                .set(f64::from(inj.burst_remaining()));
            self.obs
                .retry_budget_spent
                .set(self.resilience.retries() as f64);
            self.obs
                .io_backoff_ticks
                .set(self.resilience.io_backoff_ticks as f64);
        }
    }

    fn verify(&self) -> MosaicResult<()> {
        invariants::check_frame_bijection(&self.frames, &self.resident)?;
        invariants::check_swap_disjoint(&self.resident, &self.swapped)?;
        invariants::check_lru_tracks_resident(
            self.lru.len(),
            |k| self.lru.contains(k),
            &self.resident,
        )?;
        if let Some(q) = self.quotas.as_ref() {
            invariants::check_quota_accounting(q, &self.resident)?;
        }
        invariants::check_free_list_accounting(self.num_frames(), &self.free, &self.frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asid, Vpn};
    use mosaic_iceberg::IcebergConfig;

    fn key(n: u64) -> PageKey {
        PageKey::new(Asid(1), Vpn(n))
    }

    fn memory(buckets: usize) -> LinuxMemory {
        LinuxMemory::new(MemoryLayout::new(IcebergConfig::paper_default(buckets)))
    }

    #[test]
    fn fault_then_hit() {
        let mut mm = memory(8);
        assert_eq!(mm.access(key(9), AccessKind::Store, 1), AccessOutcome::MinorFault);
        assert_eq!(mm.access(key(9), AccessKind::Load, 2), AccessOutcome::Hit);
        assert_eq!(mm.stats().swap_ops(), 0);
    }

    #[test]
    fn no_swapping_until_low_watermark() {
        let mut mm = memory(16); // 1024 frames, low = 8
        let fill = mm.num_frames() - mm.low_watermark();
        for n in 0..fill as u64 {
            mm.access(key(n), AccessKind::Store, n + 1);
        }
        assert_eq!(mm.stats().evictions(), 0, "no reclaim above the watermark");
        let util = mm.utilization();
        assert!(util > 0.99, "utilization {util}");
    }

    #[test]
    fn reclaim_evicts_in_lru_order() {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8)); // 512 frames
        let mut mm = LinuxMemory::with_watermarks(layout, 4, 8);
        let total = mm.num_frames() as u64;
        let mut now = 0;
        for n in 0..total {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
        }
        // Re-touch the first 100 pages so they are MRU.
        for n in 0..100 {
            now += 1;
            mm.access(key(n), AccessKind::Load, now);
        }
        // Trigger reclaim with fresh pages; victims must not be the hot 100.
        for n in total..total + 20 {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
        }
        for n in 0..100 {
            assert!(mm.resident_pfn(key(n)).is_some(), "hot page {n} evicted");
        }
        assert!(mm.stats().evictions() > 0);
    }

    #[test]
    fn batch_reclaim_frees_to_high_watermark() {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let mut mm = LinuxMemory::with_watermarks(layout, 10, 30);
        let total = mm.num_frames() as u64;
        let mut now = 0;
        // Fill until reclaim triggers.
        for n in 0..(total - 8) {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
        }
        // free was 9 (< low = 10) before the last allocation; reclaim ran.
        assert!(mm.free_frames() >= 29, "free {} after batch", mm.free_frames());
        assert!(mm.stats().evictions() >= 20);
    }

    #[test]
    fn swap_in_after_eviction() {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let mut mm = LinuxMemory::with_watermarks(layout, 4, 8);
        let total = mm.num_frames() as u64;
        let mut now = 0;
        for n in 0..total + 50 {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
        }
        // Page 0 (written, LRU) must have been swapped out; re-access is a
        // major fault.
        assert!(mm.resident_pfn(key(0)).is_none());
        now += 1;
        assert_eq!(mm.access(key(0), AccessKind::Load, now), AccessOutcome::MajorFault);
        assert!(mm.stats().swapped_in >= 1);
    }

    #[test]
    fn clean_pages_drop_without_io() {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let mut mm = LinuxMemory::with_watermarks(layout, 4, 8);
        let total = mm.num_frames() as u64;
        for n in 0..total + 100 {
            mm.access(key(n), AccessKind::Load, n + 1);
        }
        assert!(mm.stats().evictions() > 0);
        assert_eq!(mm.stats().swapped_out, 0);
    }

    #[test]
    fn utilization_hovers_at_watermark_under_pressure() {
        let mut mm = memory(16); // 1024 frames, low 8 high 12
        let total = mm.num_frames() as u64;
        let mut now = 0;
        for round in 0..2 {
            for n in 0..total + 200 {
                now += 1;
                mm.access(key(n), AccessKind::Store, now);
            }
            let util = mm.utilization();
            assert!(
                (0.985..=1.0).contains(&util),
                "round {round}: utilization {util}"
            );
        }
    }

    #[test]
    fn release_asid_returns_frames_to_free_list() {
        let mut mm = memory(8);
        let mut now = 0;
        for n in 0..60u64 {
            now += 1;
            mm.access(PageKey::new(Asid(1), Vpn(n)), AccessKind::Store, now);
            now += 1;
            mm.access(PageKey::new(Asid(2), Vpn(n)), AccessKind::Store, now);
        }
        let free_before = mm.free_frames();
        let io_before = mm.stats().swap_ops();
        assert_eq!(mm.release_asid(Asid(2)), 60);
        assert_eq!(mm.free_frames(), free_before + 60);
        assert_eq!(mm.stats().swap_ops(), io_before, "exit reclaim is I/O-free");
        for n in 0..60u64 {
            assert!(mm.resident_pfn(PageKey::new(Asid(2), Vpn(n))).is_none());
            assert!(mm.resident_pfn(PageKey::new(Asid(1), Vpn(n))).is_some());
        }
        mm.verify().unwrap();
    }

    #[test]
    #[should_panic(expected = "low watermark must be below high")]
    fn bad_watermarks_panic() {
        LinuxMemory::with_watermarks(
            MemoryLayout::new(IcebergConfig::paper_default(8)),
            10,
            10,
        );
    }

    #[test]
    fn quota_caps_tenant_residency_and_self_evicts() {
        use crate::quota::TenantQuota;
        let mut mm = memory(8);
        mm.set_quota(Asid(1), TenantQuota { frames: 50, priority: 0 });
        let mut now = 0;
        // The victim's working set first, then a capped hog sweep.
        for n in 0..100u64 {
            now += 1;
            mm.access(PageKey::new(Asid(2), Vpn(n)), AccessKind::Store, now);
        }
        for n in 0..500u64 {
            now += 1;
            mm.access(PageKey::new(Asid(1), Vpn(n)), AccessKind::Store, now);
        }
        let hog_resident = (0..500u64)
            .filter(|&n| mm.resident_pfn(PageKey::new(Asid(1), Vpn(n))).is_some())
            .count();
        assert!(hog_resident <= 50, "hog at {hog_resident} against quota 50");
        assert!(mm.quota_stats().self_evictions > 0);
        for n in 0..100u64 {
            assert!(
                mm.resident_pfn(PageKey::new(Asid(2), Vpn(n))).is_some(),
                "victim page {n} displaced by a capped hog"
            );
        }
        mm.verify().unwrap();
    }

    #[test]
    fn zero_quota_defers_with_backpressure() {
        use crate::quota::TenantQuota;
        let mut mm = memory(8);
        mm.set_quota(Asid(3), TenantQuota { frames: 0, priority: 0 });
        let err = mm
            .try_access(PageKey::new(Asid(3), Vpn(0)), AccessKind::Store, 1)
            .unwrap_err();
        assert!(matches!(err, MosaicError::QuotaExceeded { .. }));
        assert!(err.is_transient());
        assert_eq!(mm.quota_stats().admissions_deferred, 1);
        // Other tenants proceed normally.
        assert_eq!(
            mm.access(PageKey::new(Asid(1), Vpn(0)), AccessKind::Store, 2),
            AccessOutcome::MinorFault
        );
        mm.verify().unwrap();
    }

    #[test]
    fn reclaim_prefers_over_quota_tenants_in_window() {
        use crate::quota::TenantQuota;
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8)); // 512
        let mut mm = LinuxMemory::with_watermarks(layout, 4, 8);
        let mut now = 0;
        // Tenant 2's single page is the strict LRU-oldest.
        now += 1;
        mm.access(PageKey::new(Asid(2), Vpn(0)), AccessKind::Store, now);
        // Tenant 1 fills 300 frames, then its quota drops to 10: over quota.
        for n in 0..300u64 {
            now += 1;
            mm.access(PageKey::new(Asid(1), Vpn(n)), AccessKind::Store, now);
        }
        mm.set_quota(Asid(1), TenantQuota { frames: 10, priority: 0 });
        // Tenant 3 (no quota) drives free below the watermark.
        for n in 0..210u64 {
            now += 1;
            mm.access(PageKey::new(Asid(3), Vpn(n)), AccessKind::Store, now);
        }
        assert!(mm.stats().evictions() > 0, "reclaim never triggered");
        assert!(
            mm.resident_pfn(PageKey::new(Asid(2), Vpn(0))).is_some(),
            "under-quota LRU page evicted ahead of over-quota pages"
        );
        assert!(mm.quota_stats().quota_evictions > 0);
        mm.verify().unwrap();
    }

    #[test]
    fn resident_count_conserved() {
        let mut mm = memory(8);
        let total = mm.num_frames() as u64;
        for n in 0..total * 2 {
            mm.access(key(n), AccessKind::Store, n + 1);
        }
        assert_eq!(
            mm.resident_frames() + mm.free_frames(),
            mm.num_frames(),
            "frames leaked"
        );
    }
}
