//! Structural-invariant checks for the memory managers.
//!
//! Fault-injection runs mutate managers along paths that normal runs never
//! take (abandoned allocations, retried I/O, re-walked translations), so the
//! pressure driver periodically calls
//! [`MemoryManager::verify`](crate::manager::MemoryManager::verify), which
//! routes here. Each function checks one named invariant and reports a
//! [`MosaicError::InvariantViolation`] carrying that name, so a failing run
//! says *which* property broke, not just that something did.

use crate::addr::{PageKey, Pfn};
use crate::error::{MosaicError, MosaicResult};
use crate::frame::FrameTable;
use crate::quota::QuotaTable;
use std::collections::{HashMap, HashSet};

/// Invariant: the frame table and the residency map describe the same
/// bijection. Every occupied frame is named by exactly one `resident` entry
/// and vice versa, and the occupancy counter agrees with the walk.
pub(crate) fn check_frame_bijection(
    frames: &FrameTable,
    resident: &HashMap<PageKey, Pfn>,
) -> MosaicResult<()> {
    let mut walked = 0usize;
    for (pfn, entry) in frames.iter_resident() {
        walked += 1;
        match resident.get(&entry.key) {
            None => {
                return Err(MosaicError::invariant(
                    "frame-bijection",
                    format!("frame {pfn:?} holds {:?} absent from resident map", entry.key),
                ))
            }
            Some(&mapped) if mapped != pfn => {
                return Err(MosaicError::invariant(
                    "frame-bijection",
                    format!(
                        "frame {pfn:?} holds {:?} but resident map points at {mapped:?}",
                        entry.key
                    ),
                ))
            }
            Some(_) => {}
        }
    }
    if walked != resident.len() {
        return Err(MosaicError::invariant(
            "frame-bijection",
            format!("{walked} occupied frames vs {} resident entries", resident.len()),
        ));
    }
    if walked != frames.resident() {
        return Err(MosaicError::invariant(
            "frame-bijection",
            format!(
                "occupancy counter {} disagrees with walk {walked}",
                frames.resident()
            ),
        ));
    }
    Ok(())
}

/// Invariant: no page is simultaneously resident and swap-only. A resident
/// page *may* additionally have a still-valid swap copy, but that is tracked
/// on the frame entry, never in the swapped set.
pub(crate) fn check_swap_disjoint(
    resident: &HashMap<PageKey, Pfn>,
    swapped: &HashSet<PageKey>,
) -> MosaicResult<()> {
    if let Some(key) = resident.keys().find(|k| swapped.contains(k)) {
        return Err(MosaicError::invariant(
            "swap-disjoint",
            format!("{key:?} is both resident and in the swapped set"),
        ));
    }
    Ok(())
}

/// Invariant: ghost/horizon consistency. The horizon only partitions pages
/// by timestamp; a frame counted live must carry `last_access >= horizon`,
/// and the ghost census from the frame table must match a direct walk.
pub(crate) fn check_ghost_census(frames: &FrameTable, horizon: u64) -> MosaicResult<()> {
    let walked = frames
        .iter_resident()
        .filter(|(_, e)| e.is_ghost(horizon))
        .count();
    let counted = frames.ghost_count(horizon);
    if walked != counted {
        return Err(MosaicError::invariant(
            "ghost-census",
            format!("ghost_count says {counted}, walk says {walked} at horizon {horizon}"),
        ));
    }
    Ok(())
}

/// Invariant: an auxiliary LRU index (the `ReservedCapacity` policy's global
/// LRU) tracks exactly the resident pages.
pub(crate) fn check_lru_tracks_resident(
    lru_len: usize,
    lru_contains: impl Fn(&PageKey) -> bool,
    resident: &HashMap<PageKey, Pfn>,
) -> MosaicResult<()> {
    if lru_len != resident.len() {
        return Err(MosaicError::invariant(
            "lru-coverage",
            format!("LRU tracks {lru_len} pages, {} are resident", resident.len()),
        ));
    }
    if let Some(key) = resident.keys().find(|k| !lru_contains(k)) {
        return Err(MosaicError::invariant(
            "lru-coverage",
            format!("resident {key:?} missing from the global LRU index"),
        ));
    }
    Ok(())
}

/// Invariant: for every ASID with a quota set, the quota table's resident
/// count equals a direct recount of the residency map, and every one of
/// that ASID's resident pages is tracked in its per-tenant LRU (so
/// self-eviction always has the true LRU victim available).
pub(crate) fn check_quota_accounting(
    table: &QuotaTable,
    resident: &HashMap<PageKey, Pfn>,
) -> MosaicResult<()> {
    for asid in table.quota_asids() {
        let actual = resident.keys().filter(|k| k.asid == asid).count();
        let tracked = table.resident(asid);
        if actual != tracked {
            return Err(MosaicError::invariant(
                "quota-census",
                format!("{asid:?}: table counts {tracked} resident, recount says {actual}"),
            ));
        }
        if let Some(key) = resident
            .keys()
            .find(|k| k.asid == asid && !table.tracks(k))
        {
            return Err(MosaicError::invariant(
                "quota-census",
                format!("resident {key:?} missing from its tenant's own-LRU index"),
            ));
        }
    }
    Ok(())
}

/// Invariant: a free-list-based manager's accounting adds up — frames are
/// either free or occupied, with no overlap and none lost.
pub(crate) fn check_free_list_accounting(
    num_frames: usize,
    free: &[Pfn],
    frames: &FrameTable,
) -> MosaicResult<()> {
    let occupied = frames.resident();
    if free.len() + occupied != num_frames {
        return Err(MosaicError::invariant(
            "free-list-accounting",
            format!(
                "{} free + {occupied} occupied != {num_frames} total",
                free.len()
            ),
        ));
    }
    if let Some(pfn) = free.iter().find(|&&p| frames.entry(p).is_some()) {
        return Err(MosaicError::invariant(
            "free-list-accounting",
            format!("frame {pfn:?} is on the free list yet occupied"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asid, Vpn};
    use crate::frame::FrameEntry;
    use crate::layout::MemoryLayout;
    use mosaic_iceberg::IcebergConfig;

    fn key(n: u64) -> PageKey {
        PageKey::new(Asid(1), Vpn(n))
    }

    fn small_table() -> FrameTable {
        FrameTable::new(MemoryLayout::new(IcebergConfig::paper_default(8)))
    }

    #[test]
    fn bijection_accepts_consistent_state() {
        let mut frames = small_table();
        let mut resident = HashMap::new();
        for n in 0..4u64 {
            let pfn = Pfn(n);
            frames.install(
                pfn,
                FrameEntry {
                    key: key(n),
                    last_access: n,
                    dirty: false,
                    has_swap_copy: false,
                },
            );
            resident.insert(key(n), pfn);
        }
        assert!(check_frame_bijection(&frames, &resident).is_ok());
    }

    #[test]
    fn bijection_rejects_dangling_and_mismatched() {
        let mut frames = small_table();
        let mut resident = HashMap::new();
        frames.install(
            Pfn(0),
            FrameEntry {
                key: key(1),
                last_access: 1,
                dirty: false,
                has_swap_copy: false,
            },
        );
        // Frame holds key(1) but the map doesn't know it.
        let err = check_frame_bijection(&frames, &resident).unwrap_err();
        assert!(matches!(
            err,
            MosaicError::InvariantViolation {
                invariant: "frame-bijection",
                ..
            }
        ));
        // Map points at the wrong frame.
        resident.insert(key(1), Pfn(5));
        assert!(check_frame_bijection(&frames, &resident).is_err());
        // Map has an entry with no backing frame.
        resident.insert(key(1), Pfn(0));
        resident.insert(key(2), Pfn(9));
        assert!(check_frame_bijection(&frames, &resident).is_err());
    }

    #[test]
    fn swap_disjointness() {
        let mut resident = HashMap::new();
        let mut swapped = HashSet::new();
        resident.insert(key(1), Pfn(0));
        swapped.insert(key(2));
        assert!(check_swap_disjoint(&resident, &swapped).is_ok());
        swapped.insert(key(1));
        assert!(check_swap_disjoint(&resident, &swapped).is_err());
    }

    #[test]
    fn ghost_census_matches_walk() {
        let mut frames = small_table();
        for n in 0..6u64 {
            frames.install(
                Pfn(n),
                FrameEntry {
                    key: key(n),
                    last_access: n * 10,
                    dirty: false,
                    has_swap_copy: false,
                },
            );
        }
        // Horizon 25: pages with last_access < 25 (n = 0, 1, 2) are ghosts.
        assert!(check_ghost_census(&frames, 25).is_ok());
        assert_eq!(frames.ghost_count(25), 3);
    }

    #[test]
    fn lru_coverage() {
        let mut resident = HashMap::new();
        resident.insert(key(1), Pfn(0));
        resident.insert(key(2), Pfn(1));
        let tracked: HashSet<PageKey> = [key(1), key(2)].into_iter().collect();
        assert!(check_lru_tracks_resident(2, |k| tracked.contains(k), &resident).is_ok());
        assert!(check_lru_tracks_resident(1, |k| tracked.contains(k), &resident).is_err());
        let partial: HashSet<PageKey> = [key(1), key(9)].into_iter().collect();
        assert!(check_lru_tracks_resident(2, |k| partial.contains(k), &resident).is_err());
    }

    #[test]
    fn quota_census_counts_and_coverage() {
        use crate::quota::TenantQuota;
        let mut table = QuotaTable::new();
        table.set(Asid(1), TenantQuota { frames: 4, priority: 0 });
        let mut resident = HashMap::new();
        resident.insert(key(1), Pfn(0));
        table.note_install(key(1), 1);
        assert!(check_quota_accounting(&table, &resident).is_ok());
        // A resident page the table never saw: count + coverage both break.
        resident.insert(key(2), Pfn(1));
        assert!(check_quota_accounting(&table, &resident).is_err());
        // Quota-less ASIDs are not audited.
        resident.remove(&key(2));
        resident.insert(PageKey::new(Asid(9), Vpn(0)), Pfn(2));
        assert!(check_quota_accounting(&table, &resident).is_ok());
    }

    #[test]
    fn free_list_accounting() {
        let mut frames = small_table();
        let total = frames.num_frames();
        frames.install(
            Pfn(3),
            FrameEntry {
                key: key(3),
                last_access: 1,
                dirty: false,
                has_swap_copy: false,
            },
        );
        let free: Vec<Pfn> = (0..total as u64).map(Pfn).filter(|p| p.0 != 3).collect();
        assert!(check_free_list_accounting(total, &free, &frames).is_ok());
        // Lost frame: one fewer free than reality requires.
        assert!(check_free_list_accounting(total, &free[1..], &frames).is_err());
        // Overlap: an occupied frame on the free list.
        let mut overlap = free.clone();
        overlap.push(Pfn(3));
        // Compensate the count so only the overlap check can fire.
        overlap.remove(0);
        assert!(check_free_list_accounting(total, &overlap, &frames).is_err());
    }
}
