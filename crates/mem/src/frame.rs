//! The frame table: per-frame residency, access times, and dirty state,
//! with the ghost-aware occupancy queries Horizon LRU needs (§2.4).
//!
//! A frame holding a page whose last access predates the global *horizon*
//! is a **ghost**: logically evicted (the allocator treats its frame as
//! free) but physically present so a re-access can resurrect it without
//! swap I/O.

use crate::addr::{PageKey, Pfn};
use crate::layout::MemoryLayout;
use mosaic_iceberg::{CandidateSet, SlotRef, Yard};

/// The page occupying a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameEntry {
    /// Which page lives here.
    pub key: PageKey,
    /// Timestamp of the page's most recent access.
    pub last_access: u64,
    /// Whether the page has been written since it was (re)loaded.
    pub dirty: bool,
    /// Whether a valid copy of this page exists on the swap device.
    pub has_swap_copy: bool,
}

impl FrameEntry {
    /// Whether this page is a ghost under the given horizon.
    pub fn is_ghost(&self, horizon: u64) -> bool {
        self.last_access < horizon
    }

    /// Whether evicting this page requires a swap-out write.
    ///
    /// Clean pages with a valid swap copy can be dropped for free;
    /// never-written pages are all zeros and can also be dropped.
    pub fn eviction_needs_writeback(&self) -> bool {
        self.dirty
    }
}

/// Per-frame state for the whole of physical memory.
#[derive(Debug, Clone)]
pub struct FrameTable {
    layout: MemoryLayout,
    frames: Vec<Option<FrameEntry>>,
    resident: usize,
}

impl FrameTable {
    /// Creates an all-free frame table for a layout.
    pub fn new(layout: MemoryLayout) -> Self {
        Self {
            frames: vec![None; layout.num_frames()],
            resident: 0,
            layout,
        }
    }

    /// The memory layout.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Total frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Frames currently holding a page (live *or* ghost).
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Resident frames / total frames, the utilization Table 3 reports.
    pub fn utilization(&self) -> f64 {
        self.resident as f64 / self.frames.len() as f64
    }

    /// The entry in `pfn`, if occupied.
    pub fn entry(&self, pfn: Pfn) -> Option<&FrameEntry> {
        self.frames[pfn.0 as usize].as_ref()
    }

    /// The entry in the frame backing `slot`, if occupied.
    pub fn slot_entry(&self, slot: SlotRef) -> Option<&FrameEntry> {
        self.entry(self.layout.pfn_of_slot(slot))
    }

    /// Installs a page into a free frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is occupied.
    pub fn install(&mut self, pfn: Pfn, entry: FrameEntry) {
        let cell = &mut self.frames[pfn.0 as usize];
        assert!(cell.is_none(), "install into occupied frame {pfn}");
        *cell = Some(entry);
        self.resident += 1;
    }

    /// Evicts whatever occupies `pfn`, returning it.
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    pub fn evict(&mut self, pfn: Pfn) -> FrameEntry {
        let entry = self.frames[pfn.0 as usize]
            .take()
            .expect("evict from free frame");
        self.resident -= 1;
        entry
    }

    /// Records an access to the page in `pfn`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    pub fn touch(&mut self, pfn: Pfn, now: u64, write: bool) {
        let entry = self.frames[pfn.0 as usize]
            .as_mut()
            .expect("touch of free frame");
        entry.last_access = now;
        if write {
            entry.dirty = true;
            // Any prior swap copy is stale once the page is re-written.
            entry.has_swap_copy = false;
        }
    }

    /// Marks the page in `pfn` dirty without refreshing its access time
    /// (used when timestamps come from the scanning daemon, §3.2).
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    pub fn mark_dirty(&mut self, pfn: Pfn) {
        let entry = self.frames[pfn.0 as usize]
            .as_mut()
            .expect("mark_dirty of free frame");
        entry.dirty = true;
        entry.has_swap_copy = false;
    }

    /// First free front-yard slot of `bucket`, if any.
    pub fn front_free_slot(&self, bucket: usize) -> Option<SlotRef> {
        self.yard_free_slot(bucket, Yard::Front)
    }

    /// First free backyard slot of `bucket`, if any.
    pub fn back_free_slot(&self, bucket: usize) -> Option<SlotRef> {
        self.yard_free_slot(bucket, Yard::Back)
    }

    fn yard_slots(&self, bucket: usize, yard: Yard) -> impl Iterator<Item = SlotRef> {
        let n = match yard {
            Yard::Front => self.layout.config().front_slots(),
            Yard::Back => self.layout.config().back_slots(),
        };
        (0..n).map(move |slot| SlotRef { yard, bucket, slot })
    }

    fn yard_free_slot(&self, bucket: usize, yard: Yard) -> Option<SlotRef> {
        self.yard_slots(bucket, yard)
            .find(|&s| self.slot_entry(s).is_none())
    }

    /// The ghost with the oldest access time in `bucket`'s given yard.
    pub fn oldest_ghost_slot(&self, bucket: usize, yard: Yard, horizon: u64) -> Option<SlotRef> {
        self.yard_slots(bucket, yard)
            .filter_map(|s| {
                self.slot_entry(s)
                    .filter(|e| e.is_ghost(horizon))
                    .map(|e| (e.last_access, s))
            })
            .min_by_key(|&(ts, _)| ts)
            .map(|(_, s)| s)
    }

    /// Number of *live* (non-ghost) pages in `bucket`'s backyard.
    ///
    /// Ghosts "do not count towards a bucket's occupancy when choosing the
    /// least-occupied bucket" (§2.4).
    pub fn back_live_count(&self, bucket: usize, horizon: u64) -> usize {
        self.yard_slots(bucket, Yard::Back)
            .filter(|&s| {
                self.slot_entry(s)
                    .is_some_and(|e| !e.is_ghost(horizon))
            })
            .count()
    }

    /// The least-recently-used page over every slot of a candidate set,
    /// ghost or live. Returns its slot and access time.
    ///
    /// This is the Horizon LRU conflict victim: the LRU page "from among
    /// the buckets that can be used for the new allocation" (§2.4).
    pub fn lru_candidate(&self, cands: &CandidateSet) -> Option<(SlotRef, u64)> {
        cands
            .slots(self.layout.config())
            .filter_map(|s| self.slot_entry(s).map(|e| (e.last_access, s)))
            .min_by_key(|&(ts, _)| ts)
            .map(|(ts, s)| (s, ts))
    }

    /// Iterates over occupied frames as `(pfn, entry)` pairs.
    pub fn iter_resident(&self) -> impl Iterator<Item = (Pfn, &FrameEntry)> {
        self.frames
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (Pfn(i as u64), e)))
    }

    /// Counts resident ghosts under a horizon (diagnostics).
    pub fn ghost_count(&self, horizon: u64) -> usize {
        self.iter_resident()
            .filter(|(_, e)| e.is_ghost(horizon))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asid, Vpn};
    use mosaic_iceberg::IcebergConfig;

    fn key(n: u64) -> PageKey {
        PageKey::new(Asid(1), Vpn(n))
    }

    fn entry(n: u64, at: u64) -> FrameEntry {
        FrameEntry {
            key: key(n),
            last_access: at,
            dirty: false,
            has_swap_copy: false,
        }
    }

    fn table() -> FrameTable {
        FrameTable::new(MemoryLayout::new(IcebergConfig::paper_default(8)))
    }

    #[test]
    fn install_touch_evict_cycle() {
        let mut t = table();
        assert_eq!(t.resident(), 0);
        t.install(Pfn(5), entry(1, 10));
        assert_eq!(t.resident(), 1);
        assert_eq!(t.entry(Pfn(5)).unwrap().last_access, 10);

        t.touch(Pfn(5), 20, true);
        let e = t.entry(Pfn(5)).unwrap();
        assert_eq!(e.last_access, 20);
        assert!(e.dirty);

        let evicted = t.evict(Pfn(5));
        assert_eq!(evicted.key, key(1));
        assert_eq!(t.resident(), 0);
        assert!(t.entry(Pfn(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "occupied frame")]
    fn double_install_panics() {
        let mut t = table();
        t.install(Pfn(0), entry(1, 0));
        t.install(Pfn(0), entry(2, 0));
    }

    #[test]
    #[should_panic(expected = "free frame")]
    fn evict_free_panics() {
        table().evict(Pfn(0));
    }

    #[test]
    fn ghost_definition() {
        let e = entry(1, 5);
        assert!(!e.is_ghost(5), "access at the horizon is live");
        assert!(e.is_ghost(6));
        assert!(!e.is_ghost(0));
    }

    #[test]
    fn write_invalidates_swap_copy() {
        let mut t = table();
        t.install(
            Pfn(0),
            FrameEntry {
                key: key(1),
                last_access: 0,
                dirty: false,
                has_swap_copy: true,
            },
        );
        t.touch(Pfn(0), 1, false);
        assert!(t.entry(Pfn(0)).unwrap().has_swap_copy, "read keeps copy");
        t.touch(Pfn(0), 2, true);
        let e = t.entry(Pfn(0)).unwrap();
        assert!(!e.has_swap_copy, "write staleness");
        assert!(e.dirty);
    }

    #[test]
    fn free_slot_queries() {
        let mut t = table();
        // Fill front slots 0 and 1 of bucket 0.
        t.install(Pfn(0), entry(1, 0));
        t.install(Pfn(1), entry(2, 0));
        let s = t.front_free_slot(0).unwrap();
        assert_eq!(s.slot, 2);
        assert_eq!(s.yard, Yard::Front);
        // Backyard of bucket 0 starts at frame 56.
        t.install(Pfn(56), entry(3, 0));
        assert_eq!(t.back_free_slot(0).unwrap().slot, 1);
    }

    #[test]
    fn oldest_ghost_selection() {
        let mut t = table();
        t.install(Pfn(0), entry(1, 10));
        t.install(Pfn(1), entry(2, 3));
        t.install(Pfn(2), entry(3, 7));
        // Horizon 8: pages with access < 8 (3 and 7) are ghosts.
        let g = t.oldest_ghost_slot(0, Yard::Front, 8).unwrap();
        assert_eq!(g.slot, 1, "oldest ghost is access time 3");
        assert_eq!(t.oldest_ghost_slot(0, Yard::Front, 2), None);
    }

    #[test]
    fn back_live_count_ignores_ghosts() {
        let mut t = table();
        // Bucket 1's backyard frames are 120..128.
        t.install(Pfn(120), entry(1, 2));
        t.install(Pfn(121), entry(2, 9));
        assert_eq!(t.back_live_count(1, 5), 1);
        assert_eq!(t.back_live_count(1, 0), 2);
        assert_eq!(t.back_live_count(1, 100), 0);
    }

    #[test]
    fn lru_candidate_scans_whole_candidate_set() {
        use mosaic_hash::XxFamily;
        let t0 = table();
        let cfg = *t0.layout().config();
        let family = XxFamily::new(cfg.hash_count(), 4);
        let cands = CandidateSet::compute(&family, &cfg, 77);

        let mut t = t0;
        // Occupy two candidate slots with different ages.
        let slots: Vec<SlotRef> = cands.slots(&cfg).collect();
        let a = t.layout().pfn_of_slot(slots[0]);
        let b = t.layout().pfn_of_slot(slots[60]);
        t.install(a, entry(1, 50));
        t.install(b, entry(2, 20));
        let (victim, ts) = t.lru_candidate(&cands).unwrap();
        assert_eq!(ts, 20);
        assert_eq!(t.layout().pfn_of_slot(victim), b);
    }

    #[test]
    fn utilization_and_ghost_count() {
        let mut t = table();
        let total = t.num_frames();
        t.install(Pfn(0), entry(1, 1));
        t.install(Pfn(1), entry(2, 5));
        assert!((t.utilization() - 2.0 / total as f64).abs() < 1e-12);
        assert_eq!(t.ghost_count(3), 1);
    }
}
