//! An exact least-recently-used index over page keys.
//!
//! The Linux-baseline manager evicts in strict LRU order; this index keeps
//! pages ordered by last-access timestamp with `O(log n)` updates. (Real
//! Linux approximates LRU with active/inactive lists; the paper's own
//! baseline measurements are against stock Linux reclaim, and exact LRU is
//! the canonical idealisation — see DESIGN.md.)

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// An LRU index: a set of keys ordered by the timestamp of their most
/// recent [`touch`](LruIndex::touch).
///
/// Ties on the timestamp are broken by touch order (earlier touch is
/// considered older), so the structure is total-ordered even if the caller
/// reuses timestamps.
///
/// # Example
///
/// ```
/// use mosaic_mem::lru::LruIndex;
///
/// let mut lru = LruIndex::new();
/// lru.touch("a", 1);
/// lru.touch("b", 2);
/// lru.touch("a", 3); // "a" is now the most recent
/// assert_eq!(lru.pop_oldest(), Some(("b", 2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LruIndex<K> {
    /// `(timestamp, tiebreak) -> key`, ordered oldest first.
    by_age: BTreeMap<(u64, u64), K>,
    /// `key -> (timestamp, tiebreak)` back-pointers.
    position: HashMap<K, (u64, u64)>,
    /// Monotonic tiebreaker for equal timestamps.
    counter: u64,
}

impl<K: Copy + Eq + Hash> LruIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self {
            by_age: BTreeMap::new(),
            position: HashMap::new(),
            counter: 0,
        }
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.by_age.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.by_age.is_empty()
    }

    /// Records an access to `key` at time `now`, inserting it if absent.
    pub fn touch(&mut self, key: K, now: u64) {
        if let Some(old) = self.position.remove(&key) {
            self.by_age.remove(&old);
        }
        let pos = (now, self.counter);
        self.counter += 1;
        self.by_age.insert(pos, key);
        self.position.insert(key, pos);
    }

    /// Removes `key`, returning its last-touch timestamp if present.
    pub fn remove(&mut self, key: &K) -> Option<u64> {
        let pos = self.position.remove(key)?;
        self.by_age.remove(&pos);
        Some(pos.0)
    }

    /// Removes and returns the least-recently-touched key and its timestamp.
    pub fn pop_oldest(&mut self) -> Option<(K, u64)> {
        let (&pos, &key) = self.by_age.iter().next()?;
        self.by_age.remove(&pos);
        self.position.remove(&key);
        Some((key, pos.0))
    }

    /// The least-recently-touched key without removing it.
    pub fn peek_oldest(&self) -> Option<(K, u64)> {
        self.by_age.iter().next().map(|(&(ts, _), &k)| (k, ts))
    }

    /// Iterates keys oldest-first without removing them (the bounded
    /// victim scan quota-aware reclaim uses).
    pub fn iter_oldest(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        self.by_age.iter().map(|(&(ts, _), &k)| (k, ts))
    }

    /// Whether the index contains `key`.
    pub fn contains(&self, key: &K) -> bool {
        self.position.contains_key(key)
    }

    /// The last-touch timestamp of `key`, if tracked.
    pub fn timestamp(&self, key: &K) -> Option<u64> {
        self.position.get(key).map(|&(ts, _)| ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_is_lru() {
        let mut lru = LruIndex::new();
        lru.touch(10u32, 5);
        lru.touch(20, 3);
        lru.touch(30, 7);
        assert_eq!(lru.pop_oldest(), Some((20, 3)));
        assert_eq!(lru.pop_oldest(), Some((10, 5)));
        assert_eq!(lru.pop_oldest(), Some((30, 7)));
        assert_eq!(lru.pop_oldest(), None);
    }

    #[test]
    fn touch_moves_to_back() {
        let mut lru = LruIndex::new();
        lru.touch(1u8, 1);
        lru.touch(2, 2);
        lru.touch(1, 3);
        assert_eq!(lru.peek_oldest(), Some((2, 2)));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn equal_timestamps_break_by_touch_order() {
        let mut lru = LruIndex::new();
        lru.touch('a', 1);
        lru.touch('b', 1);
        lru.touch('c', 1);
        assert_eq!(lru.pop_oldest().unwrap().0, 'a');
        assert_eq!(lru.pop_oldest().unwrap().0, 'b');
        assert_eq!(lru.pop_oldest().unwrap().0, 'c');
    }

    #[test]
    fn remove_detaches_key() {
        let mut lru = LruIndex::new();
        lru.touch(1u64, 1);
        lru.touch(2, 2);
        assert_eq!(lru.remove(&1), Some(1));
        assert_eq!(lru.remove(&1), None);
        assert!(!lru.contains(&1));
        assert_eq!(lru.pop_oldest(), Some((2, 2)));
    }

    #[test]
    fn iter_oldest_is_nondestructive_and_ordered() {
        let mut lru = LruIndex::new();
        lru.touch(3u32, 30);
        lru.touch(1, 10);
        lru.touch(2, 20);
        let order: Vec<(u32, u64)> = lru.iter_oldest().collect();
        assert_eq!(order, vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(lru.len(), 3, "iteration must not consume");
    }

    #[test]
    fn timestamp_query() {
        let mut lru = LruIndex::new();
        lru.touch(9u16, 42);
        assert_eq!(lru.timestamp(&9), Some(42));
        assert_eq!(lru.timestamp(&8), None);
    }

    #[test]
    fn large_population_pops_sorted() {
        let mut lru = LruIndex::new();
        // Insert with pseudo-shuffled timestamps.
        for i in 0..1000u64 {
            lru.touch(i, (i * 2_654_435_761) % 10_000);
        }
        let mut last = 0;
        let mut n = 0;
        while let Some((_, ts)) = lru.pop_oldest() {
            assert!(ts >= last, "out of order");
            last = ts;
            n += 1;
        }
        assert_eq!(n, 1000);
    }
}
