//! Eviction policies for the constrained (Mosaic) allocator — the design
//! space §2.4 discusses, for ablation.
//!
//! The paper argues Horizon LRU is the right point: the naive scheme
//! ("simply evicting the least-recently-used page in the target buckets
//! does not have the same performance guarantees") evicts hot pages on
//! conflicts, while the prior-work scheme it builds on (Bender et al.,
//! SPAA '21: run replacement as if memory were `(1 − δ)p`) never sees
//! conflicts but "completely wastes a fraction δ of memory". The
//! `ablation` bench quantifies all three.

/// How the Mosaic allocator resolves pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosaicPolicy {
    /// The paper's design (§2.4): ghosts + a global horizon timestamp.
    /// Nothing is evicted until a slot is actually needed; conflict
    /// victims raise the horizon, ghosting everything a global LRU would
    /// have evicted by then.
    HorizonLru,
    /// The naive scheme: no ghosts; an associativity conflict immediately
    /// evicts the LRU page among the candidate slots.
    CandidateLru,
    /// Prior work's scheme: cap live pages at `(1000 - reserve_permille)
    /// / 1000` of memory and evict the *global* LRU page on capacity,
    /// so associativity conflicts (almost) never happen — at the cost of
    /// permanently idle frames.
    ReservedCapacity {
        /// Reserved fraction of memory, in permille (the paper's δ ≈ 2 %
        /// corresponds to 20).
        reserve_permille: u32,
    },
}

impl MosaicPolicy {
    /// The paper's default.
    pub const DEFAULT: MosaicPolicy = MosaicPolicy::HorizonLru;

    /// The prior-work scheme at the paper's measured δ ≈ 2 %.
    pub fn reserved_default() -> Self {
        MosaicPolicy::ReservedCapacity {
            reserve_permille: 20,
        }
    }

    /// Whether this policy keeps ghost pages.
    pub fn uses_ghosts(&self) -> bool {
        matches!(self, MosaicPolicy::HorizonLru)
    }

    /// The live-page budget for a memory of `frames` frames.
    pub fn live_budget(&self, frames: usize) -> usize {
        match *self {
            MosaicPolicy::ReservedCapacity { reserve_permille } => {
                frames - frames * reserve_permille as usize / 1000
            }
            _ => frames,
        }
    }
}

impl Default for MosaicPolicy {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl core::fmt::Display for MosaicPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MosaicPolicy::HorizonLru => write!(f, "Horizon LRU"),
            MosaicPolicy::CandidateLru => write!(f, "Candidate LRU (no ghosts)"),
            MosaicPolicy::ReservedCapacity { reserve_permille } => {
                write!(f, "Reserved capacity (δ = {:.1}%)", *reserve_permille as f64 / 10.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets() {
        assert_eq!(MosaicPolicy::HorizonLru.live_budget(1000), 1000);
        assert_eq!(MosaicPolicy::CandidateLru.live_budget(1000), 1000);
        assert_eq!(
            MosaicPolicy::ReservedCapacity { reserve_permille: 20 }.live_budget(1000),
            980
        );
    }

    #[test]
    fn ghosts_only_for_horizon() {
        assert!(MosaicPolicy::HorizonLru.uses_ghosts());
        assert!(!MosaicPolicy::CandidateLru.uses_ghosts());
        assert!(!MosaicPolicy::reserved_default().uses_ghosts());
    }

    #[test]
    fn display_names() {
        assert_eq!(MosaicPolicy::HorizonLru.to_string(), "Horizon LRU");
        assert!(MosaicPolicy::reserved_default()
            .to_string()
            .contains("2.0%"));
    }
}
