//! Concurrent-allocator shadow for the Mosaic manager.
//!
//! [`ConcurrentShadow`] mirrors every residency-map mutation of a
//! [`MosaicMemory`](crate::mosaic::MosaicMemory) into a
//! [`ConcurrentIcebergTable`], so the lock-free allocation path is
//! exercised by the real tenant workloads (behind `--concurrent-alloc`
//! on the `tenants` bin) while the serial manager remains the source of
//! truth. `verify()` cross-checks the two: the shadow must hold exactly
//! the resident pages, each mapped to its frame.
//!
//! The shadow's table is sized at **twice** the manager's bucket count:
//! residency never exceeds the frame count, so the shadow runs at ≤50 %
//! load, where an Iceberg associativity conflict is astronomically
//! unlikely — and if one ever fires it surfaces as a `verify()` failure
//! (a missing mirror entry), not silent divergence. Mirroring is
//! strictly observational: with the shadow off (the default `None`, as
//! with quotas), every manager path is byte-identical to before.

use crate::addr::{PageKey, Pfn};
use crate::error::{MosaicError, MosaicResult};
use mosaic_hash::XxFamily;
use mosaic_iceberg::{ConcurrentIcebergTable, IcebergConfig};
use std::collections::HashMap;

/// A concurrent mirror of the residency map. See the [module docs](self).
#[derive(Debug)]
pub struct ConcurrentShadow {
    table: ConcurrentIcebergTable<PageKey, Pfn, XxFamily>,
    family: XxFamily,
    cfg: IcebergConfig,
    /// Mirror inserts the table refused (≈impossible at ≤50 % load);
    /// counted so `verify` can name the cause of a divergence.
    conflicts: u64,
}

impl ConcurrentShadow {
    /// Builds an empty shadow for a manager with the given layout
    /// geometry; `family` must be the manager's own hash family so the
    /// shadow sees the same candidate structure (over 2× the buckets).
    pub fn new(layout_cfg: &IcebergConfig, family: XxFamily) -> Self {
        let cfg = layout_cfg.with_num_buckets(layout_cfg.num_buckets() * 2);
        Self {
            table: ConcurrentIcebergTable::new(cfg, family),
            family,
            cfg,
            conflicts: 0,
        }
    }

    /// Mirrors a page being mapped into a frame.
    pub fn note_install(&mut self, key: PageKey, pfn: Pfn) {
        match self.table.insert(key, pfn) {
            Ok(_) => {}
            Err(_) => self.conflicts += 1,
        }
    }

    /// Mirrors a page leaving residency (eviction or release).
    pub fn note_remove(&mut self, key: PageKey) {
        self.table.remove(&key);
    }

    /// Entries currently mirrored.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the mirror is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The underlying concurrent table (read access for harnesses).
    pub fn table(&self) -> &ConcurrentIcebergTable<PageKey, Pfn, XxFamily> {
        &self.table
    }

    /// Mirror inserts refused as associativity conflicts so far.
    pub fn conflict_count(&self) -> u64 {
        self.conflicts
    }

    /// Cross-checks the mirror against the manager's residency map: the
    /// shadow must contain exactly `resident`, with matching frames, and
    /// its own structural invariants must hold.
    pub fn verify_against(&self, resident: &HashMap<PageKey, Pfn>) -> MosaicResult<()> {
        if self.conflicts > 0 {
            return Err(MosaicError::invariant(
                "concurrent-shadow",
                format!("{} mirror inserts conflicted at <=50% load", self.conflicts),
            ));
        }
        if self.table.len() != resident.len() {
            return Err(MosaicError::invariant(
                "concurrent-shadow",
                format!(
                    "shadow holds {} entries but {} pages are resident",
                    self.table.len(),
                    resident.len()
                ),
            ));
        }
        for (&key, &pfn) in resident {
            match self.table.get(&key) {
                Some(got) if got == pfn => {}
                Some(got) => {
                    return Err(MosaicError::invariant(
                        "concurrent-shadow",
                        format!("shadow maps {key} to {got:?}, manager to {pfn:?}"),
                    ));
                }
                None => {
                    return Err(MosaicError::invariant(
                        "concurrent-shadow",
                        format!("resident page {key} missing from the shadow"),
                    ));
                }
            }
        }
        self.table
            .verify()
            .map_err(|e| MosaicError::invariant("concurrent-shadow", e.to_string()))
    }
}

impl Clone for ConcurrentShadow {
    /// The atomic table is not `Clone`; a cloned manager gets a fresh
    /// mirror rebuilt from a snapshot (same membership — placement
    /// history is not part of the mirror's contract).
    fn clone(&self) -> Self {
        let table = ConcurrentIcebergTable::new(self.cfg, self.family);
        let mut conflicts = self.conflicts;
        for (key, pfn) in self.table.iter_snapshot() {
            if table.insert(key, pfn).is_err() {
                conflicts += 1;
            }
        }
        Self {
            table,
            family: self.family,
            cfg: self.cfg,
            conflicts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asid, Vpn};

    fn key(asid: u16, vpn: u64) -> PageKey {
        PageKey::new(Asid(asid), Vpn(vpn))
    }

    fn shadow() -> ConcurrentShadow {
        let cfg = IcebergConfig::paper_default(8);
        ConcurrentShadow::new(&cfg, XxFamily::new(cfg.hash_count(), 5))
    }

    #[test]
    fn mirrors_installs_and_removes() {
        let mut sh = shadow();
        let mut resident = HashMap::new();
        for v in 0..200u64 {
            sh.note_install(key(1, v), Pfn(v));
            resident.insert(key(1, v), Pfn(v));
        }
        for v in (0..200u64).step_by(3) {
            sh.note_remove(key(1, v));
            resident.remove(&key(1, v));
        }
        sh.verify_against(&resident).expect("mirror matches");
        assert_eq!(sh.len(), resident.len());
        assert_eq!(sh.conflict_count(), 0);
    }

    #[test]
    fn verify_catches_divergence() {
        let mut sh = shadow();
        let mut resident = HashMap::new();
        sh.note_install(key(1, 1), Pfn(1));
        resident.insert(key(1, 1), Pfn(1));
        resident.insert(key(1, 2), Pfn(2)); // not mirrored
        let err = sh.verify_against(&resident).unwrap_err();
        assert!(err.to_string().contains("concurrent-shadow"));
        // Wrong frame is also caught.
        resident.remove(&key(1, 2));
        resident.insert(key(1, 1), Pfn(9));
        let err = sh.verify_against(&resident).unwrap_err();
        assert!(err.to_string().contains("concurrent-shadow"));
    }

    #[test]
    fn clone_rebuilds_same_membership() {
        let mut sh = shadow();
        let mut resident = HashMap::new();
        for v in 0..100u64 {
            sh.note_install(key(2, v), Pfn(v));
            resident.insert(key(2, v), Pfn(v));
        }
        let cloned = sh.clone();
        cloned.verify_against(&resident).expect("clone matches");
    }
}
