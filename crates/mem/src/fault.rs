//! Deterministic fault injection for robustness experiments.
//!
//! A [`FaultPlan`] declares *what* can go wrong (probabilities in parts per
//! million, burst lengths, retry budgets) and a [`FaultInjector`] decides
//! *when*, from a seedable [`SplitMix64`] stream so any run is exactly
//! reproducible. Managers consult the injector at the top of each fallible
//! operation — **before** mutating any state — so an injected failure always
//! leaves the manager consistent and the operation can be retried or
//! abandoned cleanly.

use mosaic_hash::SplitMix64;

const PPM_SCALE: u64 = 1_000_000;

/// Declarative description of the faults to inject into a run.
///
/// All probabilities are in parts per million of the relevant operation
/// (an allocation attempt, a swap I/O, a TLB-cached translation use), so a
/// plan is plain data that serializes into experiment configs naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Probability (ppm) that one frame-allocation attempt fails
    /// transiently, e.g. the free-list CAS loses or the buddy allocator is
    /// momentarily depleted.
    pub alloc_fail_ppm: u32,
    /// Retries the manager may spend per allocation before surfacing
    /// [`AllocationFailed`](crate::error::MosaicError::AllocationFailed).
    pub max_alloc_retries: u32,
    /// Probability (ppm) that a swap-device read/write errors.
    pub io_fail_ppm: u32,
    /// Extra consecutive I/O failures after each triggered one: models a
    /// device brown-out rather than independent bit errors.
    pub io_burst: u32,
    /// Retries (with exponential backoff, counted not slept) the manager
    /// may spend per swap I/O before surfacing
    /// [`SwapIoFailed`](crate::error::MosaicError::SwapIoFailed).
    pub max_io_retries: u32,
    /// Probability (ppm) that the CPFN a TLB ToC entry holds for a hit has
    /// a flipped bit, forcing detection + page-table re-walk.
    pub toc_flip_ppm: u32,
    /// Probability (ppm), evaluated per trace record, that a recorded trace
    /// is truncated at that record during replay.
    pub trace_truncate_ppm: u32,
}

impl FaultPlan {
    /// The empty plan: no faults, identical behaviour to a run with no
    /// injector at all.
    pub const NONE: FaultPlan = FaultPlan {
        alloc_fail_ppm: 0,
        max_alloc_retries: 3,
        io_fail_ppm: 0,
        io_burst: 0,
        max_io_retries: 4,
        toc_flip_ppm: 0,
        trace_truncate_ppm: 0,
    };

    /// Whether this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.alloc_fail_ppm == 0
            && self.io_fail_ppm == 0
            && self.toc_flip_ppm == 0
            && self.trace_truncate_ppm == 0
    }

    /// Plan with a given transient allocation-failure rate.
    pub fn with_alloc_failures(mut self, ppm: u32) -> Self {
        self.alloc_fail_ppm = ppm;
        self
    }

    /// Plan with a given swap I/O error rate and burst length.
    pub fn with_io_failures(mut self, ppm: u32, burst: u32) -> Self {
        self.io_fail_ppm = ppm;
        self.io_burst = burst;
        self
    }

    /// Plan with a given ToC/CPFN bit-flip rate.
    pub fn with_toc_flips(mut self, ppm: u32) -> Self {
        self.toc_flip_ppm = ppm;
        self
    }

    /// Plan with a given per-record trace-truncation rate.
    pub fn with_trace_truncation(mut self, ppm: u32) -> Self {
        self.trace_truncate_ppm = ppm;
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// The deterministic fault source: a plan plus a seeded RNG stream.
///
/// Two injectors built from the same `(plan, seed)` produce identical
/// decision sequences; this is what makes fault-injection runs replayable
/// and is asserted by property tests.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Remaining forced failures of the current I/O burst.
    io_burst_left: u32,
}

impl FaultInjector {
    /// An injector executing `plan` with decisions drawn from `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            rng: SplitMix64::new(seed ^ 0xFA17_1D3C_7015_EED5),
            io_burst_left: 0,
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn roll(&mut self, ppm: u32) -> bool {
        // ppm == 0 never draws, so enabling one fault class does not
        // perturb the decision stream of a run that exercises another.
        ppm != 0 && self.rng.next_below(PPM_SCALE) < u64::from(ppm)
    }

    /// Whether the next frame-allocation attempt fails transiently.
    pub fn alloc_should_fail(&mut self) -> bool {
        self.roll(self.plan.alloc_fail_ppm)
    }

    /// Whether the next swap I/O fails. Honors burst state: once a failure
    /// triggers, the following `io_burst` calls also fail.
    pub fn io_should_fail(&mut self) -> bool {
        if self.io_burst_left > 0 {
            self.io_burst_left -= 1;
            return true;
        }
        if self.roll(self.plan.io_fail_ppm) {
            self.io_burst_left = self.plan.io_burst;
            return true;
        }
        false
    }

    /// Remaining forced failures of the in-flight I/O burst — `0` when no
    /// brown-out is active. Exported as a gauge so the obs layer can
    /// attribute degraded throughput to device bursts rather than quota
    /// backpressure.
    pub fn burst_remaining(&self) -> u32 {
        self.io_burst_left
    }

    /// Whether the TLB's cached ToC entry for this hit has a flipped bit.
    pub fn toc_should_flip(&mut self) -> bool {
        self.roll(self.plan.toc_flip_ppm)
    }

    /// Whether a trace replay is truncated at the current record.
    pub fn trace_should_truncate(&mut self) -> bool {
        self.roll(self.plan.trace_truncate_ppm)
    }

    /// Flips one uniformly-chosen bit of a `width`-bit stored value,
    /// modelling a single-event upset in the cached CPFN.
    pub fn flip_bit(&mut self, raw: u8, width: u32) -> u8 {
        let width = width.clamp(1, 8);
        raw ^ (1u8 << self.rng.next_index(width as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::NONE, 1);
        for _ in 0..10_000 {
            assert!(!inj.alloc_should_fail());
            assert!(!inj.io_should_fail());
            assert!(!inj.toc_should_flip());
            assert!(!inj.trace_should_truncate());
        }
        assert!(FaultPlan::NONE.is_none());
        assert!(FaultPlan::default().is_none());
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::NONE
            .with_alloc_failures(50_000)
            .with_io_failures(20_000, 2)
            .with_toc_flips(10_000);
        let mut a = FaultInjector::new(plan, 99);
        let mut b = FaultInjector::new(plan, 99);
        for _ in 0..50_000 {
            assert_eq!(a.alloc_should_fail(), b.alloc_should_fail());
            assert_eq!(a.io_should_fail(), b.io_should_fail());
            assert_eq!(a.toc_should_flip(), b.toc_should_flip());
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::NONE.with_alloc_failures(100_000); // 10%
        let mut inj = FaultInjector::new(plan, 7);
        let fails = (0..100_000).filter(|_| inj.alloc_should_fail()).count();
        // 10% +/- 1 percentage point over 100k trials.
        assert!((9_000..=11_000).contains(&fails), "{fails}");
    }

    #[test]
    fn io_bursts_run_their_length() {
        let plan = FaultPlan::NONE.with_io_failures(1_000, 3);
        let mut inj = FaultInjector::new(plan, 3);
        let mut i = 0u64;
        // Find a triggered failure, then the next 3 calls must also fail.
        loop {
            i += 1;
            assert!(i < 1_000_000, "rate 0.1% never triggered");
            if inj.io_should_fail() {
                break;
            }
        }
        for n in 0..3 {
            assert!(inj.io_should_fail(), "burst ended early at {n}");
        }
    }

    #[test]
    fn burst_remaining_exposes_brownout_state() {
        let plan = FaultPlan::NONE.with_io_failures(1_000, 3);
        let mut inj = FaultInjector::new(plan, 3);
        assert_eq!(inj.burst_remaining(), 0);
        while !inj.io_should_fail() {}
        assert_eq!(inj.burst_remaining(), 3, "trigger arms the burst");
        inj.io_should_fail();
        assert_eq!(inj.burst_remaining(), 2, "each failure drains it");
    }

    #[test]
    fn bit_flip_changes_exactly_one_in_range_bit() {
        let mut inj = FaultInjector::new(FaultPlan::NONE, 11);
        for raw in 0u8..=0x7F {
            let flipped = inj.flip_bit(raw, 7);
            let delta = raw ^ flipped;
            assert_eq!(delta.count_ones(), 1);
            assert!(delta < 1 << 7, "flip outside the 7-bit field");
        }
    }
}
