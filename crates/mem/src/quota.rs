//! Per-tenant working-set quotas for isolation under adversarial load.
//!
//! A [`TenantQuota`] is a hard cap on the frames one ASID may hold
//! resident, plus a priority weight that orders reclaim victims
//! (high-priority tenants reclaim last). The [`QuotaTable`] keeps the
//! per-ASID accounting the managers consult on every allocation:
//! resident counts, a per-tenant LRU (for *self*-eviction — a tenant at
//! its cap makes room out of its own pages before touching anyone
//! else's), and the backpressure counters ([`QuotaStats`]).
//!
//! Managers hold an `Option<QuotaTable>`; with `None` every code path
//! is byte-identical to the pre-quota behaviour, which is what keeps
//! all existing goldens unchanged. Backoff after a deferred admission
//! is *counted, not slept* — exponential in the tenant's consecutive
//! deferrals, capped, exactly the PR-1 `FaultInjector` convention.

use crate::addr::{Asid, PageKey};
use crate::lru::LruIndex;
use std::collections::HashMap;

/// A tenant's reclaim contract: a hard frame cap plus a priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum frames this ASID may hold resident. `0` blocks admission
    /// entirely (every allocation defers).
    pub frames: usize,
    /// Reclaim priority: lower values are evicted *first* when the
    /// allocator must displace an under-quota tenant. Tenants without a
    /// quota entry behave as priority 0.
    pub priority: u8,
}

/// Backpressure and isolation counters one manager accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuotaStats {
    /// Evictions where a tenant at its cap displaced one of its *own*
    /// pages (in-place among its candidate slots, or via the post-install
    /// trim loop) instead of someone else's.
    pub self_evictions: u64,
    /// Conflict evictions where quota/priority ordering picked a victim
    /// *different* from the plain LRU candidate.
    pub quota_evictions: u64,
    /// Allocations deferred with
    /// [`QuotaExceeded`](crate::error::MosaicError::QuotaExceeded).
    pub admissions_deferred: u64,
    /// Abstract backoff ticks charged for deferrals (exponential per
    /// consecutive deferral, counted not slept).
    pub backoff_ticks: u64,
}

impl QuotaStats {
    /// The all-zero value (managers without a quota table report this).
    pub const ZERO: QuotaStats = QuotaStats {
        self_evictions: 0,
        quota_evictions: 0,
        admissions_deferred: 0,
        backoff_ticks: 0,
    };
}

/// Exponent cap for deferral backoff (mirrors the swap-I/O retry
/// backoff cap in the managers).
const MAX_BACKOFF_SHIFT: u32 = 16;

/// Per-ASID quota bookkeeping shared by both managers.
#[derive(Debug, Clone, Default)]
pub struct QuotaTable {
    quotas: HashMap<Asid, TenantQuota>,
    resident: HashMap<Asid, usize>,
    /// Per-tenant LRU over that tenant's resident pages, for targeted
    /// self-eviction. Tracked for every ASID once the table exists, so a
    /// quota set later starts from correct counts.
    own_lru: HashMap<Asid, LruIndex<PageKey>>,
    /// Consecutive deferrals per ASID (reset by a successful install).
    deferral_streak: HashMap<Asid, u32>,
    stats: QuotaStats,
}

impl QuotaTable {
    /// An empty table: no quotas, no tracked pages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) `asid`'s quota.
    pub fn set(&mut self, asid: Asid, quota: TenantQuota) {
        self.quotas.insert(asid, quota);
    }

    /// The quota of `asid`, if one is set.
    pub fn quota(&self, asid: Asid) -> Option<TenantQuota> {
        self.quotas.get(&asid).copied()
    }

    /// Tracked resident frames of `asid`.
    pub fn resident(&self, asid: Asid) -> usize {
        self.resident.get(&asid).copied().unwrap_or(0)
    }

    /// Whether `asid` has reached its cap (quota-less tenants never do).
    pub fn at_capacity(&self, asid: Asid) -> bool {
        self.quota(asid)
            .is_some_and(|q| self.resident(asid) >= q.frames)
    }

    /// Whether `asid` holds *more* than its quota (transiently possible
    /// mid-access, or after a quota is lowered).
    pub fn over_quota(&self, asid: Asid) -> bool {
        self.quota(asid)
            .is_some_and(|q| self.resident(asid) > q.frames)
    }

    /// Victim-ordering class of `asid`: over-quota tenants first, then
    /// ascending priority. Smaller sorts earlier (evicted sooner).
    pub fn victim_class(&self, asid: Asid) -> (u8, u8) {
        let over = u8::from(!self.over_quota(asid));
        let priority = self.quota(asid).map_or(0, |q| q.priority);
        (over, priority)
    }

    /// Records a page install at time `now` (also clears the owner's
    /// deferral streak — the admission succeeded).
    pub fn note_install(&mut self, key: PageKey, now: u64) {
        *self.resident.entry(key.asid).or_insert(0) += 1;
        self.own_lru
            .entry(key.asid)
            .or_insert_with(LruIndex::new)
            .touch(key, now);
        self.deferral_streak.remove(&key.asid);
    }

    /// Records a hit on a tracked page.
    pub fn note_touch(&mut self, key: PageKey, now: u64) {
        if let Some(lru) = self.own_lru.get_mut(&key.asid) {
            if lru.contains(&key) {
                lru.touch(key, now);
            }
        }
    }

    /// Records an eviction/release of `key`. Untracked keys (installed
    /// before the table existed and never seeded) are ignored, keeping
    /// the counts exact.
    pub fn note_evict(&mut self, key: PageKey) {
        if let Some(lru) = self.own_lru.get_mut(&key.asid) {
            if lru.remove(&key).is_some() {
                if let Some(c) = self.resident.get_mut(&key.asid) {
                    *c = c.saturating_sub(1);
                }
            }
        }
    }

    /// Drops every trace of `asid` (process exit).
    pub fn remove_tenant(&mut self, asid: Asid) {
        self.quotas.remove(&asid);
        self.resident.remove(&asid);
        self.own_lru.remove(&asid);
        self.deferral_streak.remove(&asid);
    }

    /// The least-recently-used of `asid`'s tracked pages.
    pub fn own_lru_oldest(&self, asid: Asid) -> Option<PageKey> {
        self.own_lru
            .get(&asid)?
            .peek_oldest()
            .map(|(key, _)| key)
    }

    /// Whether `key` is tracked in its owner's LRU.
    pub fn tracks(&self, key: &PageKey) -> bool {
        self.own_lru
            .get(&key.asid)
            .is_some_and(|lru| lru.contains(key))
    }

    /// Charges one deferred admission for `asid` and returns the backoff
    /// ticks charged (exponential in the consecutive-deferral streak).
    pub fn note_deferred(&mut self, asid: Asid) -> u64 {
        let streak = self.deferral_streak.entry(asid).or_insert(0);
        let ticks = 1u64 << (*streak).min(MAX_BACKOFF_SHIFT);
        *streak = streak.saturating_add(1);
        self.stats.admissions_deferred += 1;
        self.stats.backoff_ticks += ticks;
        ticks
    }

    /// Counts one self-eviction (a capped tenant displaced its own page).
    pub fn note_self_eviction(&mut self) {
        self.stats.self_evictions += 1;
    }

    /// Counts one quota-steered conflict eviction (victim differed from
    /// the plain LRU candidate).
    pub fn note_quota_eviction(&mut self) {
        self.stats.quota_evictions += 1;
    }

    /// The accumulated backpressure counters.
    pub fn stats(&self) -> QuotaStats {
        self.stats
    }

    /// ASIDs that currently have a quota set (for invariant checks).
    pub fn quota_asids(&self) -> impl Iterator<Item = Asid> + '_ {
        self.quotas.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Vpn;

    fn k(asid: u16, vpn: u64) -> PageKey {
        PageKey::new(Asid(asid), Vpn(vpn))
    }

    #[test]
    fn counts_follow_install_and_evict() {
        let mut t = QuotaTable::new();
        t.set(Asid(1), TenantQuota { frames: 2, priority: 0 });
        assert!(!t.at_capacity(Asid(1)));
        t.note_install(k(1, 0), 1);
        t.note_install(k(1, 1), 2);
        assert_eq!(t.resident(Asid(1)), 2);
        assert!(t.at_capacity(Asid(1)));
        assert!(!t.over_quota(Asid(1)));
        t.note_install(k(1, 2), 3);
        assert!(t.over_quota(Asid(1)));
        t.note_evict(k(1, 0));
        assert_eq!(t.resident(Asid(1)), 2);
        // Evicting an untracked key is a no-op.
        t.note_evict(k(9, 0));
        assert_eq!(t.resident(Asid(1)), 2);
    }

    #[test]
    fn own_lru_orders_by_touch_time() {
        let mut t = QuotaTable::new();
        t.note_install(k(1, 0), 10);
        t.note_install(k(1, 1), 20);
        t.note_touch(k(1, 0), 30);
        assert_eq!(t.own_lru_oldest(Asid(1)), Some(k(1, 1)));
        // Touching an untracked page does not insert it.
        t.note_touch(k(1, 99), 40);
        assert!(!t.tracks(&k(1, 99)));
    }

    #[test]
    fn deferral_backoff_is_exponential_and_resets() {
        let mut t = QuotaTable::new();
        t.set(Asid(2), TenantQuota { frames: 0, priority: 0 });
        assert_eq!(t.note_deferred(Asid(2)), 1);
        assert_eq!(t.note_deferred(Asid(2)), 2);
        assert_eq!(t.note_deferred(Asid(2)), 4);
        assert_eq!(t.stats().admissions_deferred, 3);
        assert_eq!(t.stats().backoff_ticks, 7);
        // A successful install ends the streak.
        t.note_install(k(2, 0), 1);
        assert_eq!(t.note_deferred(Asid(2)), 1);
    }

    #[test]
    fn backoff_exponent_is_capped() {
        let mut t = QuotaTable::new();
        for _ in 0..40 {
            t.note_deferred(Asid(3));
        }
        assert_eq!(t.note_deferred(Asid(3)), 1 << MAX_BACKOFF_SHIFT);
    }

    #[test]
    fn victim_class_prefers_over_quota_then_low_priority() {
        let mut t = QuotaTable::new();
        t.set(Asid(1), TenantQuota { frames: 1, priority: 3 });
        t.set(Asid(2), TenantQuota { frames: 8, priority: 1 });
        t.note_install(k(1, 0), 1);
        t.note_install(k(1, 1), 2); // asid 1 now over quota
        t.note_install(k(2, 0), 3);
        assert!(t.victim_class(Asid(1)) < t.victim_class(Asid(2)));
        // Among under-quota tenants, lower priority sorts first.
        t.set(Asid(3), TenantQuota { frames: 8, priority: 5 });
        assert!(t.victim_class(Asid(2)) < t.victim_class(Asid(3)));
    }

    #[test]
    fn remove_tenant_clears_all_state() {
        let mut t = QuotaTable::new();
        t.set(Asid(4), TenantQuota { frames: 1, priority: 0 });
        t.note_install(k(4, 0), 1);
        t.note_deferred(Asid(4));
        t.remove_tenant(Asid(4));
        assert_eq!(t.resident(Asid(4)), 0);
        assert_eq!(t.quota(Asid(4)), None);
        assert_eq!(t.own_lru_oldest(Asid(4)), None);
    }
}
