//! The bucket ↔ physical-frame mapping.
//!
//! Mosaic "structures physical memory as a bucketed hash table, where each
//! bucket consists of a collection of contiguous physical page frames"
//! (§1). With the paper geometry each bucket owns 64 contiguous frames:
//! the first 56 are its front yard and the last 8 its backyard.

use crate::addr::Pfn;
use mosaic_iceberg::{IcebergConfig, SlotRef, Yard};

/// Maps Iceberg slots to physical frame numbers and back.
///
/// # Example
///
/// ```
/// use mosaic_mem::layout::MemoryLayout;
/// use mosaic_iceberg::{IcebergConfig, SlotRef, Yard};
///
/// let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
/// assert_eq!(layout.num_frames(), 512);
/// let slot = SlotRef { yard: Yard::Back, bucket: 1, slot: 0 };
/// let pfn = layout.pfn_of_slot(slot);
/// assert_eq!(layout.slot_of_pfn(pfn), slot);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    cfg: IcebergConfig,
}

impl MemoryLayout {
    /// Creates a layout over the given Iceberg geometry.
    pub fn new(cfg: IcebergConfig) -> Self {
        Self { cfg }
    }

    /// The underlying geometry.
    pub fn config(&self) -> &IcebergConfig {
        &self.cfg
    }

    /// Total physical frames (`p` in the paper's notation).
    pub fn num_frames(&self) -> usize {
        self.cfg.total_slots()
    }

    /// Total bytes of physical memory modelled.
    pub fn bytes(&self) -> u64 {
        self.num_frames() as u64 * crate::addr::PAGE_SIZE
    }

    /// The physical frame backing an Iceberg slot.
    ///
    /// Bucket `b` owns frames `b * slots_per_bucket ..`, front-yard slots
    /// first, backyard slots after.
    ///
    /// # Panics
    ///
    /// Panics if the slot is outside the geometry.
    pub fn pfn_of_slot(&self, slot: SlotRef) -> Pfn {
        assert!(slot.bucket < self.cfg.num_buckets(), "bucket out of range");
        let base = slot.bucket * self.cfg.slots_per_bucket();
        let within = match slot.yard {
            Yard::Front => {
                assert!(slot.slot < self.cfg.front_slots(), "front slot out of range");
                slot.slot
            }
            Yard::Back => {
                assert!(slot.slot < self.cfg.back_slots(), "back slot out of range");
                self.cfg.front_slots() + slot.slot
            }
        };
        Pfn((base + within) as u64)
    }

    /// The Iceberg slot backing a physical frame.
    ///
    /// # Panics
    ///
    /// Panics if the PFN is outside the modelled memory.
    pub fn slot_of_pfn(&self, pfn: Pfn) -> SlotRef {
        let idx = pfn.0 as usize;
        assert!(idx < self.num_frames(), "pfn {pfn} out of range");
        let per = self.cfg.slots_per_bucket();
        let bucket = idx / per;
        let within = idx % per;
        if within < self.cfg.front_slots() {
            SlotRef {
                yard: Yard::Front,
                bucket,
                slot: within,
            }
        } else {
            SlotRef {
                yard: Yard::Back,
                bucket,
                slot: within - self.cfg.front_slots(),
            }
        }
    }

    /// Returns a layout sized to hold at least `frames` page frames
    /// (rounds the bucket count up; same per-bucket shape as `self`).
    pub fn with_at_least_frames(&self, frames: usize) -> MemoryLayout {
        let per = self.cfg.slots_per_bucket();
        let buckets = frames.div_ceil(per).max(self.cfg.d_choices());
        MemoryLayout::new(self.cfg.with_num_buckets(buckets))
    }
}

impl Default for MemoryLayout {
    fn default() -> Self {
        Self::new(IcebergConfig::default())
    }
}

impl core::fmt::Display for MemoryLayout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} frames ({} MiB): {}",
            self.num_frames(),
            self.bytes() >> 20,
            self.cfg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> MemoryLayout {
        MemoryLayout::new(IcebergConfig::paper_default(8))
    }

    #[test]
    fn frame_count_and_bytes() {
        let l = layout();
        assert_eq!(l.num_frames(), 8 * 64);
        assert_eq!(l.bytes(), 8 * 64 * 4096);
    }

    #[test]
    fn slot_pfn_round_trip_exhaustive() {
        let l = layout();
        let mut seen = std::collections::HashSet::new();
        for bucket in 0..8 {
            for slot in 0..56 {
                let s = SlotRef { yard: Yard::Front, bucket, slot };
                let pfn = l.pfn_of_slot(s);
                assert_eq!(l.slot_of_pfn(pfn), s);
                assert!(seen.insert(pfn), "duplicate pfn {pfn}");
            }
            for slot in 0..8 {
                let s = SlotRef { yard: Yard::Back, bucket, slot };
                let pfn = l.pfn_of_slot(s);
                assert_eq!(l.slot_of_pfn(pfn), s);
                assert!(seen.insert(pfn), "duplicate pfn {pfn}");
            }
        }
        assert_eq!(seen.len(), l.num_frames(), "mapping must be a bijection");
    }

    #[test]
    fn buckets_are_physically_contiguous() {
        let l = layout();
        // Frames of bucket 2 are exactly 128..192.
        let first = l.pfn_of_slot(SlotRef { yard: Yard::Front, bucket: 2, slot: 0 });
        let last = l.pfn_of_slot(SlotRef { yard: Yard::Back, bucket: 2, slot: 7 });
        assert_eq!(first, Pfn(128));
        assert_eq!(last, Pfn(191));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bucket_panics() {
        layout().pfn_of_slot(SlotRef { yard: Yard::Front, bucket: 8, slot: 0 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_pfn_panics() {
        layout().slot_of_pfn(Pfn(8 * 64));
    }

    #[test]
    fn with_at_least_frames_rounds_up() {
        let l = layout().with_at_least_frames(1000);
        assert!(l.num_frames() >= 1000);
        assert_eq!(l.config().slots_per_bucket(), 64);
        assert!(l.num_frames() - 1000 < 64);
    }

    #[test]
    fn with_at_least_frames_respects_d_choices() {
        // Tiny requests still need >= d buckets for the scheme to work.
        let l = layout().with_at_least_frames(1);
        assert!(l.config().num_buckets() >= l.config().d_choices());
    }
}
