//! The Mosaic memory manager: Iceberg frame allocation + Horizon LRU (§2.2–2.4).
//!
//! Allocation follows Figure 3 of the paper: a faulting page first tries a
//! free (or ghost) slot in its front-yard bucket, then the emptiest of its
//! `d` backyard buckets, where ghosts do not count toward occupancy. Only
//! when every one of its `h` candidate slots holds a *live* page does an
//! **associativity conflict** occur; Horizon LRU then evicts the
//! least-recently-used candidate and raises the global horizon to that
//! page's access time, ghosting every page a true global LRU would have
//! evicted by now.

use crate::addr::{PageKey, Pfn};
use crate::cpfn::{Cpfn, CpfnCodec};
use crate::error::{MosaicError, MosaicResult};
use crate::fault::{FaultInjector, FaultPlan};
use crate::frame::{FrameEntry, FrameTable};
use crate::invariants;
use crate::layout::MemoryLayout;
use crate::lru::LruIndex;
use crate::manager::{AccessKind, AccessOutcome, MemoryManager};
use crate::obs::MemObs;
use crate::policy::MosaicPolicy;
use crate::quota::{QuotaStats, QuotaTable, TenantQuota};
use crate::shadow::ConcurrentShadow;
use crate::scanner::{AccessScanner, ScannerConfig};
use crate::stats::{PagingStats, ResilienceStats, UtilizationTracker};
use mosaic_hash::XxFamily;
use mosaic_iceberg::{CandidateSet, SlotRef, Yard};
use std::collections::{HashMap, HashSet};

/// The Mosaic memory system: constrained allocation with ghost-page
/// swapping.
///
/// # Example
///
/// ```
/// use mosaic_mem::prelude::*;
///
/// let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
/// let mut mm = MosaicMemory::new(layout, 7);
/// let key = PageKey::new(Asid::new(1), Vpn::new(42));
/// assert_eq!(mm.access(key, AccessKind::Load, 1), AccessOutcome::MinorFault);
/// assert_eq!(mm.access(key, AccessKind::Load, 2), AccessOutcome::Hit);
/// // The page's position compresses to a CPFN.
/// assert!(mm.cpfn_of(key).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct MosaicMemory {
    codec: CpfnCodec,
    family: XxFamily,
    frames: FrameTable,
    /// Residency map: page -> backing frame.
    resident: HashMap<PageKey, Pfn>,
    /// Pages whose only valid copy is on the swap device.
    swapped: HashSet<PageKey>,
    /// The Horizon LRU high-water mark of evicted pages' access times.
    horizon: u64,
    policy: MosaicPolicy,
    /// Global LRU index, maintained only under `ReservedCapacity`.
    global_lru: LruIndex<PageKey>,
    /// Live-page cap (equals `num_frames` except under `ReservedCapacity`).
    live_budget: usize,
    /// When present, timestamps come from the §3.2 scanning daemon rather
    /// than being exact.
    scanner: Option<AccessScanner>,
    /// Per-tenant working-set quotas; `None` keeps every path
    /// byte-identical to the quota-less manager.
    quotas: Option<QuotaTable>,
    /// Concurrent-allocator mirror of `resident`; `None` (the default)
    /// keeps every path byte-identical to the shadow-less manager.
    shadow: Option<ConcurrentShadow>,
    /// When present, injects deterministic faults into allocation, swap
    /// I/O, and cached translations (robustness experiments).
    fault: Option<FaultInjector>,
    resilience: ResilienceStats,
    stats: PagingStats,
    util: UtilizationTracker,
    /// Exported metric handles (no-ops unless `set_obs` binds them).
    obs: MemObs,
    /// Timestamp of the in-flight access, for event records emitted from
    /// helpers that do not receive `now` (swap I/O, the alloc gate).
    obs_now: u64,
    /// ASID of the in-flight access, so evictions deep in the allocator
    /// can be blamed on the tenant that forced them.
    obs_requester: u16,
}

impl MosaicMemory {
    /// Creates a manager over `layout` with the paper's Horizon LRU
    /// policy, deriving its hash family from `seed`.
    pub fn new(layout: MemoryLayout, seed: u64) -> Self {
        Self::with_policy(layout, seed, MosaicPolicy::HorizonLru)
    }

    /// Creates a manager with an explicit eviction policy (§2.4 ablation).
    pub fn with_policy(layout: MemoryLayout, seed: u64, policy: MosaicPolicy) -> Self {
        let cfg = *layout.config();
        let live_budget = policy.live_budget(layout.num_frames());
        Self {
            codec: CpfnCodec::new(cfg),
            family: XxFamily::new(cfg.hash_count(), seed),
            frames: FrameTable::new(layout),
            resident: HashMap::new(),
            swapped: HashSet::new(),
            horizon: 0,
            policy,
            global_lru: LruIndex::new(),
            live_budget,
            scanner: None,
            quotas: None,
            shadow: None,
            fault: None,
            resilience: ResilienceStats::new(),
            stats: PagingStats::new(),
            util: UtilizationTracker::new(),
            obs: MemObs::noop(),
            obs_now: 0,
            obs_requester: 0,
        }
    }

    /// Attaches a deterministic fault injector executing `plan`, seeded by
    /// `seed`. With [`FaultPlan::NONE`] this is behaviorally identical to
    /// not attaching one.
    pub fn with_fault_injector(mut self, plan: FaultPlan, seed: u64) -> Self {
        self.fault = Some(FaultInjector::new(plan, seed));
        self
    }

    /// The fault injector, if one is attached.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Attaches a [`ConcurrentShadow`]: from now on every residency-map
    /// mutation is mirrored into a lock-free
    /// [`ConcurrentIcebergTable`](mosaic_iceberg::ConcurrentIcebergTable),
    /// and [`verify`](crate::manager::MemoryManager::verify) cross-checks
    /// the mirror against the map. Pages already resident are seeded in.
    /// Purely observational: allocation decisions are unchanged, so all
    /// outputs stay byte-identical with the shadow on or off.
    pub fn enable_concurrent_shadow(&mut self) {
        let mut sh = ConcurrentShadow::new(self.layout().config(), self.family);
        let mut seed: Vec<(PageKey, Pfn)> =
            self.resident.iter().map(|(&k, &p)| (k, p)).collect();
        seed.sort_unstable_by_key(|&(k, _)| (k.hash_key(), k.asid.0, k.vpn.0));
        for (key, pfn) in seed {
            sh.note_install(key, pfn);
        }
        self.shadow = Some(sh);
    }

    /// The concurrent-allocator mirror, if enabled.
    pub fn concurrent_shadow(&self) -> Option<&ConcurrentShadow> {
        self.shadow.as_ref()
    }

    /// Creates a manager whose access timestamps are produced by the
    /// §3.2 scanning daemon (access bits + hot/cold sampling) instead of
    /// being exact — the fidelity the Linux prototype actually has.
    pub fn with_scanner(layout: MemoryLayout, seed: u64, cfg: ScannerConfig) -> Self {
        let mut mm = Self::new(layout, seed);
        mm.scanner = Some(AccessScanner::new(
            mm.frames.num_frames(),
            cfg,
            seed ^ 0x5CAB,
        ));
        mm
    }

    /// The scanning daemon, if timestamps are scanner-driven.
    pub fn scanner(&self) -> Option<&AccessScanner> {
        self.scanner.as_ref()
    }

    /// The eviction policy in force.
    pub fn policy(&self) -> MosaicPolicy {
        self.policy
    }

    /// The memory layout.
    pub fn layout(&self) -> &MemoryLayout {
        self.frames.layout()
    }

    /// The CPFN codec for this geometry.
    pub fn codec(&self) -> &CpfnCodec {
        &self.codec
    }

    /// The current Horizon LRU horizon.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Number of resident ghost pages (diagnostics).
    pub fn ghost_count(&self) -> usize {
        self.frames.ghost_count(self.horizon)
    }

    /// The candidate set of a page.
    pub fn candidates(&self, key: PageKey) -> CandidateSet {
        CandidateSet::compute(&self.family, self.layout().config(), key.hash_key())
    }

    /// Iterates over all resident pages and their frames (inspection; the
    /// order is unspecified).
    pub fn resident_pages(&self) -> impl Iterator<Item = (PageKey, Pfn)> + '_ {
        self.resident.iter().map(|(&k, &p)| (k, p))
    }

    /// The CPFN encoding of `key`'s current frame, if resident.
    ///
    /// This is the value a Mosaic page-table leaf (and hence a TLB ToC
    /// sub-entry) stores for the page.
    pub fn cpfn_of(&self, key: PageKey) -> Option<Cpfn> {
        let pfn = *self.resident.get(&key)?;
        let slot = self.layout().slot_of_pfn(pfn);
        let cands = self.candidates(key);
        Some(self.codec.encode_slot(&cands, slot))
    }

    /// Performs one (simulated) swap-device transfer, absorbing injected
    /// errors with bounded retries and exponential backoff. The backoff is
    /// counted in abstract ticks rather than slept.
    fn swap_io(&mut self, write: bool) -> MosaicResult<()> {
        let Some(max) = self.fault.as_ref().map(|i| i.plan().max_io_retries) else {
            return Ok(());
        };
        let mut retries = 0u32;
        loop {
            let failed = self.fault.as_mut().is_some_and(|i| i.io_should_fail());
            if !failed {
                return Ok(());
            }
            self.resilience.io_faults_injected += 1;
            self.obs.record_fault_injected(self.obs_now, "io");
            if retries >= max {
                self.resilience.io_failures += 1;
                self.obs
                    .record_fault_unrecovered(self.obs_now, "io", "budget-exhausted");
                return Err(MosaicError::SwapIoFailed { retries, write });
            }
            retries += 1;
            self.resilience.io_retries += 1;
            self.resilience.io_backoff_ticks += 1u64 << retries.min(16);
            self.obs.record_fault_recovered(self.obs_now, "io", "retry");
        }
    }

    /// Whether every candidate slot of `cands` holds a live page — the
    /// associativity-conflict predicate of Figure 3.
    fn candidates_fully_live(&self, cands: &CandidateSet) -> bool {
        let cfg = *self.layout().config();
        self.frames.front_free_slot(cands.front_bucket).is_none()
            && self
                .frames
                .oldest_ghost_slot(cands.front_bucket, Yard::Front, self.horizon)
                .is_none()
            && cands
                .back_buckets
                .iter()
                .all(|&b| self.frames.back_live_count(b, self.horizon) >= cfg.back_slots())
    }

    /// Gate at the top of every allocation: absorbs injected transient
    /// failures with bounded retries, classifying an exhausted budget as an
    /// associativity conflict when the page's candidate set is fully live.
    fn alloc_gate(&mut self, key: PageKey) -> MosaicResult<()> {
        let Some(max) = self.fault.as_ref().map(|i| i.plan().max_alloc_retries) else {
            return Ok(());
        };
        let mut attempts = 0u32;
        loop {
            let failed = self.fault.as_mut().is_some_and(|i| i.alloc_should_fail());
            if !failed {
                return Ok(());
            }
            self.resilience.alloc_faults_injected += 1;
            self.obs.record_fault_injected(self.obs_now, "alloc");
            if attempts >= max {
                self.resilience.alloc_failures += 1;
                self.obs
                    .record_fault_unrecovered(self.obs_now, "alloc", "budget-exhausted");
                let cands = self.candidates(key);
                return Err(if self.candidates_fully_live(&cands) {
                    MosaicError::AssociativityConflict {
                        mvpn: key.vpn.0,
                        load_pct: self.utilization() * 100.0,
                    }
                } else {
                    MosaicError::AllocationFailed { retries: max }
                });
            }
            attempts += 1;
            self.resilience.alloc_retries += 1;
            self.obs.record_fault_recovered(self.obs_now, "alloc", "retry");
        }
    }

    /// Models a single-event upset in the CPFN a TLB ToC entry caches for a
    /// hit: flips one bit of the true encoding, detects the corruption
    /// (the flipped value decodes to a different — or no — candidate slot,
    /// never to a frame owning `key`), and recovers by a page-table
    /// re-walk, which in this model is the resident map itself.
    fn maybe_corrupt_translation(&mut self, key: PageKey, pfn: Pfn) {
        let flipped = self.fault.as_mut().is_some_and(|i| i.toc_should_flip());
        if !flipped {
            return;
        }
        self.resilience.toc_flips_injected += 1;
        self.obs.record_fault_injected(self.obs_now, "toc");
        let cands = self.candidates(key);
        let slot = self.layout().slot_of_pfn(pfn);
        let cpfn = self.codec.encode_slot(&cands, slot);
        let bits = self.codec.bits();
        let Some(corrupt) = self.fault.as_mut().map(|i| Cpfn(i.flip_bit(cpfn.0, bits))) else {
            return;
        };
        let detected = match self.codec.try_decode_slot(&cands, corrupt) {
            // Not a valid encoding, or the unmapped sentinel: obviously bad.
            Err(_) | Ok(None) => true,
            // Decodes, but to a slot that does not hold this page. (A flip
            // in the choice field can alias the same physical slot when the
            // hash picked duplicate backyard buckets; such a flip is benign
            // and genuinely undetectable.)
            Ok(Some(s)) => self.frames.slot_entry(s).is_none_or(|e| e.key != key),
        };
        if detected {
            self.resilience.toc_rewalks += 1;
            self.obs.record_fault_recovered(self.obs_now, "toc", "rewalk");
        } else {
            self.obs
                .record_fault_unrecovered(self.obs_now, "toc", "benign-alias");
        }
    }

    /// Evicts the page in `pfn`, doing swap-I/O accounting, and returns the
    /// now-free frame. A failed write-back leaves the page resident.
    /// `quota_self` marks quota-forced evictions (self-evict/trim) for the
    /// fault-attribution table; other calls are charged as capacity or
    /// cross-tenant displacement by comparing victim against requester.
    fn evict_frame(&mut self, pfn: Pfn, quota_self: bool) -> MosaicResult<Pfn> {
        let needs_writeback = self
            .frames
            .entry(pfn)
            .ok_or(MosaicError::internal("evicting an unoccupied frame"))?
            .eviction_needs_writeback();
        // The swap write happens (and may fail) before the frame is torn
        // down, so an I/O error aborts the eviction with the page intact.
        if needs_writeback {
            self.swap_io(true)?;
        }
        let entry = self.frames.evict(pfn);
        self.obs
            .attrib_evicted(self.obs_requester, entry.key.asid.0, quota_self);
        self.resident.remove(&entry.key);
        if let Some(sh) = self.shadow.as_mut() {
            sh.note_remove(entry.key);
        }
        self.global_lru.remove(&entry.key);
        if let Some(q) = self.quotas.as_mut() {
            q.note_evict(entry.key);
        }
        if let Some(sc) = self.scanner.as_mut() {
            sc.reset(pfn);
        }
        if entry.is_ghost(self.horizon) {
            self.stats.ghost_evictions += 1;
            self.obs.ghost_evictions.inc();
        } else {
            self.stats.live_evictions += 1;
            self.obs.live_evictions.inc();
        }
        if entry.eviction_needs_writeback() {
            self.stats.swapped_out += 1;
            self.obs.swapped_out.inc();
            self.swapped.insert(entry.key);
        } else {
            self.stats.clean_drops += 1;
            self.obs.clean_drops.inc();
            if entry.has_swap_copy {
                // The swap copy is still the page's contents.
                self.swapped.insert(entry.key);
            }
            // Otherwise the page was never written: it is all zeros and
            // simply reverts to untouched (next access is a minor fault).
        }
        Ok(pfn)
    }

    /// Forgets page `key` entirely: frees its frame (if resident) and
    /// drops any swap copy, with **no** swap I/O and no eviction
    /// accounting — the page's contents are dead, not displaced. Returns
    /// whether a frame was actually freed. Process-exit reclaim and
    /// shared-location teardown go through here.
    pub fn release(&mut self, key: PageKey) -> bool {
        self.swapped.remove(&key);
        let Some(pfn) = self.resident.remove(&key) else {
            return false;
        };
        if let Some(sh) = self.shadow.as_mut() {
            sh.note_remove(key);
        }
        let entry = self.frames.evict(pfn);
        debug_assert_eq!(entry.key, key);
        self.global_lru.remove(&key);
        if let Some(q) = self.quotas.as_mut() {
            q.note_evict(key);
        }
        if let Some(sc) = self.scanner.as_mut() {
            sc.reset(pfn);
        }
        true
    }

    /// Runs the scanning daemon when its interval has elapsed.
    fn run_scanner_if_due(&mut self, now: u64) {
        if let Some(sc) = self.scanner.as_mut() {
            if sc.due(now) {
                sc.scan(&mut self.frames, now);
            }
        }
    }

    /// Finds (or makes) a frame for `key` per the Iceberg + Horizon LRU
    /// policy, evicting if necessary. Fails only on injected faults that
    /// outlast their retry budget; no state is mutated past the point of
    /// failure, so the same fault may simply be re-taken later.
    fn allocate_frame(&mut self, key: PageKey, _now: u64) -> MosaicResult<Pfn> {
        self.alloc_gate(key)?;

        // Prior-work policy: hold live pages below (1 - δ)p by evicting
        // the *global* LRU page at capacity, so candidate slots are
        // (w.h.p.) never all full.
        if matches!(self.policy, MosaicPolicy::ReservedCapacity { .. })
            && self.frames.resident() >= self.live_budget
        {
            let (victim, _) = self
                .global_lru
                .peek_oldest()
                .ok_or(MosaicError::internal("resident pages are LRU-tracked"))?;
            let pfn = self
                .resident
                .get(&victim)
                .copied()
                .ok_or(MosaicError::internal("LRU victim is not resident"))?;
            self.evict_frame(pfn, false)?;
        }

        let cands = self.candidates(key);

        // A tenant at its working-set quota takes a separate path: make
        // room out of its own pages, or defer the admission — never
        // displace another tenant's live page.
        if self
            .quotas
            .as_ref()
            .is_some_and(|q| q.at_capacity(key.asid))
        {
            return self.allocate_at_quota(key, &cands);
        }

        // Steps 1–3 of Figure 3: the non-displacing placements.
        if let Some(pfn) = self.non_displacing_frame(&cands)? {
            return Ok(pfn);
        }

        // 4. Associativity conflict: every candidate slot is live. Fall
        // back to evicting the LRU candidate instead of aborting.
        self.stats.conflicts += 1;
        self.obs.conflicts.inc();
        if self.stats.conflicts == 1 {
            self.util.record_first_conflict(self.utilization());
            let load_pct = self.utilization() * 100.0;
            self.obs.record_first_conflict(self.obs_now, load_pct);
        }
        let (lru_slot, lru_ts) = self
            .frames
            .lru_candidate(&cands)
            .ok_or(MosaicError::internal(
                "conflict implies every candidate slot is occupied",
            ))?;
        // Quota-aware victim choice: prefer over-quota owners, then low
        // priority, then age. Without a quota table this *is* the LRU
        // candidate, bit-for-bit.
        let victim_slot = match self.quota_conflict_victim(&cands) {
            Some(slot) if slot != lru_slot => {
                if let Some(q) = self.quotas.as_mut() {
                    q.note_quota_eviction();
                }
                self.obs.quota_evictions.inc();
                slot
            }
            _ => lru_slot,
        };
        let pfn = self.layout().pfn_of_slot(victim_slot);
        let freed = self.evict_frame(pfn, false)?;
        if self.policy.uses_ghosts() {
            // Raise the horizon to the candidate-set LRU's access time —
            // regardless of which victim quota ordering picked. A global
            // LRU would have evicted everything at least that old by
            // now, so the ghost census stays a sound (conservative)
            // under-approximation; see DESIGN.md §12.
            self.horizon = self.horizon.max(lru_ts);
        }
        Ok(freed)
    }

    /// Steps 1–3 of Figure 3: a frame obtainable without displacing any
    /// live page — a free front slot, the oldest front-yard ghost, or a
    /// free/ghost slot in the emptiest backyard bucket. `Ok(None)` means
    /// every candidate slot is live (the conflict predicate).
    fn non_displacing_frame(&mut self, cands: &CandidateSet) -> MosaicResult<Option<Pfn>> {
        let cfg = *self.layout().config();

        // 1. Free front-yard slot.
        if let Some(slot) = self.frames.front_free_slot(cands.front_bucket) {
            return Ok(Some(self.layout().pfn_of_slot(slot)));
        }
        // 2. Ghost in the front yard: actually evict it, reuse its slot.
        if let Some(slot) =
            self.frames
                .oldest_ghost_slot(cands.front_bucket, Yard::Front, self.horizon)
        {
            let pfn = self.layout().pfn_of_slot(slot);
            return self.evict_frame(pfn, false).map(Some);
        }
        // 3. Power-of-d-choices over the backyard, ghosts not counted.
        let emptiest = cands
            .back_buckets
            .iter()
            .copied()
            .min_by_key(|&b| self.frames.back_live_count(b, self.horizon))
            .ok_or(MosaicError::internal("d_choices >= 1"))?;
        if self.frames.back_live_count(emptiest, self.horizon) < cfg.back_slots() {
            if let Some(slot) = self.frames.back_free_slot(emptiest) {
                return Ok(Some(self.layout().pfn_of_slot(slot)));
            }
            let slot = self
                .frames
                .oldest_ghost_slot(emptiest, Yard::Back, self.horizon)
                .ok_or(MosaicError::internal(
                    "live count below capacity implies a free or ghost slot",
                ))?;
            let pfn = self.layout().pfn_of_slot(slot);
            return self.evict_frame(pfn, false).map(Some);
        }
        Ok(None)
    }

    /// Allocation for a tenant at its cap: (1) self-evict its own LRU
    /// page among the candidate slots; else (2) take a non-displacing
    /// slot (the post-install trim loop restores the cap); else (3)
    /// defer with [`MosaicError::QuotaExceeded`] and counted backoff.
    /// Self-evictions never raise the horizon: the victim is chosen by
    /// ownership, not age, so ghosting from it would over-approximate
    /// what a global LRU would have evicted.
    fn allocate_at_quota(&mut self, key: PageKey, cands: &CandidateSet) -> MosaicResult<Pfn> {
        if let Some(slot) = self.own_candidate_victim(cands, key.asid) {
            let pfn = self.layout().pfn_of_slot(slot);
            let freed = self.evict_frame(pfn, true)?;
            if let Some(q) = self.quotas.as_mut() {
                q.note_self_eviction();
            }
            self.obs.quota_self_evictions.inc();
            return Ok(freed);
        }
        let has_own = self
            .quotas
            .as_ref()
            .is_some_and(|q| q.resident(key.asid) > 0);
        if has_own {
            if let Some(pfn) = self.non_displacing_frame(cands)? {
                return Ok(pfn);
            }
        }
        self.defer_quota(key)
    }

    /// Charges a deferred admission (backoff counted, not slept) and
    /// returns the typed backpressure error. No state past the quota
    /// table's streak counter is mutated, so the access can be retried.
    fn defer_quota(&mut self, key: PageKey) -> MosaicResult<Pfn> {
        let (resident, quota) = self
            .quotas
            .as_ref()
            .map(|q| {
                (
                    q.resident(key.asid) as u64,
                    q.quota(key.asid).map_or(0, |t| t.frames as u64),
                )
            })
            .unwrap_or((0, 0));
        let ticks = self
            .quotas
            .as_mut()
            .map_or(0, |q| q.note_deferred(key.asid));
        self.obs
            .record_quota_deferred(self.obs_now, key.asid.0, ticks);
        Err(MosaicError::QuotaExceeded {
            asid: key.asid.0,
            resident,
            quota,
        })
    }

    /// The least-recently-used page *owned by `asid`* among the candidate
    /// slots, if any (self-eviction victim).
    fn own_candidate_victim(&self, cands: &CandidateSet, asid: crate::addr::Asid) -> Option<SlotRef> {
        let cfg = *self.layout().config();
        cands
            .slots(&cfg)
            .enumerate()
            .filter_map(|(idx, s)| {
                self.frames
                    .slot_entry(s)
                    .filter(|e| e.key.asid == asid)
                    .map(|e| (e.last_access, idx, s))
            })
            .min_by_key(|&(ts, idx, _)| (ts, idx))
            .map(|(_, _, s)| s)
    }

    /// The quota-preferred conflict victim over occupied candidate
    /// slots: over-quota owners first, then ascending priority, then
    /// oldest access, then slot order. `None` without a quota table.
    fn quota_conflict_victim(&self, cands: &CandidateSet) -> Option<SlotRef> {
        let q = self.quotas.as_ref()?;
        let cfg = *self.layout().config();
        cands
            .slots(&cfg)
            .enumerate()
            .filter_map(|(idx, s)| {
                self.frames.slot_entry(s).map(|e| {
                    let (over, priority) = q.victim_class(e.key.asid);
                    ((over, priority, e.last_access, idx), s)
                })
            })
            .min_by_key(|&(rank, _)| rank)
            .map(|(_, s)| s)
    }

    /// Evicts `asid`'s own global-LRU pages until it is back within its
    /// quota (the rebalance after a capped tenant took a non-displacing
    /// slot). A failed write-back under injected I/O faults stops the
    /// trim — the tenant stays transiently over quota and the next fault
    /// resumes trimming.
    fn quota_trim(&mut self, asid: crate::addr::Asid) {
        loop {
            let victim = match self.quotas.as_ref() {
                Some(q) if q.over_quota(asid) => q.own_lru_oldest(asid),
                _ => return,
            };
            let Some(vkey) = victim else { return };
            let Some(pfn) = self.resident.get(&vkey).copied() else {
                // Tracked-but-not-resident would spin forever; bail (the
                // verify() census would flag the drift).
                return;
            };
            if self.evict_frame(pfn, true).is_err() {
                return;
            }
            if let Some(q) = self.quotas.as_mut() {
                q.note_self_eviction();
            }
            self.obs.quota_self_evictions.inc();
        }
    }
}

impl MemoryManager for MosaicMemory {
    fn try_access(
        &mut self,
        key: PageKey,
        kind: AccessKind,
        now: u64,
    ) -> MosaicResult<AccessOutcome> {
        self.stats.accesses += 1;
        self.obs.accesses.inc();
        self.obs_now = now;
        self.obs_requester = key.asid.0;

        if let Some(&pfn) = self.resident.get(&key) {
            let was_ghost = self
                .frames
                .entry(pfn)
                .ok_or(MosaicError::internal(
                    "resident map points at unoccupied frame",
                ))?
                .is_ghost(self.horizon);
            match self.scanner.as_mut() {
                Some(sc) => {
                    // Hardware sets the access bit; the daemon will
                    // refresh the timestamp at its next scan.
                    sc.mark(pfn);
                    if kind.is_write() {
                        self.frames.mark_dirty(pfn);
                    }
                }
                None => self.frames.touch(pfn, now, kind.is_write()),
            }
            if matches!(self.policy, MosaicPolicy::ReservedCapacity { .. }) {
                self.global_lru.touch(key, now);
            }
            if let Some(q) = self.quotas.as_mut() {
                q.note_touch(key, now);
            }
            self.run_scanner_if_due(now);
            if self.fault.is_some() {
                self.maybe_corrupt_translation(key, pfn);
            }
            return Ok(if was_ghost {
                self.obs.ghost_hits.inc();
                AccessOutcome::GhostHit
            } else {
                self.obs.hits.inc();
                AccessOutcome::Hit
            });
        }

        let from_swap = self.swapped.contains(&key);
        let pfn = self.allocate_frame(key, now)?;
        if from_swap {
            // The swap-in read; if it fails for good the page stays on the
            // swap device and the freed frame stays free — consistent, and
            // the access can be retried.
            self.swap_io(false)?;
            self.swapped.remove(&key);
        }
        let entry = FrameEntry {
            key,
            last_access: now,
            dirty: kind.is_write(),
            has_swap_copy: from_swap && !kind.is_write(),
        };
        self.frames.install(pfn, entry);
        self.resident.insert(key, pfn);
        if let Some(sh) = self.shadow.as_mut() {
            sh.note_install(key, pfn);
        }
        if let Some(q) = self.quotas.as_mut() {
            q.note_install(key, now);
        }
        if let Some(sc) = self.scanner.as_mut() {
            // Fault time is known to the OS exactly; history restarts.
            sc.reset(pfn);
            sc.mark(pfn);
        }
        if matches!(self.policy, MosaicPolicy::ReservedCapacity { .. }) {
            self.global_lru.touch(key, now);
        }
        self.run_scanner_if_due(now);
        let outcome = if from_swap {
            self.stats.major_faults += 1;
            self.stats.swapped_in += 1;
            self.obs.major_faults.inc();
            self.obs.swapped_in.inc();
            AccessOutcome::MajorFault
        } else {
            self.stats.minor_faults += 1;
            self.obs.minor_faults.inc();
            self.obs.attrib_cold(key.asid.0);
            AccessOutcome::MinorFault
        };
        // If a capped tenant took a non-displacing slot, rebalance by
        // evicting its own LRU pages back down to quota.
        self.quota_trim(key.asid);
        Ok(outcome)
    }

    fn set_obs(&mut self, obs: &mosaic_obs::ObsHandle, prefix: &str) {
        self.obs = MemObs::register(obs, prefix);
    }

    fn publish_obs(&self) {
        self.obs.util.set(self.utilization());
        self.obs.horizon.set(self.horizon as f64);
        self.obs.ghosts.set(self.ghost_count() as f64);
        if let Some(inj) = self.fault.as_ref() {
            self.obs
                .io_burst_remaining
                .set(f64::from(inj.burst_remaining()));
            self.obs
                .retry_budget_spent
                .set(self.resilience.retries() as f64);
            self.obs
                .io_backoff_ticks
                .set(self.resilience.io_backoff_ticks as f64);
        }
    }

    fn resident_pfn(&self, key: PageKey) -> Option<Pfn> {
        self.resident.get(&key).copied()
    }

    fn release_asid(&mut self, asid: crate::addr::Asid) -> u64 {
        let mut keys: Vec<PageKey> = self
            .resident
            .keys()
            .chain(self.swapped.iter())
            .filter(|k| k.asid == asid)
            .copied()
            .collect();
        // Iceberg placement depends only on table state, not release
        // order, but a deterministic order keeps replays auditable. The
        // hash key is injective today (asserted in PageKey::new); the
        // (asid, vpn) tiebreak keeps the order total even if the packing
        // ever stops being so, so racing frees can never reorder victims.
        keys.sort_unstable_by_key(|k| (k.hash_key(), k.asid.0, k.vpn.0));
        let mut freed = 0;
        for key in keys {
            if self.release(key) {
                freed += 1;
            }
        }
        if let Some(q) = self.quotas.as_mut() {
            q.remove_tenant(asid);
        }
        self.obs.attrib_shootdown(asid.0, freed);
        freed
    }

    fn set_quota(&mut self, asid: crate::addr::Asid, quota: TenantQuota) {
        let table = self.quotas.get_or_insert_with(QuotaTable::new);
        table.set(asid, quota);
        if table.resident(asid) == 0 {
            // Seed the table from pages resident before the quota existed,
            // in a deterministic (timestamp, key) order so replays agree.
            let mut seed: Vec<(u64, PageKey)> = self
                .resident
                .iter()
                .filter(|(k, _)| k.asid == asid)
                .filter_map(|(&k, &pfn)| {
                    self.frames.entry(pfn).map(|e| (e.last_access, k))
                })
                .collect();
            seed.sort_unstable_by_key(|&(ts, k)| (ts, k.hash_key()));
            if let Some(table) = self.quotas.as_mut() {
                for (ts, k) in seed {
                    table.note_install(k, ts);
                }
            }
        }
    }

    fn quota_stats(&self) -> QuotaStats {
        self.quotas.as_ref().map_or(QuotaStats::ZERO, |q| q.stats())
    }

    fn num_frames(&self) -> usize {
        self.frames.num_frames()
    }

    fn resident_frames(&self) -> usize {
        self.frames.resident()
    }

    fn stats(&self) -> &PagingStats {
        &self.stats
    }

    fn utilization_tracker(&self) -> &UtilizationTracker {
        &self.util
    }

    fn sample_utilization(&mut self) {
        let u = self.utilization();
        self.util.sample(u);
    }

    fn resilience(&self) -> &ResilienceStats {
        &self.resilience
    }

    fn verify(&self) -> MosaicResult<()> {
        invariants::check_frame_bijection(&self.frames, &self.resident)?;
        invariants::check_swap_disjoint(&self.resident, &self.swapped)?;
        invariants::check_ghost_census(&self.frames, self.horizon)?;
        if matches!(self.policy, MosaicPolicy::ReservedCapacity { .. }) {
            invariants::check_lru_tracks_resident(
                self.global_lru.len(),
                |k| self.global_lru.contains(k),
                &self.resident,
            )?;
        }
        if let Some(q) = self.quotas.as_ref() {
            invariants::check_quota_accounting(q, &self.resident)?;
        }
        if let Some(sh) = self.shadow.as_ref() {
            sh.verify_against(&self.resident)?;
        }
        // Placement: every resident page sits inside its candidate set,
        // so every CPFN stays decodable.
        let cfg = *self.layout().config();
        for (pfn, entry) in self.frames.iter_resident() {
            let slot = self.layout().slot_of_pfn(pfn);
            if self.candidates(entry.key).index_of_slot(&cfg, slot).is_none() {
                return Err(MosaicError::invariant(
                    "candidate-placement",
                    format!("{:?} at {pfn:?} is outside its candidate set", entry.key),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asid, Vpn};
    use mosaic_iceberg::IcebergConfig;

    fn key(n: u64) -> PageKey {
        PageKey::new(Asid(1), Vpn(n))
    }

    fn memory(buckets: usize) -> MosaicMemory {
        MosaicMemory::new(MemoryLayout::new(IcebergConfig::paper_default(buckets)), 11)
    }

    #[test]
    fn first_touch_is_minor_fault_then_hit() {
        let mut mm = memory(8);
        assert_eq!(mm.access(key(1), AccessKind::Load, 1), AccessOutcome::MinorFault);
        assert_eq!(mm.access(key(1), AccessKind::Load, 2), AccessOutcome::Hit);
        assert_eq!(mm.stats().minor_faults, 1);
        assert_eq!(mm.stats().swap_ops(), 0);
    }

    #[test]
    fn pages_land_in_their_candidate_set() {
        let mut mm = memory(16);
        for n in 0..800 {
            mm.access(key(n), AccessKind::Store, n + 1);
        }
        let cfg = *mm.layout().config();
        for n in 0..800 {
            let pfn = mm.resident_pfn(key(n)).expect("resident");
            let slot = mm.layout().slot_of_pfn(pfn);
            let cands = mm.candidates(key(n));
            assert!(
                cands.index_of_slot(&cfg, slot).is_some(),
                "page {n} placed outside its candidate set"
            );
        }
    }

    #[test]
    fn cpfn_round_trips_to_frame() {
        let mut mm = memory(16);
        for n in 0..500 {
            mm.access(key(n), AccessKind::Store, n + 1);
        }
        for n in 0..500 {
            let cpfn = mm.cpfn_of(key(n)).unwrap();
            let cands = mm.candidates(key(n));
            let slot = mm.codec().decode_slot(&cands, cpfn).unwrap();
            assert_eq!(
                mm.layout().pfn_of_slot(slot),
                mm.resident_pfn(key(n)).unwrap(),
                "CPFN decodes to the wrong frame for page {n}"
            );
        }
    }

    #[test]
    fn no_conflicts_below_95_percent() {
        let mut mm = memory(32); // 2048 frames
        let frames = mm.num_frames();
        let fill = frames * 95 / 100;
        for n in 0..fill as u64 {
            mm.access(key(n), AccessKind::Store, n + 1);
        }
        assert_eq!(mm.stats().conflicts, 0, "conflict below 95% utilization");
        assert_eq!(mm.stats().swap_ops(), 0);
    }

    #[test]
    fn first_conflict_utilization_is_high() {
        let mut mm = memory(64); // 4096 frames
        let mut now = 0;
        // Touch pages until the first conflict.
        let mut n = 0u64;
        while mm.stats().conflicts == 0 {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
            n += 1;
            assert!(n < 2 * mm.num_frames() as u64, "never conflicted");
        }
        let at_conflict = mm.utilization_tracker().first_conflict().unwrap();
        assert!(
            at_conflict > 0.95,
            "first conflict at {:.2}% utilization",
            at_conflict * 100.0
        );
    }

    #[test]
    fn overcommit_swaps_and_stays_consistent() {
        let mut mm = memory(16); // 1024 frames
        let frames = mm.num_frames() as u64;
        let footprint = frames + frames / 4; // 125 % of memory
        let mut now = 0;
        for round in 0..3 {
            for n in 0..footprint {
                now += 1;
                mm.access(key(n), AccessKind::Store, now);
            }
            // Residency never exceeds capacity.
            assert!(mm.resident_frames() <= mm.num_frames(), "round {round}");
        }
        assert!(mm.stats().swapped_out > 0, "overcommit must swap");
        assert!(mm.stats().major_faults > 0);
        // Conservation: every major fault re-read a page that was evicted.
        assert_eq!(mm.stats().swapped_in, mm.stats().major_faults);
    }

    #[test]
    fn ghost_reaccess_costs_no_io() {
        // Force a conflict so a horizon exists, then re-access a ghost.
        let mut mm = memory(16);
        let frames = mm.num_frames() as u64;
        let mut now = 0;
        for n in 0..frames + 64 {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
        }
        assert!(mm.horizon() > 0, "conflicts should have raised the horizon");
        // Find a resident ghost and re-access it.
        let ghost_key = (0..frames + 64)
            .map(key)
            .find(|&k| {
                mm.resident_pfn(k)
                    .and_then(|pfn| mm.frames.entry(pfn))
                    .is_some_and(|e| e.is_ghost(mm.horizon()))
            })
            .expect("some ghost is resident");
        let before = mm.stats().swap_ops();
        let outcome = mm.access(ghost_key, AccessKind::Load, now + 1);
        assert_eq!(outcome, AccessOutcome::GhostHit);
        assert_eq!(mm.stats().swap_ops(), before, "ghost hit must be free");
        // The page is live again.
        let pfn = mm.resident_pfn(ghost_key).unwrap();
        assert!(!mm.frames.entry(pfn).unwrap().is_ghost(mm.horizon()));
    }

    #[test]
    fn clean_page_eviction_skips_writeback() {
        let mut mm = memory(8);
        let frames = mm.num_frames() as u64;
        let mut now = 0;
        // Read-only touch of 130% of memory: evictions of never-written
        // pages must not produce swap-out I/O.
        for n in 0..frames * 13 / 10 {
            now += 1;
            mm.access(key(n), AccessKind::Load, now);
        }
        assert!(mm.stats().evictions() > 0);
        assert_eq!(mm.stats().swapped_out, 0, "clean pages never write back");
        // And their re-access is a minor fault (zero-fill), not swap-in.
        assert_eq!(mm.stats().swapped_in, 0);
    }

    #[test]
    fn dirty_then_clean_swap_cycle() {
        let mut mm = memory(8);
        let frames = mm.num_frames() as u64;
        let mut now = 0;
        // Write everything once (dirty), then cycle reads over an
        // overcommitted footprint.
        let footprint = frames + 200;
        for n in 0..footprint {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
        }
        let outs_after_writes = mm.stats().swapped_out;
        for _ in 0..2 {
            for n in 0..footprint {
                now += 1;
                mm.access(key(n), AccessKind::Load, now);
            }
        }
        // Read-only cycling re-faults pages from swap; once clean copies
        // exist, further evictions of those pages are free drops.
        assert!(mm.stats().clean_drops > 0, "expected clean drops");
        assert!(mm.stats().swapped_in >= mm.stats().swapped_out - outs_after_writes);
    }

    #[test]
    fn horizon_is_monotone() {
        let mut mm = memory(8);
        let mut last = 0;
        let mut now = 0;
        for n in 0..(mm.num_frames() as u64 * 3 / 2) {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
            assert!(mm.horizon() >= last, "horizon went backwards");
            last = mm.horizon();
        }
    }

    #[test]
    fn release_frees_frame_and_swap_copy_without_io() {
        let mut mm = memory(8);
        let frames = mm.num_frames() as u64;
        let mut now = 0;
        // Overcommit so some pages land on swap.
        for n in 0..frames + 100 {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
        }
        let io_before = mm.stats().swap_ops();
        let resident_before = mm.resident_frames();
        // Release one resident page and one swapped-out page.
        let resident_key = (0..frames + 100)
            .map(key)
            .find(|&k| mm.resident_pfn(k).is_some())
            .unwrap();
        let swapped_key = (0..frames + 100)
            .map(key)
            .find(|&k| mm.resident_pfn(k).is_none())
            .unwrap();
        assert!(mm.release(resident_key));
        assert!(!mm.release(swapped_key), "no frame to free for a swapped page");
        assert_eq!(mm.resident_frames(), resident_before - 1);
        assert_eq!(mm.stats().swap_ops(), io_before, "release must not do I/O");
        // The released pages revert to untouched: next access zero-fills.
        now += 1;
        assert_eq!(mm.access(resident_key, AccessKind::Load, now), AccessOutcome::MinorFault);
        now += 1;
        assert_eq!(mm.access(swapped_key, AccessKind::Load, now), AccessOutcome::MinorFault);
        mm.verify().unwrap();
    }

    #[test]
    fn release_asid_reclaims_only_that_asid() {
        let mut mm = memory(8);
        let mut now = 0;
        for n in 0..100u64 {
            now += 1;
            mm.access(PageKey::new(Asid(1), Vpn(n)), AccessKind::Store, now);
            now += 1;
            mm.access(PageKey::new(Asid(2), Vpn(n)), AccessKind::Store, now);
        }
        let freed = mm.release_asid(Asid(1));
        assert_eq!(freed, 100);
        assert_eq!(mm.resident_frames(), 100);
        for n in 0..100u64 {
            assert!(mm.resident_pfn(PageKey::new(Asid(1), Vpn(n))).is_none());
            assert!(mm.resident_pfn(PageKey::new(Asid(2), Vpn(n))).is_some());
        }
        assert_eq!(mm.release_asid(Asid(7)), 0, "unknown asid frees nothing");
        mm.verify().unwrap();
    }

    #[test]
    fn utilization_sampling_feeds_tracker() {
        let mut mm = memory(8);
        mm.access(key(0), AccessKind::Load, 1);
        mm.sample_utilization();
        let mean = mm.utilization_tracker().steady_state_mean().unwrap();
        assert!((mean - 1.0 / mm.num_frames() as f64).abs() < 1e-12);
    }
}

#[cfg(test)]
mod quota_tests {
    use super::*;
    use crate::addr::{Asid, Vpn};
    use crate::quota::TenantQuota;
    use mosaic_iceberg::IcebergConfig;

    fn k(asid: u16, vpn: u64) -> PageKey {
        PageKey::new(Asid(asid), Vpn(vpn))
    }

    fn memory(buckets: usize) -> MosaicMemory {
        MosaicMemory::new(MemoryLayout::new(IcebergConfig::paper_default(buckets)), 3)
    }

    fn tenant_resident(mm: &MosaicMemory, asid: u16) -> usize {
        mm.resident_pages()
            .filter(|(key, _)| key.asid == Asid(asid))
            .count()
    }

    #[test]
    fn quota_caps_tenant_residency() {
        let mut mm = memory(8);
        mm.set_quota(Asid(1), TenantQuota { frames: 32, priority: 0 });
        let mut now = 0;
        for vpn in 0..200 {
            now += 1;
            mm.access(k(1, vpn), AccessKind::Store, now);
            let count = tenant_resident(&mm, 1);
            assert!(count <= 32, "tenant at {count} frames against quota 32");
        }
        assert!(mm.quota_stats().self_evictions > 0);
        mm.verify().unwrap();
    }

    #[test]
    fn capped_hog_never_touches_victim_pages() {
        let mut mm = memory(8);
        let mut now = 0;
        // The victim's working set, established first (oldest timestamps).
        for vpn in 0..50 {
            now += 1;
            mm.access(k(2, vpn), AccessKind::Store, now);
        }
        // A capped hog sweeping far past its quota.
        mm.set_quota(Asid(1), TenantQuota { frames: 64, priority: 0 });
        for vpn in 0..1000 {
            now += 1;
            mm.access(k(1, vpn), AccessKind::Store, now);
        }
        for vpn in 0..50 {
            assert!(
                mm.resident_pfn(k(2, vpn)).is_some(),
                "victim page {vpn} displaced by a capped hog"
            );
        }
        assert!(tenant_resident(&mm, 1) <= 64);
        mm.verify().unwrap();
    }

    #[test]
    fn zero_quota_defers_with_exponential_backpressure() {
        let mut mm = memory(8);
        mm.set_quota(Asid(1), TenantQuota { frames: 0, priority: 0 });
        let err = mm.try_access(k(1, 0), AccessKind::Store, 1).unwrap_err();
        assert!(matches!(err, MosaicError::QuotaExceeded { .. }));
        assert!(err.is_transient(), "backpressure must be retryable");
        let _ = mm.try_access(k(1, 0), AccessKind::Store, 2).unwrap_err();
        let st = mm.quota_stats();
        assert_eq!(st.admissions_deferred, 2);
        assert_eq!(st.backoff_ticks, 1 + 2, "exponential in the streak");
        // Other tenants are unaffected by the deferrals.
        assert_eq!(
            mm.access(k(2, 0), AccessKind::Store, 3),
            AccessOutcome::MinorFault
        );
        mm.verify().unwrap();
    }

    #[test]
    fn late_quota_seeds_from_resident_pages() {
        let mut mm = memory(8);
        let mut now = 0;
        for vpn in 0..40 {
            now += 1;
            mm.access(k(1, vpn), AccessKind::Store, now);
        }
        mm.set_quota(Asid(1), TenantQuota { frames: 48, priority: 2 });
        mm.verify().unwrap(); // census: table count == recount, LRU covers
        // The cap binds going forward.
        for vpn in 40..200 {
            now += 1;
            mm.access(k(1, vpn), AccessKind::Store, now);
            assert!(tenant_resident(&mm, 1) <= 48);
        }
        mm.verify().unwrap();
    }

    #[test]
    fn release_asid_clears_quota_state() {
        let mut mm = memory(8);
        mm.set_quota(Asid(1), TenantQuota { frames: 16, priority: 0 });
        let mut now = 0;
        for vpn in 0..30 {
            now += 1;
            mm.access(k(1, vpn), AccessKind::Store, now);
        }
        mm.release_asid(Asid(1));
        // The quota died with the tenant: a respawned ASID is uncapped.
        for vpn in 0..64 {
            now += 1;
            mm.access(k(1, vpn), AccessKind::Store, now);
        }
        assert_eq!(tenant_resident(&mm, 1), 64);
        mm.verify().unwrap();
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::addr::{Asid, Vpn};
    use mosaic_iceberg::IcebergConfig;

    fn key(n: u64) -> PageKey {
        PageKey::new(Asid(1), Vpn(n))
    }

    fn memory_with(policy: MosaicPolicy) -> MosaicMemory {
        MosaicMemory::with_policy(
            MemoryLayout::new(IcebergConfig::paper_default(16)),
            11,
            policy,
        )
    }

    fn overcommit(mm: &mut MosaicMemory, passes: u64) {
        let footprint = mm.num_frames() as u64 * 6 / 5;
        let mut now = 0;
        for _ in 0..passes {
            for n in 0..footprint {
                now += 1;
                mm.access(key(n), AccessKind::Store, now);
            }
        }
    }

    #[test]
    fn candidate_lru_never_creates_ghosts() {
        let mut mm = memory_with(MosaicPolicy::CandidateLru);
        overcommit(&mut mm, 2);
        assert_eq!(mm.horizon(), 0, "no horizon without ghosts");
        assert_eq!(mm.ghost_count(), 0);
        assert_eq!(mm.stats().ghost_evictions, 0);
        assert!(mm.stats().live_evictions > 0);
    }

    #[test]
    fn reserved_capacity_caps_live_pages() {
        let mut mm = memory_with(MosaicPolicy::reserved_default());
        let budget = MosaicPolicy::reserved_default().live_budget(mm.num_frames());
        overcommit(&mut mm, 2);
        assert!(
            mm.resident_frames() <= budget,
            "resident {} exceeds budget {budget}",
            mm.resident_frames()
        );
        // The reserved fraction is wasted: utilization stays below 1 - δ.
        assert!(mm.utilization() <= budget as f64 / mm.num_frames() as f64 + 1e-9);
    }

    #[test]
    fn reserved_capacity_suppresses_conflicts() {
        // The point of the prior-work scheme: capacity evictions keep
        // candidate sets from filling with live pages. The paper's δ = 2%
        // is calibrated for GiB-scale memories; this 1024-frame test pool
        // needs a larger reserve for the same effect, and the suppression
        // must strengthen monotonically with the reserve.
        let conflicts_at = |permille| {
            let mut mm = memory_with(MosaicPolicy::ReservedCapacity {
                reserve_permille: permille,
            });
            overcommit(&mut mm, 3);
            (mm.stats().conflicts, mm.stats().evictions())
        };
        let (c20, _) = conflicts_at(20);
        let (c80, e80) = conflicts_at(80);
        // Versus the naive policy, where *every* eviction is a conflict.
        let mut naive = memory_with(MosaicPolicy::CandidateLru);
        overcommit(&mut naive, 3);
        assert!(c20 < naive.stats().conflicts, "reserve must beat naive");
        assert!(c80 < c20 / 2, "bigger reserve, fewer conflicts");
        assert!(c80 * 10 < e80, "8% reserve: conflicts are rare");
    }

    #[test]
    fn horizon_lru_swaps_no_more_than_candidate_lru() {
        // Ghosts can only help: a ghost hit avoids a swap-in that the
        // naive policy must pay.
        let mk = |policy| {
            let mut mm = memory_with(policy);
            overcommit(&mut mm, 3);
            mm.stats().swap_ops()
        };
        let horizon = mk(MosaicPolicy::HorizonLru);
        let naive = mk(MosaicPolicy::CandidateLru);
        assert!(
            horizon <= naive + naive / 10,
            "horizon {horizon} vs naive {naive}"
        );
    }

    #[test]
    fn all_policies_preserve_candidate_placement() {
        for policy in [
            MosaicPolicy::HorizonLru,
            MosaicPolicy::CandidateLru,
            MosaicPolicy::reserved_default(),
        ] {
            let mut mm = memory_with(policy);
            overcommit(&mut mm, 1);
            let cfg = *mm.layout().config();
            for n in 0..mm.num_frames() as u64 / 2 {
                if let Some(pfn) = mm.resident_pfn(key(n)) {
                    let slot = mm.layout().slot_of_pfn(pfn);
                    assert!(
                        mm.candidates(key(n)).index_of_slot(&cfg, slot).is_some(),
                        "{policy}: page outside candidate set"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod scanner_mode_tests {
    use super::*;
    use crate::addr::{Asid, Vpn};
    use crate::scanner::ScannerConfig;
    use mosaic_iceberg::IcebergConfig;

    fn key(n: u64) -> PageKey {
        PageKey::new(Asid(1), Vpn(n))
    }

    fn overcommit(mm: &mut MosaicMemory, passes: u64) -> u64 {
        let footprint = mm.num_frames() as u64 * 5 / 4;
        let mut now = 0;
        for _ in 0..passes {
            for n in 0..footprint {
                now += 1;
                mm.access(key(n), AccessKind::Store, now);
            }
        }
        now
    }

    #[test]
    fn scanner_mode_actually_scans() {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let mut mm = MosaicMemory::with_scanner(
            layout,
            5,
            ScannerConfig {
                interval: 1_000,
                ..Default::default()
            },
        );
        overcommit(&mut mm, 2);
        let st = mm.scanner().unwrap().stats();
        assert!(st.scans > 0, "daemon never ran");
        assert!(st.bits_cleared > 0);
    }

    #[test]
    fn hits_do_not_refresh_timestamps_between_scans() {
        // With the daemon effectively disabled (huge interval), a second
        // pass of pure hits leaves install-time timestamps in place —
        // the bit is set, but only a scan would convert it to a time.
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let mut mm = MosaicMemory::with_scanner(
            layout,
            5,
            ScannerConfig {
                interval: u64::MAX / 2,
                ..Default::default()
            },
        );
        let frames = mm.num_frames() as u64;
        let mut now = 0;
        // Fill half of memory (no evictions), then re-touch everything.
        for n in 0..frames / 2 {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
        }
        let first_pass_end = now;
        for n in 0..frames / 2 {
            now += 1;
            mm.access(key(n), AccessKind::Load, now);
        }
        let refreshed = mm
            .frames
            .iter_resident()
            .filter(|(_, e)| e.last_access > first_pass_end)
            .count();
        assert_eq!(refreshed, 0, "hits must not carry exact timestamps");
    }

    #[test]
    fn scanned_swapping_close_to_exact() {
        // The paper's sampling daemon must not wreck Horizon LRU: swap
        // I/O within 2x of the exact-timestamp run on a scan workload.
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let mut exact = MosaicMemory::new(layout, 5);
        let mut scanned = MosaicMemory::with_scanner(
            layout,
            5,
            ScannerConfig {
                interval: 2_000,
                ..Default::default()
            },
        );
        overcommit(&mut exact, 3);
        overcommit(&mut scanned, 3);
        let (e, s) = (exact.stats().swap_ops(), scanned.stats().swap_ops());
        assert!(s > 0 && e > 0);
        assert!(s < e * 2, "scanned {s} vs exact {e}");
    }

    #[test]
    fn ghost_hits_still_free_under_scanner() {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let mut mm = MosaicMemory::with_scanner(layout, 7, ScannerConfig::default());
        overcommit(&mut mm, 2);
        let before = mm.stats().swap_ops();
        // Re-touch a resident page; never I/O regardless of ghost status.
        if let Some(k) = (0..mm.num_frames() as u64).map(key).find(|&k| mm.resident_pfn(k).is_some()) {
            mm.access(k, AccessKind::Load, u64::MAX / 2);
            assert_eq!(mm.stats().swap_ops(), before);
        }
    }

    #[test]
    fn attribution_charges_cold_displacement_and_shootdown() {
        use mosaic_obs::{AttribCategory, ObsHandle};
        let obs = ObsHandle::enabled();
        obs.set_attrib(true);
        let mut mm =
            MosaicMemory::new(MemoryLayout::new(IcebergConfig::paper_default(8)), 11);
        mm.set_obs(&obs, "mosaic");
        // Two tenants overcommit the machine: every first touch is a cold
        // fault, and overflow evictions are blamed on whichever tenant's
        // fault forced them.
        let frames = mm.layout().num_frames() as u64;
        let mut now = 0;
        for n in 0..frames {
            for asid in [1u16, 2u16] {
                now += 1;
                mm.access(PageKey::new(Asid(asid), Vpn(n)), AccessKind::Store, now);
            }
        }
        let table = obs.attrib_table("mosaic.faults");
        assert_eq!(
            table.category_total(AttribCategory::Cold),
            mm.stats().minor_faults,
            "every demand-zero fault is charged as cold"
        );
        let displaced = table.category_total(AttribCategory::CapacityEvict)
            + table.category_total(AttribCategory::CrossTenant);
        assert_eq!(
            displaced,
            mm.stats().live_evictions + mm.stats().ghost_evictions,
            "every eviction is charged to exactly one displacement cell"
        );
        assert!(
            table.category_total(AttribCategory::CrossTenant) > 0,
            "interleaved tenants displace each other"
        );
        let freed = mm.release_asid(Asid(2));
        assert!(freed > 0);
        let table = obs.attrib_table("mosaic.faults");
        assert_eq!(table.category_total(AttribCategory::Shootdown), freed);
    }
}
