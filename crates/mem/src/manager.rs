//! The [`MemoryManager`] trait: the OS-side contract the simulator drives.
//!
//! Both memory systems under comparison — [`MosaicMemory`](crate::mosaic)
//! and the unconstrained [`LinuxMemory`](crate::linux) baseline — implement
//! this trait, so the swapping experiments (Tables 3–4) run the identical
//! reference stream through either.

use crate::addr::{Asid, PageKey, Pfn};
use crate::error::MosaicResult;
use crate::quota::{QuotaStats, TenantQuota};
use crate::stats::{PagingStats, ResilienceStats, UtilizationTracker};
use mosaic_obs::ObsHandle;

/// Whether an access reads or writes the page (drives dirty tracking and
/// therefore swap-out accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

impl AccessKind {
    /// Whether this access dirties the page.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// How an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// The page was resident and live.
    Hit,
    /// The page was resident but ghosted; it was resurrected without I/O
    /// (Mosaic only — the baseline has no ghosts).
    GhostHit,
    /// First touch: a frame was allocated and zero-filled, no I/O.
    MinorFault,
    /// The page was on swap: a frame was allocated and the page read back.
    MajorFault,
}

impl AccessOutcome {
    /// Whether the access required taking a page fault.
    pub fn faulted(self) -> bool {
        matches!(self, AccessOutcome::MinorFault | AccessOutcome::MajorFault)
    }
}

/// A demand-paged physical memory manager.
pub trait MemoryManager {
    /// Ensures `key` is resident (faulting and evicting as needed) and
    /// records an access at time `now`. `now` must be non-decreasing across
    /// calls.
    ///
    /// Fails only when the manager's fault injector exhausts a retry budget
    /// (or, defensively, on internal corruption); a failed access leaves the
    /// manager consistent — the page is simply not mapped in, and the same
    /// access may be retried later. Without an injector this never fails.
    fn try_access(&mut self, key: PageKey, kind: AccessKind, now: u64)
        -> MosaicResult<AccessOutcome>;

    /// Infallible convenience wrapper over [`try_access`](Self::try_access)
    /// for fault-free runs; panics on the (injected-fault-only) error path.
    fn access(&mut self, key: PageKey, kind: AccessKind, now: u64) -> AccessOutcome {
        match self.try_access(key, kind, now) {
            Ok(outcome) => outcome,
            Err(e) => panic!("unrecoverable memory fault: {e}"),
        }
    }

    /// The frame currently backing `key`, if resident.
    fn resident_pfn(&self, key: PageKey) -> Option<Pfn>;

    /// Releases every page belonging to `asid` — resident frames *and*
    /// swap copies — without any swap I/O, returning the number of frames
    /// freed. This is process-exit reclaim: the pages' contents are dead,
    /// so eviction accounting (write-back, swap-out counters) does not
    /// apply. Callers owning TLBs must shoot down the ASID separately.
    ///
    /// The default does nothing and returns 0, for managers that never see
    /// more than one address space.
    fn release_asid(&mut self, _asid: Asid) -> u64 {
        0
    }

    /// Sets (or replaces) `asid`'s working-set quota. Once any quota is
    /// set, eviction becomes quota-aware: a tenant at its cap self-evicts
    /// before displacing under-quota tenants, and allocations it cannot
    /// self-serve defer with [`QuotaExceeded`] backpressure. The default
    /// ignores quotas entirely (single-tenant managers).
    ///
    /// [`QuotaExceeded`]: crate::error::MosaicError::QuotaExceeded
    fn set_quota(&mut self, _asid: Asid, _quota: TenantQuota) {}

    /// Quota backpressure counters (all-zero when no quota was ever set,
    /// the default).
    fn quota_stats(&self) -> QuotaStats {
        QuotaStats::ZERO
    }

    /// Total physical frames managed.
    fn num_frames(&self) -> usize;

    /// Frames currently occupied (live or ghost).
    fn resident_frames(&self) -> usize;

    /// Occupied / total, the utilization metric of Table 3. A zero-frame
    /// manager is vacuously fully utilized rather than NaN.
    fn utilization(&self) -> f64 {
        if self.num_frames() == 0 {
            1.0
        } else {
            self.resident_frames() as f64 / self.num_frames() as f64
        }
    }

    /// Paging counters accumulated so far.
    fn stats(&self) -> &PagingStats;

    /// Fault-injection and recovery counters. All-zero for managers without
    /// an injector (the default).
    fn resilience(&self) -> &ResilienceStats {
        &ResilienceStats::ZERO
    }

    /// Checks the manager's internal structural invariants (frame-ownership
    /// bijection, accounting consistency, horizon monotonicity where
    /// applicable). The pressure driver calls this at configurable
    /// intervals during fault-injection runs. The default does nothing.
    fn verify(&self) -> MosaicResult<()> {
        Ok(())
    }

    /// Binds this manager's counters and events to `obs` under
    /// `<prefix>.*` names (see `docs/OBSERVABILITY.md` for the schema).
    /// The default ignores the handle; managers that implement it must
    /// keep behavior identical whether or not tracing is attached.
    fn set_obs(&mut self, _obs: &ObsHandle, _prefix: &str) {}

    /// Publishes slow-moving gauges (utilization, horizon, ghost count)
    /// to the attached registry. The experiment driver calls this just
    /// before each interval snapshot; the default does nothing.
    fn publish_obs(&self) {}

    /// Utilization milestones (first conflict, steady-state samples).
    fn utilization_tracker(&self) -> &UtilizationTracker;

    /// Folds the current utilization into the steady-state average; the
    /// experiment driver calls this periodically.
    fn sample_utilization(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_write_flag() {
        assert!(!AccessKind::Load.is_write());
        assert!(AccessKind::Store.is_write());
    }

    #[test]
    fn outcome_fault_classification() {
        assert!(!AccessOutcome::Hit.faulted());
        assert!(!AccessOutcome::GhostHit.faulted());
        assert!(AccessOutcome::MinorFault.faulted());
        assert!(AccessOutcome::MajorFault.faulted());
    }
}
