//! Paging statistics: the counters Tables 3 and 4 are built from.

/// Counters maintained by every [`MemoryManager`](crate::manager::MemoryManager).
///
/// *Swap I/O* accounting follows `sysstat`'s `pswpin`/`pswpout`, the metric
/// Table 4 reports: a swap-out is counted only when an evicted page's
/// contents must actually be written (dirty, or never yet on swap); evicting
/// a clean page whose swap copy is still valid is free, as is dropping a
/// never-written (all-zero) anonymous page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagingStats {
    /// Total page accesses driven through the manager.
    pub accesses: u64,
    /// First-touch (zero-fill) faults: no I/O.
    pub minor_faults: u64,
    /// Faults on swapped-out pages: each costs a swap-in I/O.
    pub major_faults: u64,
    /// Pages read back from the swap device.
    pub swapped_in: u64,
    /// Pages written to the swap device.
    pub swapped_out: u64,
    /// Evictions that reclaimed a ghost page (Mosaic only).
    pub ghost_evictions: u64,
    /// Evictions that took a live (non-ghost) page.
    pub live_evictions: u64,
    /// Clean pages dropped without I/O (valid swap copy or never written).
    pub clean_drops: u64,
    /// Associativity conflicts: allocations that found every candidate slot
    /// holding a live page (Mosaic only; the baseline never conflicts).
    pub conflicts: u64,
}

impl PagingStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total swap I/O operations (`pswpin + pswpout`), Table 4's unit.
    pub fn swap_ops(&self) -> u64 {
        self.swapped_in + self.swapped_out
    }

    /// Total faults of any kind.
    pub fn faults(&self) -> u64 {
        self.minor_faults + self.major_faults
    }

    /// Total evictions of any kind.
    pub fn evictions(&self) -> u64 {
        self.ghost_evictions + self.live_evictions
    }

    /// Faults per access, `0.0` for an empty stream (no accesses yet).
    pub fn fault_rate(&self) -> f64 {
        mosaic_obs::fmt::safe_ratio(self.faults(), self.accesses)
    }

    /// Swap I/O operations per access, `0.0` for an empty stream.
    pub fn swap_rate(&self) -> f64 {
        mosaic_obs::fmt::safe_ratio(self.swap_ops(), self.accesses)
    }
}

/// Counters for injected faults and the manager's recovery work.
///
/// Populated only when a manager carries a
/// [`FaultInjector`](crate::fault::FaultInjector); a fault-free run leaves
/// every field zero. Reported alongside [`PagingStats`] by the resilience
/// table of the pressure experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceStats {
    /// Transient allocation failures the injector produced.
    pub alloc_faults_injected: u64,
    /// Allocation attempts repeated after a transient failure.
    pub alloc_retries: u64,
    /// Allocations abandoned after exhausting the retry budget (each
    /// surfaced as a typed error to the driver).
    pub alloc_failures: u64,
    /// Swap I/O errors the injector produced (including burst members).
    pub io_faults_injected: u64,
    /// Swap I/O operations repeated after an error.
    pub io_retries: u64,
    /// Simulated exponential-backoff delay accumulated across I/O retries,
    /// in abstract ticks (doubling per consecutive retry).
    pub io_backoff_ticks: u64,
    /// Swap I/Os abandoned after exhausting the retry budget.
    pub io_failures: u64,
    /// Bit-flips injected into TLB-cached ToC entries (CPFNs).
    pub toc_flips_injected: u64,
    /// Corrupted translations recovered by a page-table re-walk.
    pub toc_rewalks: u64,
}

impl ResilienceStats {
    /// The all-zero counters, usable in `const` position.
    pub const ZERO: ResilienceStats = ResilienceStats {
        alloc_faults_injected: 0,
        alloc_retries: 0,
        alloc_failures: 0,
        io_faults_injected: 0,
        io_retries: 0,
        io_backoff_ticks: 0,
        io_failures: 0,
        toc_flips_injected: 0,
        toc_rewalks: 0,
    };

    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::ZERO
    }

    /// Total faults injected across all classes.
    pub fn faults_injected(&self) -> u64 {
        self.alloc_faults_injected + self.io_faults_injected + self.toc_flips_injected
    }

    /// Total retry attempts spent absorbing transient faults.
    pub fn retries(&self) -> u64 {
        self.alloc_retries + self.io_retries
    }

    /// Faults recovered without surfacing an error: retried-past transient
    /// failures plus re-walked ToC corruptions.
    pub fn recoveries(&self) -> u64 {
        self.alloc_retries + self.io_retries + self.toc_rewalks
    }

    /// Faults that exhausted their budget and surfaced as typed errors.
    pub fn hard_failures(&self) -> u64 {
        self.alloc_failures + self.io_failures
    }

    /// Folds another manager's counters into this one (for run totals).
    pub fn merge(&mut self, other: &ResilienceStats) {
        self.alloc_faults_injected += other.alloc_faults_injected;
        self.alloc_retries += other.alloc_retries;
        self.alloc_failures += other.alloc_failures;
        self.io_faults_injected += other.io_faults_injected;
        self.io_retries += other.io_retries;
        self.io_backoff_ticks += other.io_backoff_ticks;
        self.io_failures += other.io_failures;
        self.toc_flips_injected += other.toc_flips_injected;
        self.toc_rewalks += other.toc_rewalks;
    }
}

impl core::fmt::Display for ResilienceStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "faults {} (alloc {} / io {} / toc {}) | retries {} | backoff {} ticks | rewalks {} | hard failures {}",
            self.faults_injected(),
            self.alloc_faults_injected,
            self.io_faults_injected,
            self.toc_flips_injected,
            self.retries(),
            self.io_backoff_ticks,
            self.toc_rewalks,
            self.hard_failures(),
        )
    }
}

impl core::fmt::Display for PagingStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "accesses {} | faults {} minor / {} major | swap {} in / {} out | evictions {} ghost / {} live | conflicts {}",
            self.accesses,
            self.minor_faults,
            self.major_faults,
            self.swapped_in,
            self.swapped_out,
            self.ghost_evictions,
            self.live_evictions,
            self.conflicts,
        )
    }
}

/// Tracks memory-utilization milestones over a run (Table 3's two columns).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilizationTracker {
    /// Utilization (0..=1) when the first associativity conflict occurred.
    first_conflict: Option<f64>,
    /// Running sum of sampled utilizations, for the steady-state mean.
    sum: f64,
    /// Number of samples folded into `sum`.
    samples: u64,
    /// Highest utilization observed.
    peak: f64,
}

impl UtilizationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the utilization at the first conflict; later calls are no-ops
    /// (Table 3 reports the *first* conflict only).
    pub fn record_first_conflict(&mut self, utilization: f64) {
        self.first_conflict.get_or_insert(utilization);
    }

    /// Folds a periodic utilization sample into the steady-state average.
    pub fn sample(&mut self, utilization: f64) {
        self.sum += utilization;
        self.samples += 1;
        if utilization > self.peak {
            self.peak = utilization;
        }
    }

    /// Utilization at the first associativity conflict, if one occurred.
    pub fn first_conflict(&self) -> Option<f64> {
        self.first_conflict
    }

    /// Mean of the sampled utilizations, if any were taken.
    pub fn steady_state_mean(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.sum / self.samples as f64)
    }

    /// Highest utilization observed across samples.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_ops_sums_directions() {
        let s = PagingStats {
            swapped_in: 3,
            swapped_out: 5,
            ..PagingStats::new()
        };
        assert_eq!(s.swap_ops(), 8);
    }

    #[test]
    fn faults_and_evictions_sum() {
        let s = PagingStats {
            minor_faults: 2,
            major_faults: 3,
            ghost_evictions: 4,
            live_evictions: 5,
            ..PagingStats::new()
        };
        assert_eq!(s.faults(), 5);
        assert_eq!(s.evictions(), 9);
    }

    #[test]
    fn display_contains_counters() {
        let s = PagingStats {
            accesses: 10,
            conflicts: 2,
            ..PagingStats::new()
        };
        let text = s.to_string();
        assert!(text.contains("accesses 10"));
        assert!(text.contains("conflicts 2"));
    }

    #[test]
    fn rates_guard_empty_stream() {
        let s = PagingStats::new();
        assert_eq!(s.fault_rate(), 0.0);
        assert_eq!(s.swap_rate(), 0.0);
        let s = PagingStats {
            accesses: 10,
            minor_faults: 2,
            swapped_in: 1,
            ..PagingStats::new()
        };
        assert!((s.fault_rate() - 0.2).abs() < 1e-12);
        assert!((s.swap_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn resilience_rollups_and_merge() {
        let mut a = ResilienceStats {
            alloc_faults_injected: 4,
            alloc_retries: 3,
            alloc_failures: 1,
            io_faults_injected: 2,
            io_retries: 2,
            io_backoff_ticks: 6,
            io_failures: 0,
            toc_flips_injected: 5,
            toc_rewalks: 5,
        };
        assert_eq!(a.faults_injected(), 11);
        assert_eq!(a.retries(), 5);
        assert_eq!(a.recoveries(), 10);
        assert_eq!(a.hard_failures(), 1);
        a.merge(&a.clone());
        assert_eq!(a.faults_injected(), 22);
        assert_eq!(a.io_backoff_ticks, 12);
        assert_eq!(ResilienceStats::new(), ResilienceStats::ZERO);
        let text = a.to_string();
        assert!(text.contains("retries 10") && text.contains("rewalks 10"));
    }

    #[test]
    fn first_conflict_latches() {
        let mut t = UtilizationTracker::new();
        assert_eq!(t.first_conflict(), None);
        t.record_first_conflict(0.98);
        t.record_first_conflict(0.50);
        assert_eq!(t.first_conflict(), Some(0.98));
    }

    #[test]
    fn steady_state_mean_and_peak() {
        let mut t = UtilizationTracker::new();
        assert_eq!(t.steady_state_mean(), None);
        t.sample(0.5);
        t.sample(1.0);
        assert!((t.steady_state_mean().unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(t.peak(), 1.0);
    }
}
