//! Typed errors for the allocation/eviction/swap pipeline.
//!
//! Historically every impossible-or-unlucky condition in the managers was an
//! `expect`/`panic!`, which made fault-injection experiments abort instead of
//! measure. [`MosaicError`] gives each failure class its own variant so the
//! pressure driver can record, retry, or degrade gracefully, and tests can
//! assert on *which* failure occurred rather than on a panic message.

use std::error::Error;
use std::fmt;

/// Result alias used throughout the fallible memory-management paths.
pub type MosaicResult<T> = Result<T, MosaicError>;

/// A typed failure in the memory-management pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MosaicError {
    /// Every candidate slot of a faulting page is live and the eviction
    /// fallback could not free one (e.g. the fault injector exhausted the
    /// allocation retry budget mid-conflict). `load_pct` is the memory
    /// utilization at the moment of the conflict, the quantity Table 3
    /// tracks.
    AssociativityConflict {
        /// The mosaic virtual page number that could not be placed.
        mvpn: u64,
        /// Utilization (occupied/total, in percent) when the conflict hit.
        load_pct: f64,
    },
    /// A swap-device read or write kept failing after bounded retries.
    SwapIoFailed {
        /// How many retries were attempted before giving up.
        retries: u32,
        /// Whether the failing operation was a swap-out (write) or
        /// swap-in (read).
        write: bool,
    },
    /// Frame allocation failed transiently and the retry budget ran out
    /// without the failure being attributable to an associativity conflict.
    AllocationFailed {
        /// How many retries were attempted before giving up.
        retries: u32,
    },
    /// A tenant at its working-set quota asked for a frame it could not
    /// self-serve (no own page to displace): the admission is deferred
    /// with counted backoff rather than letting the tenant displace an
    /// under-quota victim. Transient — retrying later (after the tenant
    /// frees pages, or its quota is raised) can succeed.
    QuotaExceeded {
        /// The over-quota address space (raw 16-bit ASID).
        asid: u16,
        /// Frames the tenant held resident at the time.
        resident: u64,
        /// The tenant's quota, in frames.
        quota: u64,
    },
    /// A trace file failed to parse. Carries enough context to point at the
    /// offending byte.
    TraceCorrupt {
        /// Path of the trace file (best-effort, for diagnostics).
        file: String,
        /// Byte offset at which the corruption was detected.
        offset: u64,
        /// Human-readable description of what was wrong.
        detail: String,
    },
    /// A TLB-held ToC entry (a CPFN) disagrees with the page tables — the
    /// stored compressed frame number no longer names the frame that backs
    /// the page.
    TocMismatch {
        /// The virtual page number whose translation is inconsistent.
        vpn: u64,
        /// The CPFN bits the (possibly corrupted) cached entry holds.
        found: u8,
        /// The CPFN bits a fresh page-table walk produces, if the page is
        /// mapped at all.
        expected: Option<u8>,
    },
    /// An internal structural invariant failed a [`verify`] pass.
    ///
    /// [`verify`]: crate::manager::MemoryManager::verify
    InvariantViolation {
        /// Short stable name of the violated invariant.
        invariant: &'static str,
        /// What was observed.
        detail: String,
    },
    /// A "can't happen" internal inconsistency detected on a hot path that
    /// previously would have been a panic.
    Internal {
        /// Where the impossible state was observed.
        context: &'static str,
    },
}

impl MosaicError {
    /// Shorthand for an [`MosaicError::Internal`] error.
    pub fn internal(context: &'static str) -> Self {
        MosaicError::Internal { context }
    }

    /// Shorthand for an [`MosaicError::InvariantViolation`].
    pub fn invariant(invariant: &'static str, detail: impl Into<String>) -> Self {
        MosaicError::InvariantViolation {
            invariant,
            detail: detail.into(),
        }
    }

    /// Whether retrying the same operation could plausibly succeed
    /// (transient faults), as opposed to structural corruption.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MosaicError::SwapIoFailed { .. }
                | MosaicError::AllocationFailed { .. }
                | MosaicError::AssociativityConflict { .. }
                | MosaicError::QuotaExceeded { .. }
        )
    }
}

impl fmt::Display for MosaicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosaicError::AssociativityConflict { mvpn, load_pct } => write!(
                f,
                "associativity conflict: no candidate frame for mvpn {mvpn} at {load_pct:.2}% load"
            ),
            MosaicError::SwapIoFailed { retries, write } => write!(
                f,
                "swap {} failed after {retries} retries",
                if *write { "write-back" } else { "read" }
            ),
            MosaicError::AllocationFailed { retries } => {
                write!(f, "frame allocation failed after {retries} retries")
            }
            MosaicError::QuotaExceeded { asid, resident, quota } => write!(
                f,
                "asid {asid} over quota: {resident} resident frames against a quota of {quota}"
            ),
            MosaicError::TraceCorrupt { file, offset, detail } => {
                write!(f, "corrupt trace {file} at byte {offset}: {detail}")
            }
            MosaicError::TocMismatch { vpn, found, expected } => match expected {
                Some(e) => write!(
                    f,
                    "ToC mismatch for vpn {vpn}: cached CPFN {found:#04x}, page table says {e:#04x}"
                ),
                None => write!(
                    f,
                    "ToC mismatch for vpn {vpn}: cached CPFN {found:#04x}, page not mapped"
                ),
            },
            MosaicError::InvariantViolation { invariant, detail } => {
                write!(f, "invariant `{invariant}` violated: {detail}")
            }
            MosaicError::Internal { context } => {
                write!(f, "internal memory-manager inconsistency: {context}")
            }
        }
    }
}

impl Error for MosaicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = MosaicError::AssociativityConflict {
            mvpn: 42,
            load_pct: 98.4,
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("98.4"), "{s}");

        let e = MosaicError::SwapIoFailed {
            retries: 3,
            write: true,
        };
        assert!(e.to_string().contains("write-back"));
        let e = MosaicError::SwapIoFailed {
            retries: 3,
            write: false,
        };
        assert!(e.to_string().contains("read"));

        let e = MosaicError::TraceCorrupt {
            file: "t.bin".into(),
            offset: 12,
            detail: "bad magic".into(),
        };
        let s = e.to_string();
        assert!(s.contains("t.bin") && s.contains("byte 12") && s.contains("bad magic"));
    }

    #[test]
    fn quota_exceeded_display_and_transience() {
        let e = MosaicError::QuotaExceeded {
            asid: 3,
            resident: 17,
            quota: 16,
        };
        let s = e.to_string();
        assert!(s.contains("asid 3") && s.contains("17") && s.contains("16"), "{s}");
        assert!(e.is_transient(), "backpressure must be retryable");
    }

    #[test]
    fn transience_classification() {
        assert!(MosaicError::AllocationFailed { retries: 2 }.is_transient());
        assert!(MosaicError::SwapIoFailed {
            retries: 1,
            write: false
        }
        .is_transient());
        assert!(!MosaicError::internal("x").is_transient());
        assert!(!MosaicError::invariant("bijection", "off by one").is_transient());
    }

    #[test]
    fn toc_mismatch_display_both_arms() {
        let e = MosaicError::TocMismatch {
            vpn: 7,
            found: 0x1f,
            expected: Some(0x02),
        };
        assert!(e.to_string().contains("page table says"));
        let e = MosaicError::TocMismatch {
            vpn: 7,
            found: 0x1f,
            expected: None,
        };
        assert!(e.to_string().contains("not mapped"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(MosaicError::internal("slot table"));
        assert!(e.to_string().contains("slot table"));
    }
}
