//! A stock-Linux-faithful baseline: two-list (active/inactive) reclaim
//! with referenced bits and second chances.
//!
//! The exact-LRU baseline in [`linux`](crate::linux) is an *idealisation*
//! of Linux reclaim; real kernels approximate LRU with two FIFO lists and
//! per-page referenced bits, demoting from the active list and evicting
//! from the inactive list with one second chance. The approximation makes
//! systematically worse choices than exact LRU — which is part of why the
//! paper measures Mosaic beating stock Linux by up to 29 % (Table 4)
//! while staying close to an exact-LRU ideal. This module lets the
//! Table 4 driver and the ablation bench quantify exactly that gap.

use crate::addr::{PageKey, Pfn};
use crate::error::{MosaicError, MosaicResult};
use crate::frame::{FrameEntry, FrameTable};
use crate::invariants;
use crate::layout::MemoryLayout;
use crate::manager::{AccessKind, AccessOutcome, MemoryManager};
use crate::obs::MemObs;
use crate::stats::{PagingStats, UtilizationTracker};
use mosaic_obs::ObsHandle;
use std::collections::{HashMap, HashSet, VecDeque};

/// Per-page reclaim state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PageLru {
    referenced: bool,
    active: bool,
}

/// A two-list (active/inactive) clock-style memory manager.
///
/// Faulted-in pages enter the inactive list; a reference while inactive
/// marks the page, and reclaim promotes marked pages to the active list
/// instead of evicting them (one second chance). When the inactive list
/// runs low, the active list is scanned and unreferenced pages are
/// demoted. Reclaim triggers at the same 0.8 % free watermark as the
/// exact-LRU baseline.
///
/// # Example
///
/// ```
/// use mosaic_mem::prelude::*;
/// use mosaic_mem::clock::ClockMemory;
///
/// let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
/// let mut mm = ClockMemory::new(layout);
/// let key = PageKey::new(Asid::new(1), Vpn::new(3));
/// assert_eq!(mm.access(key, AccessKind::Store, 1), AccessOutcome::MinorFault);
/// assert_eq!(mm.access(key, AccessKind::Load, 2), AccessOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct ClockMemory {
    frames: FrameTable,
    free: Vec<Pfn>,
    resident: HashMap<PageKey, Pfn>,
    swapped: HashSet<PageKey>,
    lru_state: HashMap<PageKey, PageLru>,
    active: VecDeque<PageKey>,
    inactive: VecDeque<PageKey>,
    low_watermark: usize,
    high_watermark: usize,
    stats: PagingStats,
    util: UtilizationTracker,
    obs: MemObs,
    /// ASID of the in-flight access, for blaming reclaim on the tenant
    /// whose fault forced it.
    obs_requester: u16,
}

impl ClockMemory {
    /// Creates a manager with the default (0.8 % / 1.2 %) watermarks.
    pub fn new(layout: MemoryLayout) -> Self {
        let total = layout.num_frames();
        let low = (total * crate::linux::DEFAULT_LOW_WATERMARK_PERMILLE / 1000).max(1);
        let high = (total * crate::linux::DEFAULT_HIGH_WATERMARK_PERMILLE / 1000).max(low + 1);
        Self {
            free: (0..total as u64).rev().map(Pfn).collect(),
            frames: FrameTable::new(layout),
            resident: HashMap::new(),
            swapped: HashSet::new(),
            lru_state: HashMap::new(),
            active: VecDeque::new(),
            inactive: VecDeque::new(),
            low_watermark: low,
            high_watermark: high,
            stats: PagingStats::new(),
            util: UtilizationTracker::new(),
            obs: MemObs::noop(),
            obs_requester: 0,
        }
    }

    /// Free frames right now.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Length of the active list (diagnostics).
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Length of the inactive list (diagnostics).
    pub fn inactive_len(&self) -> usize {
        self.inactive.len()
    }

    fn evict(&mut self, victim: PageKey) -> MosaicResult<()> {
        let pfn = self
            .resident
            .remove(&victim)
            .ok_or(MosaicError::internal("reclaim only evicts resident pages"))?;
        let entry = self.frames.evict(pfn);
        self.obs
            .attrib_evicted(self.obs_requester, victim.asid.0, false);
        self.lru_state.remove(&victim);
        self.stats.live_evictions += 1;
        self.obs.live_evictions.inc();
        if entry.eviction_needs_writeback() {
            self.stats.swapped_out += 1;
            self.obs.swapped_out.inc();
            self.swapped.insert(victim);
        } else {
            self.stats.clean_drops += 1;
            self.obs.clean_drops.inc();
            if entry.has_swap_copy {
                self.swapped.insert(victim);
            }
        }
        self.free.push(pfn);
        Ok(())
    }

    /// Demotes unreferenced active pages until the inactive list holds at
    /// least as many pages as the active list (Linux's balancing goal).
    fn refill_inactive(&mut self) -> MosaicResult<()> {
        let mut scans = self.active.len();
        while self.inactive.len() < self.active.len() && scans > 0 {
            scans -= 1;
            let Some(page) = self.active.pop_front() else {
                break;
            };
            let state = self
                .lru_state
                .get_mut(&page)
                .ok_or(MosaicError::internal("listed pages have state"))?;
            if state.referenced {
                // Second chance: clear and rotate to the active tail.
                state.referenced = false;
                self.active.push_back(page);
            } else {
                state.active = false;
                self.inactive.push_back(page);
            }
        }
        Ok(())
    }

    /// kswapd-style shrink: evict from the inactive list (with one second
    /// chance) until free memory recovers to the high watermark.
    fn reclaim_if_needed(&mut self) -> MosaicResult<()> {
        if self.free.len() >= self.low_watermark {
            return Ok(());
        }
        while self.free.len() < self.high_watermark {
            if self.inactive.is_empty() {
                self.refill_inactive()?;
            }
            let Some(page) = self.inactive.pop_front() else {
                // Everything is active and referenced: force-demote.
                match self.active.pop_front() {
                    Some(p) => {
                        self.evict(p)?;
                        continue;
                    }
                    None => break,
                }
            };
            let state = self
                .lru_state
                .get_mut(&page)
                .ok_or(MosaicError::internal("listed pages have state"))?;
            if state.referenced {
                // Referenced while inactive: promote instead of evicting.
                state.referenced = false;
                state.active = true;
                self.active.push_back(page);
            } else {
                self.evict(page)?;
            }
        }
        Ok(())
    }
}

impl MemoryManager for ClockMemory {
    fn try_access(
        &mut self,
        key: PageKey,
        kind: AccessKind,
        now: u64,
    ) -> MosaicResult<AccessOutcome> {
        self.stats.accesses += 1;
        self.obs.accesses.inc();
        self.obs_requester = key.asid.0;

        if let Some(&pfn) = self.resident.get(&key) {
            self.frames.touch(pfn, now, kind.is_write());
            // Hardware sets the referenced bit; no list movement on access.
            self.lru_state
                .get_mut(&key)
                .ok_or(MosaicError::internal("resident pages have state"))?
                .referenced = true;
            self.obs.hits.inc();
            return Ok(AccessOutcome::Hit);
        }

        self.reclaim_if_needed()?;
        let pfn = self
            .free
            .pop()
            .ok_or(MosaicError::internal(
                "reclaim keeps the free list non-empty",
            ))?;
        let from_swap = self.swapped.remove(&key);
        self.frames.install(
            pfn,
            FrameEntry {
                key,
                last_access: now,
                dirty: kind.is_write(),
                has_swap_copy: from_swap && !kind.is_write(),
            },
        );
        self.resident.insert(key, pfn);
        self.lru_state.insert(
            key,
            PageLru {
                referenced: false,
                active: false,
            },
        );
        self.inactive.push_back(key);
        Ok(if from_swap {
            self.stats.major_faults += 1;
            self.stats.swapped_in += 1;
            self.obs.major_faults.inc();
            self.obs.swapped_in.inc();
            AccessOutcome::MajorFault
        } else {
            self.stats.minor_faults += 1;
            self.obs.minor_faults.inc();
            self.obs.attrib_cold(key.asid.0);
            AccessOutcome::MinorFault
        })
    }

    fn resident_pfn(&self, key: PageKey) -> Option<Pfn> {
        self.resident.get(&key).copied()
    }

    fn num_frames(&self) -> usize {
        self.frames.num_frames()
    }

    fn resident_frames(&self) -> usize {
        self.frames.resident()
    }

    fn stats(&self) -> &PagingStats {
        &self.stats
    }

    fn utilization_tracker(&self) -> &UtilizationTracker {
        &self.util
    }

    fn sample_utilization(&mut self) {
        let u = self.utilization();
        self.util.sample(u);
    }

    fn set_obs(&mut self, obs: &ObsHandle, prefix: &str) {
        self.obs = MemObs::register(obs, prefix);
    }

    fn publish_obs(&self) {
        self.obs.util.set(self.utilization());
    }

    fn verify(&self) -> MosaicResult<()> {
        invariants::check_frame_bijection(&self.frames, &self.resident)?;
        invariants::check_swap_disjoint(&self.resident, &self.swapped)?;
        invariants::check_free_list_accounting(self.num_frames(), &self.free, &self.frames)?;
        // The two lists together cover every resident page exactly once.
        if self.active.len() + self.inactive.len() != self.resident.len() {
            return Err(MosaicError::invariant(
                "clock-list-coverage",
                format!(
                    "{} active + {} inactive != {} resident",
                    self.active.len(),
                    self.inactive.len(),
                    self.resident.len()
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asid, Vpn};
    use mosaic_iceberg::IcebergConfig;

    fn key(n: u64) -> PageKey {
        PageKey::new(Asid(1), Vpn(n))
    }

    fn memory() -> ClockMemory {
        ClockMemory::new(MemoryLayout::new(IcebergConfig::paper_default(8)))
    }

    #[test]
    fn fault_then_hit() {
        let mut mm = memory();
        assert_eq!(mm.access(key(1), AccessKind::Store, 1), AccessOutcome::MinorFault);
        assert_eq!(mm.access(key(1), AccessKind::Load, 2), AccessOutcome::Hit);
    }

    #[test]
    fn no_reclaim_above_watermark() {
        let mut mm = memory();
        let fill = mm.num_frames() - mm.low_watermark - 1;
        for n in 0..fill as u64 {
            mm.access(key(n), AccessKind::Store, n + 1);
        }
        assert_eq!(mm.stats().evictions(), 0);
    }

    #[test]
    fn second_chance_protects_referenced_pages() {
        let mut mm = memory();
        let total = mm.num_frames() as u64;
        let mut now = 0;
        // Fill memory, then keep re-referencing the first 50 pages while
        // streaming new ones through.
        for n in 0..total {
            now += 1;
            mm.access(key(n), AccessKind::Store, now);
        }
        for round in 0..6u64 {
            for n in 0..50 {
                now += 1;
                mm.access(key(n), AccessKind::Load, now);
            }
            for n in 0..30 {
                now += 1;
                mm.access(key(total + round * 30 + n), AccessKind::Store, now);
            }
        }
        let mut hot_resident = 0;
        for n in 0..50 {
            if mm.resident_pfn(key(n)).is_some() {
                hot_resident += 1;
            }
        }
        assert!(
            hot_resident >= 45,
            "only {hot_resident}/50 hot pages survived reclaim"
        );
    }

    #[test]
    fn cold_stream_is_evicted() {
        let mut mm = memory();
        let total = mm.num_frames() as u64;
        for n in 0..total * 2 {
            mm.access(key(n), AccessKind::Store, n + 1);
        }
        assert!(mm.stats().evictions() > 0);
        assert!(mm.resident_frames() <= mm.num_frames());
        // Early stream pages (touched once) are gone.
        assert!(mm.resident_pfn(key(0)).is_none());
    }

    #[test]
    fn lists_partition_resident_pages() {
        let mut mm = memory();
        let total = mm.num_frames() as u64;
        let mut now = 0;
        for n in 0..total + 200 {
            now += 1;
            mm.access(key(n % (total + 100)), AccessKind::Store, now);
        }
        assert_eq!(
            mm.active_len() + mm.inactive_len(),
            mm.resident_frames(),
            "every resident page is on exactly one list"
        );
    }

    #[test]
    fn clock_swaps_at_least_as_much_as_exact_lru() {
        // The approximation cannot beat the ideal on a scan-heavy stream.
        use crate::linux::LinuxMemory;
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let mut clock = ClockMemory::new(layout);
        let mut exact = LinuxMemory::new(layout);
        let total = layout.num_frames() as u64;
        let mut now = 0;
        for _ in 0..4 {
            for n in 0..total * 5 / 4 {
                now += 1;
                clock.access(key(n), AccessKind::Store, now);
                exact.access(key(n), AccessKind::Store, now);
            }
        }
        assert!(
            clock.stats().swap_ops() + 50 >= exact.stats().swap_ops(),
            "clock {} vs exact {}",
            clock.stats().swap_ops(),
            exact.stats().swap_ops()
        );
    }
}
