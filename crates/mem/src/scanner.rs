//! The access-bit scanning daemon of the Linux prototype (§3.2).
//!
//! Horizon LRU needs per-page access *timestamps*, but x86 hardware only
//! maintains access *bits* — and clearing a page's access bit forces a
//! TLB invalidation, so scanning naively is expensive. The paper's
//! prototype runs a background daemon that scans mosaic memory at a fixed
//! interval, keeps "8 recent histories of access status" per page to
//! classify it hot or cold, always reads-and-clears the bits of cold
//! pages, but samples only 20 % of hot pages — assuming the other 80 %
//! were accessed (they almost certainly were; that's what made them hot).
//!
//! [`AccessScanner`] reproduces that daemon; `MosaicMemory::with_scanner`
//! runs Horizon LRU on the daemon's approximate timestamps instead of
//! exact ones, letting tests quantify the fidelity cost.

use crate::addr::Pfn;
use crate::frame::FrameTable;
use mosaic_hash::SplitMix64;

/// Daemon parameters (§3.2 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannerConfig {
    /// Accesses between scans (models the 1 s wall-clock interval).
    pub interval: u64,
    /// A page is *hot* when at least this many of its last 8 scan
    /// histories saw it accessed.
    pub hot_threshold: u32,
    /// Permille of hot pages whose access bit is actually read and
    /// cleared each scan (the paper samples 20 %).
    pub hot_sample_permille: u32,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        Self {
            interval: 65_536,
            hot_threshold: 5,
            hot_sample_permille: 200,
        }
    }
}

/// Daemon statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScannerStats {
    /// Scans performed.
    pub scans: u64,
    /// Access bits actually read and cleared (each would cost a TLB
    /// invalidation on real hardware).
    pub bits_cleared: u64,
    /// Hot pages assumed accessed without touching their bit (the
    /// invalidations saved).
    pub assumed_accessed: u64,
}

/// The background scanning daemon.
#[derive(Debug, Clone)]
pub struct AccessScanner {
    cfg: ScannerConfig,
    /// Per-frame simulated hardware access bit.
    marked: Vec<bool>,
    /// Per-frame 8-scan access history (bit 0 = most recent).
    history: Vec<u8>,
    last_scan: u64,
    rng: SplitMix64,
    stats: ScannerStats,
}

impl AccessScanner {
    /// Creates a daemon for `num_frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero or the sample rate exceeds 1000 ‰.
    pub fn new(num_frames: usize, cfg: ScannerConfig, seed: u64) -> Self {
        assert!(cfg.interval > 0, "scan interval must be positive");
        assert!(cfg.hot_sample_permille <= 1000, "sample rate over 100%");
        assert!(cfg.hot_threshold <= 8, "history holds 8 scans");
        Self {
            cfg,
            marked: vec![false; num_frames],
            history: vec![0; num_frames],
            last_scan: 0,
            rng: SplitMix64::new(seed),
            stats: ScannerStats::default(),
        }
    }

    /// The daemon configuration.
    pub fn config(&self) -> &ScannerConfig {
        &self.cfg
    }

    /// Daemon statistics so far.
    pub fn stats(&self) -> &ScannerStats {
        &self.stats
    }

    /// Hardware sets the frame's access bit (called on every access).
    pub fn mark(&mut self, pfn: Pfn) {
        self.marked[pfn.0 as usize] = true;
    }

    /// Resets daemon state for a frame that changed owners.
    pub fn reset(&mut self, pfn: Pfn) {
        self.marked[pfn.0 as usize] = false;
        self.history[pfn.0 as usize] = 0;
    }

    /// Whether a page is currently classified hot.
    pub fn is_hot(&self, pfn: Pfn) -> bool {
        self.history[pfn.0 as usize].count_ones() >= self.cfg.hot_threshold
    }

    /// Whether a scan is due at time `now`.
    pub fn due(&self, now: u64) -> bool {
        now >= self.last_scan + self.cfg.interval
    }

    /// Runs one scan over every resident frame, refreshing the last-access
    /// timestamp (to `now`) of each page observed — or assumed — accessed.
    pub fn scan(&mut self, frames: &mut FrameTable, now: u64) {
        self.stats.scans += 1;
        self.last_scan = now;
        let resident: Vec<Pfn> = frames.iter_resident().map(|(pfn, _)| pfn).collect();
        for pfn in resident {
            let idx = pfn.0 as usize;
            let hot = self.history[idx].count_ones() >= self.cfg.hot_threshold;
            let sampled = !hot
                || self.rng.next_below(1000) < u64::from(self.cfg.hot_sample_permille);
            let accessed = if sampled {
                // Read and clear the real bit (a TLB invalidation on
                // real hardware — the cost the sampling avoids).
                self.stats.bits_cleared += 1;
                std::mem::take(&mut self.marked[idx])
            } else {
                // Hot and unsampled: assume accessed, leave the bit.
                self.stats.assumed_accessed += 1;
                true
            };
            self.history[idx] = (self.history[idx] << 1) | u8::from(accessed);
            if accessed {
                frames.touch(pfn, now, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asid, PageKey, Vpn};
    use crate::frame::FrameEntry;
    use crate::layout::MemoryLayout;
    use mosaic_iceberg::IcebergConfig;

    fn table() -> FrameTable {
        FrameTable::new(MemoryLayout::new(IcebergConfig::paper_default(8)))
    }

    fn install(frames: &mut FrameTable, pfn: u64, at: u64) {
        frames.install(
            Pfn(pfn),
            FrameEntry {
                key: PageKey::new(Asid(1), Vpn(pfn)),
                last_access: at,
                dirty: false,
                has_swap_copy: false,
            },
        );
    }

    #[test]
    fn scan_refreshes_marked_pages_only() {
        let mut frames = table();
        install(&mut frames, 0, 1);
        install(&mut frames, 1, 1);
        let mut sc = AccessScanner::new(frames.num_frames(), ScannerConfig::default(), 7);
        sc.mark(Pfn(0));
        sc.scan(&mut frames, 100);
        assert_eq!(frames.entry(Pfn(0)).unwrap().last_access, 100);
        assert_eq!(frames.entry(Pfn(1)).unwrap().last_access, 1, "unmarked page untouched");
    }

    #[test]
    fn pages_become_hot_after_repeated_scans() {
        let mut frames = table();
        install(&mut frames, 3, 0);
        let mut sc = AccessScanner::new(frames.num_frames(), ScannerConfig::default(), 7);
        assert!(!sc.is_hot(Pfn(3)));
        for t in 1..=6u64 {
            sc.mark(Pfn(3));
            sc.scan(&mut frames, t * 100);
        }
        assert!(sc.is_hot(Pfn(3)), "6 consecutive accessed scans => hot");
    }

    #[test]
    fn hot_pages_are_mostly_assumed() {
        let mut frames = table();
        for pfn in 0..100 {
            install(&mut frames, pfn, 0);
        }
        let mut sc = AccessScanner::new(frames.num_frames(), ScannerConfig::default(), 7);
        // Make everything hot.
        for t in 1..=8u64 {
            for pfn in 0..100 {
                sc.mark(Pfn(pfn));
            }
            sc.scan(&mut frames, t * 100);
        }
        let before = *sc.stats();
        sc.scan(&mut frames, 10_000);
        let after = *sc.stats();
        let assumed = after.assumed_accessed - before.assumed_accessed;
        let cleared = after.bits_cleared - before.bits_cleared;
        // ~80% assumed, ~20% sampled.
        assert!(
            (60..=95).contains(&assumed),
            "assumed {assumed} of 100 hot pages"
        );
        assert_eq!(assumed + cleared, 100);
    }

    #[test]
    fn cold_pages_always_sampled() {
        let mut frames = table();
        for pfn in 0..50 {
            install(&mut frames, pfn, 0);
        }
        let mut sc = AccessScanner::new(frames.num_frames(), ScannerConfig::default(), 7);
        sc.scan(&mut frames, 100);
        assert_eq!(sc.stats().bits_cleared, 50, "all cold pages read");
        assert_eq!(sc.stats().assumed_accessed, 0);
    }

    #[test]
    fn reset_clears_history() {
        let mut frames = table();
        install(&mut frames, 0, 0);
        let mut sc = AccessScanner::new(frames.num_frames(), ScannerConfig::default(), 7);
        for t in 1..=8u64 {
            sc.mark(Pfn(0));
            sc.scan(&mut frames, t);
        }
        assert!(sc.is_hot(Pfn(0)));
        sc.reset(Pfn(0));
        assert!(!sc.is_hot(Pfn(0)));
    }

    #[test]
    fn due_respects_interval() {
        let sc = AccessScanner::new(16, ScannerConfig { interval: 100, ..Default::default() }, 1);
        assert!(!sc.due(99));
        assert!(sc.due(100));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        AccessScanner::new(16, ScannerConfig { interval: 0, ..Default::default() }, 1);
    }
}
