//! Observability handles for the memory managers.
//!
//! A [`MemObs`] bundle mirrors [`crate::stats::PagingStats`] as live
//! counter handles plus the fault-injection outcome events the
//! resilience harness (PR 1) produces. Managers own one bundle each,
//! registered under a prefix (`mosaic.*`, `linux.*`, `clock.*`) so a
//! dual-manager pressure run exports both sides in one stream.
//!
//! Fault outcomes obey a conservation law the integration tests assert:
//! every `fault.injected` event is followed by exactly one of
//! `fault.recovered` (a retry or re-walk absorbed it) or
//! `fault.unrecovered` (retry budget exhausted → typed error, or an
//! undetectable benign ToC flip). So `injected == recovered +
//! unrecovered`, both as events and as the `<prefix>.fault.*` counters.

use mosaic_obs::{Counter, Gauge, ObsHandle, Value};

/// Per-manager metric handles (all no-ops by default).
#[derive(Debug, Clone, Default)]
pub struct MemObs {
    handle: ObsHandle,
    prefix: String,
    /// `<prefix>.accesses`
    pub accesses: Counter,
    /// `<prefix>.hits`
    pub hits: Counter,
    /// `<prefix>.ghost_hits`
    pub ghost_hits: Counter,
    /// `<prefix>.minor_faults`
    pub minor_faults: Counter,
    /// `<prefix>.major_faults`
    pub major_faults: Counter,
    /// `<prefix>.swapped_in`
    pub swapped_in: Counter,
    /// `<prefix>.swapped_out`
    pub swapped_out: Counter,
    /// `<prefix>.clean_drops`
    pub clean_drops: Counter,
    /// `<prefix>.ghost_evictions`
    pub ghost_evictions: Counter,
    /// `<prefix>.live_evictions`
    pub live_evictions: Counter,
    /// `<prefix>.conflicts`
    pub conflicts: Counter,
    /// `<prefix>.fault.injected`
    pub fault_injected: Counter,
    /// `<prefix>.fault.recovered`
    pub fault_recovered: Counter,
    /// `<prefix>.fault.unrecovered`
    pub fault_unrecovered: Counter,
    /// `<prefix>.util` — fraction of frames occupied.
    pub util: Gauge,
    /// `<prefix>.horizon` — the Horizon LRU high-water mark.
    pub horizon: Gauge,
    /// `<prefix>.ghosts` — resident ghost pages.
    pub ghosts: Gauge,
}

impl MemObs {
    /// A disabled bundle.
    pub fn noop() -> Self {
        Self::default()
    }

    /// Registers the bundle under `<prefix>.*` names on `obs`.
    pub fn register(obs: &ObsHandle, prefix: &str) -> Self {
        let c = |name: &str| obs.counter(&format!("{prefix}.{name}"));
        Self {
            handle: obs.clone(),
            prefix: prefix.to_string(),
            accesses: c("accesses"),
            hits: c("hits"),
            ghost_hits: c("ghost_hits"),
            minor_faults: c("minor_faults"),
            major_faults: c("major_faults"),
            swapped_in: c("swapped_in"),
            swapped_out: c("swapped_out"),
            clean_drops: c("clean_drops"),
            ghost_evictions: c("ghost_evictions"),
            live_evictions: c("live_evictions"),
            conflicts: c("conflicts"),
            fault_injected: c("fault.injected"),
            fault_recovered: c("fault.recovered"),
            fault_unrecovered: c("fault.unrecovered"),
            util: obs.gauge(&format!("{prefix}.util")),
            horizon: obs.gauge(&format!("{prefix}.horizon")),
            ghosts: obs.gauge(&format!("{prefix}.ghosts")),
        }
    }

    /// Whether the bundle is bound to a live registry.
    pub fn is_enabled(&self) -> bool {
        self.handle.is_enabled()
    }

    /// A fault was injected (`kind` ∈ `alloc`/`io`/`toc`). Emits the
    /// `fault.injected` event and bumps the counter.
    pub fn record_fault_injected(&self, now: u64, kind: &str) {
        self.fault_injected.inc();
        if self.handle.is_enabled() {
            self.handle.event(
                now,
                "fault.injected",
                &[
                    ("mgr", Value::from(self.prefix.as_str())),
                    ("kind", Value::from(kind)),
                ],
            );
        }
    }

    /// An injected fault was absorbed by a recovery action
    /// (`via` ∈ `retry`/`rewalk`).
    pub fn record_fault_recovered(&self, now: u64, kind: &str, via: &str) {
        self.fault_recovered.inc();
        if self.handle.is_enabled() {
            self.handle.event(
                now,
                "fault.recovered",
                &[
                    ("mgr", Value::from(self.prefix.as_str())),
                    ("kind", Value::from(kind)),
                    ("via", Value::from(via)),
                ],
            );
        }
    }

    /// An injected fault was *not* absorbed: the retry budget was
    /// exhausted (`how = "budget-exhausted"`, surfaced to the caller as
    /// a typed error) or the corruption is genuinely undetectable
    /// (`how = "benign-alias"`).
    pub fn record_fault_unrecovered(&self, now: u64, kind: &str, how: &str) {
        self.fault_unrecovered.inc();
        if self.handle.is_enabled() {
            self.handle.event(
                now,
                "fault.unrecovered",
                &[
                    ("mgr", Value::from(self.prefix.as_str())),
                    ("kind", Value::from(kind)),
                    ("how", Value::from(how)),
                ],
            );
        }
    }

    /// Milestone: the first associativity conflict of the run (Table 3's
    /// headline number). Later conflicts only bump the counter.
    pub fn record_first_conflict(&self, now: u64, load_pct: f64) {
        if self.handle.is_enabled() {
            self.handle.event(
                now,
                "mosaic.first_conflict",
                &[
                    ("mgr", Value::from(self.prefix.as_str())),
                    ("load_pct", Value::from(load_pct)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_bundle_records_nothing() {
        let o = MemObs::noop();
        o.accesses.inc();
        o.record_fault_injected(1, "io");
        o.record_fault_recovered(2, "io", "retry");
        assert_eq!(o.accesses.get(), 0);
        assert_eq!(o.fault_injected.get(), 0);
    }

    #[test]
    fn fault_events_carry_manager_prefix() {
        let obs = ObsHandle::enabled();
        let o = MemObs::register(&obs, "mosaic");
        o.record_fault_injected(10, "alloc");
        o.record_fault_unrecovered(11, "alloc", "budget-exhausted");
        assert_eq!(obs.counter_value("mosaic.fault.injected"), 1);
        assert_eq!(obs.counter_value("mosaic.fault.unrecovered"), 1);
        let text = obs.render_jsonl();
        assert!(text.contains("\"fault.injected\""));
        assert!(text.contains("\"budget-exhausted\""));
    }
}
