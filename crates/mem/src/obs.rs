//! Observability handles for the memory managers.
//!
//! A [`MemObs`] bundle mirrors [`crate::stats::PagingStats`] as live
//! counter handles plus the fault-injection outcome events the
//! resilience harness (PR 1) produces. Managers own one bundle each,
//! registered under a prefix (`mosaic.*`, `linux.*`, `clock.*`) so a
//! dual-manager pressure run exports both sides in one stream.
//!
//! Fault outcomes obey a conservation law the integration tests assert:
//! every `fault.injected` event is followed by exactly one of
//! `fault.recovered` (a retry or re-walk absorbed it) or
//! `fault.unrecovered` (retry budget exhausted → typed error, or an
//! undetectable benign ToC flip). So `injected == recovered +
//! unrecovered`, both as events and as the `<prefix>.fault.*` counters.

use mosaic_obs::{AttribCategory, AttribHandle, Counter, Gauge, ObsHandle, Value};

/// Per-manager metric handles (all no-ops by default).
#[derive(Debug, Clone, Default)]
pub struct MemObs {
    handle: ObsHandle,
    prefix: String,
    /// `<prefix>.accesses`
    pub accesses: Counter,
    /// `<prefix>.hits`
    pub hits: Counter,
    /// `<prefix>.ghost_hits`
    pub ghost_hits: Counter,
    /// `<prefix>.minor_faults`
    pub minor_faults: Counter,
    /// `<prefix>.major_faults`
    pub major_faults: Counter,
    /// `<prefix>.swapped_in`
    pub swapped_in: Counter,
    /// `<prefix>.swapped_out`
    pub swapped_out: Counter,
    /// `<prefix>.clean_drops`
    pub clean_drops: Counter,
    /// `<prefix>.ghost_evictions`
    pub ghost_evictions: Counter,
    /// `<prefix>.live_evictions`
    pub live_evictions: Counter,
    /// `<prefix>.conflicts`
    pub conflicts: Counter,
    /// `<prefix>.fault.injected`
    pub fault_injected: Counter,
    /// `<prefix>.fault.recovered`
    pub fault_recovered: Counter,
    /// `<prefix>.fault.unrecovered`
    pub fault_unrecovered: Counter,
    /// `<prefix>.quota.self_evictions` — capped tenants displacing their
    /// own pages.
    pub quota_self_evictions: Counter,
    /// `<prefix>.quota.evictions` — conflict victims steered away from
    /// the plain LRU candidate by quota/priority ordering.
    pub quota_evictions: Counter,
    /// `<prefix>.quota.deferred` — admissions deferred with
    /// `QuotaExceeded` backpressure.
    pub quota_deferred: Counter,
    /// `<prefix>.quota.backoff_ticks` — counted (not slept) backoff
    /// charged for those deferrals.
    pub quota_backoff_ticks: Counter,
    /// `<prefix>.util` — fraction of frames occupied.
    pub util: Gauge,
    /// `<prefix>.horizon` — the Horizon LRU high-water mark.
    pub horizon: Gauge,
    /// `<prefix>.ghosts` — resident ghost pages.
    pub ghosts: Gauge,
    /// `<prefix>.fault.io_burst_remaining` — forced failures left in the
    /// injector's in-flight I/O brown-out (0 = no burst active).
    pub io_burst_remaining: Gauge,
    /// `<prefix>.fault.retry_budget_spent` — total alloc + I/O retries
    /// the manager has consumed absorbing injected faults.
    pub retry_budget_spent: Gauge,
    /// `<prefix>.fault.io_backoff_ticks` — counted backoff spent on I/O
    /// retries (distinct from `quota.backoff_ticks`, so degraded
    /// throughput is attributable to bursts vs. quota backpressure).
    pub io_backoff_ticks: Gauge,
    /// `<prefix>.faults` attribution table: every fault/eviction charged
    /// to a `(cause, evictor ASID, victim ASID)` cell. A no-op unless
    /// attribution is opted in on the registry.
    pub attrib: AttribHandle,
}

impl MemObs {
    /// A disabled bundle.
    pub fn noop() -> Self {
        Self::default()
    }

    /// Registers the bundle under `<prefix>.*` names on `obs`.
    pub fn register(obs: &ObsHandle, prefix: &str) -> Self {
        let c = |name: &str| obs.counter(&format!("{prefix}.{name}"));
        Self {
            handle: obs.clone(),
            prefix: prefix.to_string(),
            accesses: c("accesses"),
            hits: c("hits"),
            ghost_hits: c("ghost_hits"),
            minor_faults: c("minor_faults"),
            major_faults: c("major_faults"),
            swapped_in: c("swapped_in"),
            swapped_out: c("swapped_out"),
            clean_drops: c("clean_drops"),
            ghost_evictions: c("ghost_evictions"),
            live_evictions: c("live_evictions"),
            conflicts: c("conflicts"),
            fault_injected: c("fault.injected"),
            fault_recovered: c("fault.recovered"),
            fault_unrecovered: c("fault.unrecovered"),
            quota_self_evictions: c("quota.self_evictions"),
            quota_evictions: c("quota.evictions"),
            quota_deferred: c("quota.deferred"),
            quota_backoff_ticks: c("quota.backoff_ticks"),
            util: obs.gauge(&format!("{prefix}.util")),
            horizon: obs.gauge(&format!("{prefix}.horizon")),
            ghosts: obs.gauge(&format!("{prefix}.ghosts")),
            io_burst_remaining: obs.gauge(&format!("{prefix}.fault.io_burst_remaining")),
            retry_budget_spent: obs.gauge(&format!("{prefix}.fault.retry_budget_spent")),
            io_backoff_ticks: obs.gauge(&format!("{prefix}.fault.io_backoff_ticks")),
            attrib: obs.attrib(&format!("{prefix}.faults")),
        }
    }

    /// Whether the bundle is bound to a live registry.
    pub fn is_enabled(&self) -> bool {
        self.handle.is_enabled()
    }

    /// A fault was injected (`kind` ∈ `alloc`/`io`/`toc`). Emits the
    /// `fault.injected` event and bumps the counter.
    pub fn record_fault_injected(&self, now: u64, kind: &str) {
        self.fault_injected.inc();
        if self.handle.is_enabled() {
            self.handle.event(
                now,
                "fault.injected",
                &[
                    ("mgr", Value::from(self.prefix.as_str())),
                    ("kind", Value::from(kind)),
                ],
            );
        }
    }

    /// An injected fault was absorbed by a recovery action
    /// (`via` ∈ `retry`/`rewalk`).
    pub fn record_fault_recovered(&self, now: u64, kind: &str, via: &str) {
        self.fault_recovered.inc();
        if self.handle.is_enabled() {
            self.handle.event(
                now,
                "fault.recovered",
                &[
                    ("mgr", Value::from(self.prefix.as_str())),
                    ("kind", Value::from(kind)),
                    ("via", Value::from(via)),
                ],
            );
        }
    }

    /// An injected fault was *not* absorbed: the retry budget was
    /// exhausted (`how = "budget-exhausted"`, surfaced to the caller as
    /// a typed error) or the corruption is genuinely undetectable
    /// (`how = "benign-alias"`).
    pub fn record_fault_unrecovered(&self, now: u64, kind: &str, how: &str) {
        self.fault_unrecovered.inc();
        if self.handle.is_enabled() {
            self.handle.event(
                now,
                "fault.unrecovered",
                &[
                    ("mgr", Value::from(self.prefix.as_str())),
                    ("kind", Value::from(kind)),
                    ("how", Value::from(how)),
                ],
            );
        }
    }

    /// An admission was deferred under quota backpressure: bumps the
    /// `quota.deferred` / `quota.backoff_ticks` counters and emits a
    /// `quota.deferred` event carrying the ticks charged.
    pub fn record_quota_deferred(&self, now: u64, asid: u16, ticks: u64) {
        self.quota_deferred.inc();
        self.quota_backoff_ticks.add(ticks);
        if self.handle.is_enabled() {
            self.handle.event(
                now,
                "quota.deferred",
                &[
                    ("mgr", Value::from(self.prefix.as_str())),
                    ("asid", Value::from(u64::from(asid))),
                    ("backoff_ticks", Value::from(ticks)),
                ],
            );
        }
    }

    /// Charges a demand-zero (first-touch) fault to the faulting tenant.
    #[inline]
    pub fn attrib_cold(&self, asid: u16) {
        self.attrib.charge(AttribCategory::Cold, asid, asid);
    }

    /// Charges a displacement eviction at evict time: `quota_self`
    /// marks quota-forced self-evictions/trims; otherwise the cell is
    /// capacity (evictor == victim) or cross-tenant displacement.
    #[inline]
    pub fn attrib_evicted(&self, evictor: u16, victim: u16, quota_self: bool) {
        let cat = if quota_self {
            AttribCategory::QuotaSelf
        } else if evictor == victim {
            AttribCategory::CapacityEvict
        } else {
            AttribCategory::CrossTenant
        };
        self.attrib.charge(cat, evictor, victim);
    }

    /// Charges `freed` frames reclaimed by an exit-time shootdown
    /// (`release_asid`).
    #[inline]
    pub fn attrib_shootdown(&self, asid: u16, freed: u64) {
        self.attrib.charge_n(AttribCategory::Shootdown, asid, asid, freed);
    }

    /// Milestone: the first associativity conflict of the run (Table 3's
    /// headline number). Later conflicts only bump the counter.
    pub fn record_first_conflict(&self, now: u64, load_pct: f64) {
        if self.handle.is_enabled() {
            self.handle.event(
                now,
                "mosaic.first_conflict",
                &[
                    ("mgr", Value::from(self.prefix.as_str())),
                    ("load_pct", Value::from(load_pct)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_bundle_records_nothing() {
        let o = MemObs::noop();
        o.accesses.inc();
        o.record_fault_injected(1, "io");
        o.record_fault_recovered(2, "io", "retry");
        assert_eq!(o.accesses.get(), 0);
        assert_eq!(o.fault_injected.get(), 0);
    }

    #[test]
    fn quota_deferred_counts_and_events() {
        let obs = ObsHandle::enabled();
        let o = MemObs::register(&obs, "mosaic");
        o.record_quota_deferred(5, 3, 4);
        o.record_quota_deferred(6, 3, 8);
        assert_eq!(obs.counter_value("mosaic.quota.deferred"), 2);
        assert_eq!(obs.counter_value("mosaic.quota.backoff_ticks"), 12);
        assert!(obs.render_jsonl().contains("\"quota.deferred\""));
    }

    #[test]
    fn fault_events_carry_manager_prefix() {
        let obs = ObsHandle::enabled();
        let o = MemObs::register(&obs, "mosaic");
        o.record_fault_injected(10, "alloc");
        o.record_fault_unrecovered(11, "alloc", "budget-exhausted");
        assert_eq!(obs.counter_value("mosaic.fault.injected"), 1);
        assert_eq!(obs.counter_value("mosaic.fault.unrecovered"), 1);
        let text = obs.render_jsonl();
        assert!(text.contains("\"fault.injected\""));
        assert!(text.contains("\"budget-exhausted\""));
    }
}
