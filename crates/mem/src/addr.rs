//! Page-granularity address types shared across the workspace.
//!
//! The paper's gem5 platform uses 36-bit VPNs and PFNs over 4 KiB base
//! pages (Table 1a); these newtypes keep virtual/physical and
//! page-number/byte-address quantities statically distinct.

/// Log2 of the base page size (4 KiB pages).
pub const PAGE_SHIFT: u32 = 12;

/// The base page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Width of a VPN in the simulated platform (Table 1a: 36-bit VPNs).
pub const VPN_BITS: u32 = 36;

/// A virtual byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The virtual page number containing this address.
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// The byte offset within the page.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl core::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl core::ops::Add<u64> for VirtAddr {
    type Output = VirtAddr;

    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(pub u64);

impl core::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// Creates a VPN.
    pub fn new(vpn: u64) -> Self {
        Vpn(vpn)
    }

    /// The first byte address of the page.
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }
}

impl core::fmt::Display for Vpn {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A physical frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pfn(pub u64);

impl Pfn {
    /// Creates a PFN.
    pub fn new(pfn: u64) -> Self {
        Pfn(pfn)
    }

    /// The first byte address of the frame.
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// The physical address of `offset` bytes into this frame.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= PAGE_SIZE`.
    pub fn with_offset(self, offset: u64) -> PhysAddr {
        assert!(offset < PAGE_SIZE, "offset {offset} exceeds page size");
        PhysAddr((self.0 << PAGE_SHIFT) | offset)
    }
}

impl core::fmt::Display for Pfn {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// An address-space identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Asid(pub u16);

impl Asid {
    /// Creates an ASID.
    pub fn new(asid: u16) -> Self {
        Asid(asid)
    }

    /// The kernel's address space (ASID 0 by convention in this model).
    pub const KERNEL: Asid = Asid(0);
}

impl core::fmt::Display for Asid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "asid:{}", self.0)
    }
}

/// The unit the Mosaic allocator hashes: an `(ASID, VPN)` pair (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Owning address space.
    pub asid: Asid,
    /// Virtual page number within that address space.
    pub vpn: Vpn,
}

impl PageKey {
    /// Creates a page key.
    ///
    /// # Panics
    ///
    /// Panics if the VPN exceeds [`VPN_BITS`] (36 bits, per Table 1a), so
    /// the packed 64-bit hash key is injective.
    pub fn new(asid: Asid, vpn: Vpn) -> Self {
        assert!(
            vpn.0 < (1 << VPN_BITS),
            "vpn {:#x} exceeds {} bits",
            vpn.0,
            VPN_BITS
        );
        Self { asid, vpn }
    }

    /// Packs the pair into the 64-bit key fed to the hash family.
    ///
    /// The packing is injective (ASID in the high bits, VPN in the low 36),
    /// so distinct pages always get independent candidate sets.
    pub fn hash_key(self) -> u64 {
        (u64::from(self.asid.0) << VPN_BITS) | self.vpn.0
    }
}

impl core::fmt::Display for PageKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.asid, self.vpn)
    }
}

impl mosaic_iceberg::table::IcebergKey for PageKey {
    fn hash_key(&self) -> u64 {
        PageKey::hash_key(*self)
    }
}

impl mosaic_iceberg::AtomicWord for PageKey {
    /// The packed hash key doubles as the slot word: it is injective
    /// (asserted in [`PageKey::new`]), which is exactly what the
    /// concurrent table's word-compared reads require.
    fn to_word(&self) -> u64 {
        PageKey::hash_key(*self)
    }
    fn from_word(word: u64) -> Self {
        Self {
            asid: Asid((word >> VPN_BITS) as u16),
            vpn: Vpn(word & ((1 << VPN_BITS) - 1)),
        }
    }
}

impl mosaic_iceberg::AtomicWord for Pfn {
    fn to_word(&self) -> u64 {
        self.0
    }
    fn from_word(word: u64) -> Self {
        Pfn(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_decomposition() {
        let va = VirtAddr(0x0000_1234_5678);
        assert_eq!(va.vpn(), Vpn(0x0001_2345));
        assert_eq!(va.page_offset(), 0x678);
        assert_eq!(va.vpn().base(), VirtAddr(0x0000_1234_5000));
    }

    #[test]
    fn page_boundaries() {
        assert_eq!(VirtAddr(0).vpn(), Vpn(0));
        assert_eq!(VirtAddr(PAGE_SIZE - 1).vpn(), Vpn(0));
        assert_eq!(VirtAddr(PAGE_SIZE).vpn(), Vpn(1));
    }

    #[test]
    fn pfn_with_offset() {
        let pa = Pfn(3).with_offset(0x10);
        assert_eq!(pa, PhysAddr(0x3010));
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_offset_panics() {
        Pfn(0).with_offset(PAGE_SIZE);
    }

    #[test]
    fn page_key_packing_is_injective() {
        let a = PageKey::new(Asid(1), Vpn(0));
        let b = PageKey::new(Asid(0), Vpn(1 << 35));
        assert_ne!(a.hash_key(), b.hash_key());
        // Top of the VPN range does not bleed into the ASID field.
        let c = PageKey::new(Asid(0), Vpn((1 << VPN_BITS) - 1));
        let d = PageKey::new(Asid(1), Vpn(0));
        assert_ne!(c.hash_key(), d.hash_key());
        assert_eq!(d.hash_key(), 1 << VPN_BITS);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_vpn_panics() {
        PageKey::new(Asid(0), Vpn(1 << VPN_BITS));
    }

    #[test]
    fn addr_add() {
        assert_eq!(VirtAddr(10) + 6, VirtAddr(16));
    }

    #[test]
    fn displays() {
        assert_eq!(VirtAddr(0xff).to_string(), "va:0xff");
        assert_eq!(Pfn(2).to_string(), "pfn:0x2");
        assert_eq!(Asid(7).to_string(), "asid:7");
        assert_eq!(
            PageKey::new(Asid(7), Vpn(1)).to_string(),
            "(asid:7, vpn:0x1)"
        );
    }
}
