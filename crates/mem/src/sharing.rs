//! Shared memory via **location IDs** — the §2.5 extension the paper
//! sketches as future work.
//!
//! Base Mosaic hashes `(ASID, VPN)`, so two address spaces can never map
//! the same frame: their candidate sets are disjoint. The paper's
//! proposed fix: give each ToC a *location ID* and hash
//! `(location ID, i)` for the `i`-th page of the mosaic page. The same
//! location ID can then be bound at several places — duplicate `mmap`s in
//! one address space, or genuine cross-ASID shared memory — and every
//! binding resolves to the same frames and the same CPFNs. The OS draws
//! location IDs randomly (a few colliding ToCs are harmless; "Iceberg
//! hashing is robust enough to handle this"), which is also what lets a
//! hardware implementation use a cheap hash after the TLB lookup.

use crate::addr::{Asid, PageKey, Pfn, Vpn};
use crate::cpfn::Cpfn;
use crate::layout::MemoryLayout;
use crate::manager::{AccessKind, AccessOutcome, MemoryManager};
use crate::mosaic::MosaicMemory;
use crate::stats::PagingStats;
use mosaic_hash::SplitMix64;
use std::collections::{HashMap, HashSet};

/// An identifier naming one ToC's worth of physical placements,
/// independent of any address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocationId(u32);

impl LocationId {
    /// Raw value (30 bits).
    pub fn get(self) -> u32 {
        self.0
    }
}

impl core::fmt::Display for LocationId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "loc:{:#x}", self.0)
    }
}

/// Errors from binding mosaic pages to locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The `(ASID, mosaic page)` slot already has a binding.
    AlreadyMapped,
    /// The location ID was never created by this manager.
    UnknownLocation,
}

impl core::fmt::Display for MapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MapError::AlreadyMapped => write!(f, "mosaic page already mapped"),
            MapError::UnknownLocation => write!(f, "unknown location id"),
        }
    }
}

impl std::error::Error for MapError {}

/// A Mosaic memory manager with location-ID indirection (§2.5).
///
/// # Example
///
/// ```
/// use mosaic_mem::prelude::*;
/// use mosaic_mem::sharing::SharedMosaicMemory;
///
/// let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
/// let mut mm = SharedMosaicMemory::new(layout, 4, 7);
/// // One location, mapped into two address spaces.
/// let loc = mm.create_location();
/// mm.map(Asid::new(1), 0, loc).unwrap();
/// mm.map(Asid::new(2), 5, loc).unwrap();
/// mm.access(Asid::new(1), Vpn::new(2), AccessKind::Store, 1);
/// // The other process sees the same physical frame.
/// let a = mm.resident_pfn_of(Asid::new(1), Vpn::new(2)).unwrap();
/// let b = mm.resident_pfn_of(Asid::new(2), Vpn::new(22)).unwrap();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SharedMosaicMemory {
    inner: MosaicMemory,
    /// Base pages per mosaic page.
    arity: usize,
    /// `(asid, mosaic-page index) -> location`.
    bindings: HashMap<(Asid, u64), LocationId>,
    /// Issued location IDs.
    locations: HashSet<LocationId>,
    rng: SplitMix64,
}

/// Location IDs are 30-bit so the synthetic hash key (`location << 6 |
/// offset`) stays inside the 36-bit VPN field of [`PageKey`].
const LOCATION_BITS: u32 = 30;

impl SharedMosaicMemory {
    /// Creates a manager over `layout` with the given mosaic arity.
    ///
    /// # Panics
    ///
    /// Panics unless `arity` is a power of two in `1..=64`.
    pub fn new(layout: MemoryLayout, arity: usize, seed: u64) -> Self {
        assert!(
            arity.is_power_of_two() && (1..=64).contains(&arity),
            "arity must be a power of two in 1..=64, got {arity}"
        );
        Self {
            inner: MosaicMemory::new(layout, seed),
            arity,
            bindings: HashMap::new(),
            locations: HashSet::new(),
            rng: SplitMix64::new(seed ^ 0x10CA_7104),
        }
    }

    /// The mosaic arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Draws a fresh random location ID (the OS-side allocation; §2.5
    /// tolerates collisions, but we retry for determinism of tests).
    pub fn create_location(&mut self) -> LocationId {
        loop {
            let loc = LocationId((self.rng.next_u64() & ((1 << LOCATION_BITS) - 1)) as u32);
            if self.locations.insert(loc) {
                return loc;
            }
        }
    }

    /// Binds mosaic page `mpage` of `asid` to `loc` (an `mmap` of the
    /// shared object).
    ///
    /// # Errors
    ///
    /// [`MapError::AlreadyMapped`] if the slot is taken,
    /// [`MapError::UnknownLocation`] if `loc` wasn't issued here.
    pub fn map(&mut self, asid: Asid, mpage: u64, loc: LocationId) -> Result<(), MapError> {
        if !self.locations.contains(&loc) {
            return Err(MapError::UnknownLocation);
        }
        match self.bindings.entry((asid, mpage)) {
            std::collections::hash_map::Entry::Occupied(_) => Err(MapError::AlreadyMapped),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(loc);
                Ok(())
            }
        }
    }

    /// Removes a binding (an `munmap`); frames stay owned by the location
    /// and remain visible through its other bindings.
    pub fn unmap(&mut self, asid: Asid, mpage: u64) -> Option<LocationId> {
        self.bindings.remove(&(asid, mpage))
    }

    /// The location bound at `(asid, mpage)`, if any.
    pub fn binding(&self, asid: Asid, mpage: u64) -> Option<LocationId> {
        self.bindings.get(&(asid, mpage)).copied()
    }

    fn split(&self, vpn: Vpn) -> (u64, usize) {
        let bits = self.arity.trailing_zeros();
        (vpn.0 >> bits, (vpn.0 & (self.arity as u64 - 1)) as usize)
    }

    /// The synthetic allocator key for `(location, i)` — the quantity the
    /// hardware hashes in the §2.5 design.
    fn location_key(loc: LocationId, offset: usize) -> PageKey {
        // The hash input is (location ID, i): injective by construction.
        PageKey::new(Asid(0), Vpn((u64::from(loc.0) << 6) | offset as u64))
    }

    /// Accesses `(asid, vpn)`, demand-creating a *private* location for
    /// the mosaic page if nothing is bound (anonymous memory behaviour).
    pub fn access(&mut self, asid: Asid, vpn: Vpn, kind: AccessKind, now: u64) -> AccessOutcome {
        let (mpage, offset) = self.split(vpn);
        let loc = match self.binding(asid, mpage) {
            Some(loc) => loc,
            None => {
                let loc = self.create_location();
                self.bindings.insert((asid, mpage), loc);
                loc
            }
        };
        self.inner
            .access(Self::location_key(loc, offset), kind, now)
    }

    /// Fallible variant of [`access`](Self::access): propagates typed
    /// errors from the underlying manager (only possible when it carries a
    /// fault injector) instead of panicking.
    pub fn try_access(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        kind: AccessKind,
        now: u64,
    ) -> crate::error::MosaicResult<AccessOutcome> {
        let (mpage, offset) = self.split(vpn);
        let loc = match self.binding(asid, mpage) {
            Some(loc) => loc,
            None => {
                let loc = self.create_location();
                self.bindings.insert((asid, mpage), loc);
                loc
            }
        };
        self.inner
            .try_access(Self::location_key(loc, offset), kind, now)
    }

    /// Tears down a location: frees the frames (and swap copies) of all
    /// `arity` sub-pages — no swap I/O; the contents are dead — and
    /// retires the ID. Returns the number of frames actually freed.
    ///
    /// Callers must have removed every binding of `loc` first (the
    /// refcounting that decides *when* the last binding is gone lives a
    /// layer up, in the COW/tenant code).
    ///
    /// # Errors
    ///
    /// [`MapError::UnknownLocation`] if `loc` wasn't issued here.
    pub fn release_location(&mut self, loc: LocationId) -> Result<usize, MapError> {
        if !self.locations.contains(&loc) {
            return Err(MapError::UnknownLocation);
        }
        debug_assert!(
            self.bindings.values().all(|&l| l != loc),
            "releasing a location that is still bound"
        );
        let mut freed = 0;
        for offset in 0..self.arity {
            if self.inner.release(Self::location_key(loc, offset)) {
                freed += 1;
            }
        }
        self.locations.remove(&loc);
        Ok(freed)
    }

    /// Locations currently issued (diagnostics).
    pub fn location_count(&self) -> usize {
        self.locations.len()
    }

    /// The frame backing `(asid, vpn)`, if its page is resident.
    pub fn resident_pfn_of(&self, asid: Asid, vpn: Vpn) -> Option<Pfn> {
        let (mpage, offset) = self.split(vpn);
        let loc = self.binding(asid, mpage)?;
        self.inner.resident_pfn(Self::location_key(loc, offset))
    }

    /// The CPFN of page `offset` within location `loc`, if resident.
    ///
    /// Identical for every binding of `loc` — the property that lets one
    /// ToC serve several mappings.
    pub fn cpfn_of(&self, loc: LocationId, offset: usize) -> Option<Cpfn> {
        self.inner.cpfn_of(Self::location_key(loc, offset))
    }

    /// The underlying constrained manager (stats, utilization).
    pub fn inner(&self) -> &MosaicMemory {
        &self.inner
    }

    /// Paging counters.
    pub fn stats(&self) -> &PagingStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_iceberg::IcebergConfig;

    fn memory() -> SharedMosaicMemory {
        SharedMosaicMemory::new(MemoryLayout::new(IcebergConfig::paper_default(8)), 4, 3)
    }

    #[test]
    fn cross_asid_sharing_resolves_to_same_frames() {
        let mut mm = memory();
        let loc = mm.create_location();
        mm.map(Asid(1), 0, loc).unwrap();
        mm.map(Asid(2), 9, loc).unwrap();
        // Touch all four sub-pages via process 1.
        for off in 0..4u64 {
            mm.access(Asid(1), Vpn(off), AccessKind::Store, off + 1);
        }
        // Process 2 sees the identical frames at its own addresses.
        for off in 0..4u64 {
            let a = mm.resident_pfn_of(Asid(1), Vpn(off)).unwrap();
            let b = mm.resident_pfn_of(Asid(2), Vpn(9 * 4 + off)).unwrap();
            assert_eq!(a, b, "offset {off}");
        }
        // And the second process's accesses are hits, not faults.
        let out = mm.access(Asid(2), Vpn(9 * 4), AccessKind::Load, 100);
        assert_eq!(out, AccessOutcome::Hit);
    }

    #[test]
    fn release_location_frees_frames_and_forgets_the_id() {
        let mut mm = memory();
        let loc = mm.create_location();
        mm.map(Asid(1), 0, loc).unwrap();
        for off in 0..4u64 {
            mm.access(Asid(1), Vpn(off), AccessKind::Store, off + 1);
        }
        let resident = mm.inner().resident_frames();
        mm.unmap(Asid(1), 0).unwrap();
        assert_eq!(mm.release_location(loc), Ok(4));
        assert_eq!(mm.inner().resident_frames(), resident - 4);
        assert_eq!(mm.location_count(), 0);
        // The id is gone: releasing again or mapping it is an error.
        assert_eq!(mm.release_location(loc), Err(MapError::UnknownLocation));
        assert_eq!(mm.map(Asid(2), 0, loc), Err(MapError::UnknownLocation));
        mm.inner().verify().unwrap();
    }

    #[test]
    fn duplicate_mmap_within_one_address_space() {
        let mut mm = memory();
        let loc = mm.create_location();
        mm.map(Asid(1), 0, loc).unwrap();
        mm.map(Asid(1), 7, loc).unwrap();
        mm.access(Asid(1), Vpn(1), AccessKind::Store, 1);
        assert_eq!(
            mm.resident_pfn_of(Asid(1), Vpn(1)),
            mm.resident_pfn_of(Asid(1), Vpn(7 * 4 + 1)),
        );
    }

    #[test]
    fn private_pages_stay_private() {
        let mut mm = memory();
        // Anonymous first-touch in two ASIDs at the same VPN: different
        // auto-created locations, different frames.
        mm.access(Asid(1), Vpn(0), AccessKind::Store, 1);
        mm.access(Asid(2), Vpn(0), AccessKind::Store, 2);
        let a = mm.resident_pfn_of(Asid(1), Vpn(0)).unwrap();
        let b = mm.resident_pfn_of(Asid(2), Vpn(0)).unwrap();
        assert_ne!(a, b);
        assert_ne!(mm.binding(Asid(1), 0), mm.binding(Asid(2), 0));
    }

    #[test]
    fn shared_toc_has_one_cpfn_per_subpage() {
        let mut mm = memory();
        let loc = mm.create_location();
        mm.map(Asid(1), 0, loc).unwrap();
        mm.map(Asid(2), 3, loc).unwrap();
        mm.access(Asid(1), Vpn(2), AccessKind::Store, 1);
        let c = mm.cpfn_of(loc, 2).expect("resident");
        // The CPFN is a property of the location, not the mapping.
        mm.access(Asid(2), Vpn(3 * 4 + 2), AccessKind::Load, 2);
        assert_eq!(mm.cpfn_of(loc, 2), Some(c));
    }

    #[test]
    fn double_map_rejected() {
        let mut mm = memory();
        let a = mm.create_location();
        let b = mm.create_location();
        mm.map(Asid(1), 0, a).unwrap();
        assert_eq!(mm.map(Asid(1), 0, b), Err(MapError::AlreadyMapped));
    }

    #[test]
    fn unknown_location_rejected() {
        let mut mm = memory();
        assert_eq!(
            mm.map(Asid(1), 0, LocationId(12345)),
            Err(MapError::UnknownLocation)
        );
    }

    #[test]
    fn unmap_keeps_other_bindings_alive() {
        let mut mm = memory();
        let loc = mm.create_location();
        mm.map(Asid(1), 0, loc).unwrap();
        mm.map(Asid(2), 0, loc).unwrap();
        mm.access(Asid(1), Vpn(0), AccessKind::Store, 1);
        assert_eq!(mm.unmap(Asid(1), 0), Some(loc));
        assert_eq!(mm.resident_pfn_of(Asid(1), Vpn(0)), None, "binding gone");
        assert!(
            mm.resident_pfn_of(Asid(2), Vpn(0)).is_some(),
            "other mapping still resolves"
        );
    }

    #[test]
    fn location_ids_are_unique_and_30_bit() {
        let mut mm = memory();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let loc = mm.create_location();
            assert!(loc.get() < (1 << 30));
            assert!(seen.insert(loc));
        }
    }

    #[test]
    fn sharing_layer_still_constrained() {
        // Placement still happens inside candidate sets of the synthetic
        // (location, i) keys — the compression story is intact.
        let mut mm = memory();
        for vpn in 0..200u64 {
            mm.access(Asid(1), Vpn(vpn), AccessKind::Store, vpn + 1);
        }
        let cfg = *mm.inner().layout().config();
        for vpn in 0..200u64 {
            let (mpage, offset) = mm.split(Vpn(vpn));
            let loc = mm.binding(Asid(1), mpage).unwrap();
            let key = SharedMosaicMemory::location_key(loc, offset);
            let pfn = mm.inner().resident_pfn(key).unwrap();
            let slot = mm.inner().layout().slot_of_pfn(pfn);
            assert!(mm
                .inner()
                .candidates(key)
                .index_of_slot(&cfg, slot)
                .is_some());
        }
    }
}
