//! Physical-memory model for the Mosaic Pages reproduction.
//!
//! This crate is the OS half of Mosaic (paper §2.2–§2.4, §3.2): physical
//! memory structured as an Iceberg hash table of page frames, the
//! compressed-physical-frame-number (CPFN) encoding, the constrained frame
//! allocator, and the **Horizon LRU** swapping algorithm with ghost pages.
//! It also implements the *baseline*: a fully-associative, Linux-like
//! memory manager with watermark-triggered LRU reclaim, which Tables 3 and
//! 4 of the paper compare against.
//!
//! # Architecture
//!
//! * [`addr`] — page-granularity address types ([`Vpn`], [`Pfn`], [`Asid`],
//!   [`PageKey`]) shared across the workspace;
//! * [`layout`] — the bucket↔frame mapping (bucket `b` owns frames
//!   `b*64 .. b*64+64`, front yard first);
//! * [`cpfn`] — bit-exact CPFN encode/decode per §3.1;
//! * [`frame`] — the frame table (per-frame residency, access times, dirty
//!   bits) with ghost-aware occupancy queries;
//! * [`lru`] — an exact LRU index keyed by access timestamps;
//! * [`manager`] — the [`MemoryManager`] trait the
//!   simulator drives;
//! * [`mosaic`] — the Mosaic manager (Iceberg allocation + Horizon LRU);
//! * [`linux`] — the unconstrained exact-LRU baseline (free list +
//!   watermark reclaim);
//! * [`clock`] — a stock-Linux-faithful two-list (active/inactive)
//!   reclaim baseline with referenced bits;
//! * [`policy`] — the §2.4 eviction-policy design space for ablation.
//!
//! # Example
//!
//! ```
//! use mosaic_mem::prelude::*;
//!
//! let layout = MemoryLayout::new(IcebergConfig::paper_default(16));
//! let mut mm = MosaicMemory::new(layout, 42);
//! let key = PageKey::new(Asid::new(1), Vpn::new(0x1000));
//! let outcome = mm.access(key, AccessKind::Store, 1);
//! assert!(outcome.faulted());
//! assert!(mm.resident_pfn(key).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Production code returns typed errors; .unwrap() is for tests only.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod addr;
pub mod clock;
pub mod cpfn;
pub mod error;
pub mod fault;
pub mod frame;
pub mod invariants;
pub mod layout;
pub mod linux;
pub mod lru;
pub mod manager;
pub mod mosaic;
pub mod obs;
pub mod policy;
pub mod quota;
pub mod scanner;
pub mod shadow;
pub mod sharing;
pub mod stats;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::addr::{Asid, PageKey, Pfn, PhysAddr, VirtAddr, Vpn, PAGE_SHIFT, PAGE_SIZE};
    pub use crate::cpfn::{Cpfn, CpfnCodec};
    pub use crate::error::{MosaicError, MosaicResult};
    pub use crate::fault::{FaultInjector, FaultPlan};
    pub use crate::layout::MemoryLayout;
    pub use crate::clock::ClockMemory;
    pub use crate::linux::LinuxMemory;
    pub use crate::manager::{AccessKind, AccessOutcome, MemoryManager};
    pub use crate::mosaic::MosaicMemory;
    pub use crate::obs::MemObs;
    pub use crate::policy::MosaicPolicy;
    pub use crate::quota::{QuotaStats, QuotaTable, TenantQuota};
    pub use crate::stats::{PagingStats, ResilienceStats};
    pub use mosaic_iceberg::IcebergConfig;
}

pub use addr::{Asid, PageKey, Pfn, PhysAddr, VirtAddr, Vpn, PAGE_SHIFT, PAGE_SIZE};
pub use mosaic_iceberg::IcebergConfig;
pub use cpfn::{Cpfn, CpfnCodec};
pub use error::{MosaicError, MosaicResult};
pub use fault::{FaultInjector, FaultPlan};
pub use layout::MemoryLayout;
pub use clock::ClockMemory;
pub use linux::LinuxMemory;
pub use manager::{AccessKind, AccessOutcome, MemoryManager};
pub use mosaic::MosaicMemory;
pub use obs::MemObs;
pub use policy::MosaicPolicy;
pub use quota::{QuotaStats, QuotaTable, TenantQuota};
pub use scanner::{AccessScanner, ScannerConfig, ScannerStats};
pub use shadow::ConcurrentShadow;
pub use sharing::SharedMosaicMemory;
pub use stats::{PagingStats, ResilienceStats};
