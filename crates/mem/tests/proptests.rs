//! Property tests for the memory managers: conservation laws that must
//! hold for every manager under every access pattern, and model-based
//! checks of the LRU index.

use mosaic_mem::clock::ClockMemory;
use mosaic_mem::lru::LruIndex;
use mosaic_mem::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn drive(manager: &mut dyn MemoryManager, pattern: &[u64]) {
    let mut now = 0;
    for &p in pattern {
        now += 1;
        let kind = if p % 3 == 0 {
            AccessKind::Load
        } else {
            AccessKind::Store
        };
        manager.access(PageKey::new(Asid::new(1), Vpn::new(p)), kind, now);
    }
}

fn check_conservation(manager: &dyn MemoryManager, pattern: &[u64]) -> Result<(), TestCaseError> {
    let s = manager.stats();
    // Residency bounded by physical frames.
    prop_assert!(manager.resident_frames() <= manager.num_frames());
    // Accesses all accounted for.
    prop_assert_eq!(s.accesses, pattern.len() as u64);
    // Swap-ins never exceed swap-outs plus clean re-reads of swap copies:
    // a page must reach the swap device before it can be read back.
    prop_assert!(s.swapped_in <= s.swapped_out + s.clean_drops);
    // Faults + hits = accesses.
    prop_assert!(s.faults() <= s.accesses);
    // Every touched page is resident or reclaimable, never lost: spot
    // check that re-access works for the most recent pages.
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation laws hold for all three managers on arbitrary streams.
    #[test]
    fn managers_conserve(pattern in prop::collection::vec(0u64..1500, 1..3000)) {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8)); // 512 frames
        let mut mosaic = MosaicMemory::new(layout, 1);
        let mut linux = LinuxMemory::new(layout);
        let mut clock = ClockMemory::new(layout);
        for m in [&mut mosaic as &mut dyn MemoryManager, &mut linux, &mut clock] {
            drive(m, &pattern);
            check_conservation(m, &pattern)?;
        }
    }

    /// Re-accessing a page right after touching it is always a hit (or
    /// ghost hit), for every manager and pattern.
    #[test]
    fn immediate_reaccess_hits(pattern in prop::collection::vec(0u64..1000, 1..500)) {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let mut mosaic = MosaicMemory::new(layout, 2);
        let mut now = 0;
        for &p in &pattern {
            let key = PageKey::new(Asid::new(1), Vpn::new(p));
            now += 1;
            mosaic.access(key, AccessKind::Store, now);
            now += 1;
            let out = mosaic.access(key, AccessKind::Load, now);
            prop_assert!(matches!(out, AccessOutcome::Hit | AccessOutcome::GhostHit));
        }
    }

    /// Data integrity across swap cycles: a page evicted dirty and
    /// re-faulted must be a major fault (its contents came from swap),
    /// never a silent zero-fill.
    #[test]
    fn dirty_pages_round_trip_through_swap(extra in 1u64..300, seed in any::<u64>()) {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8));
        let frames = layout.num_frames() as u64;
        let mut mosaic = MosaicMemory::new(layout, seed);
        let mut now = 0;
        // Write all pages, then stream far past capacity.
        for p in 0..frames + extra {
            now += 1;
            mosaic.access(PageKey::new(Asid::new(1), Vpn::new(p)), AccessKind::Store, now);
        }
        // Page 0 was written; it is either still resident or on swap. Its
        // re-access must be Hit/GhostHit/MajorFault — never MinorFault.
        now += 1;
        let out = mosaic.access(PageKey::new(Asid::new(1), Vpn::new(0)), AccessKind::Load, now);
        prop_assert!(
            !matches!(out, AccessOutcome::MinorFault),
            "dirty page lost: {:?}", out
        );
    }

    /// LruIndex agrees with an ordered reference model.
    #[test]
    fn lru_index_matches_model(ops in prop::collection::vec((0u32..50, 1u64..1000, any::<bool>()), 1..300)) {
        let mut lru: LruIndex<u32> = LruIndex::new();
        let mut model: BTreeMap<(u64, u64), u32> = BTreeMap::new();
        let mut pos: std::collections::HashMap<u32, (u64, u64)> = std::collections::HashMap::new();
        let mut tick = 0u64;
        for (key, ts, remove) in ops {
            if remove {
                let expect = pos.remove(&key).map(|p| {
                    model.remove(&p);
                    p.0
                });
                prop_assert_eq!(lru.remove(&key), expect);
            } else {
                tick += 1;
                if let Some(p) = pos.remove(&key) {
                    model.remove(&p);
                }
                model.insert((ts, tick), key);
                pos.insert(key, (ts, tick));
                lru.touch(key, ts);
            }
            prop_assert_eq!(lru.len(), model.len());
            prop_assert_eq!(
                lru.peek_oldest(),
                model.iter().next().map(|(&(t, _), &k)| (k, t))
            );
        }
    }

    /// LruIndex drains via pop_oldest in exactly the reference model's
    /// order, including timestamp ties (the tiny ts range forces many),
    /// interleaved with touches and removes.
    #[test]
    fn lru_index_pop_oldest_matches_model(
        ops in prop::collection::vec((0u32..20, 1u64..8, 0u8..4), 1..300)
    ) {
        let mut lru: LruIndex<u32> = LruIndex::new();
        let mut model: BTreeMap<(u64, u64), u32> = BTreeMap::new();
        let mut pos: std::collections::HashMap<u32, (u64, u64)> = std::collections::HashMap::new();
        let mut tick = 0u64;
        for (key, ts, action) in ops {
            match action {
                // pop_oldest: both sides must surrender the same entry.
                0 => {
                    let expect = model.iter().next().map(|(&(t, _), &k)| (k, t));
                    if let Some((k, _)) = expect {
                        let p = pos.remove(&k).expect("model desync");
                        model.remove(&p);
                    }
                    prop_assert_eq!(lru.pop_oldest(), expect);
                }
                1 => {
                    let expect = pos.remove(&key).map(|p| {
                        model.remove(&p);
                        p.0
                    });
                    prop_assert_eq!(lru.remove(&key), expect);
                }
                _ => {
                    tick += 1;
                    if let Some(p) = pos.remove(&key) {
                        model.remove(&p);
                    }
                    model.insert((ts, tick), key);
                    pos.insert(key, (ts, tick));
                    lru.touch(key, ts);
                }
            }
            prop_assert_eq!(lru.len(), model.len());
        }
        // Drain the remainder: full eviction order must agree.
        while let Some(popped) = lru.pop_oldest() {
            let expect = model.iter().next().map(|(&(t, _), &k)| (k, t));
            if let Some((k, _)) = expect {
                let p = pos.remove(&k).expect("model desync");
                model.remove(&p);
            }
            prop_assert_eq!(Some(popped), expect);
        }
        prop_assert!(model.is_empty());
    }

    /// Per-tenant quota caps hold after every operation, for both
    /// managers, across arbitrary interleavings of accesses (loads and
    /// stores), tenant exits, and respawns. The census is independent:
    /// we probe residency per touched key rather than trusting the
    /// manager's own accounting (which `verify()` cross-checks anyway).
    #[test]
    fn quota_caps_hold_under_arbitrary_interleavings(
        ops in prop::collection::vec((0usize..3, 0u64..64, 0u8..16), 1..400),
        seed in any::<u64>(),
    ) {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8)); // 512 frames
        let quotas = [5usize, 8, 12];
        let mut mosaic = MosaicMemory::new(layout, seed);
        let mut linux = LinuxMemory::new(layout);
        for m in [&mut mosaic as &mut dyn MemoryManager, &mut linux] {
            let mut touched: Vec<std::collections::HashSet<u64>> =
                vec![std::collections::HashSet::new(); 3];
            for (t, q) in quotas.iter().enumerate() {
                m.set_quota(Asid::new(t as u16 + 1), TenantQuota { frames: *q, priority: t as u8 });
            }
            let mut now = 0u64;
            for &(tenant, vpn, action) in &ops {
                let asid = Asid::new(tenant as u16 + 1);
                if action == 0 {
                    // Exit: every frame comes back, then the slot
                    // respawns under the same quota.
                    m.release_asid(asid);
                    touched[tenant].clear();
                    m.set_quota(asid, TenantQuota {
                        frames: quotas[tenant],
                        priority: tenant as u8,
                    });
                } else {
                    now += 1;
                    let kind = if action % 2 == 0 { AccessKind::Load } else { AccessKind::Store };
                    // Deferred admissions (QuotaExceeded) are fine; any
                    // other error would be a bug in a fault-free run.
                    match m.try_access(PageKey::new(asid, Vpn::new(vpn)), kind, now) {
                        Ok(_) => { touched[tenant].insert(vpn); }
                        Err(MosaicError::QuotaExceeded { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error: {e}"),
                    }
                }
                // The cap is a hard invariant at every step: recount
                // residency from outside.
                for (t, pages) in touched.iter().enumerate() {
                    let asid = Asid::new(t as u16 + 1);
                    let resident = pages
                        .iter()
                        .filter(|&&v| m.resident_pfn(PageKey::new(asid, Vpn::new(v))).is_some())
                        .count();
                    prop_assert!(
                        resident <= quotas[t],
                        "tenant {t} holds {resident} frames against a quota of {}",
                        quotas[t]
                    );
                }
            }
            m.verify().expect("structural invariants hold");
            let qs = m.quota_stats();
            prop_assert_eq!(
                qs.admissions_deferred > 0,
                qs.backoff_ticks > 0,
                "deferral and backoff counters move together: {:?}", qs
            );
        }
    }

    /// Ghost accounting: ghost count plus live count equals residency.
    #[test]
    fn ghosts_partition_residency(pattern in prop::collection::vec(0u64..800, 500..2000)) {
        let layout = MemoryLayout::new(IcebergConfig::paper_default(8)); // 512 frames
        let mut mosaic = MosaicMemory::new(layout, 7);
        drive(&mut mosaic, &pattern);
        let ghosts = mosaic.ghost_count();
        prop_assert!(ghosts <= mosaic.resident_frames());
    }
}
