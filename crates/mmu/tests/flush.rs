//! ASID-selective flush semantics for both TLB designs.

use mosaic_mem::{Asid, Cpfn, Pfn, Vpn};
use mosaic_mmu::prelude::*;

fn vanilla() -> VanillaTlb {
    VanillaTlb::new(TlbConfig::new(64, Associativity::Ways(4)))
}

fn mosaic() -> MosaicTlb {
    MosaicTlb::new(TlbConfig::new(64, Associativity::Ways(4)), Arity::new(4))
}

#[test]
fn vanilla_flush_asid_is_selective() {
    let mut t = vanilla();
    for vpn in 0..10u64 {
        t.fill_base(Asid::new(1), Vpn::new(vpn), Pfn::new(vpn));
        t.fill_base(Asid::new(2), Vpn::new(vpn), Pfn::new(100 + vpn));
    }
    t.fill_huge(Asid::new(1), Vpn::new(1024), Pfn::new(512));
    assert_eq!(t.flush_asid(Asid::new(1)), 11, "10 base + 1 huge entry");
    for vpn in 0..10u64 {
        assert!(
            !t.lookup(Asid::new(1), Vpn::new(vpn)).is_hit(),
            "asid 1 entry survived"
        );
        assert!(
            t.lookup(Asid::new(2), Vpn::new(vpn)).is_hit(),
            "asid 2 entry lost"
        );
    }
    assert!(!t.lookup(Asid::new(1), Vpn::new(1024)).is_hit(), "huge survived");
}

#[test]
fn mosaic_flush_asid_is_selective() {
    let mut t = mosaic();
    let mut toc = t.blank_toc();
    for i in 0..4 {
        toc.set(i, Cpfn(i as u8));
    }
    for mvpn in 0..8u64 {
        t.fill_toc(Asid::new(1), Vpn::new(mvpn * 4), toc.clone());
        t.fill_toc(Asid::new(2), Vpn::new(mvpn * 4), toc.clone());
    }
    assert_eq!(t.len(), 16);
    assert_eq!(t.flush_asid(Asid::new(2)), 8);
    assert_eq!(t.len(), 8);
    assert!(t.lookup(Asid::new(1), Vpn::new(0)).is_hit());
    assert_eq!(t.lookup(Asid::new(2), Vpn::new(0)), MosaicLookup::Miss);
}

#[test]
fn flush_missing_asid_is_noop() {
    let mut t = vanilla();
    t.fill_base(Asid::new(1), Vpn::new(0), Pfn::new(0));
    assert_eq!(t.flush_asid(Asid::new(9)), 0);
    assert_eq!(t.len(), 1);

    let mut m = mosaic();
    let mut toc = m.blank_toc();
    toc.set(0, Cpfn(1));
    m.fill_toc(Asid::new(1), Vpn::new(0), toc);
    assert_eq!(m.flush_asid(Asid::new(9)), 0);
    assert_eq!(m.len(), 1);
}

/// The stale-ASID regression: after a tenant exits and its ASID is flushed,
/// no sequence of other-tenant traffic may ever surface one of its old
/// translations again. A post-exit hit on the dead ASID would alias the
/// dead tenant's frames into whichever process the ASID is recycled to.
#[test]
fn exited_asid_never_hits_after_shootdown() {
    let dead = Asid::new(3);
    let live = Asid::new(4);

    let mut t = vanilla();
    for vpn in 0..32u64 {
        t.fill_base(dead, Vpn::new(vpn), Pfn::new(vpn));
    }
    let flushed = t.flush_asid(dead);
    assert_eq!(flushed, 32);
    // Survivor traffic churns the same sets the dead entries occupied.
    for vpn in 0..32u64 {
        t.fill_base(live, Vpn::new(vpn), Pfn::new(200 + vpn));
        assert!(
            !t.lookup(dead, Vpn::new(vpn)).is_hit(),
            "vanilla: stale hit for exited asid at vpn {vpn}"
        );
    }

    let mut m = mosaic();
    let mut toc = m.blank_toc();
    toc.set(0, Cpfn(2));
    for mvpn in 0..8u64 {
        m.fill_toc(dead, Vpn::new(mvpn * 4), toc.clone());
    }
    assert_eq!(m.flush_asid(dead), 8);
    for mvpn in 0..8u64 {
        m.fill_toc(live, Vpn::new(mvpn * 4), toc.clone());
        assert_eq!(
            m.lookup(dead, Vpn::new(mvpn * 4)),
            MosaicLookup::Miss,
            "mosaic: stale hit for exited asid at mvpn {mvpn}"
        );
    }
    // A second shootdown of the already-dead ASID finds nothing.
    assert_eq!(m.flush_asid(dead), 0);
    assert_eq!(t.flush_asid(dead), 0);
}
