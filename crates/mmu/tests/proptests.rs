//! Model-based property tests for the MMU structures: the TLB cache
//! against a reference LRU, and the radix table against a `HashMap`.

use mosaic_mem::{Asid, Cpfn, Pfn, Vpn};
use mosaic_mmu::tlb::{Associativity, SetAssocCache, TlbConfig};
use mosaic_mmu::{Arity, MosaicLookup, MosaicTlb, RadixTable, Toc, VanillaTlb};
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model for a fully-associative LRU cache.
struct RefLru {
    cap: usize,
    /// Most-recent-last.
    order: Vec<u64>,
}

impl RefLru {
    fn access(&mut self, tag: u64) -> bool {
        if let Some(pos) = self.order.iter().position(|&t| t == tag) {
            self.order.remove(pos);
            self.order.push(tag);
            true
        } else {
            if self.order.len() == self.cap {
                self.order.remove(0);
            }
            self.order.push(tag);
            false
        }
    }
}

proptest! {
    /// The fully-associative cache matches a textbook LRU model hit for
    /// hit across arbitrary access streams.
    #[test]
    fn full_assoc_cache_is_exact_lru(tags in prop::collection::vec(0u64..64, 1..500)) {
        let mut cache: SetAssocCache<u64, ()> =
            SetAssocCache::new(TlbConfig::new(16, Associativity::Full));
        let mut reference = RefLru { cap: 16, order: Vec::new() };
        for tag in tags {
            let model_hit = reference.access(tag);
            let hit = cache.lookup(0, tag).is_some();
            prop_assert_eq!(hit, model_hit, "divergence at tag {}", tag);
            if !hit {
                cache.insert(0, tag, ());
            }
            prop_assert!(cache.len() <= 16);
        }
    }

    /// Set-associative caches are exact LRU within every set: the SoA
    /// layout (flat tag/tick/entry stripes, min-tick victim) matches a
    /// per-set textbook model across arbitrary interleavings.
    #[test]
    fn set_assoc_cache_is_per_set_lru(
        accesses in prop::collection::vec((0usize..8, 0u64..32), 1..500),
    ) {
        let mut cache: SetAssocCache<u64, ()> =
            SetAssocCache::new(TlbConfig::new(32, Associativity::Ways(4)));
        let mut models: Vec<RefLru> =
            (0..8).map(|_| RefLru { cap: 4, order: Vec::new() }).collect();
        for (set, tag) in accesses {
            let model_hit = models[set].access(tag);
            let hit = cache.lookup(set, tag).is_some();
            prop_assert_eq!(hit, model_hit, "divergence at set {} tag {}", set, tag);
            if !hit {
                cache.insert(set, tag, ());
            }
        }
    }

    /// Stripes wider than the linear-scan cutoff take the hash-indexed
    /// slot path; it must still be exact LRU against the same model.
    #[test]
    fn wide_full_assoc_cache_is_exact_lru(
        tags in prop::collection::vec(0u64..256, 1..600),
    ) {
        let mut cache: SetAssocCache<u64, ()> =
            SetAssocCache::new(TlbConfig::new(64, Associativity::Full));
        let mut reference = RefLru { cap: 64, order: Vec::new() };
        for tag in tags {
            let model_hit = reference.access(tag);
            let hit = cache.lookup(0, tag).is_some();
            prop_assert_eq!(hit, model_hit, "divergence at tag {}", tag);
            if !hit {
                cache.insert(0, tag, ());
            }
            prop_assert!(cache.len() <= 64);
        }
    }

    /// Set-associative lookups never mix sets: a tag inserted in one set
    /// is invisible to lookups hashed to another.
    #[test]
    fn sets_are_isolated(pairs in prop::collection::vec((0usize..8, any::<u64>()), 1..100)) {
        let mut cache: SetAssocCache<u64, usize> =
            SetAssocCache::new(TlbConfig::new(64, Associativity::Ways(8)));
        let mut written: HashMap<(usize, u64), usize> = HashMap::new();
        for (i, (set, tag)) in pairs.into_iter().enumerate() {
            if cache.peek(set, tag).is_none() {
                cache.insert(set, tag, i);
                written.insert((set, tag), i);
            }
            // A different set never sees this tag (unless separately inserted).
            let other = (set + 1) % 8;
            if !written.contains_key(&(other, tag)) {
                prop_assert!(cache.peek(other, tag).is_none());
            }
        }
    }

    /// RadixTable behaves like a HashMap over its index space.
    #[test]
    fn radix_matches_hashmap(ops in prop::collection::vec((0u64..(1 << 20), any::<u32>(), any::<bool>()), 1..400)) {
        let mut table: RadixTable<u32> = RadixTable::new(20, 7);
        let mut model: HashMap<u64, u32> = HashMap::new();
        for (idx, val, remove) in ops {
            if remove {
                prop_assert_eq!(table.remove(idx), model.remove(&idx));
            } else {
                prop_assert_eq!(table.insert(idx, val), model.insert(idx, val));
            }
            prop_assert_eq!(table.get(idx), model.get(&idx));
            prop_assert_eq!(table.len(), model.len());
        }
    }

    /// The mosaic TLB's ToC bookkeeping: after any fill/invalidate
    /// sequence on one mosaic page, lookup agrees with a per-offset model.
    #[test]
    fn mosaic_subentry_model(ops in prop::collection::vec((0usize..8, any::<bool>()), 1..100)) {
        let arity = Arity::new(8);
        let mut tlb = MosaicTlb::new(TlbConfig::new(16, Associativity::Full), arity);
        let asid = Asid::new(1);
        let mut model = [false; 8];
        // Seed the entry.
        let mut toc = tlb.blank_toc();
        toc.set(0, Cpfn(1));
        tlb.fill_toc(asid, Vpn::new(0), toc);
        model[0] = true;
        for (off, set) in ops {
            let vpn = Vpn::new(off as u64);
            if set {
                if !model[off] {
                    // Must currently be a sub-miss.
                    prop_assert_eq!(tlb.lookup(asid, vpn), MosaicLookup::SubMiss);
                    tlb.fill_sub(asid, vpn, Cpfn(off as u8 + 1));
                    model[off] = true;
                }
            } else {
                tlb.invalidate_sub(asid, vpn);
                model[off] = false;
            }
            for (o, &valid) in model.iter().enumerate() {
                let got = tlb.lookup(asid, Vpn::new(o as u64));
                prop_assert_eq!(got.is_hit(), valid, "offset {}", o);
            }
        }
    }

    /// Vanilla TLB + huge entries: a huge fill covers exactly its 512
    /// pages, and base/huge entries never alias.
    #[test]
    fn huge_entries_cover_exact_span(huge_page in 0u64..16, probe in 0u64..(16 * 512)) {
        let mut tlb = VanillaTlb::new(TlbConfig::new(64, Associativity::Full));
        let asid = Asid::new(1);
        tlb.fill_huge(asid, Vpn::new(huge_page * 512), Pfn::new(huge_page * 512));
        let hit = tlb.lookup(asid, Vpn::new(probe)).is_hit();
        prop_assert_eq!(hit, probe / 512 == huge_page);
    }

    /// Arity split/join is a bijection for all arities and VPNs.
    #[test]
    fn arity_split_bijection(vpn in any::<u64>(), pow in 0u32..9) {
        let arity = Arity::new(1 << pow);
        let vpn = vpn & ((1 << 48) - 1);
        let (mvpn, off) = arity.split(Vpn::new(vpn));
        prop_assert_eq!(arity.vpn_at(mvpn, off), Vpn::new(vpn));
        prop_assert!(off < arity.get());
    }

    /// A ToC's valid count always equals the number of set sub-entries.
    #[test]
    fn toc_valid_count(ops in prop::collection::vec((0usize..16, any::<bool>()), 0..80)) {
        let mut toc = Toc::new(Arity::new(16), Cpfn::UNMAPPED_7BIT);
        let mut model = [false; 16];
        for (off, set) in ops {
            if set {
                toc.set(off, Cpfn(off as u8));
                model[off] = true;
            } else {
                toc.invalidate(off);
                model[off] = false;
            }
        }
        prop_assert_eq!(toc.valid_count(), model.iter().filter(|&&b| b).count());
    }
}
