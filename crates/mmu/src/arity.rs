//! Mosaic-page geometry: arity, MVPNs, and mosaic offsets (§2.1).
//!
//! A mosaic page is `a` virtually consecutive base pages; `a` is the
//! **arity**. The TLB is indexed by the **mosaic virtual page number**
//! (MVPN) — the aligned virtual address of the mosaic page — and the
//! low bits of the VPN select the sub-entry (the *mosaic offset*).

use mosaic_mem::Vpn;

/// Base pages spanned by one 2 MiB huge page (2 MiB / 4 KiB).
pub const HUGE_PAGE_SPAN: u64 = 512;

/// The arity of mosaic pages: base pages per TLB entry.
///
/// The paper defaults to 4 (so a ToC of 4 × 7-bit CPFNs fits in today's
/// 36-bit PFN field) and sweeps powers of two up to 64 in §4.1.
///
/// # Example
///
/// ```
/// use mosaic_mmu::Arity;
/// use mosaic_mem::Vpn;
///
/// let a = Arity::new(4);
/// let (mvpn, off) = a.split(Vpn::new(0b1011));
/// assert_eq!(mvpn.0, 0b10);
/// assert_eq!(off, 0b11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Arity(usize);

impl Arity {
    /// Creates an arity.
    ///
    /// # Panics
    ///
    /// Panics unless `arity` is a power of two in `1..=256` (the paper
    /// sweeps 4–64; 1 degenerates to a vanilla TLB and is allowed for
    /// equivalence testing).
    pub fn new(arity: usize) -> Self {
        assert!(
            arity.is_power_of_two() && (1..=256).contains(&arity),
            "arity must be a power of two in 1..=256, got {arity}"
        );
        Arity(arity)
    }

    /// The paper's default arity of 4.
    pub const DEFAULT: Arity = Arity(4);

    /// The arity value.
    pub fn get(self) -> usize {
        self.0
    }

    /// log2 of the arity (the width of the mosaic-offset field).
    pub fn offset_bits(self) -> u32 {
        self.0.trailing_zeros()
    }

    /// Splits a VPN into its MVPN and mosaic offset.
    pub fn split(self, vpn: Vpn) -> (Mvpn, usize) {
        (
            Mvpn(vpn.0 >> self.offset_bits()),
            (vpn.0 & (self.0 as u64 - 1)) as usize,
        )
    }

    /// The MVPN containing a VPN.
    pub fn mvpn_of(self, vpn: Vpn) -> Mvpn {
        self.split(vpn).0
    }

    /// The first VPN of a mosaic page.
    pub fn first_vpn(self, mvpn: Mvpn) -> Vpn {
        Vpn(mvpn.0 << self.offset_bits())
    }

    /// The VPN at `offset` within a mosaic page.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= arity`.
    pub fn vpn_at(self, mvpn: Mvpn, offset: usize) -> Vpn {
        assert!(offset < self.0, "mosaic offset {offset} out of range");
        Vpn((mvpn.0 << self.offset_bits()) | offset as u64)
    }

    /// Bytes of virtual memory one mosaic page covers.
    pub fn mosaic_page_bytes(self) -> u64 {
        self.0 as u64 * mosaic_mem::PAGE_SIZE
    }
}

impl Default for Arity {
    fn default() -> Self {
        Arity::DEFAULT
    }
}

impl core::fmt::Display for Arity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Mosaic-{}", self.0)
    }
}

/// A mosaic virtual page number: the aligned index of a mosaic page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Mvpn(pub u64);

impl core::fmt::Display for Mvpn {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "mvpn:{:#x}", self.0)
    }
}

/// The 2 MiB-aligned huge-page index containing a VPN (for the vanilla
/// TLB's unified 4 KiB / 2 MiB entries).
pub fn huge_index(vpn: Vpn) -> u64 {
    vpn.0 >> HUGE_PAGE_SPAN.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_rejoin() {
        for &a in &[1usize, 2, 4, 8, 16, 32, 64] {
            let arity = Arity::new(a);
            for vpn in [0u64, 1, 63, 64, 1000, 123_456] {
                let (mvpn, off) = arity.split(Vpn(vpn));
                assert_eq!(arity.vpn_at(mvpn, off), Vpn(vpn), "arity {a}, vpn {vpn}");
                assert!(off < a);
            }
        }
    }

    #[test]
    fn arity_one_is_identity() {
        let a = Arity::new(1);
        let (mvpn, off) = a.split(Vpn(77));
        assert_eq!(mvpn.0, 77);
        assert_eq!(off, 0);
        assert_eq!(a.offset_bits(), 0);
    }

    #[test]
    fn default_is_four() {
        assert_eq!(Arity::default().get(), 4);
        assert_eq!(Arity::DEFAULT.offset_bits(), 2);
        assert_eq!(Arity::DEFAULT.mosaic_page_bytes(), 16 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        Arity::new(6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn zero_panics() {
        Arity::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vpn_at_bad_offset_panics() {
        Arity::new(4).vpn_at(Mvpn(0), 4);
    }

    #[test]
    fn first_vpn_is_aligned() {
        let a = Arity::new(8);
        assert_eq!(a.first_vpn(Mvpn(3)), Vpn(24));
        assert_eq!(a.mvpn_of(Vpn(24)), Mvpn(3));
        assert_eq!(a.mvpn_of(Vpn(31)), Mvpn(3));
        assert_eq!(a.mvpn_of(Vpn(32)), Mvpn(4));
    }

    #[test]
    fn huge_index_spans_512_pages() {
        assert_eq!(huge_index(Vpn(0)), 0);
        assert_eq!(huge_index(Vpn(511)), 0);
        assert_eq!(huge_index(Vpn(512)), 1);
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(Arity::new(16).to_string(), "Mosaic-16");
    }
}
