//! A generic set-associative cache with per-set true-LRU replacement.
//!
//! Both TLB flavours are built on this structure. The mosaic mapping
//! restrictions are "orthogonal to the associativity of the TLB itself"
//! (§3.1), so one cache model serves every point of the associativity
//! sweep in Figure 6.
//!
//! # Layout
//!
//! Storage is struct-of-arrays: flat `Vec`s (`tags`, `entries`, and the
//! recency links) indexed by `set * ways + way`, with no per-set
//! allocation. A lookup is a linear tag scan over one contiguous stripe
//! of at most `ways` slots — for the narrow associativities of the
//! Figure 6 sweep (1–8 ways) that is a handful of adjacent compares, far
//! cheaper than the per-set `HashMap` + ordered-index pair it replaces.
//! Wide sets (beyond [`LINEAR_WAYS_MAX`] ways, i.e. the fully-associative
//! configuration) keep O(1) lookups through a `(set, tag) → slot` hash
//! index using a cheap multiply-fold hasher (the std SipHash default
//! dominated whole-grid profiles; tags are small VPN-derived keys, not
//! attacker-controlled).
//!
//! Recency is an intrusive doubly-linked list per set (`prev`/`next`
//! slot links plus per-set `head`/`tail`): a hit moves its slot to the
//! head in O(1), the eviction victim is the tail in O(1), and free slots
//! are a chain through the same `next` links. This is exactly the order
//! the previous monotonic-tick implementation maintained (unique ticks,
//! min-tick victim), so eviction decisions are bit-identical — without
//! the O(ways) victim scan that dominated insert at 1024 ways.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};

/// TLB set associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Associativity {
    /// `n`-way set associative; `Ways(1)` is direct-mapped.
    Ways(usize),
    /// Fully associative (one set spanning every entry).
    Full,
}

impl Associativity {
    /// The associativity sweep of Figure 6.
    pub const FIGURE6_SWEEP: [Associativity; 5] = [
        Associativity::Ways(1),
        Associativity::Ways(2),
        Associativity::Ways(4),
        Associativity::Ways(8),
        Associativity::Full,
    ];

    /// Concrete way count for a given total entry count.
    ///
    /// # Panics
    ///
    /// Panics if `Ways(0)`.
    pub fn ways(self, entries: usize) -> usize {
        match self {
            Associativity::Ways(w) => {
                assert!(w > 0, "zero-way associativity");
                w
            }
            Associativity::Full => entries,
        }
    }
}

impl core::fmt::Display for Associativity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Associativity::Ways(1) => write!(f, "Direct"),
            Associativity::Ways(n) => write!(f, "{n}-Way"),
            Associativity::Full => write!(f, "Full"),
        }
    }
}

/// TLB geometry: total entries and associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    entries: usize,
    assoc: Associativity,
}

impl TlbConfig {
    /// Creates a TLB configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not divisible by the way count.
    pub fn new(entries: usize, assoc: Associativity) -> Self {
        assert!(entries > 0, "entries must be positive");
        let ways = assoc.ways(entries);
        assert!(
            entries.is_multiple_of(ways),
            "entries ({entries}) must be a multiple of ways ({ways})"
        );
        Self { entries, assoc }
    }

    /// The paper's L1 TLB: 1024 entries (Table 1a).
    pub fn paper_default(assoc: Associativity) -> Self {
        Self::new(1024, assoc)
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Associativity.
    pub fn associativity(&self) -> Associativity {
        self.assoc
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.entries / self.assoc.ways(self.entries)
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.assoc.ways(self.entries)
    }
}

/// Widest stripe still probed by linear tag scan; wider sets (the
/// fully-associative sweep point) get a hash index so lookups stay O(1).
const LINEAR_WAYS_MAX: usize = 16;

/// Null slot link.
const NIL: u32 = u32::MAX;

/// Multiply-fold hasher for the wide-stripe slot index: one mix per
/// written word, splitmix-style finish. TLB tags are small fixed-size
/// keys derived from VPNs/ASIDs, so DoS-resistant hashing buys nothing
/// here and the default SipHash showed up as the hottest function in
/// whole-grid profiles.
#[derive(Clone, Copy, Default)]
struct TagHasher(u64);

impl TagHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

impl Hasher for TagHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut z = self.0;
        z ^= z >> 31;
        z = z.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z ^ (z >> 32)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// [`BuildHasher`] for [`TagHasher`].
#[derive(Debug, Clone, Copy, Default)]
struct TagHashBuilder;

impl BuildHasher for TagHashBuilder {
    type Hasher = TagHasher;
    fn build_hasher(&self) -> TagHasher {
        TagHasher::default()
    }
}

/// A set-associative cache mapping tags to entries, true LRU per set.
///
/// The caller supplies the set index (computed from whatever address bits
/// its design uses), keeping this structure agnostic of tag semantics.
#[derive(Debug, Clone)]
pub struct SetAssocCache<T, E> {
    /// Slot tags, indexed `set * ways + way`; `None` is a free slot.
    tags: Vec<Option<T>>,
    /// Slot payloads (same indexing).
    entries: Vec<Option<E>>,
    /// Recency link toward the set's head (more recent); [`NIL`] at head.
    prev: Vec<u32>,
    /// Recency link toward the set's tail (less recent); [`NIL`] at
    /// tail. Free slots reuse this link as their free-chain pointer.
    next: Vec<u32>,
    /// Per-set most-recently-used slot ([`NIL`] when the set is empty).
    head: Vec<u32>,
    /// Per-set least-recently-used slot — the eviction victim.
    tail: Vec<u32>,
    /// Per-set head of the free-slot chain (through `next`).
    free: Vec<u32>,
    num_sets: usize,
    ways: usize,
    len: usize,
    /// `num_sets - 1` when the set count is a power of two (every
    /// Figure 6 geometry), so the hot-path set index is a single AND.
    set_mask: Option<usize>,
    /// `⌊2^64 / num_sets⌋` for non-power-of-two set counts: the
    /// reciprocal-multiply stride that replaces the modulo fallback.
    recip: u64,
    /// `(set, tag) → slot` for stripes too wide to scan linearly.
    index: Option<HashMap<(usize, T), u32, TagHashBuilder>>,
}

impl<T: Copy + Eq + Hash, E> SetAssocCache<T, E> {
    /// Creates an empty cache from a TLB configuration.
    pub fn new(cfg: TlbConfig) -> Self {
        let num_sets = cfg.num_sets();
        let ways = cfg.ways();
        let capacity = num_sets * ways;
        let mut cache = Self {
            tags: (0..capacity).map(|_| None).collect(),
            entries: (0..capacity).map(|_| None).collect(),
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            head: vec![NIL; num_sets],
            tail: vec![NIL; num_sets],
            free: vec![NIL; num_sets],
            num_sets,
            ways,
            len: 0,
            set_mask: num_sets.is_power_of_two().then(|| num_sets - 1),
            recip: if num_sets > 1 {
                ((1u128 << 64) / num_sets as u128) as u64
            } else {
                0
            },
            index: (ways > LINEAR_WAYS_MAX).then(HashMap::default),
        };
        cache.chain_free_slots();
        cache
    }

    /// Chains every slot of every set into its free list, in stripe
    /// order (so a fresh cache fills slots in the same order the old
    /// first-free-slot scan did).
    fn chain_free_slots(&mut self) {
        for s in 0..self.num_sets {
            let base = s * self.ways;
            for i in base..base + self.ways - 1 {
                self.next[i] = (i + 1) as u32;
            }
            self.next[base + self.ways - 1] = NIL;
            self.free[s] = base as u32;
        }
    }

    /// Unlinks `slot` from set `s`'s recency list.
    #[inline]
    fn unlink(&mut self, s: usize, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p == NIL {
            self.head[s] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail[s] = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Pushes `slot` to the head (MRU position) of set `s`'s list.
    #[inline]
    fn push_front(&mut self, s: usize, slot: usize) {
        let h = self.head[s];
        self.prev[slot] = NIL;
        self.next[slot] = h;
        if h == NIL {
            self.tail[s] = slot as u32;
        } else {
            self.prev[h as usize] = slot as u32;
        }
        self.head[s] = slot as u32;
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn set_of(&self, set: usize) -> usize {
        if let Some(mask) = self.set_mask {
            return set & mask;
        }
        // Reciprocal-multiply strength reduction of `set % num_sets`
        // (Lemire-style): with m = ⌊2^64/d⌋, q̂ = (x·m) >> 64 is q or
        // q−1, so one conditional subtract yields the exact remainder.
        let x = set as u64;
        let d = self.num_sets as u64;
        let q = ((u128::from(x) * u128::from(self.recip)) >> 64) as u64;
        let mut r = x - q * d;
        if r >= d {
            r -= d;
        }
        r as usize
    }

    /// The slot holding `tag` within set `s`, if resident.
    #[inline]
    fn slot_of(&self, s: usize, tag: T) -> Option<usize> {
        if let Some(ix) = &self.index {
            return ix.get(&(s, tag)).map(|&i| i as usize);
        }
        let base = s * self.ways;
        let probe = Some(tag);
        self.tags[base..base + self.ways]
            .iter()
            .position(|t| *t == probe)
            .map(|w| base + w)
    }

    /// Looks up `tag` in `set`, refreshing its LRU position on a hit.
    pub fn lookup(&mut self, set: usize, tag: T) -> Option<&mut E> {
        let s = self.set_of(set);
        let slot = self.slot_of(s, tag)?;
        if self.head[s] != slot as u32 {
            self.unlink(s, slot);
            self.push_front(s, slot);
        }
        self.entries[slot].as_mut()
    }

    /// Looks up without disturbing LRU state (diagnostics).
    pub fn peek(&self, set: usize, tag: T) -> Option<&E> {
        let s = self.set_of(set);
        self.entries[self.slot_of(s, tag)?].as_ref()
    }

    /// Inserts `tag -> entry` into `set`, evicting the set's LRU entry if
    /// the set is full. Returns the evicted `(tag, entry)`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is already present in the set (callers fill only on
    /// a miss).
    pub fn insert(&mut self, set: usize, tag: T, entry: E) -> Option<(T, E)> {
        let s = self.set_of(set);
        // Fill-only-on-miss contract: the indexed path asks its map, the
        // linear path rescans the (short) stripe.
        match &self.index {
            Some(ix) => assert!(
                !ix.contains_key(&(s, tag)),
                "insert of a tag already present"
            ),
            None => assert!(
                self.slot_of(s, tag).is_none(),
                "insert of a tag already present"
            ),
        }
        let (slot, evicted) = if self.free[s] != NIL {
            // Pop the free chain: O(1), same fill order as the old
            // first-free-slot stripe scan on a fresh set.
            let slot = self.free[s] as usize;
            self.free[s] = self.next[slot];
            self.len += 1;
            (slot, None)
        } else {
            // Evict the tail — the least-recently-used slot.
            let victim = self.tail[s] as usize;
            self.unlink(s, victim);
            let old_tag = self.tags[victim].take().expect("full set is non-empty");
            let old_entry = self.entries[victim]
                .take()
                .expect("resident slot has a payload");
            if let Some(ix) = &mut self.index {
                ix.remove(&(s, old_tag));
            }
            (victim, Some((old_tag, old_entry)))
        };
        self.tags[slot] = Some(tag);
        self.entries[slot] = Some(entry);
        self.push_front(s, slot);
        if let Some(ix) = &mut self.index {
            ix.insert((s, tag), slot as u32);
        }
        evicted
    }

    /// Removes `tag` from `set`, returning its entry.
    pub fn invalidate(&mut self, set: usize, tag: T) -> Option<E> {
        let s = self.set_of(set);
        let slot = self.slot_of(s, tag)?;
        self.unlink(s, slot);
        self.tags[slot] = None;
        let entry = self.entries[slot].take();
        // Push onto the free chain for O(1) reuse.
        self.next[slot] = self.free[s];
        self.free[s] = slot as u32;
        if let Some(ix) = &mut self.index {
            ix.remove(&(s, tag));
        }
        self.len -= 1;
        entry
    }

    /// Removes every entry (a full TLB flush).
    pub fn flush(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = None);
        self.entries.iter_mut().for_each(|e| *e = None);
        self.head.iter_mut().for_each(|h| *h = NIL);
        self.tail.iter_mut().for_each(|t| *t = NIL);
        self.chain_free_slots();
        if let Some(ix) = &mut self.index {
            ix.clear();
        }
        self.len = 0;
    }

    /// Iterates over `(tag, entry)` pairs (diagnostics), in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, &E)> {
        self.tags
            .iter()
            .zip(self.entries.iter())
            .filter_map(|(t, e)| Some((t.as_ref()?, e.as_ref()?)))
    }

    /// Per-set occupancy histogram (diagnostics).
    pub fn set_occupancy(&self) -> HashMap<usize, usize> {
        (0..self.num_sets)
            .map(|s| {
                let base = s * self.ways;
                let occ = self.tags[base..base + self.ways]
                    .iter()
                    .filter(|t| t.is_some())
                    .count();
                (s, occ)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(entries: usize, assoc: Associativity) -> SetAssocCache<u64, u64> {
        SetAssocCache::new(TlbConfig::new(entries, assoc))
    }

    #[test]
    fn config_geometry() {
        let c = TlbConfig::new(1024, Associativity::Ways(8));
        assert_eq!(c.num_sets(), 128);
        assert_eq!(c.ways(), 8);
        let f = TlbConfig::new(1024, Associativity::Full);
        assert_eq!(f.num_sets(), 1);
        assert_eq!(f.ways(), 1024);
    }

    #[test]
    fn display_names_match_figure6() {
        assert_eq!(Associativity::Ways(1).to_string(), "Direct");
        assert_eq!(Associativity::Ways(8).to_string(), "8-Way");
        assert_eq!(Associativity::Full.to_string(), "Full");
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn indivisible_config_panics() {
        TlbConfig::new(1024, Associativity::Ways(3));
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = cache(16, Associativity::Ways(4));
        assert!(c.lookup(0, 42).is_none());
        c.insert(0, 42, 7);
        assert_eq!(c.lookup(0, 42), Some(&mut 7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = cache(8, Associativity::Ways(2)); // 4 sets x 2 ways
        c.insert(1, 10, 0);
        c.insert(1, 20, 0);
        // Touch 10 so 20 is LRU.
        c.lookup(1, 10);
        let evicted = c.insert(1, 30, 0);
        assert_eq!(evicted.map(|(t, _)| t), Some(20));
        assert!(c.peek(1, 10).is_some());
        assert!(c.peek(1, 30).is_some());
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = cache(4, Associativity::Ways(1));
        c.insert(0, 100, 0);
        let evicted = c.insert(0, 200, 0);
        assert_eq!(evicted.map(|(t, _)| t), Some(100));
        assert!(c.peek(0, 100).is_none());
    }

    #[test]
    fn full_assoc_uses_whole_capacity() {
        let mut c = cache(4, Associativity::Full);
        for t in 0..4u64 {
            // Set index is ignored (mod 1).
            assert!(c.insert(t as usize * 13, t, t).is_none());
        }
        assert_eq!(c.len(), 4);
        // Fifth insert evicts the LRU (tag 0).
        let evicted = c.insert(99, 4, 4);
        assert_eq!(evicted.map(|(t, _)| t), Some(0));
    }

    #[test]
    fn wide_set_uses_hash_index_and_matches_lru() {
        // 1024-way full associativity takes the indexed path.
        let mut c = cache(1024, Associativity::Full);
        for t in 0..1024u64 {
            assert!(c.insert(0, t, t).is_none());
        }
        // Refresh everything except tag 7; it becomes the victim.
        for t in (0..1024u64).filter(|&t| t != 7) {
            assert!(c.lookup(0, t).is_some());
        }
        let evicted = c.insert(0, 5000, 0);
        assert_eq!(evicted.map(|(t, _)| t), Some(7));
        assert!(c.peek(0, 7).is_none());
        assert_eq!(c.len(), 1024);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = cache(8, Associativity::Ways(2));
        c.insert(2, 5, 50);
        assert_eq!(c.invalidate(2, 5), Some(50));
        assert_eq!(c.invalidate(2, 5), None);
        c.insert(0, 1, 1);
        c.insert(1, 2, 2);
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_insert_panics() {
        let mut c = cache(4, Associativity::Ways(2));
        c.insert(0, 1, 1);
        c.insert(0, 1, 2);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_insert_panics_on_indexed_path() {
        let mut c = cache(64, Associativity::Full);
        c.insert(0, 1, 1);
        c.insert(0, 1, 2);
    }

    #[test]
    fn set_wraps_modulo() {
        let mut c = cache(8, Associativity::Ways(2)); // 4 sets
        c.insert(5, 77, 0); // set 1
        assert!(c.peek(1, 77).is_some());
    }

    #[test]
    fn non_power_of_two_sets_match_modulo() {
        // 96 entries / 8 ways = 12 sets: exercises the reciprocal stride.
        let c = cache(96, Associativity::Ways(8));
        assert_eq!(c.num_sets(), 12);
        for set in [0usize, 1, 11, 12, 13, 95, 96, 12345, usize::MAX / 3] {
            assert_eq!(c.set_of(set), set % 12, "set {set}");
        }
        // Beyond u32: kernel VPNs live above 2^35.
        for set in [(1usize << 35) + 9, (1usize << 52) + 5, usize::MAX] {
            assert_eq!(c.set_of(set), set % 12, "set {set}");
        }
    }

    #[test]
    fn non_power_of_two_sets_store_and_conflict() {
        let mut c = cache(6, Associativity::Ways(2)); // 3 sets
        c.insert(0, 1, 10);
        c.insert(3, 2, 20); // also set 0
        assert!(c.peek(0, 1).is_some());
        assert!(c.peek(3, 2).is_some());
        let evicted = c.insert(6, 3, 30); // set 0 again: evicts LRU (tag 1)
        assert_eq!(evicted.map(|(t, _)| t), Some(1));
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut c = cache(4, Associativity::Ways(2)); // 2 sets x 2 ways
        c.insert(0, 1, 0);
        c.insert(0, 2, 0);
        // Peek at 1 (no LRU update), then insert: 1 is still LRU.
        c.peek(0, 1);
        let evicted = c.insert(0, 3, 0);
        assert_eq!(evicted.map(|(t, _)| t), Some(1));
    }

    #[test]
    fn reinsert_after_invalidate_reuses_slot() {
        let mut c = cache(4, Associativity::Ways(2));
        c.insert(0, 1, 1);
        c.insert(0, 2, 2);
        c.invalidate(0, 1);
        assert_eq!(c.len(), 1);
        // Free slot is used before any eviction.
        assert!(c.insert(0, 3, 3).is_none());
        assert_eq!(c.len(), 2);
    }
}
