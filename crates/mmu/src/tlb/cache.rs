//! A generic set-associative cache with per-set true-LRU replacement.
//!
//! Both TLB flavours are built on this structure. The mosaic mapping
//! restrictions are "orthogonal to the associativity of the TLB itself"
//! (§3.1), so one cache model serves every point of the associativity
//! sweep in Figure 6.

use mosaic_mem::lru::LruIndex;
use std::collections::HashMap;
use std::hash::Hash;

/// TLB set associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Associativity {
    /// `n`-way set associative; `Ways(1)` is direct-mapped.
    Ways(usize),
    /// Fully associative (one set spanning every entry).
    Full,
}

impl Associativity {
    /// The associativity sweep of Figure 6.
    pub const FIGURE6_SWEEP: [Associativity; 5] = [
        Associativity::Ways(1),
        Associativity::Ways(2),
        Associativity::Ways(4),
        Associativity::Ways(8),
        Associativity::Full,
    ];

    /// Concrete way count for a given total entry count.
    ///
    /// # Panics
    ///
    /// Panics if `Ways(0)`.
    pub fn ways(self, entries: usize) -> usize {
        match self {
            Associativity::Ways(w) => {
                assert!(w > 0, "zero-way associativity");
                w
            }
            Associativity::Full => entries,
        }
    }
}

impl core::fmt::Display for Associativity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Associativity::Ways(1) => write!(f, "Direct"),
            Associativity::Ways(n) => write!(f, "{n}-Way"),
            Associativity::Full => write!(f, "Full"),
        }
    }
}

/// TLB geometry: total entries and associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    entries: usize,
    assoc: Associativity,
}

impl TlbConfig {
    /// Creates a TLB configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not divisible by the way count.
    pub fn new(entries: usize, assoc: Associativity) -> Self {
        assert!(entries > 0, "entries must be positive");
        let ways = assoc.ways(entries);
        assert!(
            entries.is_multiple_of(ways),
            "entries ({entries}) must be a multiple of ways ({ways})"
        );
        Self { entries, assoc }
    }

    /// The paper's L1 TLB: 1024 entries (Table 1a).
    pub fn paper_default(assoc: Associativity) -> Self {
        Self::new(1024, assoc)
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Associativity.
    pub fn associativity(&self) -> Associativity {
        self.assoc
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.entries / self.assoc.ways(self.entries)
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.assoc.ways(self.entries)
    }
}

#[derive(Debug, Clone)]
struct CacheSet<T, E> {
    entries: HashMap<T, E>,
    lru: LruIndex<T>,
}

impl<T: Copy + Eq + Hash, E> CacheSet<T, E> {
    fn new() -> Self {
        Self {
            entries: HashMap::new(),
            lru: LruIndex::new(),
        }
    }
}

/// A set-associative cache mapping tags to entries, true LRU per set.
///
/// The caller supplies the set index (computed from whatever address bits
/// its design uses), keeping this structure agnostic of tag semantics.
/// Lookups and inserts cost `O(log ways)`, so even the fully-associative
/// 1024-way configuration of the Figure 6 sweep simulates quickly.
#[derive(Debug, Clone)]
pub struct SetAssocCache<T, E> {
    sets: Vec<CacheSet<T, E>>,
    ways: usize,
    /// `sets.len() - 1` when the set count is a power of two (every
    /// Figure 6 geometry), so the hot-path set index is a single AND
    /// instead of an integer division; `None` falls back to modulo.
    set_mask: Option<usize>,
    tick: u64,
}

impl<T: Copy + Eq + Hash, E> SetAssocCache<T, E> {
    /// Creates an empty cache from a TLB configuration.
    pub fn new(cfg: TlbConfig) -> Self {
        let num_sets = cfg.num_sets();
        Self {
            sets: (0..num_sets).map(|_| CacheSet::new()).collect(),
            ways: cfg.ways(),
            set_mask: num_sets.is_power_of_two().then(|| num_sets - 1),
            tick: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.entries.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(|s| s.entries.is_empty())
    }

    fn set_of(&self, set: usize) -> usize {
        match self.set_mask {
            Some(mask) => set & mask,
            None => set % self.sets.len(),
        }
    }

    /// Looks up `tag` in `set`, refreshing its LRU position on a hit.
    pub fn lookup(&mut self, set: usize, tag: T) -> Option<&mut E> {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_of(set);
        let set = &mut self.sets[idx];
        let entry = set.entries.get_mut(&tag)?;
        set.lru.touch(tag, tick);
        Some(entry)
    }

    /// Looks up without disturbing LRU state (diagnostics).
    pub fn peek(&self, set: usize, tag: T) -> Option<&E> {
        self.sets[self.set_of(set)].entries.get(&tag)
    }

    /// Inserts `tag -> entry` into `set`, evicting the set's LRU entry if
    /// the set is full. Returns the evicted `(tag, entry)`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is already present in the set (callers fill only on
    /// a miss).
    pub fn insert(&mut self, set: usize, tag: T, entry: E) -> Option<(T, E)> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let idx = self.set_of(set);
        let set = &mut self.sets[idx];
        assert!(
            !set.entries.contains_key(&tag),
            "insert of a tag already present"
        );
        let evicted = if set.entries.len() == ways {
            let (victim, _) = set.lru.pop_oldest().expect("full set is non-empty");
            let e = set
                .entries
                .remove(&victim)
                .expect("LRU tracks resident tags");
            Some((victim, e))
        } else {
            None
        };
        set.entries.insert(tag, entry);
        set.lru.touch(tag, tick);
        evicted
    }

    /// Removes `tag` from `set`, returning its entry.
    pub fn invalidate(&mut self, set: usize, tag: T) -> Option<E> {
        let idx = self.set_of(set);
        let set = &mut self.sets[idx];
        let entry = set.entries.remove(&tag)?;
        set.lru.remove(&tag);
        Some(entry)
    }

    /// Removes every entry (a full TLB flush).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            *set = CacheSet::new();
        }
    }

    /// Iterates over `(tag, entry)` pairs (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&T, &E)> {
        self.sets.iter().flat_map(|s| s.entries.iter())
    }

    /// Per-set occupancy histogram (diagnostics).
    pub fn set_occupancy(&self) -> HashMap<usize, usize> {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.entries.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(entries: usize, assoc: Associativity) -> SetAssocCache<u64, u64> {
        SetAssocCache::new(TlbConfig::new(entries, assoc))
    }

    #[test]
    fn config_geometry() {
        let c = TlbConfig::new(1024, Associativity::Ways(8));
        assert_eq!(c.num_sets(), 128);
        assert_eq!(c.ways(), 8);
        let f = TlbConfig::new(1024, Associativity::Full);
        assert_eq!(f.num_sets(), 1);
        assert_eq!(f.ways(), 1024);
    }

    #[test]
    fn display_names_match_figure6() {
        assert_eq!(Associativity::Ways(1).to_string(), "Direct");
        assert_eq!(Associativity::Ways(8).to_string(), "8-Way");
        assert_eq!(Associativity::Full.to_string(), "Full");
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn indivisible_config_panics() {
        TlbConfig::new(1024, Associativity::Ways(3));
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = cache(16, Associativity::Ways(4));
        assert!(c.lookup(0, 42).is_none());
        c.insert(0, 42, 7);
        assert_eq!(c.lookup(0, 42), Some(&mut 7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = cache(8, Associativity::Ways(2)); // 4 sets x 2 ways
        c.insert(1, 10, 0);
        c.insert(1, 20, 0);
        // Touch 10 so 20 is LRU.
        c.lookup(1, 10);
        let evicted = c.insert(1, 30, 0);
        assert_eq!(evicted.map(|(t, _)| t), Some(20));
        assert!(c.peek(1, 10).is_some());
        assert!(c.peek(1, 30).is_some());
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = cache(4, Associativity::Ways(1));
        c.insert(0, 100, 0);
        let evicted = c.insert(0, 200, 0);
        assert_eq!(evicted.map(|(t, _)| t), Some(100));
        assert!(c.peek(0, 100).is_none());
    }

    #[test]
    fn full_assoc_uses_whole_capacity() {
        let mut c = cache(4, Associativity::Full);
        for t in 0..4u64 {
            // Set index is ignored (mod 1).
            assert!(c.insert(t as usize * 13, t, t).is_none());
        }
        assert_eq!(c.len(), 4);
        // Fifth insert evicts the LRU (tag 0).
        let evicted = c.insert(99, 4, 4);
        assert_eq!(evicted.map(|(t, _)| t), Some(0));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = cache(8, Associativity::Ways(2));
        c.insert(2, 5, 50);
        assert_eq!(c.invalidate(2, 5), Some(50));
        assert_eq!(c.invalidate(2, 5), None);
        c.insert(0, 1, 1);
        c.insert(1, 2, 2);
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_insert_panics() {
        let mut c = cache(4, Associativity::Ways(2));
        c.insert(0, 1, 1);
        c.insert(0, 1, 2);
    }

    #[test]
    fn set_wraps_modulo() {
        let mut c = cache(8, Associativity::Ways(2)); // 4 sets
        c.insert(5, 77, 0); // set 1
        assert!(c.peek(1, 77).is_some());
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut c = cache(4, Associativity::Ways(2)); // 2 sets x 2 ways
        c.insert(0, 1, 0);
        c.insert(0, 2, 0);
        // Peek at 1 (no LRU update), then insert: 1 is still LRU.
        c.peek(0, 1);
        let evicted = c.insert(0, 3, 0);
        assert_eq!(evicted.map(|(t, _)| t), Some(1));
    }
}
