//! A coalescing TLB (CoLT-style): the contiguity-dependent comparator of
//! §5.2.
//!
//! CoLT (Pham et al., MICRO '12) packs up to `W` translations into one
//! entry when the pages are both virtually *and physically* contiguous:
//! an entry anchored at an aligned virtual window holds a base PFN and a
//! validity bitmap, and covers sub-page `j` iff `pfn(vpn_base + j) ==
//! base_pfn + j`. Its reach therefore *depends on residual physical
//! contiguity* — exactly the property Mosaic abandons. The fragmentation
//! experiment (`mosaic-bench --bin fragmentation`) runs this design
//! against Mosaic as allocator contiguity decays.

use super::cache::{SetAssocCache, TlbConfig};
use super::stats::TlbStats;
use mosaic_mem::{Asid, Pfn, Vpn};

/// Tag for a coalesced entry: the aligned virtual window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ColtTag {
    asid: Asid,
    window: u64,
}

/// One coalesced entry: a base PFN plus per-sub-page validity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ColtEntry {
    /// PFN of the window's first page *if it were mapped contiguously*
    /// (sub-page `j` translates to `base_pfn + j` when its bit is set).
    base_pfn: Pfn,
    /// Validity bitmap over the window.
    valid: u32,
}

/// Result of a coalescing-TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColtLookup {
    /// Translation served from a coalesced entry.
    Hit(Pfn),
    /// Miss: walk and call [`CoalescedTlb::fill`].
    Miss,
}

impl ColtLookup {
    /// Whether the lookup hit.
    pub fn is_hit(self) -> bool {
        matches!(self, ColtLookup::Hit(_))
    }
}

/// A set-associative coalescing TLB with window size `W` (up to 32).
///
/// # Example
///
/// ```
/// use mosaic_mmu::tlb::{Associativity, CoalescedTlb, ColtLookup, TlbConfig};
/// use mosaic_mem::{Asid, Pfn, Vpn};
///
/// let mut tlb = CoalescedTlb::new(TlbConfig::new(64, Associativity::Ways(4)), 4);
/// let asid = Asid::new(1);
/// // Four contiguous translations coalesce into one entry.
/// tlb.fill(asid, Vpn::new(0), Pfn::new(100), &[Some(Pfn::new(100)), Some(Pfn::new(101)), Some(Pfn::new(102)), Some(Pfn::new(103))]);
/// assert_eq!(tlb.lookup(asid, Vpn::new(3)), ColtLookup::Hit(Pfn::new(103)));
/// assert_eq!(tlb.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoalescedTlb {
    cache: SetAssocCache<ColtTag, ColtEntry>,
    cfg: TlbConfig,
    window: usize,
    stats: TlbStats,
    /// Sub-translations currently packed beyond one per entry (reach won).
    coalesced_fills: u64,
}

impl CoalescedTlb {
    /// Creates a coalescing TLB with the given window size.
    ///
    /// # Panics
    ///
    /// Panics unless `window` is a power of two in `2..=32`.
    pub fn new(cfg: TlbConfig, window: usize) -> Self {
        assert!(
            window.is_power_of_two() && (2..=32).contains(&window),
            "window must be a power of two in 2..=32, got {window}"
        );
        Self {
            cache: SetAssocCache::new(cfg),
            cfg,
            window,
            stats: TlbStats::new(),
            coalesced_fills: 0,
        }
    }

    /// The TLB geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// The coalescing window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Sub-translations packed beyond the anchor across all fills — the
    /// "free" reach physical contiguity provided.
    pub fn coalesced_fills(&self) -> u64 {
        self.coalesced_fills
    }

    fn tag(&self, asid: Asid, vpn: Vpn) -> (ColtTag, usize) {
        let w = self.window as u64;
        (
            ColtTag {
                asid,
                window: vpn.0 / w,
            },
            (vpn.0 % w) as usize,
        )
    }

    /// Looks up `(asid, vpn)`, counting hit/miss.
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> ColtLookup {
        self.stats.accesses += 1;
        let (tag, offset) = self.tag(asid, vpn);
        if let Some(e) = self.cache.lookup(tag.window as usize, tag) {
            if e.valid & (1 << offset) != 0 {
                let pfn = Pfn(e.base_pfn.0 + offset as u64);
                self.stats.hits += 1;
                return ColtLookup::Hit(pfn);
            }
        }
        self.stats.misses += 1;
        ColtLookup::Miss
    }

    /// Fills after a walk of `vpn` (which resolved to `pfn`), coalescing
    /// opportunistically: `neighbors[j]` is the PFN mapped at
    /// `window_base + j` (or `None` if unmapped), which the walker reads
    /// for free because the window's PTEs share cache lines.
    ///
    /// Sub-page `j` is packed iff `neighbors[j] == base_pfn + j`, where
    /// `base_pfn = pfn - offset` — the contiguity test.
    ///
    /// # Panics
    ///
    /// Panics if `neighbors.len() != window` or if the anchor's own
    /// neighbor entry disagrees with `pfn`.
    pub fn fill(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn, neighbors: &[Option<Pfn>]) {
        assert_eq!(neighbors.len(), self.window, "neighbor slice width");
        let (tag, offset) = self.tag(asid, vpn);
        assert_eq!(
            neighbors[offset],
            Some(pfn),
            "anchor translation inconsistent with its neighbor slot"
        );
        // The hypothetical contiguous base. Sub-page j coalesces iff its
        // actual PFN equals base + j.
        let base = pfn.0.wrapping_sub(offset as u64);
        let mut valid = 0u32;
        let mut packed = 0;
        for (j, n) in neighbors.iter().enumerate() {
            if *n == Some(Pfn(base.wrapping_add(j as u64))) {
                valid |= 1 << j;
                packed += 1;
            }
        }
        debug_assert!(valid & (1 << offset) != 0);
        self.coalesced_fills += packed - 1; // beyond the anchor itself
        // Replace any stale entry for this window.
        self.cache.invalidate(tag.window as usize, tag);
        if self
            .cache
            .insert(
                tag.window as usize,
                tag,
                ColtEntry {
                    base_pfn: Pfn(base),
                    valid,
                },
            )
            .is_some()
        {
            self.stats.evictions += 1;
        }
    }

    /// Invalidates the entry covering `vpn`, if any.
    pub fn invalidate(&mut self, asid: Asid, vpn: Vpn) {
        let (tag, _) = self.tag(asid, vpn);
        self.cache.invalidate(tag.window as usize, tag);
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Mean packed translations per resident entry (reach multiplier).
    pub fn mean_pack(&self) -> f64 {
        if self.cache.is_empty() {
            return 0.0;
        }
        let packed: u32 = self.cache.iter().map(|(_, e)| e.valid.count_ones()).sum();
        f64::from(packed) / self.cache.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::Associativity;

    const A: Asid = Asid(1);

    fn tlb(entries: usize) -> CoalescedTlb {
        CoalescedTlb::new(TlbConfig::new(entries, Associativity::Full), 4)
    }

    fn contiguous(base: u64) -> Vec<Option<Pfn>> {
        (0..4).map(|j| Some(Pfn(base + j))).collect()
    }

    #[test]
    fn contiguous_window_coalesces_fully() {
        let mut t = tlb(8);
        assert_eq!(t.lookup(A, Vpn(0)), ColtLookup::Miss);
        t.fill(A, Vpn(0), Pfn(100), &contiguous(100));
        for j in 0..4u64 {
            assert_eq!(t.lookup(A, Vpn(j)), ColtLookup::Hit(Pfn(100 + j)), "vpn {j}");
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.coalesced_fills(), 3);
        assert!((t.mean_pack() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fragmented_window_covers_only_matching_pages() {
        let mut t = tlb(8);
        // vpn 0 -> 100, vpn 1 -> 101 contiguous; vpn 2 -> 500 breaks the run;
        // vpn 3 -> 103 happens to line up again.
        let neighbors = vec![Some(Pfn(100)), Some(Pfn(101)), Some(Pfn(500)), Some(Pfn(103))];
        t.fill(A, Vpn(0), Pfn(100), &neighbors);
        assert!(t.lookup(A, Vpn(0)).is_hit());
        assert!(t.lookup(A, Vpn(1)).is_hit());
        assert_eq!(t.lookup(A, Vpn(2)), ColtLookup::Miss);
        assert_eq!(t.lookup(A, Vpn(3)), ColtLookup::Hit(Pfn(103)));
    }

    #[test]
    fn refill_extends_coverage_for_noncontiguous_page() {
        let mut t = tlb(8);
        let neighbors = vec![Some(Pfn(100)), Some(Pfn(101)), Some(Pfn(500)), None];
        t.fill(A, Vpn(0), Pfn(100), &neighbors);
        assert_eq!(t.lookup(A, Vpn(2)), ColtLookup::Miss);
        // Walk for vpn 2 re-fills anchored at its own PFN: now 2 is
        // covered (alone — its neighbors are not contiguous with 500).
        t.fill(A, Vpn(2), Pfn(500), &neighbors);
        assert_eq!(t.lookup(A, Vpn(2)), ColtLookup::Hit(Pfn(500)));
        // The old run lost coverage (one entry per window).
        assert_eq!(t.lookup(A, Vpn(0)), ColtLookup::Miss);
    }

    #[test]
    fn unmapped_neighbors_do_not_coalesce() {
        let mut t = tlb(8);
        let neighbors = vec![Some(Pfn(7)), None, None, None];
        t.fill(A, Vpn(0), Pfn(7), &neighbors);
        assert!(t.lookup(A, Vpn(0)).is_hit());
        assert_eq!(t.lookup(A, Vpn(1)), ColtLookup::Miss);
        assert_eq!(t.coalesced_fills(), 0);
    }

    #[test]
    fn misaligned_anchor_still_covers_run() {
        let mut t = tlb(8);
        // Anchor at offset 2 of the window; the full run is contiguous.
        t.fill(A, Vpn(2), Pfn(102), &contiguous(100));
        assert_eq!(t.lookup(A, Vpn(0)), ColtLookup::Hit(Pfn(100)));
        assert_eq!(t.lookup(A, Vpn(3)), ColtLookup::Hit(Pfn(103)));
    }

    #[test]
    fn windows_are_independent_entries() {
        let mut t = tlb(8);
        t.fill(A, Vpn(0), Pfn(100), &contiguous(100));
        t.fill(A, Vpn(4), Pfn(200), &contiguous(200));
        assert_eq!(t.len(), 2);
        assert!(t.lookup(A, Vpn(1)).is_hit());
        assert!(t.lookup(A, Vpn(5)).is_hit());
    }

    #[test]
    #[should_panic(expected = "anchor translation inconsistent")]
    fn inconsistent_anchor_panics() {
        let mut t = tlb(8);
        t.fill(A, Vpn(0), Pfn(999), &contiguous(100));
    }

    #[test]
    #[should_panic(expected = "window must be a power of two")]
    fn bad_window_panics() {
        CoalescedTlb::new(TlbConfig::new(8, Associativity::Full), 3);
    }
}
