//! TLB performance counters — the quantities Figure 6 plots.

/// Hit/miss counters for one TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlbStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups satisfied from the TLB.
    pub hits: u64,
    /// Lookups that required a page-table walk (Figure 6's y-axis).
    pub misses: u64,
    /// Mosaic only: misses where the MVPN entry was present but the
    /// sub-page's CPFN was invalid — the walk refills one sub-entry
    /// without evicting anything (§3.1).
    pub sub_entry_misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl TlbStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Miss rate in `[0, 1]`; zero when no accesses have happened.
    pub fn miss_rate(&self) -> f64 {
        mosaic_obs::fmt::safe_ratio(self.misses, self.accesses)
    }

    /// Hit rate in `[0, 1]`; zero when no accesses have happened.
    pub fn hit_rate(&self) -> f64 {
        mosaic_obs::fmt::safe_ratio(self.hits, self.accesses)
    }
}

impl core::fmt::Display for TlbStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses ({:.3}% miss rate)",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = TlbStats {
            accesses: 10,
            hits: 7,
            misses: 3,
            ..TlbStats::new()
        };
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = TlbStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn display_shows_percentage() {
        let s = TlbStats {
            accesses: 4,
            hits: 3,
            misses: 1,
            ..TlbStats::new()
        };
        assert!(s.to_string().contains("25.000% miss rate"));
    }
}
