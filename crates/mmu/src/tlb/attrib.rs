//! 3C miss classification against a shadow fully-associative tag store.
//!
//! A [`MissClassifier`] rides alongside a real TLB instance and decides,
//! for every miss, *why* it happened:
//!
//! * **compulsory** — the first-ever reference to the page (at VPN
//!   granularity, shared between the vanilla and mosaic models so a
//!   common trace yields identical cold sets);
//! * **conflict** — a fully-associative LRU TLB with the same entry
//!   count would have hit: the miss is an artifact of set conflicts,
//!   exactly the class Mosaic's multi-hash placement targets (Fig. 6);
//! * **capacity** — even the fully-associative shadow missed: the
//!   working set exceeds the reach.
//!
//! The shadow is tags-only (no payloads) and is touched on every
//! access so its LRU order tracks the reference stream, not the fill
//! stream. Caveats (documented in `docs/OBSERVABILITY.md`): sub-entry
//! misses on a shadow-resident mosaic entry count as conflict (the
//! fully-associative TLB would have retained the filled sub-entry),
//! and invalidations drop shadow tags, so post-shootdown re-misses
//! classify as capacity rather than a dedicated coherence class.

use mosaic_mem::Asid;
use mosaic_obs::{AttribCategory, AttribHandle};
use std::collections::{HashMap, HashSet};

/// Per-category miss counts for one TLB instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissBreakdown {
    /// First-ever references.
    pub compulsory: u64,
    /// Missed even in the fully-associative shadow.
    pub capacity: u64,
    /// Would have hit fully-associative.
    pub conflict: u64,
}

impl MissBreakdown {
    /// Sum over all three classes (equals the TLB's miss counter).
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }
}

/// A fully-associative LRU set of packed `(asid, page)` tags with exact
/// recency order, implemented as a tick index (deterministic: ties are
/// impossible because the tick is bumped per touch).
#[derive(Debug, Clone, Default)]
struct ShadowLru {
    capacity: usize,
    tick: u64,
    by_tag: HashMap<u64, u64>,
    by_tick: std::collections::BTreeMap<u64, u64>,
}

impl ShadowLru {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Touches `tag`, returning whether it was already resident; inserts
    /// it (evicting the LRU tag if full) when it was not.
    fn touch_or_insert(&mut self, tag: u64) -> bool {
        self.tick += 1;
        if let Some(old) = self.by_tag.insert(tag, self.tick) {
            self.by_tick.remove(&old);
            self.by_tick.insert(self.tick, tag);
            return true;
        }
        self.by_tick.insert(self.tick, tag);
        if self.by_tag.len() > self.capacity {
            if let Some((&oldest, &victim)) = self.by_tick.iter().next() {
                self.by_tick.remove(&oldest);
                self.by_tag.remove(&victim);
            }
        }
        false
    }

    fn remove(&mut self, tag: u64) {
        if let Some(tick) = self.by_tag.remove(&tag) {
            self.by_tick.remove(&tick);
        }
    }

    fn retain_asid_not(&mut self, asid: Asid) {
        let victims: Vec<u64> = self
            .by_tag
            .keys()
            .copied()
            .filter(|&t| (t >> 48) as u16 == asid.0)
            .collect();
        for t in victims {
            self.remove(t);
        }
    }

    fn clear(&mut self) {
        self.by_tag.clear();
        self.by_tick.clear();
        self.tick = 0;
    }
}

fn pack(asid: Asid, page: u64) -> u64 {
    debug_assert!(page < 1 << 48, "page number exceeds 48 bits");
    (u64::from(asid.0) << 48) | (page & ((1 << 48) - 1))
}

/// Shadow-tag 3C classifier for one TLB instance.
///
/// Created by the TLB's `set_obs` when the handle has attribution
/// opted in ([`mosaic_obs::ObsHandle::set_attrib`]); absent otherwise,
/// so the default lookup path pays nothing.
#[derive(Debug, Clone)]
pub struct MissClassifier {
    shadow: ShadowLru,
    /// First-touch set at VPN granularity (never trimmed: compulsory
    /// means first-ever in the run, surviving flushes and shootdowns).
    seen: HashSet<u64>,
    breakdown: MissBreakdown,
    sink: AttribHandle,
}

impl MissClassifier {
    /// A classifier whose shadow has `entries` tags (the real TLB's
    /// entry count), charging into `sink`.
    pub fn new(entries: usize, sink: AttribHandle) -> Self {
        Self {
            shadow: ShadowLru::new(entries),
            seen: HashSet::new(),
            breakdown: MissBreakdown::default(),
            sink,
        }
    }

    /// Observes one TLB access *after* the real lookup resolved.
    ///
    /// `shadow_page` is the tag granularity of the model (VPN for
    /// vanilla, MVPN for mosaic); `seen_page` is always the VPN so both
    /// models agree on the cold set. Returns the class charged, or
    /// `None` on a hit.
    pub fn observe(
        &mut self,
        asid: Asid,
        shadow_page: u64,
        seen_page: u64,
        hit: bool,
    ) -> Option<AttribCategory> {
        let first = self.seen.insert(pack(asid, seen_page));
        let shadow_hit = self.shadow.touch_or_insert(pack(asid, shadow_page));
        if hit {
            return None;
        }
        let class = if first {
            self.breakdown.compulsory += 1;
            AttribCategory::Compulsory
        } else if shadow_hit {
            self.breakdown.conflict += 1;
            AttribCategory::Conflict
        } else {
            self.breakdown.capacity += 1;
            AttribCategory::Capacity
        };
        self.sink.charge(class, asid.0, asid.0);
        Some(class)
    }

    /// Mirrors an entry invalidation into the shadow.
    pub fn invalidate(&mut self, asid: Asid, shadow_page: u64) {
        self.shadow.remove(pack(asid, shadow_page));
    }

    /// Mirrors an ASID shootdown into the shadow.
    pub fn flush_asid(&mut self, asid: Asid) {
        self.shadow.retain_asid_not(asid);
    }

    /// Mirrors a full flush into the shadow.
    pub fn flush(&mut self) {
        self.shadow.clear();
    }

    /// Per-category counts so far.
    pub fn breakdown(&self) -> MissBreakdown {
        self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cls(entries: usize) -> MissClassifier {
        MissClassifier::new(entries, AttribHandle::noop())
    }

    const A: Asid = Asid(1);

    #[test]
    fn first_touch_is_compulsory() {
        let mut c = cls(4);
        assert_eq!(c.observe(A, 7, 7, false), Some(AttribCategory::Compulsory));
        assert_eq!(c.breakdown().compulsory, 1);
    }

    #[test]
    fn shadow_hit_miss_is_conflict() {
        let mut c = cls(4);
        c.observe(A, 7, 7, false); // cold
        c.observe(A, 8, 8, true); // unrelated hit keeps 7 warm
        // 7 re-misses while the 4-entry shadow still holds it.
        assert_eq!(c.observe(A, 7, 7, false), Some(AttribCategory::Conflict));
    }

    #[test]
    fn shadow_miss_is_capacity() {
        let mut c = cls(2);
        for p in 0..4u64 {
            c.observe(A, p, p, false); // cold sweep overflows the shadow
        }
        // Page 0 fell out of the 2-entry shadow: capacity.
        assert_eq!(c.observe(A, 0, 0, false), Some(AttribCategory::Capacity));
    }

    #[test]
    fn hits_charge_nothing_but_refresh_lru() {
        let mut c = cls(2);
        c.observe(A, 0, 0, false);
        c.observe(A, 1, 1, false);
        assert_eq!(c.observe(A, 0, 0, true), None);
        // 1 is now LRU; inserting 2 evicts it, not 0.
        c.observe(A, 2, 2, false);
        assert_eq!(c.observe(A, 0, 0, false), Some(AttribCategory::Conflict));
        assert_eq!(c.observe(A, 1, 1, false), Some(AttribCategory::Capacity));
    }

    #[test]
    fn classes_partition_the_misses() {
        let mut c = cls(3);
        let trace = [0u64, 1, 2, 3, 0, 1, 2, 3, 0, 5, 1];
        let mut misses = 0;
        for &p in &trace {
            if c.observe(A, p, p, false).is_some() {
                misses += 1;
            }
        }
        assert_eq!(c.breakdown().total(), misses);
    }

    #[test]
    fn flush_asid_drops_only_that_asid() {
        let mut c = cls(8);
        c.observe(Asid(1), 0, 0, false);
        c.observe(Asid(2), 0, 0, false);
        c.flush_asid(Asid(1));
        // ASID 1's tag is gone (capacity, since it was seen before)...
        assert_eq!(
            c.observe(Asid(1), 0, 0, false),
            Some(AttribCategory::Capacity)
        );
        // ...but ASID 2's survives (conflict-class re-miss).
        assert_eq!(
            c.observe(Asid(2), 0, 0, false),
            Some(AttribCategory::Conflict)
        );
    }

    #[test]
    fn charges_flow_to_the_sink() {
        let obs = mosaic_obs::ObsHandle::enabled();
        obs.set_attrib(true);
        let mut c = MissClassifier::new(4, obs.attrib("tlb.test"));
        c.observe(A, 1, 1, false);
        c.observe(A, 1, 1, false);
        let t = obs.attrib_table("tlb.test");
        assert_eq!(t.category_total(AttribCategory::Compulsory), 1);
        assert_eq!(t.category_total(AttribCategory::Conflict), 1);
    }
}
