//! TLB models: a generic set-associative cache instantiated for the
//! vanilla (VPN → PFN) and mosaic (MVPN → ToC) designs.
//!
//! Geometry follows Table 1a of the paper: 1024 entries, associativity
//! swept from direct-mapped to fully associative, unified across 4 KiB and
//! 2 MiB pages for the vanilla TLB. Replacement is true LRU within a set;
//! the mosaic TLB "manages its own space using LRU to evict TLB entries for
//! an entire mosaic page" (§3.1).

mod attrib;
mod cache;
mod coalesce;
mod mosaic;
mod obs;
mod stats;
mod vanilla;

pub use attrib::{MissBreakdown, MissClassifier};
pub use cache::{Associativity, SetAssocCache, TlbConfig};
pub use coalesce::{CoalescedTlb, ColtLookup};
pub use mosaic::{MosaicLookup, MosaicTlb};
pub use obs::TlbObs;
pub use stats::TlbStats;
pub use vanilla::{VanillaLookup, VanillaTlb};
