//! The mosaic TLB: an MVPN → ToC cache with per-sub-page validity (§3.1).
//!
//! One entry covers `arity` virtually-consecutive base pages. A lookup
//! hits only if the entry is present *and* the accessed sub-page's CPFN is
//! valid; a present entry with an invalid sub-entry is a **sub-entry
//! miss** — the walker refills just that CPFN, leaving the rest of the ToC
//! intact. Whole entries are evicted LRU on capacity misses.

use super::attrib::{MissBreakdown, MissClassifier};
use super::cache::{SetAssocCache, TlbConfig};
use super::obs::TlbObs;
use super::stats::TlbStats;
use mosaic_obs::ObsHandle;
use crate::arity::{Arity, Mvpn};
use crate::toc::Toc;
use mosaic_mem::{Asid, Cpfn, Vpn};

/// Tag for a mosaic TLB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MosaicTag {
    asid: Asid,
    mvpn: Mvpn,
}

/// Result of a mosaic TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosaicLookup {
    /// The MVPN entry was present and the sub-page mapped: translation done.
    Hit(Cpfn),
    /// The MVPN entry was present but this sub-page's CPFN is invalid;
    /// fill it with [`MosaicTlb::fill_sub`].
    SubMiss,
    /// No entry for the MVPN; fill with [`MosaicTlb::fill_toc`].
    Miss,
}

impl MosaicLookup {
    /// Whether the lookup hit.
    pub fn is_hit(self) -> bool {
        matches!(self, MosaicLookup::Hit(_))
    }
}

/// A set-associative mosaic TLB.
///
/// # Example
///
/// ```
/// use mosaic_mmu::prelude::*;
/// use mosaic_mem::{Asid, Cpfn, Vpn};
///
/// let mut tlb = MosaicTlb::new(TlbConfig::new(64, Associativity::Ways(4)), Arity::new(4));
/// let asid = Asid::new(1);
/// assert_eq!(tlb.lookup(asid, Vpn::new(8)), MosaicLookup::Miss);
/// let mut toc = tlb.blank_toc();
/// toc.set(0, Cpfn(5));
/// tlb.fill_toc(asid, Vpn::new(8), toc);
/// assert_eq!(tlb.lookup(asid, Vpn::new(8)), MosaicLookup::Hit(Cpfn(5)));
/// ```
#[derive(Debug, Clone)]
pub struct MosaicTlb {
    cache: SetAssocCache<MosaicTag, Toc>,
    cfg: TlbConfig,
    arity: Arity,
    unmapped: Cpfn,
    stats: TlbStats,
    obs: TlbObs,
    classifier: Option<MissClassifier>,
    /// One-entry recycle pool: the last evicted ToC, whose buffer
    /// [`MosaicTlb::fill_toc_ref`] reuses for the next fill (same
    /// arity, so steady-state fills never touch the allocator).
    recycled: Option<Toc>,
}

impl MosaicTlb {
    /// Creates an empty mosaic TLB using the paper's 7-bit CPFN sentinel.
    pub fn new(cfg: TlbConfig, arity: Arity) -> Self {
        Self::with_sentinel(cfg, arity, Cpfn::UNMAPPED_7BIT)
    }

    /// Creates a mosaic TLB with an explicit unmapped sentinel (for
    /// non-default CPFN widths).
    pub fn with_sentinel(cfg: TlbConfig, arity: Arity, unmapped: Cpfn) -> Self {
        Self {
            cache: SetAssocCache::new(cfg),
            cfg,
            arity,
            unmapped,
            stats: TlbStats::new(),
            obs: TlbObs::noop(),
            classifier: None,
            recycled: None,
        }
    }

    /// Exports this TLB's counters as `tlb.<label>.*` on `obs`.
    ///
    /// When `obs` has attribution opted in
    /// ([`ObsHandle::set_attrib`]), this also attaches a shadow
    /// fully-associative [`MissClassifier`] (MVPN-granularity tags,
    /// VPN-granularity cold set) charging 3C classes into the
    /// `tlb.<label>` attribution table. A no-op when `obs` is
    /// disabled; simulation behavior is unchanged either way.
    pub fn set_obs(&mut self, obs: &ObsHandle, label: &str) {
        self.obs = TlbObs::register(obs, label);
        self.classifier = obs.attrib_enabled().then(|| {
            MissClassifier::new(self.cfg.entries(), obs.attrib(&format!("tlb.{label}")))
        });
    }

    /// Per-class miss counts (`None` until attribution is enabled via
    /// [`MosaicTlb::set_obs`]).
    pub fn miss_breakdown(&self) -> Option<MissBreakdown> {
        self.classifier.as_ref().map(MissClassifier::breakdown)
    }

    /// Runs `f` with exported-counter publication deferred: the
    /// per-lookup atomic increments are suspended and the accumulated
    /// movement is published in one [`TlbObs::flush_delta`] when `f`
    /// returns. The local [`TlbStats`] stay exact throughout, and the
    /// exported totals are identical to the undeferred path at every
    /// point outside `f` — the batched replay wraps each instance's
    /// pass in this so an observed grid pays five atomic adds per
    /// batch instead of two or three per lookup. Attribution
    /// classifiers (when attached) keep observing every lookup live.
    pub fn with_deferred_obs<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let live = std::mem::take(&mut self.obs);
        let before = self.stats;
        let r = f(self);
        live.flush_delta(&before, &self.stats);
        self.obs = live;
        r
    }

    /// The TLB geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// The mosaic arity.
    pub fn arity(&self) -> Arity {
        self.arity
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// An all-unmapped ToC of this TLB's arity and sentinel.
    pub fn blank_toc(&self) -> Toc {
        Toc::new(self.arity, self.unmapped)
    }

    fn tag(&self, asid: Asid, vpn: Vpn) -> (MosaicTag, usize) {
        let (mvpn, offset) = self.arity.split(vpn);
        (MosaicTag { asid, mvpn }, offset)
    }

    /// Looks up the translation for `(asid, vpn)`, counting hit/miss.
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> MosaicLookup {
        self.stats.accesses += 1;
        self.obs.accesses.inc();
        let (tag, offset) = self.tag(asid, vpn);
        let result = match self.cache.lookup(tag.mvpn.0 as usize, tag) {
            Some(toc) => match toc.get(offset) {
                Some(cpfn) => {
                    self.stats.hits += 1;
                    self.obs.hits.inc();
                    MosaicLookup::Hit(cpfn)
                }
                None => {
                    self.stats.misses += 1;
                    self.stats.sub_entry_misses += 1;
                    self.obs.misses.inc();
                    self.obs.sub_misses.inc();
                    MosaicLookup::SubMiss
                }
            },
            None => {
                self.stats.misses += 1;
                self.obs.misses.inc();
                MosaicLookup::Miss
            }
        };
        if let Some(c) = &mut self.classifier {
            // Shadow tags at MVPN granularity (what a fully-associative
            // mosaic TLB caches); the cold set at VPN granularity (the
            // unit both models first-touch on a shared trace).
            c.observe(asid, tag.mvpn.0, vpn.0, result.is_hit());
        }
        result
    }

    /// Fills a whole ToC after a miss, evicting the set's LRU entry if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if the ToC's arity differs from the TLB's, or if the entry is
    /// already present (fill only on [`MosaicLookup::Miss`]).
    pub fn fill_toc(&mut self, asid: Asid, vpn: Vpn, toc: Toc) {
        assert_eq!(toc.len(), self.arity.get(), "ToC arity mismatch");
        let (tag, _) = self.tag(asid, vpn);
        let evicted = self.cache.insert(tag.mvpn.0 as usize, tag, toc);
        if let Some((_, old)) = evicted {
            self.stats.evictions += 1;
            self.obs.evictions.inc();
            self.recycled = Some(old);
        }
    }

    /// [`MosaicTlb::fill_toc`] from a borrowed ToC: the entry is copied
    /// into the last evicted entry's buffer when one is available
    /// ([`Toc::copy_from`]), so steady-state fills are allocation-free.
    /// The walk-memo paths hand out `&Toc`, making this the hot fill
    /// path for both the scalar and batched pipelines.
    ///
    /// # Panics
    ///
    /// Panics if the ToC's arity differs from the TLB's, or if the entry
    /// is already present (fill only on [`MosaicLookup::Miss`]).
    pub fn fill_toc_ref(&mut self, asid: Asid, vpn: Vpn, toc: &Toc) {
        let entry = match self.recycled.take() {
            Some(mut old) => {
                old.copy_from(toc);
                old
            }
            None => toc.clone(),
        };
        self.fill_toc(asid, vpn, entry);
    }

    /// Fills one sub-entry after a [`MosaicLookup::SubMiss`].
    ///
    /// # Panics
    ///
    /// Panics if no entry for the MVPN is present.
    pub fn fill_sub(&mut self, asid: Asid, vpn: Vpn, cpfn: Cpfn) {
        let (tag, offset) = self.tag(asid, vpn);
        let toc = self
            .cache
            .lookup(tag.mvpn.0 as usize, tag)
            .expect("fill_sub without a resident MVPN entry");
        toc.set(offset, cpfn);
    }

    /// Invalidates a single sub-page's CPFN, leaving the rest of the
    /// mosaic entry valid (§3.1: "we do not invalidate the entire mosaic
    /// page's entry").
    pub fn invalidate_sub(&mut self, asid: Asid, vpn: Vpn) {
        let (tag, offset) = self.tag(asid, vpn);
        if let Some(toc) = self.cache.lookup(tag.mvpn.0 as usize, tag) {
            toc.invalidate(offset);
        }
    }

    /// Invalidates the whole entry for the mosaic page containing `vpn`.
    pub fn invalidate_entry(&mut self, asid: Asid, vpn: Vpn) {
        let (tag, _) = self.tag(asid, vpn);
        self.cache.invalidate(tag.mvpn.0 as usize, tag);
        if let Some(c) = &mut self.classifier {
            c.invalidate(asid, tag.mvpn.0);
        }
    }

    /// Drops every entry (full flush).
    pub fn flush(&mut self) {
        self.cache.flush();
        if let Some(c) = &mut self.classifier {
            c.flush();
        }
    }

    /// Drops every entry belonging to `asid`, returning how many entries
    /// were invalidated so exit-time reclaim can be audited.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let victims: Vec<(usize, MosaicTag)> = self
            .cache
            .iter()
            .filter(|(t, _)| t.asid == asid)
            .map(|(t, _)| (t.mvpn.0 as usize, *t))
            .collect();
        let invalidated = victims.len();
        for (set, tag) in victims {
            self.cache.invalidate(set, tag);
        }
        if let Some(c) = &mut self.classifier {
            c.flush_asid(asid);
        }
        invalidated
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::Associativity;

    const A: Asid = Asid(1);

    fn tlb(entries: usize, assoc: Associativity, arity: usize) -> MosaicTlb {
        MosaicTlb::new(TlbConfig::new(entries, assoc), Arity::new(arity))
    }

    fn full_toc(t: &MosaicTlb) -> Toc {
        let mut toc = t.blank_toc();
        for i in 0..toc.len() {
            toc.set(i, Cpfn(i as u8));
        }
        toc
    }

    #[test]
    fn one_entry_covers_arity_pages() {
        let mut t = tlb(16, Associativity::Ways(4), 4);
        assert_eq!(t.lookup(A, Vpn(8)), MosaicLookup::Miss);
        t.fill_toc(A, Vpn(8), full_toc(&t));
        // VPNs 8..12 share MVPN 2 and all hit.
        for vpn in 8..12u64 {
            assert!(t.lookup(A, Vpn(vpn)).is_hit(), "vpn {vpn}");
        }
        assert_eq!(t.lookup(A, Vpn(12)), MosaicLookup::Miss);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sub_entry_miss_and_fill() {
        let mut t = tlb(16, Associativity::Ways(4), 4);
        let mut toc = t.blank_toc();
        toc.set(0, Cpfn(9));
        t.fill_toc(A, Vpn(0), toc);
        assert_eq!(t.lookup(A, Vpn(0)), MosaicLookup::Hit(Cpfn(9)));
        assert_eq!(t.lookup(A, Vpn(1)), MosaicLookup::SubMiss);
        t.fill_sub(A, Vpn(1), Cpfn(12));
        assert_eq!(t.lookup(A, Vpn(1)), MosaicLookup::Hit(Cpfn(12)));
        assert_eq!(t.stats().sub_entry_misses, 1);
        assert_eq!(t.len(), 1, "sub fill must not allocate a new entry");
    }

    #[test]
    fn sub_invalidate_keeps_rest_of_entry() {
        let mut t = tlb(16, Associativity::Ways(4), 4);
        t.fill_toc(A, Vpn(0), full_toc(&t));
        t.invalidate_sub(A, Vpn(2));
        assert_eq!(t.lookup(A, Vpn(2)), MosaicLookup::SubMiss);
        assert!(t.lookup(A, Vpn(0)).is_hit());
        assert!(t.lookup(A, Vpn(3)).is_hit());
    }

    #[test]
    fn whole_entry_invalidate() {
        let mut t = tlb(16, Associativity::Ways(4), 4);
        t.fill_toc(A, Vpn(0), full_toc(&t));
        t.invalidate_entry(A, Vpn(1));
        assert_eq!(t.lookup(A, Vpn(0)), MosaicLookup::Miss);
    }

    #[test]
    fn reach_is_arity_times_vanilla() {
        // An 8-entry mosaic TLB with arity 4 covers a 32-page working set.
        let mut t = tlb(8, Associativity::Full, 4);
        for mvpn in 0..8u64 {
            t.fill_toc(A, Vpn(mvpn * 4), full_toc(&t));
        }
        let mut misses = 0;
        for vpn in 0..32u64 {
            if !t.lookup(A, Vpn(vpn)).is_hit() {
                misses += 1;
            }
        }
        assert_eq!(misses, 0, "entire 32-page set covered by 8 entries");
    }

    #[test]
    fn capacity_eviction_drops_whole_mosaic_entry() {
        let mut t = tlb(2, Associativity::Full, 4);
        t.fill_toc(A, Vpn(0), full_toc(&t));
        t.fill_toc(A, Vpn(4), full_toc(&t));
        // Touch MVPN 0 so MVPN 1 is LRU.
        t.lookup(A, Vpn(0));
        t.fill_toc(A, Vpn(8), full_toc(&t));
        assert_eq!(t.stats().evictions, 1);
        assert!(t.lookup(A, Vpn(0)).is_hit());
        assert_eq!(t.lookup(A, Vpn(4)), MosaicLookup::Miss, "LRU entry evicted");
        assert!(t.lookup(A, Vpn(8)).is_hit());
    }

    #[test]
    fn arity_one_behaves_like_vanilla_granularity() {
        let mut t = tlb(16, Associativity::Ways(4), 1);
        let mut toc = t.blank_toc();
        toc.set(0, Cpfn(1));
        t.fill_toc(A, Vpn(5), toc);
        assert!(t.lookup(A, Vpn(5)).is_hit());
        assert_eq!(t.lookup(A, Vpn(6)), MosaicLookup::Miss);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_toc_panics() {
        let mut t = tlb(16, Associativity::Ways(4), 4);
        let wrong = Toc::new(Arity::new(8), Cpfn::UNMAPPED_7BIT);
        t.fill_toc(A, Vpn(0), wrong);
    }

    #[test]
    #[should_panic(expected = "without a resident")]
    fn fill_sub_without_entry_panics() {
        let mut t = tlb(16, Associativity::Ways(4), 4);
        t.fill_sub(A, Vpn(0), Cpfn(1));
    }

    #[test]
    fn asids_are_distinct() {
        let mut t = tlb(16, Associativity::Ways(4), 4);
        t.fill_toc(Asid(1), Vpn(0), full_toc(&t));
        assert_eq!(t.lookup(Asid(2), Vpn(0)), MosaicLookup::Miss);
    }
}
