//! The vanilla TLB: a conventional VPN → PFN cache, unified across 4 KiB
//! and 2 MiB pages (Table 1a).
//!
//! The kernel is mapped with huge pages in the paper's vanilla baseline —
//! the artifact that lets fully-associative vanilla edge out Mosaic-4 on
//! Graph500 (§4.1) — so the model supports both page sizes in one
//! structure, with the set index derived from each size's own page number.

use super::attrib::{MissBreakdown, MissClassifier};
use super::cache::{SetAssocCache, TlbConfig};
use super::obs::TlbObs;
use super::stats::TlbStats;
use mosaic_obs::ObsHandle;
use crate::arity::{huge_index, HUGE_PAGE_SPAN};
use mosaic_mem::{Asid, Pfn, Vpn};

/// Tag for a unified vanilla TLB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct VanillaTag {
    asid: Asid,
    /// Page number in units of the entry's own page size.
    page: u64,
    huge: bool,
}

/// Payload of a vanilla entry: the frame (or first frame, for huge pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VanillaEntry {
    pfn: Pfn,
}

/// Result of a vanilla TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VanillaLookup {
    /// Hit on a 4 KiB entry.
    HitBase(Pfn),
    /// Hit on a 2 MiB entry (the PFN of the accessed base page is derived).
    HitHuge(Pfn),
    /// Miss: the walker must be invoked and the entry filled.
    Miss,
}

impl VanillaLookup {
    /// Whether the lookup hit.
    pub fn is_hit(self) -> bool {
        !matches!(self, VanillaLookup::Miss)
    }
}

/// A conventional set-associative TLB.
///
/// # Example
///
/// ```
/// use mosaic_mmu::{Associativity, TlbConfig, VanillaTlb, VanillaLookup};
/// use mosaic_mem::{Asid, Pfn, Vpn};
///
/// let mut tlb = VanillaTlb::new(TlbConfig::new(64, Associativity::Ways(4)));
/// let asid = Asid::new(1);
/// assert_eq!(tlb.lookup(asid, Vpn::new(5)), VanillaLookup::Miss);
/// tlb.fill_base(asid, Vpn::new(5), Pfn::new(99));
/// assert_eq!(tlb.lookup(asid, Vpn::new(5)), VanillaLookup::HitBase(Pfn::new(99)));
/// ```
#[derive(Debug, Clone)]
pub struct VanillaTlb {
    cache: SetAssocCache<VanillaTag, VanillaEntry>,
    cfg: TlbConfig,
    stats: TlbStats,
    obs: TlbObs,
    classifier: Option<MissClassifier>,
}

impl VanillaTlb {
    /// Creates an empty vanilla TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        Self {
            cache: SetAssocCache::new(cfg),
            cfg,
            stats: TlbStats::new(),
            obs: TlbObs::noop(),
            classifier: None,
        }
    }

    /// Exports this TLB's counters as `tlb.<label>.*` on `obs`.
    ///
    /// When `obs` has attribution opted in
    /// ([`ObsHandle::set_attrib`]), this also attaches a shadow
    /// fully-associative [`MissClassifier`] charging 3C classes into
    /// the `tlb.<label>` attribution table. A no-op when `obs` is
    /// disabled; simulation behavior is unchanged either way.
    pub fn set_obs(&mut self, obs: &ObsHandle, label: &str) {
        self.obs = TlbObs::register(obs, label);
        self.classifier = obs.attrib_enabled().then(|| {
            MissClassifier::new(self.cfg.entries(), obs.attrib(&format!("tlb.{label}")))
        });
    }

    /// Per-class miss counts (`None` until attribution is enabled via
    /// [`VanillaTlb::set_obs`]).
    pub fn miss_breakdown(&self) -> Option<MissBreakdown> {
        self.classifier.as_ref().map(MissClassifier::breakdown)
    }

    /// Runs `f` with exported-counter publication deferred: the
    /// per-lookup atomic increments are suspended and the accumulated
    /// movement is published in one [`TlbObs::flush_delta`] when `f`
    /// returns. The local [`TlbStats`] stay exact throughout, and the
    /// exported totals are identical to the undeferred path at every
    /// point outside `f` — the batched replay wraps each instance's
    /// pass in this so an observed grid pays five atomic adds per
    /// batch instead of two or three per lookup. Attribution
    /// classifiers (when attached) keep observing every lookup live.
    pub fn with_deferred_obs<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let live = std::mem::take(&mut self.obs);
        let before = self.stats;
        let r = f(self);
        live.flush_delta(&before, &self.stats);
        self.obs = live;
        r
    }

    /// The TLB geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    fn base_tag(asid: Asid, vpn: Vpn) -> VanillaTag {
        VanillaTag {
            asid,
            page: vpn.0,
            huge: false,
        }
    }

    fn huge_tag(asid: Asid, vpn: Vpn) -> VanillaTag {
        VanillaTag {
            asid,
            page: huge_index(vpn),
            huge: true,
        }
    }

    /// Looks up the translation for `(asid, vpn)`, counting hit/miss.
    ///
    /// Both page sizes are probed, base first (a real unified TLB probes
    /// ways of both sizes in parallel; probe order does not affect
    /// correctness because a page is mapped at one size at a time).
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> VanillaLookup {
        self.stats.accesses += 1;
        self.obs.accesses.inc();
        let result = 'probe: {
            let base = Self::base_tag(asid, vpn);
            if let Some(e) = self.cache.lookup(vpn.0 as usize, base) {
                break 'probe VanillaLookup::HitBase(e.pfn);
            }
            let huge = Self::huge_tag(asid, vpn);
            if let Some(e) = self.cache.lookup(huge.page as usize, huge) {
                // Derive the base frame within the huge mapping.
                break 'probe VanillaLookup::HitHuge(Pfn(e.pfn.0 + (vpn.0 & (HUGE_PAGE_SPAN - 1))));
            }
            VanillaLookup::Miss
        };
        if result.is_hit() {
            self.stats.hits += 1;
            self.obs.hits.inc();
        } else {
            self.stats.misses += 1;
            self.obs.misses.inc();
        }
        if let Some(c) = &mut self.classifier {
            c.observe(asid, vpn.0, vpn.0, result.is_hit());
        }
        result
    }

    /// Fills a 4 KiB entry after a walk.
    pub fn fill_base(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn) {
        let evicted = self
            .cache
            .insert(vpn.0 as usize, Self::base_tag(asid, vpn), VanillaEntry { pfn });
        if evicted.is_some() {
            self.stats.evictions += 1;
            self.obs.evictions.inc();
        }
    }

    /// Fills a 2 MiB entry covering `vpn`'s huge page; `first_pfn` is the
    /// frame of the huge page's first base page.
    pub fn fill_huge(&mut self, asid: Asid, vpn: Vpn, first_pfn: Pfn) {
        let tag = Self::huge_tag(asid, vpn);
        let evicted = self
            .cache
            .insert(tag.page as usize, tag, VanillaEntry { pfn: first_pfn });
        if evicted.is_some() {
            self.stats.evictions += 1;
            self.obs.evictions.inc();
        }
    }

    /// Invalidates the 4 KiB entry for `(asid, vpn)`, if cached.
    pub fn invalidate(&mut self, asid: Asid, vpn: Vpn) {
        self.cache
            .invalidate(vpn.0 as usize, Self::base_tag(asid, vpn));
        if let Some(c) = &mut self.classifier {
            c.invalidate(asid, vpn.0);
        }
    }

    /// Drops every entry (full flush).
    pub fn flush(&mut self) {
        self.cache.flush();
        if let Some(c) = &mut self.classifier {
            c.flush();
        }
    }

    /// Drops every entry belonging to `asid` (a context-switch shootdown
    /// on hardware without ASID-tagged retention), returning how many
    /// entries were invalidated so exit-time reclaim can be audited.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let victims: Vec<(usize, VanillaTag)> = self
            .cache
            .iter()
            .filter(|(t, _)| t.asid == asid)
            .map(|(t, _)| (t.page as usize, *t))
            .collect();
        let invalidated = victims.len();
        for (set, tag) in victims {
            self.cache.invalidate(set, tag);
        }
        if let Some(c) = &mut self.classifier {
            c.flush_asid(asid);
        }
        invalidated
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::Associativity;

    fn tlb(entries: usize, assoc: Associativity) -> VanillaTlb {
        VanillaTlb::new(TlbConfig::new(entries, assoc))
    }

    const A: Asid = Asid(1);

    #[test]
    fn miss_fill_hit_cycle() {
        let mut t = tlb(16, Associativity::Ways(4));
        assert_eq!(t.lookup(A, Vpn(9)), VanillaLookup::Miss);
        t.fill_base(A, Vpn(9), Pfn(3));
        assert_eq!(t.lookup(A, Vpn(9)), VanillaLookup::HitBase(Pfn(3)));
        assert_eq!(t.stats().accesses, 2);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().hits, 1);
    }

    #[test]
    fn asids_do_not_alias() {
        let mut t = tlb(16, Associativity::Ways(4));
        t.fill_base(Asid(1), Vpn(9), Pfn(3));
        assert_eq!(t.lookup(Asid(2), Vpn(9)), VanillaLookup::Miss);
    }

    #[test]
    fn huge_entry_covers_512_pages() {
        let mut t = tlb(16, Associativity::Ways(4));
        t.fill_huge(A, Vpn(0), Pfn(1000));
        for vpn in [0u64, 1, 255, 511] {
            match t.lookup(A, Vpn(vpn)) {
                VanillaLookup::HitHuge(pfn) => assert_eq!(pfn, Pfn(1000 + vpn)),
                other => panic!("vpn {vpn}: expected huge hit, got {other:?}"),
            }
        }
        assert_eq!(t.lookup(A, Vpn(512)), VanillaLookup::Miss);
    }

    #[test]
    fn base_and_huge_coexist() {
        let mut t = tlb(64, Associativity::Ways(4));
        t.fill_huge(A, Vpn(0), Pfn(0));
        t.fill_base(A, Vpn(1024), Pfn(77));
        assert!(matches!(t.lookup(A, Vpn(100)), VanillaLookup::HitHuge(_)));
        assert_eq!(t.lookup(A, Vpn(1024)), VanillaLookup::HitBase(Pfn(77)));
    }

    #[test]
    fn capacity_miss_evicts_lru() {
        // Direct-mapped, 4 sets: vpns 0 and 4 collide in set 0.
        let mut t = tlb(4, Associativity::Ways(1));
        t.fill_base(A, Vpn(0), Pfn(0));
        t.fill_base(A, Vpn(4), Pfn(4));
        assert_eq!(t.lookup(A, Vpn(0)), VanillaLookup::Miss);
        assert_eq!(t.lookup(A, Vpn(4)), VanillaLookup::HitBase(Pfn(4)));
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn full_associativity_has_no_conflicts() {
        let mut t = tlb(8, Associativity::Full);
        for vpn in 0..8u64 {
            t.fill_base(A, Vpn(vpn * 8), Pfn(vpn)); // same low bits
        }
        for vpn in 0..8u64 {
            assert!(t.lookup(A, Vpn(vpn * 8)).is_hit(), "vpn {}", vpn * 8);
        }
        assert_eq!(t.stats().evictions, 0);
    }

    #[test]
    fn working_set_larger_than_tlb_thrashes() {
        let mut t = tlb(8, Associativity::Full);
        // 16-page cyclic working set over an 8-entry TLB with LRU: every
        // access misses (the classic LRU cycle pathology).
        let mut misses = 0;
        for round in 0..4 {
            for vpn in 0..16u64 {
                if t.lookup(A, Vpn(vpn)) == VanillaLookup::Miss {
                    misses += 1;
                    t.fill_base(A, Vpn(vpn), Pfn(vpn));
                }
            }
            if round == 0 {
                assert_eq!(misses, 16, "cold misses");
            }
        }
        assert_eq!(misses, 64, "LRU cycles on a >capacity loop");
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = tlb(16, Associativity::Ways(4));
        t.fill_base(A, Vpn(5), Pfn(5));
        t.invalidate(A, Vpn(5));
        assert_eq!(t.lookup(A, Vpn(5)), VanillaLookup::Miss);
        t.fill_base(A, Vpn(6), Pfn(6));
        t.flush();
        assert!(t.is_empty());
    }
}
