//! Observability handles for the TLB hot path.
//!
//! A [`TlbObs`] bundle is a set of [`mosaic_obs::Counter`] handles that
//! default to no-ops; [`TlbObs::register`] binds them to a live
//! registry under `tlb.<label>.*` names. The lookup/fill paths bump
//! these alongside the local [`super::TlbStats`] counters, so enabling
//! tracing never changes simulation behavior — only what gets exported.

use mosaic_obs::{Counter, ObsHandle};

/// Per-TLB-instance counter handles (all no-ops by default).
#[derive(Debug, Clone, Default)]
pub struct TlbObs {
    /// Total lookups: `tlb.<label>.accesses`.
    pub accesses: Counter,
    /// Lookup hits: `tlb.<label>.hits`.
    pub hits: Counter,
    /// Lookup misses (including sub-entry misses): `tlb.<label>.misses`.
    pub misses: Counter,
    /// Mosaic sub-entry misses: `tlb.<label>.sub_misses`.
    pub sub_misses: Counter,
    /// Whole-entry evictions on fill: `tlb.<label>.evictions`.
    pub evictions: Counter,
}

impl TlbObs {
    /// A disabled bundle (every counter is a no-op).
    pub fn noop() -> Self {
        Self::default()
    }

    /// Bulk-publishes the counter movement between two [`TlbStats`]
    /// snapshots — the batched pipeline's deferred flush. One relaxed
    /// atomic add per counter per batch replaces one per lookup; the
    /// published totals are identical to the per-lookup path at every
    /// point where an exporter can observe them.
    pub fn flush_delta(&self, before: &super::TlbStats, after: &super::TlbStats) {
        self.accesses.add(after.accesses - before.accesses);
        self.hits.add(after.hits - before.hits);
        self.misses.add(after.misses - before.misses);
        self.sub_misses.add(after.sub_entry_misses - before.sub_entry_misses);
        self.evictions.add(after.evictions - before.evictions);
    }

    /// Registers the bundle's counters as `tlb.<label>.*` on `obs`.
    pub fn register(obs: &ObsHandle, label: &str) -> Self {
        Self {
            accesses: obs.counter(&format!("tlb.{label}.accesses")),
            hits: obs.counter(&format!("tlb.{label}.hits")),
            misses: obs.counter(&format!("tlb.{label}.misses")),
            sub_misses: obs.counter(&format!("tlb.{label}.sub_misses")),
            evictions: obs.counter(&format!("tlb.{label}.evictions")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_bundle_counts_nothing() {
        let o = TlbObs::noop();
        o.accesses.inc();
        o.hits.add(5);
        assert_eq!(o.accesses.get(), 0);
        assert_eq!(o.hits.get(), 0);
    }

    #[test]
    fn registered_bundle_exports_names() {
        let obs = ObsHandle::enabled();
        let o = TlbObs::register(&obs, "vanilla.8-way");
        o.accesses.add(3);
        o.misses.inc();
        assert_eq!(obs.counter_value("tlb.vanilla.8-way.accesses"), 3);
        assert_eq!(obs.counter_value("tlb.vanilla.8-way.misses"), 1);
    }
}
