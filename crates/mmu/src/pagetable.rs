//! Radix page tables with a walk-cost-counting walker (Figure 5).
//!
//! Mosaic "can use any page-table structure" (§2.1); like the paper's
//! prototype we keep the conventional radix tree and only change the leaf
//! payload: vanilla leaves map VPN → PFN, mosaic leaves map MVPN → ToC.
//! The walker counts the sequential node accesses a hardware walk would
//! issue, the cost a TLB miss pays.

/// A fixed-fanout radix tree over dense integer indices.
///
/// # Example
///
/// ```
/// use mosaic_mmu::RadixTable;
///
/// // A 36-bit index space walked 9 bits per level = 4 levels (x86-style).
/// let mut pt: RadixTable<u64> = RadixTable::new(36, 9);
/// assert_eq!(pt.levels(), 4);
/// pt.insert(0x12345, 99);
/// assert_eq!(pt.get(0x12345), Some(&99));
/// ```
#[derive(Debug, Clone)]
pub struct RadixTable<V> {
    root: Node<V>,
    index_bits: u32,
    bits_per_level: u32,
    levels: u32,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node<V> {
    Internal(Vec<Option<Box<Node<V>>>>),
    Leaf(Vec<Option<V>>),
}

impl<V> Node<V> {
    fn new(level_is_leaf: bool, fanout: usize) -> Self {
        if level_is_leaf {
            Node::Leaf(std::iter::repeat_with(|| None).take(fanout).collect())
        } else {
            Node::Internal(std::iter::repeat_with(|| None).take(fanout).collect())
        }
    }
}

/// The outcome of a radix walk: the value found (if mapped) and how many
/// page-table nodes the walk touched (its memory-access cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Walk<'a, V> {
    /// The leaf value, if the index is mapped.
    pub value: Option<&'a V>,
    /// Nodes visited; a missing subtree terminates the walk early, just as
    /// a non-present directory entry stops a hardware walker.
    pub levels_touched: u32,
}

impl<V> RadixTable<V> {
    /// Creates an empty table covering `index_bits`-wide indices, consumed
    /// `bits_per_level` at a time from the top.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero, `index_bits > 57`, or
    /// `bits_per_level > 12`.
    pub fn new(index_bits: u32, bits_per_level: u32) -> Self {
        assert!(index_bits > 0, "index_bits must be positive");
        assert!(index_bits <= 57, "index_bits too large");
        assert!(
            (1..=12).contains(&bits_per_level),
            "bits_per_level must be in 1..=12"
        );
        let levels = index_bits.div_ceil(bits_per_level);
        Self {
            root: Node::new(levels == 1, 1 << Self::top_bits(index_bits, bits_per_level)),
            index_bits,
            bits_per_level,
            levels,
            len: 0,
        }
    }

    /// Creates the 4-level, 9-bits-per-level table used for vanilla 36-bit
    /// VPNs (x86-64 style).
    pub fn x86_vanilla() -> Self {
        Self::new(36, 9)
    }

    fn top_bits(index_bits: u32, bits_per_level: u32) -> u32 {
        // The root level absorbs the remainder so lower levels are full.
        let rem = index_bits % bits_per_level;
        if rem == 0 {
            bits_per_level
        } else {
            rem
        }
    }

    /// Number of levels a full walk traverses.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Width of the index space in bits.
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Mapped entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check_index(&self, index: u64) {
        assert!(
            self.index_bits == 64 || index < (1u64 << self.index_bits),
            "index {index:#x} exceeds {} bits",
            self.index_bits
        );
    }

    /// The slice of `index` selecting the child at `level` (0 = root).
    fn slice(&self, index: u64, level: u32) -> usize {
        let below = (self.levels - 1 - level) * self.bits_per_level;
        let width = if level == 0 {
            Self::top_bits(self.index_bits, self.bits_per_level)
        } else {
            self.bits_per_level
        };
        ((index >> below) & ((1 << width) - 1)) as usize
    }

    /// Maps `index -> value`, returning the previous value if present.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the index space.
    pub fn insert(&mut self, index: u64, value: V) -> Option<V> {
        self.check_index(index);
        let levels = self.levels;
        let bits = self.bits_per_level;
        let mut slices = Vec::with_capacity(levels as usize);
        for level in 0..levels {
            slices.push(self.slice(index, level));
        }
        let mut node = &mut self.root;
        for (depth, &slice) in slices.iter().enumerate() {
            let is_last = depth + 1 == levels as usize;
            match node {
                Node::Leaf(vals) => {
                    debug_assert!(is_last);
                    let old = vals[slice].replace(value);
                    if old.is_none() {
                        self.len += 1;
                    }
                    return old;
                }
                Node::Internal(children) => {
                    let child_is_leaf = depth + 2 == levels as usize;
                    node = children[slice]
                        .get_or_insert_with(|| Box::new(Node::new(child_is_leaf, 1 << bits)));
                }
            }
        }
        unreachable!("walk always terminates at a leaf");
    }

    /// The value mapped at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the index space.
    pub fn get(&self, index: u64) -> Option<&V> {
        self.walk(index).value
    }

    /// Mutable access to the value mapped at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the index space.
    pub fn get_mut(&mut self, index: u64) -> Option<&mut V> {
        self.check_index(index);
        let levels = self.levels;
        let mut slices = Vec::with_capacity(levels as usize);
        for level in 0..levels {
            slices.push(self.slice(index, level));
        }
        let mut node = &mut self.root;
        for &slice in &slices {
            match node {
                Node::Leaf(vals) => return vals[slice].as_mut(),
                Node::Internal(children) => match children[slice].as_deref_mut() {
                    Some(child) => node = child,
                    None => return None,
                },
            }
        }
        None
    }

    /// Unmaps `index`, returning the value if it was mapped.
    ///
    /// Interior nodes are retained (like a real page table, which frees
    /// directory pages lazily if at all).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the index space.
    pub fn remove(&mut self, index: u64) -> Option<V> {
        self.check_index(index);
        let levels = self.levels;
        let mut slices = Vec::with_capacity(levels as usize);
        for level in 0..levels {
            slices.push(self.slice(index, level));
        }
        let mut node = &mut self.root;
        for &slice in &slices {
            match node {
                Node::Leaf(vals) => {
                    let old = vals[slice].take();
                    if old.is_some() {
                        self.len -= 1;
                    }
                    return old;
                }
                Node::Internal(children) => match children[slice].as_deref_mut() {
                    Some(child) => node = child,
                    None => return None,
                },
            }
        }
        None
    }

    /// Walks the tree, returning the value and the number of nodes touched.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the index space.
    pub fn walk(&self, index: u64) -> Walk<'_, V> {
        self.check_index(index);
        let mut node = &self.root;
        let mut touched = 0;
        #[allow(clippy::explicit_counter_loop)] // `touched` counts node visits, not iterations alone
        for level in 0..self.levels {
            touched += 1;
            let slice = self.slice(index, level);
            match node {
                Node::Leaf(vals) => {
                    return Walk {
                        value: vals[slice].as_ref(),
                        levels_touched: touched,
                    };
                }
                Node::Internal(children) => match children[slice].as_deref() {
                    Some(child) => node = child,
                    None => {
                        return Walk {
                            value: None,
                            levels_touched: touched,
                        };
                    }
                },
            }
        }
        unreachable!("walk always terminates at a leaf");
    }

    /// Total nodes allocated (root included) — a page-table-size proxy.
    pub fn node_count(&self) -> usize {
        fn count<V>(node: &Node<V>) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Internal(children) => {
                    1 + children
                        .iter()
                        .filter_map(|c| c.as_deref())
                        .map(count)
                        .sum::<usize>()
                }
            }
        }
        count(&self.root)
    }
}

/// A page-table walker: wraps a [`RadixTable`] and counts the memory
/// accesses its walks issue (the TLB-miss penalty driver).
#[derive(Debug, Clone)]
pub struct PageWalker<V> {
    table: RadixTable<V>,
    walks: u64,
    node_accesses: u64,
    obs_walks: mosaic_obs::Counter,
    obs_depth: mosaic_obs::Histogram,
    /// While obs is paused ([`PageWalker::pause_obs`]): the live
    /// handles plus the walk count at pause time; the per-depth tally
    /// below accumulates what `obs_depth` would have recorded.
    paused: Option<(mosaic_obs::Counter, mosaic_obs::Histogram, u64)>,
    /// Reused allocation: `depth_tally[d]` walks of depth `d` since
    /// the pause (empty while obs is live).
    depth_tally: Vec<u64>,
}

impl<V> PageWalker<V> {
    /// Creates a walker over an empty table.
    pub fn new(table: RadixTable<V>) -> Self {
        Self {
            table,
            walks: 0,
            node_accesses: 0,
            obs_walks: mosaic_obs::Counter::noop(),
            obs_depth: mosaic_obs::Histogram::noop(),
            paused: None,
            depth_tally: Vec::new(),
        }
    }

    /// Exports this walker's counters as `ptw.<label>.walks` and the
    /// per-walk depth distribution as histogram `ptw.<label>.depth`.
    ///
    /// A no-op when `obs` is disabled.
    pub fn set_obs(&mut self, obs: &mosaic_obs::ObsHandle, label: &str) {
        self.obs_walks = obs.counter(&format!("ptw.{label}.walks"));
        self.obs_depth = obs.histogram(&format!("ptw.{label}.depth"));
    }

    /// The underlying table (for mapping setup).
    pub fn table(&self) -> &RadixTable<V> {
        &self.table
    }

    /// Mutable access to the underlying table.
    pub fn table_mut(&mut self) -> &mut RadixTable<V> {
        &mut self.table
    }

    /// Performs a counted walk.
    pub fn walk(&mut self, index: u64) -> Option<&V> {
        self.walk_leveled(index).0
    }

    /// Performs a counted walk, also returning the number of levels it
    /// touched — callers that memoize the result feed the levels back
    /// through [`PageWalker::recount_walk`] for each reuse.
    pub fn walk_leveled(&mut self, index: u64) -> (Option<&V>, u32) {
        let walk = self.table.walk(index);
        self.walks += 1;
        self.node_accesses += u64::from(walk.levels_touched);
        self.obs_walks.inc();
        self.obs_depth.record(u64::from(walk.levels_touched));
        if self.paused.is_some() {
            // Inlined tally: `walk` still borrows `self.table`, so the
            // helper (which takes `&mut self`) can't be called here.
            let d = walk.levels_touched as usize;
            if self.depth_tally.len() <= d {
                self.depth_tally.resize(d + 1, 0);
            }
            self.depth_tally[d] += 1;
        }
        (walk.value, walk.levels_touched)
    }

    /// Counts a walk whose result the caller memoized from an earlier
    /// [`PageWalker::walk_leveled`] at the same table state: identical
    /// counter and obs effects, without touching the radix nodes.
    pub fn recount_walk(&mut self, levels_touched: u32) {
        self.walks += 1;
        self.node_accesses += u64::from(levels_touched);
        self.obs_walks.inc();
        self.obs_depth.record(u64::from(levels_touched));
        if self.paused.is_some() {
            self.tally_depth(levels_touched);
        }
    }

    fn tally_depth(&mut self, levels_touched: u32) {
        let d = levels_touched as usize;
        if self.depth_tally.len() <= d {
            self.depth_tally.resize(d + 1, 0);
        }
        self.depth_tally[d] += 1;
    }

    /// Suspends exported-counter publication: per-walk obs updates are
    /// tallied locally until [`PageWalker::resume_obs`] bulk-publishes
    /// them. Walk accounting ([`PageWalker::walks`], node accesses)
    /// stays live throughout, and the exported totals at resume are
    /// identical to the unpaused path. A second pause before resume is
    /// a no-op (the outer pause wins).
    pub fn pause_obs(&mut self) {
        if self.paused.is_some() {
            return;
        }
        self.paused = Some((
            std::mem::take(&mut self.obs_walks),
            std::mem::take(&mut self.obs_depth),
            self.walks,
        ));
    }

    /// Publishes everything tallied since [`PageWalker::pause_obs`] —
    /// one counter add plus one histogram add per distinct walk depth —
    /// and restores live per-walk publication. A no-op when not paused.
    pub fn resume_obs(&mut self) {
        let Some((walks_ctr, depth_hist, walks_before)) = self.paused.take() else {
            return;
        };
        walks_ctr.add(self.walks - walks_before);
        for (depth, &n) in self.depth_tally.iter().enumerate() {
            if n > 0 {
                depth_hist.record_n(depth as u64, n);
            }
        }
        self.depth_tally.clear();
        self.obs_walks = walks_ctr;
        self.obs_depth = depth_hist;
    }

    /// Number of walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Total page-table node accesses across all walks.
    pub fn node_accesses(&self) -> u64 {
        self.node_accesses
    }

    /// Mean memory accesses per walk (0 if no walks yet).
    pub fn mean_walk_cost(&self) -> f64 {
        mosaic_obs::fmt::safe_ratio(self.node_accesses, self.walks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_math() {
        assert_eq!(RadixTable::<u8>::new(36, 9).levels(), 4);
        assert_eq!(RadixTable::<u8>::new(30, 10).levels(), 3); // Figure 5
        assert_eq!(RadixTable::<u8>::new(34, 10).levels(), 4);
        assert_eq!(RadixTable::<u8>::new(9, 9).levels(), 1);
    }

    #[test]
    fn insert_get_remove() {
        let mut t: RadixTable<String> = RadixTable::new(36, 9);
        assert_eq!(t.insert(5, "five".into()), None);
        assert_eq!(t.insert(5, "FIVE".into()), Some("five".into()));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5), Some(&"FIVE".to_string()));
        assert_eq!(t.remove(5), Some("FIVE".into()));
        assert_eq!(t.get(5), None);
        assert!(t.is_empty());
    }

    #[test]
    fn distinct_indices_do_not_alias() {
        let mut t: RadixTable<u64> = RadixTable::new(36, 9);
        // Indices that share low bits and indices that share high bits.
        let idxs = [0u64, 1, 512, 513, 1 << 27, (1 << 27) + 1, (1 << 36) - 1];
        for (i, &idx) in idxs.iter().enumerate() {
            t.insert(idx, i as u64);
        }
        for (i, &idx) in idxs.iter().enumerate() {
            assert_eq!(t.get(idx), Some(&(i as u64)), "index {idx:#x}");
        }
        assert_eq!(t.len(), idxs.len());
    }

    #[test]
    fn walk_cost_full_depth_on_mapped() {
        let mut t: RadixTable<u8> = RadixTable::new(36, 9);
        t.insert(1000, 1);
        let w = t.walk(1000);
        assert_eq!(w.levels_touched, 4);
        assert_eq!(w.value, Some(&1));
    }

    #[test]
    fn walk_terminates_early_on_missing_subtree() {
        let mut t: RadixTable<u8> = RadixTable::new(36, 9);
        t.insert(0, 1);
        // An index in a totally different top-level subtree stops at the root.
        let w = t.walk(1 << 35);
        assert_eq!(w.value, None);
        assert_eq!(w.levels_touched, 1);
        // A sibling within the same leaf costs the full walk.
        let w2 = t.walk(1);
        assert_eq!(w2.value, None);
        assert_eq!(w2.levels_touched, 4);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t: RadixTable<u64> = RadixTable::new(20, 10);
        t.insert(7, 1);
        *t.get_mut(7).unwrap() = 9;
        assert_eq!(t.get(7), Some(&9));
        assert_eq!(t.get_mut(8), None);
    }

    #[test]
    #[should_panic(expected = "exceeds 20 bits")]
    fn out_of_range_index_panics() {
        RadixTable::<u8>::new(20, 10).get(1 << 20);
    }

    #[test]
    fn uneven_top_level() {
        // 13 bits at 9 per level: top level 4 bits, then one 9-bit leaf level.
        let mut t: RadixTable<u32> = RadixTable::new(13, 9);
        assert_eq!(t.levels(), 2);
        let max = (1u64 << 13) - 1;
        t.insert(max, 42);
        t.insert(0, 43);
        assert_eq!(t.get(max), Some(&42));
        assert_eq!(t.get(0), Some(&43));
    }

    #[test]
    fn node_count_grows_with_spread() {
        let mut t: RadixTable<u8> = RadixTable::new(36, 9);
        let dense_before = t.node_count();
        for i in 0..512u64 {
            t.insert(i, 0); // all within one leaf chain
        }
        let dense = t.node_count();
        for i in 0..8u64 {
            t.insert(i << 30, 0); // scatter across top-level subtrees
        }
        assert!(t.node_count() > dense);
        assert!(dense > dense_before);
    }

    #[test]
    fn walker_counts_costs() {
        let mut w = PageWalker::new(RadixTable::<u8>::x86_vanilla());
        w.table_mut().insert(3, 7);
        assert_eq!(w.walk(3), Some(&7));
        assert_eq!(w.walk(1 << 35), None);
        assert_eq!(w.walks(), 2);
        assert_eq!(w.node_accesses(), 4 + 1);
        assert!((w.mean_walk_cost() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_level_table() {
        let mut t: RadixTable<u8> = RadixTable::new(8, 9);
        assert_eq!(t.levels(), 1);
        t.insert(255, 9);
        assert_eq!(t.get(255), Some(&9));
        assert_eq!(t.walk(255).levels_touched, 1);
    }
}
