//! MMU models for the Mosaic Pages reproduction: TLBs and page tables.
//!
//! This crate is the hardware half of Mosaic (paper §2.1, §3.1):
//!
//! * [`arity`] — mosaic-page geometry: the arity `a` (base pages per mosaic
//!   page), MVPN / mosaic-offset decomposition, and 2 MiB huge-page spans;
//! * [`toc`] — the Table of Contents: the run of `a` CPFNs one mosaic TLB
//!   entry stores;
//! * [`tlb`] — a set-associative TLB model (direct-mapped through fully
//!   associative, per-set true LRU) instantiated as
//!   [`tlb::VanillaTlb`] (VPN → PFN, unified 4 KiB / 2 MiB, as in
//!   Table 1a) and [`tlb::MosaicTlb`] (MVPN → ToC with per-sub-page
//!   validity, §3.1);
//! * [`pagetable`] — a radix page table whose leaves hold either PFNs
//!   (vanilla) or ToCs (mosaic, Figure 5), with a walk-cost-counting
//!   walker.
//!
//! # Example
//!
//! ```
//! use mosaic_mmu::prelude::*;
//! use mosaic_mem::{Asid, Vpn};
//!
//! let mut tlb = MosaicTlb::new(TlbConfig::new(1024, Associativity::Ways(8)), Arity::new(4));
//! let asid = Asid::new(1);
//! assert_eq!(tlb.lookup(asid, Vpn::new(100)), MosaicLookup::Miss);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arity;
pub mod pagetable;
pub mod reach;
pub mod walkcache;
pub mod tlb;
pub mod toc;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::arity::{Arity, Mvpn, HUGE_PAGE_SPAN};
    pub use crate::pagetable::{PageWalker, RadixTable};
    pub use crate::tlb::{
        Associativity, MosaicLookup, MosaicTlb, TlbConfig, TlbStats, VanillaLookup, VanillaTlb,
    };
    pub use crate::toc::Toc;
}

pub use arity::{Arity, Mvpn, HUGE_PAGE_SPAN};
pub use pagetable::{PageWalker, RadixTable};
pub use walkcache::WalkCache;
pub use tlb::{
    Associativity, CoalescedTlb, ColtLookup, MosaicLookup, MosaicTlb, TlbConfig, TlbStats,
    VanillaLookup, VanillaTlb,
};
pub use toc::Toc;
