//! The Table of Contents (ToC): the payload of a mosaic TLB entry (§2.1).
//!
//! A ToC is a run of `arity` CPFNs, one per base page of the mosaic page.
//! Sub-entries are individually valid: an unmapped sub-page holds the
//! all-ones sentinel, and the OS can invalidate one sub-page without
//! discarding the rest of the entry (§3.1).

use crate::arity::Arity;
use mosaic_mem::Cpfn;

/// A run of `arity` CPFNs with per-sub-page validity.
///
/// # Example
///
/// ```
/// use mosaic_mmu::{Arity, Toc};
/// use mosaic_mem::Cpfn;
///
/// let mut toc = Toc::new(Arity::new(4), Cpfn::UNMAPPED_7BIT);
/// assert_eq!(toc.valid_count(), 0);
/// toc.set(2, Cpfn(5));
/// assert_eq!(toc.get(2), Some(Cpfn(5)));
/// assert_eq!(toc.get(0), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Toc {
    cpfns: Vec<Cpfn>,
    unmapped: Cpfn,
}

impl Toc {
    /// Creates an all-unmapped ToC with the given sentinel.
    pub fn new(arity: Arity, unmapped: Cpfn) -> Self {
        Self {
            cpfns: vec![unmapped; arity.get()],
            unmapped,
        }
    }

    /// Number of sub-entries (the arity).
    pub fn len(&self) -> usize {
        self.cpfns.len()
    }

    /// Whether the ToC has no sub-entries (never true for a valid arity).
    pub fn is_empty(&self) -> bool {
        self.cpfns.is_empty()
    }

    /// The unmapped sentinel this ToC uses.
    pub fn unmapped_sentinel(&self) -> Cpfn {
        self.unmapped
    }

    /// The CPFN at `offset`, or `None` if that sub-page is unmapped.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn get(&self, offset: usize) -> Option<Cpfn> {
        let c = self.cpfns[offset];
        (c != self.unmapped).then_some(c)
    }

    /// Whether the sub-page at `offset` is mapped.
    pub fn is_valid(&self, offset: usize) -> bool {
        self.get(offset).is_some()
    }

    /// Sets the CPFN at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range or `cpfn` equals the sentinel
    /// (use [`invalidate`](Self::invalidate) for that).
    pub fn set(&mut self, offset: usize, cpfn: Cpfn) {
        assert_ne!(cpfn, self.unmapped, "use invalidate() to unmap");
        self.cpfns[offset] = cpfn;
    }

    /// Invalidates the sub-page at `offset` (sub-page invalidation, §3.1).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn invalidate(&mut self, offset: usize) {
        self.cpfns[offset] = self.unmapped;
    }

    /// Number of mapped sub-entries.
    pub fn valid_count(&self) -> usize {
        self.cpfns.iter().filter(|&&c| c != self.unmapped).count()
    }

    /// Whether every sub-entry is unmapped.
    pub fn is_all_unmapped(&self) -> bool {
        self.valid_count() == 0
    }

    /// Iterates `(offset, Option<Cpfn>)` over the sub-entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Option<Cpfn>)> + '_ {
        self.cpfns
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i, (c != self.unmapped).then_some(c)))
    }

    /// Overwrites `self` with `other`'s contents, reusing the existing
    /// buffer when it is large enough — two ToCs of the same arity
    /// never reallocate. The TLB fill paths use this to recycle
    /// evicted entries' buffers, keeping steady-state fills
    /// allocation-free.
    pub fn copy_from(&mut self, other: &Toc) {
        self.cpfns.clone_from(&other.cpfns);
        self.unmapped = other.unmapped;
    }

    /// The storage width of this ToC in bits, given a CPFN width.
    ///
    /// With arity 4 and 7-bit CPFNs this is 28 bits — smaller than the
    /// 36-bit PFN a conventional x86 TLB entry stores (§3.1).
    pub fn bits(&self, cpfn_bits: u32) -> u32 {
        self.cpfns.len() as u32 * cpfn_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toc() -> Toc {
        Toc::new(Arity::new(4), Cpfn::UNMAPPED_7BIT)
    }

    #[test]
    fn starts_all_unmapped() {
        let t = toc();
        assert_eq!(t.len(), 4);
        assert!(t.is_all_unmapped());
        for i in 0..4 {
            assert_eq!(t.get(i), None);
            assert!(!t.is_valid(i));
        }
    }

    #[test]
    fn set_get_invalidate() {
        let mut t = toc();
        t.set(1, Cpfn(0b011_0111));
        assert!(t.is_valid(1));
        assert_eq!(t.valid_count(), 1);
        t.invalidate(1);
        assert_eq!(t.get(1), None);
        assert!(t.is_all_unmapped());
    }

    #[test]
    fn iter_reports_validity() {
        let mut t = toc();
        t.set(0, Cpfn(3));
        t.set(3, Cpfn(9));
        let v: Vec<_> = t.iter().collect();
        assert_eq!(v[0], (0, Some(Cpfn(3))));
        assert_eq!(v[1], (1, None));
        assert_eq!(v[3], (3, Some(Cpfn(9))));
    }

    #[test]
    #[should_panic(expected = "use invalidate")]
    fn setting_sentinel_panics() {
        toc().set(0, Cpfn::UNMAPPED_7BIT);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_offset_panics() {
        toc().get(4);
    }

    #[test]
    fn paper_toc_width() {
        // Arity 4 × 7-bit CPFNs = 28 bits < 36-bit PFN (§3.1).
        let t = toc();
        assert_eq!(t.bits(7), 28);
        assert!(t.bits(7) < 36);
        // Arity 64 would be 448 bits — the "very wide TLB entries" caveat.
        let wide = Toc::new(Arity::new(64), Cpfn::UNMAPPED_7BIT);
        assert_eq!(wide.bits(7), 448);
    }
}
