//! A page-walk cache (MMU cache): the TLB-miss-penalty reducer the paper
//! situates Mosaic against (§5.4).
//!
//! Mosaic attacks the TLB *hit rate*; MMU caches attack the *miss cost*
//! by caching upper-level page-table nodes so a walk skips straight to
//! the lowest cached level (as in Barr et al.'s translation caching and
//! the paper's §5.4 discussion). The two compose: a mosaic TLB miss still
//! walks a radix tree, and a walk cache shortens that walk. This model
//! quantifies walk-memory-access savings for either page-table flavour.

use crate::pagetable::RadixTable;
use mosaic_mem::lru::LruIndex;
use std::collections::HashMap;

/// A translation cache over upper page-table levels.
///
/// Entries are `(level, index-prefix)` pairs: holding one means the walk
/// already knows the node at `level` for every index sharing that prefix,
/// so only levels below it must be fetched from memory.
///
/// # Example
///
/// ```
/// use mosaic_mmu::{RadixTable, WalkCache};
///
/// let mut pt: RadixTable<u64> = RadixTable::x86_vanilla(); // 4 levels
/// pt.insert(0x1234, 7);
/// let mut wc = WalkCache::new(16);
/// // Cold: all 4 levels fetched. Warm: upper 3 are cached, 1 fetch.
/// assert_eq!(wc.walk(&pt, 0x1234).1, 4);
/// assert_eq!(wc.walk(&pt, 0x1234).1, 1);
/// ```
#[derive(Debug, Clone)]
pub struct WalkCache {
    /// Cached upper-level nodes: `(level, prefix)` → present.
    entries: HashMap<(u32, u64), ()>,
    lru: LruIndex<(u32, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    obs_hits: mosaic_obs::Counter,
    obs_misses: mosaic_obs::Counter,
    obs_fetches: mosaic_obs::Histogram,
}

impl WalkCache {
    /// Creates a walk cache holding up to `capacity` node entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: HashMap::new(),
            lru: LruIndex::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            obs_hits: mosaic_obs::Counter::noop(),
            obs_misses: mosaic_obs::Counter::noop(),
            obs_fetches: mosaic_obs::Histogram::noop(),
        }
    }

    /// Exports this cache's counters as `walkcache.<label>.{hits,misses}`
    /// and the per-walk fetch count as histogram
    /// `walkcache.<label>.fetches`. A no-op when `obs` is disabled.
    pub fn set_obs(&mut self, obs: &mosaic_obs::ObsHandle, label: &str) {
        self.obs_hits = obs.counter(&format!("walkcache.{label}.hits"));
        self.obs_misses = obs.counter(&format!("walkcache.{label}.misses"));
        self.obs_fetches = obs.histogram(&format!("walkcache.{label}.fetches"));
    }

    /// Cached-entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entry lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn prefix(table_bits: u32, bits_per_level: u32, index: u64, level: u32) -> u64 {
        // Bits of `index` consumed by levels 0..=level.
        let levels = table_bits.div_ceil(bits_per_level);
        let below = (levels - 1 - level) * bits_per_level;
        index >> below
    }

    fn touch(&mut self, key: (u32, u64)) {
        self.tick += 1;
        if self.entries.contains_key(&key) {
            self.lru.touch(key, self.tick);
            return;
        }
        if self.entries.len() == self.capacity {
            if let Some((victim, _)) = self.lru.pop_oldest() {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, ());
        self.lru.touch(key, self.tick);
    }

    /// Walks `table` for `index` through the cache, returning the value
    /// and the number of page-table node fetches actually issued.
    ///
    /// The deepest cached non-leaf level is skipped to directly; all
    /// levels below it (including the leaf) are fetched and the non-leaf
    /// ones inserted into the cache. Walks of unmapped indices cost
    /// whatever prefix of the tree exists, exactly like the raw walker.
    pub fn walk<'a, V>(&mut self, table: &'a RadixTable<V>, index: u64) -> (Option<&'a V>, u32) {
        let levels = table.levels();
        let bits = table.index_bits().div_ceil(levels); // approx per-level width
        // Find the deepest cached upper level (leaf level is never cached;
        // its payload lives in the TLB, not the walk cache).
        let mut start = 0;
        for level in (0..levels.saturating_sub(1)).rev() {
            let key = (level, Self::prefix(table.index_bits(), bits, index, level));
            self.tick += 1;
            if self.entries.contains_key(&key) {
                self.lru.touch(key, self.tick);
                self.hits += 1;
                self.obs_hits.inc();
                start = level + 1;
                break;
            }
            self.misses += 1;
            self.obs_misses.inc();
        }
        // The raw walk tells us the value and how deep the tree goes.
        let raw = table.walk(index);
        let reached = raw.levels_touched; // 1..=levels
        let fetches = reached.saturating_sub(start);
        self.obs_fetches.record(u64::from(fetches));
        // Cache every upper-level node the walk traversed.
        for level in 0..reached.min(levels - 1) {
            let key = (level, Self::prefix(table.index_bits(), bits, index, level));
            self.touch(key);
        }
        (raw.value, fetches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(indices: &[u64]) -> RadixTable<u64> {
        let mut t = RadixTable::new(36, 9);
        for &i in indices {
            t.insert(i, i);
        }
        t
    }

    #[test]
    fn warm_walk_fetches_only_the_leaf() {
        let t = table_with(&[100]);
        let mut wc = WalkCache::new(8);
        let (v, cold) = wc.walk(&t, 100);
        assert_eq!(v, Some(&100));
        assert_eq!(cold, 4);
        let (_, warm) = wc.walk(&t, 100);
        assert_eq!(warm, 1, "upper three levels cached");
    }

    #[test]
    fn sibling_indices_share_upper_levels() {
        // 100 and 101 share every level except within the same leaf.
        let t = table_with(&[100, 101]);
        let mut wc = WalkCache::new(8);
        wc.walk(&t, 100);
        let (_, fetches) = wc.walk(&t, 101);
        assert_eq!(fetches, 1, "siblings reuse the cached path");
    }

    #[test]
    fn distant_indices_share_nothing_but_the_root() {
        let a = 0u64;
        let b = 1 << 35; // different top-level subtree
        let t = table_with(&[a, b]);
        let mut wc = WalkCache::new(8);
        wc.walk(&t, a);
        let (_, fetches) = wc.walk(&t, b);
        // Cached entries are keyed by consumed index bits, so even the
        // top-level entry differs: the full walk repeats.
        assert_eq!(fetches, 4);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let spread: Vec<u64> = (0..8).map(|i| i << 27).collect(); // distinct L2 subtrees
        let t = table_with(&spread);
        let mut wc = WalkCache::new(4);
        for &i in &spread {
            wc.walk(&t, i);
        }
        assert!(wc.len() <= 4);
        // The most recent path is still warm.
        let (_, fetches) = wc.walk(&t, spread[7]);
        assert!(fetches <= 2, "recent path evicted too eagerly: {fetches}");
    }

    #[test]
    fn unmapped_walks_are_counted_correctly() {
        let t = table_with(&[0]);
        let mut wc = WalkCache::new(8);
        // Unmapped sibling: full-depth walk, leaf absent.
        let (v, fetches) = wc.walk(&t, 1);
        assert_eq!(v, None);
        assert_eq!(fetches, 4);
        // Unmapped distant subtree: stops at the root.
        let (v2, f2) = wc.walk(&t, 1 << 35);
        assert_eq!(v2, None);
        assert!(f2 <= 1);
    }

    #[test]
    fn hit_and_miss_counters_advance() {
        let t = table_with(&[5]);
        let mut wc = WalkCache::new(8);
        wc.walk(&t, 5);
        let misses = wc.misses();
        wc.walk(&t, 5);
        assert!(wc.hits() > 0);
        assert_eq!(wc.misses(), misses, "warm walk must not miss");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        WalkCache::new(0);
    }

    #[test]
    fn mosaic_depth_tables_benefit_too() {
        // A 3-level mosaic table (30-bit MVPN space): warm walks cost 1.
        let mut t: RadixTable<u8> = RadixTable::new(30, 10);
        t.insert(42, 1);
        let mut wc = WalkCache::new(8);
        assert_eq!(wc.walk(&t, 42).1, 3);
        assert_eq!(wc.walk(&t, 42).1, 1);
    }
}
