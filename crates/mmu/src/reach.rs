//! TLB-reach and entry-width analysis (§2.1, §3.1 of the paper).
//!
//! The paper's ballpark: current x86 TLBs store 36-bit PFNs, so a ToC of
//! four 7-bit CPFNs (28 bits) *shrinks* the entry while quadrupling
//! reach; "by widening TLB entries, we can plausibly increase `a` to 64
//! without prohibitive costs". These helpers quantify that trade-off for
//! any geometry, for the reach tables the docs and benches print.

use crate::arity::Arity;
use mosaic_mem::PAGE_SIZE;

/// PFN width in a conventional x86 TLB entry (§2.1).
pub const X86_PFN_BITS: u32 = 36;

/// Reach of a conventional TLB in bytes: one base page per entry.
pub fn vanilla_reach_bytes(entries: usize) -> u64 {
    entries as u64 * PAGE_SIZE
}

/// Reach of a mosaic TLB in bytes: `arity` base pages per entry.
pub fn mosaic_reach_bytes(entries: usize, arity: Arity) -> u64 {
    entries as u64 * arity.get() as u64 * PAGE_SIZE
}

/// Translation-payload bits of a mosaic entry: `arity × cpfn_bits`.
pub fn toc_bits(arity: Arity, cpfn_bits: u32) -> u32 {
    arity.get() as u32 * cpfn_bits
}

/// Whether a mosaic ToC fits within the payload of a conventional entry
/// (the paper's "comparable hardware" configuration: arity 4 × 7 bits =
/// 28 ≤ 36).
pub fn fits_conventional_entry(arity: Arity, cpfn_bits: u32) -> bool {
    toc_bits(arity, cpfn_bits) <= X86_PFN_BITS
}

/// The paper's reach-increase estimate `a = log p / log h`: how many
/// CPFNs fit in the bits of one full PFN.
pub fn compression_arity(pfn_bits: u32, cpfn_bits: u32) -> u32 {
    pfn_bits / cpfn_bits
}

/// One row of a reach table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachRow {
    /// TLB design arity (1 = vanilla).
    pub arity: usize,
    /// Translation payload bits per entry.
    pub payload_bits: u32,
    /// Reach in bytes for a given entry count.
    pub reach_bytes: u64,
}

/// Builds the reach table for a TLB of `entries` entries and 7-bit CPFNs.
pub fn reach_table(entries: usize, arities: &[Arity]) -> Vec<ReachRow> {
    let mut rows = vec![ReachRow {
        arity: 1,
        payload_bits: X86_PFN_BITS,
        reach_bytes: vanilla_reach_bytes(entries),
    }];
    for &a in arities {
        rows.push(ReachRow {
            arity: a.get(),
            payload_bits: toc_bits(a, 7),
            reach_bytes: mosaic_reach_bytes(entries, a),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ballpark_numbers() {
        // 1024 entries x 4 KiB = 4 MiB vanilla reach; the paper quotes
        // "about 8.6 MiB" for a typical TLB (~2200 entries).
        assert_eq!(vanilla_reach_bytes(1024), 4 << 20);
        // Mosaic-4 quadruples it.
        assert_eq!(mosaic_reach_bytes(1024, Arity::new(4)), 16 << 20);
        // Mosaic-64: 256 MiB with 1024 entries (4 KiB x 64 x 1024).
        assert_eq!(mosaic_reach_bytes(1024, Arity::new(64)), 256 << 20);
    }

    #[test]
    fn arity4_fits_todays_entries() {
        assert_eq!(toc_bits(Arity::new(4), 7), 28);
        assert!(fits_conventional_entry(Arity::new(4), 7));
        assert!(!fits_conventional_entry(Arity::new(8), 7));
    }

    #[test]
    fn compression_estimate() {
        // 36-bit PFNs, 7-bit CPFNs: at least 4 CPFNs per PFN slot plus
        // change, hence the paper's a = 4 "comparable hardware" setting.
        assert_eq!(compression_arity(36, 7), 5);
        assert!(compression_arity(36, 7) >= 4);
    }

    #[test]
    fn reach_table_shape() {
        let rows = reach_table(1024, &[Arity::new(4), Arity::new(64)]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].arity, 1);
        assert!(rows[2].reach_bytes == rows[0].reach_bytes * 64);
        assert!(rows.windows(2).all(|w| w[0].reach_bytes < w[1].reach_bytes));
    }
}
