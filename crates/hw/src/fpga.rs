//! Artix-7 FPGA resource and timing model (Table 5 of the paper).
//!
//! The paper synthesized the Figure 4 datapath with Vivado for an Artix-7
//! and reports, per hash-function count `H`:
//!
//! | H | Slice LUTs | Registers | F7 Muxes | F8 Muxes | Latency |
//! |---|-----------|-----------|----------|----------|---------|
//! | 1 | 858       | 32        | 0        | 0        | 2.155 ns |
//! | 2 | 1696      | 32        | 32       | 0        | 2.155 ns |
//! | 4 | 3392      | 32        | 64       | 32       | 2.155 ns |
//! | 8 | 6208      | 32        | 2880     | 160      | 2.155 ns |
//!
//! The model below reproduces those rows exactly (they are anchor points,
//! not curve fits) and extends to other `H` with the structural rule the
//! data exhibits: LUTs grow roughly linearly in `H` (probed table reads
//! replicate read logic), the wide-mux F7/F8 counts grow with the mux
//! fan-in, registers stay constant (the 32-bit output register), and —
//! the paper's headline — **latency is flat in `H`**, because probing
//! only widens muxes off the critical path.

/// Vivado-style synthesis results for the hash circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaResources {
    /// Hash-function count the circuit produces.
    pub hash_functions: usize,
    /// Slice LUTs.
    pub luts: u32,
    /// Slice registers.
    pub registers: u32,
    /// F7 muxes.
    pub f7_muxes: u32,
    /// F8 muxes.
    pub f8_muxes: u32,
    /// Combinational latency in nanoseconds.
    pub latency_ns: f64,
}

impl FpgaResources {
    /// The maximum clock frequency the latency implies, in MHz.
    pub fn max_frequency_mhz(&self) -> f64 {
        1000.0 / self.latency_ns
    }
}

/// The paper's measured latency: 2.155 ns (464 MHz) for every `H`.
pub const LATENCY_NS: f64 = 2.155;

/// Anchor rows measured by the paper (Table 5).
const ANCHORS: [(usize, u32, u32, u32); 4] = [
    // (H, LUTs, F7, F8)
    (1, 858, 0, 0),
    (2, 1696, 32, 0),
    (4, 3392, 64, 32),
    (8, 6208, 2880, 160),
];

/// Synthesizes the circuit for `h` hash functions.
///
/// Returns the paper's exact Table 5 row for `h ∈ {1, 2, 4, 8}` and a
/// structural interpolation/extrapolation otherwise.
///
/// # Panics
///
/// Panics if `h` is zero or greater than 64.
///
/// # Example
///
/// ```
/// use mosaic_hw::fpga::synthesize;
///
/// // Latency is independent of H — probing is free on the critical path.
/// assert_eq!(synthesize(1).latency_ns, synthesize(8).latency_ns);
/// ```
pub fn synthesize(h: usize) -> FpgaResources {
    assert!(h > 0, "need at least one hash function");
    assert!(h <= 64, "h = {h} exceeds the modelled range");
    for &(ah, luts, f7, f8) in &ANCHORS {
        if ah == h {
            return FpgaResources {
                hash_functions: h,
                luts,
                registers: 32,
                f7_muxes: f7,
                f8_muxes: f8,
                latency_ns: LATENCY_NS,
            };
        }
    }
    // Structural extension: LUTs scale ~ linearly at the measured
    // per-function rate (average slope between the outer anchors);
    // F7/F8 grow with the wide output muxes, following the H=8 densities.
    let lut_slope = (6208.0 - 858.0) / 7.0; // per extra hash function
    let luts = (858.0 + lut_slope * (h as f64 - 1.0)).round() as u32;
    let f7 = if h < 2 {
        0
    } else {
        // F7 usage jumps once mux fan-in exceeds 4 (Vivado packs wide
        // muxes into F7/F8 chains); scale from the H=8 density.
        ((2880.0 / 8.0) * h as f64 * (h as f64 / 8.0)).round() as u32
    };
    let f8 = if h < 4 {
        0
    } else {
        ((160.0 / 8.0) * h as f64).round() as u32
    };
    FpgaResources {
        hash_functions: h,
        luts,
        registers: 32,
        f7_muxes: f7,
        f8_muxes: f8,
        latency_ns: LATENCY_NS,
    }
}

/// Renders the Table 5 sweep for a list of hash counts.
pub fn table5(hs: &[usize]) -> Vec<FpgaResources> {
    hs.iter().map(|&h| synthesize(h)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_table5_exactly() {
        let r1 = synthesize(1);
        assert_eq!((r1.luts, r1.registers, r1.f7_muxes, r1.f8_muxes), (858, 32, 0, 0));
        let r2 = synthesize(2);
        assert_eq!((r2.luts, r2.f7_muxes, r2.f8_muxes), (1696, 32, 0));
        let r4 = synthesize(4);
        assert_eq!((r4.luts, r4.f7_muxes, r4.f8_muxes), (3392, 64, 32));
        let r8 = synthesize(8);
        assert_eq!((r8.luts, r8.f7_muxes, r8.f8_muxes), (6208, 2880, 160));
    }

    #[test]
    fn latency_flat_across_h() {
        for h in [1, 2, 3, 4, 8, 16] {
            assert!((synthesize(h).latency_ns - 2.155).abs() < 1e-12);
        }
    }

    #[test]
    fn frequency_is_464_mhz() {
        let f = synthesize(4).max_frequency_mhz();
        assert!((f - 464.0).abs() < 1.0, "got {f:.1} MHz");
    }

    #[test]
    fn luts_grow_monotonically() {
        let mut last = 0;
        for h in 1..=16 {
            let l = synthesize(h).luts;
            assert!(l > last, "H={h}: {l} <= {last}");
            last = l;
        }
    }

    #[test]
    fn registers_constant() {
        for h in [1, 3, 8, 32] {
            assert_eq!(synthesize(h).registers, 32);
        }
    }

    #[test]
    fn interpolated_values_are_plausible() {
        let r3 = synthesize(3);
        assert!(r3.luts > synthesize(2).luts);
        assert!(r3.luts < synthesize(4).luts);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_h_panics() {
        synthesize(0);
    }

    #[test]
    fn table5_sweep_shape() {
        let rows = table5(&[1, 2, 4, 8]);
        assert_eq!(rows.len(), 4);
        // Area grows sub-8x over an 8x H increase (shared tables).
        assert!(rows[3].luts < rows[0].luts * 8);
    }
}
