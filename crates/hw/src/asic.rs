//! 28 nm CMOS synthesis model (§4.4 of the paper).
//!
//! The paper synthesized the System Verilog datapath with Cadence tools on
//! a commercial 28 nm process at the worst-case corner (TrFF, VddMIN,
//! RCBEST, 1 V, 125 °C) and reports:
//!
//! * maximum frequency **4 GHz**, latency **220 ps**, **+20 ps** positive
//!   slack — so the added hash is unlikely to affect clock frequency;
//! * latency flat in the hash-function count;
//! * **13.806 KGE** area (NAND2-equivalent) at 8 hash functions, with
//!   area growing only minimally in `H` (wider output muxes).

/// Synthesis results for the 28 nm implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsicResult {
    /// Hash-function count.
    pub hash_functions: usize,
    /// Maximum clock frequency in GHz.
    pub max_freq_ghz: f64,
    /// Combinational latency in picoseconds.
    pub latency_ps: f64,
    /// Timing slack at the 4 GHz target, in picoseconds (positive = met).
    pub slack_ps: f64,
    /// Area in kilo-gate-equivalents (2-input NAND).
    pub area_kge: f64,
}

impl AsicResult {
    /// Whether the circuit closes timing at the 4 GHz TLB target.
    pub fn meets_4ghz(&self) -> bool {
        self.slack_ps >= 0.0
    }
}

/// Latency of the datapath — flat in `H` (§4.4).
pub const LATENCY_PS: f64 = 220.0;

/// Slack at the 4 GHz target reported by the paper.
pub const SLACK_PS: f64 = 20.0;

/// Area at the paper's measured point (`H = 8`).
pub const AREA_KGE_AT_8: f64 = 13.806;

/// Synthesizes the circuit for `h` hash functions on the 28 nm model.
///
/// Area scales from the measured `H = 8` point: a fixed base (tables, XOR
/// trees, registers) plus a small per-function mux increment — "increasing
/// the number of hash functions … increases the area minimally" (§4.4).
///
/// # Panics
///
/// Panics if `h` is zero or greater than 64.
///
/// # Example
///
/// ```
/// use mosaic_hw::asic::synthesize;
///
/// let r = mosaic_hw::asic::synthesize(8);
/// assert!(r.meets_4ghz());
/// assert!((r.area_kge - 13.806).abs() < 1e-9);
/// ```
pub fn synthesize(h: usize) -> AsicResult {
    assert!(h > 0, "need at least one hash function");
    assert!(h <= 64, "h = {h} exceeds the modelled range");
    // "Minimal" area growth: take ~90 % of the measured area as the shared
    // base and spread the remainder over the 8 measured mux slices.
    let base = AREA_KGE_AT_8 * 0.90;
    let per_h = (AREA_KGE_AT_8 - base) / 8.0;
    AsicResult {
        hash_functions: h,
        max_freq_ghz: 4.0,
        latency_ps: LATENCY_PS,
        slack_ps: SLACK_PS,
        area_kge: base + per_h * h as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_point_matches_paper() {
        let r = synthesize(8);
        assert_eq!(r.max_freq_ghz, 4.0);
        assert_eq!(r.latency_ps, 220.0);
        assert_eq!(r.slack_ps, 20.0);
        assert!((r.area_kge - 13.806).abs() < 1e-9);
        assert!(r.meets_4ghz());
    }

    #[test]
    fn latency_flat_in_h() {
        for h in [1, 2, 4, 8, 16] {
            assert_eq!(synthesize(h).latency_ps, LATENCY_PS);
            assert_eq!(synthesize(h).max_freq_ghz, 4.0);
        }
    }

    #[test]
    fn area_grows_minimally() {
        let a1 = synthesize(1).area_kge;
        let a8 = synthesize(8).area_kge;
        assert!(a8 > a1);
        // 8x the hash functions costs far less than 2x the area.
        assert!(a8 / a1 < 1.25, "ratio {:.3}", a8 / a1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_panics() {
        synthesize(0);
    }
}
