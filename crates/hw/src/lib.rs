//! Hardware-feasibility models for the Mosaic TLB hash circuit (§4.4).
//!
//! The paper answers "is Mosaic hardware feasible?" by implementing the
//! probing tabulation-hash datapath (Figure 4) in Verilog and synthesizing
//! it twice: on an Artix-7 FPGA (Table 5) and on a commercial 28 nm CMOS
//! process. This crate reproduces that evaluation with:
//!
//! * [`circuit`] — a gate-level structural model of the datapath (table
//!   ROMs, XOR reduction tree, output muxes) that is **bit-exact** against
//!   the behavioural `mosaic-hash` implementation, plus component counts;
//! * [`fpga`] — an Artix-7 resource/latency model anchored to the paper's
//!   Vivado results (Table 5) and extended structurally to other hash
//!   counts;
//! * [`asic`] — the 28 nm synthesis model (4 GHz max frequency, 220 ps
//!   latency, ~13.8 KGE at 8 hash functions).
//!
//! # Example
//!
//! ```
//! use mosaic_hw::fpga;
//!
//! let r = fpga::synthesize(4);
//! assert_eq!(r.luts, 3392); // Table 5, H = 4
//! assert!((r.latency_ns - 2.155).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asic;
pub mod circuit;
pub mod fpga;

pub use asic::{synthesize as asic_synthesize, AsicResult};
pub use circuit::{CircuitCounts, TabHashCircuit};
pub use fpga::{synthesize as fpga_synthesize, FpgaResources};
