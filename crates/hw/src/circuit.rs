//! A gate-level structural model of the probing tabulation-hash datapath
//! (Figure 4 of the paper).
//!
//! The circuit, per input byte of the VPN, reads a 256 × 32-bit static
//! table at indices `b`, `b+1`, …, `b+H−1` (the probe offsets), feeds the
//! `H` values into 32-bit `H`-to-1 muxes selected by the hash-function id,
//! and XORs the per-table outputs together. Computing all `H` outputs in
//! parallel (as the TLB needs) replicates only the muxes and XOR tree —
//! the tables are shared, which is why area grows far slower than `H×`.
//!
//! [`TabHashCircuit::evaluate`] executes this structure operation by
//! operation (ROM reads, 2-input XORs, mux selections) and is tested
//! bit-exact against the behavioural [`TabulationHasher`].

use mosaic_hash::TabulationHasher;

/// Output width of the hash datapath, in bits.
pub const OUTPUT_BITS: u32 = 32;

/// Entries per static table (one per byte value).
pub const TABLE_ENTRIES: u32 = 256;

/// Dynamic operation counts from one evaluation, plus static component
/// counts — the quantities area and latency models consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitCounts {
    /// Table ROM reads performed.
    pub rom_reads: u64,
    /// 2-input, 32-bit XOR operations.
    pub xor_ops: u64,
    /// 32-bit 2-to-1 mux operations (an `H`-to-1 mux is `H − 1` of them).
    pub mux_ops: u64,
}

/// The structural datapath: shared tables, per-output XOR trees and muxes.
#[derive(Debug, Clone)]
pub struct TabHashCircuit {
    hasher: TabulationHasher,
}

impl TabHashCircuit {
    /// Builds the circuit for `num_bytes` input bytes and `num_outputs`
    /// probed hash functions.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TabulationHasher::new`].
    pub fn new(num_bytes: usize, num_outputs: usize, seed: u64) -> Self {
        Self {
            hasher: TabulationHasher::new(num_bytes, num_outputs, seed),
        }
    }

    /// Wraps an existing behavioural hasher (so OS and hardware provably
    /// share tables).
    pub fn from_hasher(hasher: TabulationHasher) -> Self {
        Self { hasher }
    }

    /// Number of input bytes / static tables.
    pub fn num_tables(&self) -> usize {
        self.hasher.num_bytes()
    }

    /// Number of probed hash outputs.
    pub fn num_outputs(&self) -> usize {
        self.hasher.num_outputs()
    }

    /// Evaluates **all** hash outputs for `key` the way the hardware does
    /// — every table read at every probe offset, then muxed and XORed —
    /// returning the outputs and the operation counts.
    pub fn evaluate(&self, key: u64) -> (Vec<u32>, CircuitCounts) {
        let h = self.num_outputs();
        let tables = self.hasher.tables();
        let mut counts = CircuitCounts::default();

        // Phase 1: every table produces H probed values (shared ROMs with
        // wide/multi-offset read ports).
        let mut probed: Vec<Vec<u32>> = Vec::with_capacity(tables.len());
        for (b, table) in tables.iter().enumerate() {
            let byte = ((key >> (8 * b)) & 0xFF) as u8;
            let mut vals = Vec::with_capacity(h);
            for i in 0..h {
                counts.rom_reads += 1;
                vals.push(table[byte.wrapping_add(i as u8) as usize]);
            }
            probed.push(vals);
        }

        // Phase 2: per hash output, mux each table's probed value (H-to-1
        // mux = H-1 two-input muxes) and XOR-reduce across tables.
        let mut outputs = Vec::with_capacity(h);
        for i in 0..h {
            let mut acc: Option<u32> = None;
            for vals in &probed {
                // Walk the mux chain to select probe i.
                let mut selected = vals[0];
                for (j, &v) in vals.iter().enumerate().skip(1) {
                    counts.mux_ops += 1;
                    if j == i {
                        selected = v;
                    }
                }
                if i == 0 {
                    // Probe 0 needs no mux steps conceptually, but the
                    // hardware still instantiates them; counts above model
                    // the instantiated muxes switching.
                    selected = vals[0];
                }
                acc = Some(match acc {
                    None => selected,
                    Some(a) => {
                        counts.xor_ops += 1;
                        a ^ selected
                    }
                });
            }
            outputs.push(acc.expect("at least one table"));
        }
        (outputs, counts)
    }

    /// Static component counts: what synthesis instantiates.
    pub fn static_counts(&self) -> CircuitCounts {
        let t = self.num_tables() as u64;
        let h = self.num_outputs() as u64;
        CircuitCounts {
            // Each table is read at h offsets.
            rom_reads: t * h,
            // One (t-1)-deep XOR tree per output.
            xor_ops: h * (t - 1),
            // One (h-1)-mux chain per table per output.
            mux_ops: h * t * h.saturating_sub(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit() -> TabHashCircuit {
        TabHashCircuit::new(5, 4, 0xC1C0)
    }

    #[test]
    fn bit_exact_against_behavioural_model() {
        // The RTL-style evaluation must match the golden model for every
        // output on a spread of keys.
        let c = circuit();
        let golden = TabulationHasher::new(5, 4, 0xC1C0);
        for key in [0u64, 1, 0xFF, 0xDEAD_BEEF, u64::MAX, 0x0123_4567_89AB] {
            let (outs, _) = c.evaluate(key);
            assert_eq!(outs, golden.hash_all(key), "key {key:#x}");
        }
    }

    #[test]
    fn op_counts_match_structure() {
        let c = circuit();
        let (_, counts) = c.evaluate(42);
        // 5 tables x 4 probes.
        assert_eq!(counts.rom_reads, 20);
        // 4 outputs x (5 - 1) XORs.
        assert_eq!(counts.xor_ops, 16);
        // 4 outputs x 5 tables x 3 mux steps.
        assert_eq!(counts.mux_ops, 60);
        assert_eq!(counts, c.static_counts());
    }

    #[test]
    fn single_output_needs_no_muxes() {
        let c = TabHashCircuit::new(5, 1, 7);
        let (_, counts) = c.evaluate(9);
        assert_eq!(counts.mux_ops, 0);
        assert_eq!(counts.rom_reads, 5);
    }

    #[test]
    fn shared_tables_with_os_hasher() {
        let hasher = TabulationHasher::new(8, 7, 123);
        let c = TabHashCircuit::from_hasher(hasher.clone());
        let (outs, _) = c.evaluate(0xABCD);
        assert_eq!(outs, hasher.hash_all(0xABCD));
    }

    #[test]
    fn outputs_differ_across_probes() {
        let c = circuit();
        let (outs, _) = c.evaluate(555);
        for i in 0..outs.len() {
            for j in (i + 1)..outs.len() {
                assert_ne!(outs[i], outs[j]);
            }
        }
    }
}
