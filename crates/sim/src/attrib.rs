//! The miss-attribution experiment: differential mosaic-vs-vanilla 3C
//! curves plus a memory-fault taxonomy with per-tenant blame.
//!
//! One run drives two workloads (GUPS and Graph500) at a configured
//! load over **both** layers of the system:
//!
//! * every Figure 6 TLB cell (vanilla and mosaic at each swept
//!   associativity), with the shadow fully-associative classifier
//!   splitting misses into compulsory / capacity / conflict
//!   ([`mosaic_mmu::MissClassifier`]);
//! * both memory managers (Mosaic and the Linux-like baseline) under a
//!   two-tenant split of the same reference stream, charging every
//!   eviction to an (evictor, victim) ASID pair in the
//!   cold / capacity-evict / cross-tenant / quota-self / shootdown
//!   taxonomy.
//!
//! All cells replay the **same recorded trace**, so the per-design
//! attribution deltas are aligned by construction: the "conflict misses
//! removed by Mosaic-k" column is literally
//! `vanilla.conflict − mosaic-k.conflict` over an identical reference
//! stream, and compulsory counts must agree exactly across designs
//! (every first touch of a VPN misses in both models).
//!
//! The footprint is `load_pct` percent of physical memory (the repo's
//! usual load convention: 16 Iceberg buckets × 64 frames = 1024 frames,
//! so 105 % ≈ 1075 pages), which over-commits the memory managers into
//! the eviction-rich regime. TLB reach is set just **under** that
//! footprint (~102 % TLB over-commit): close enough that a
//! fully-associative TLB still holds almost the whole working set —
//! so steady-state set-associative misses are associativity
//! *artifacts* (conflicts), exactly the component Mosaic's smaller tag
//! footprint removes — but over-committed enough that those conflicts
//! actually occur.
//!
//! There is **one** execution engine — record once, fan cells out via
//! [`run_cells`] — used at every `--jobs` value, so results and the
//! merged observability stream are byte-identical at any thread count.

use crate::dual::reference_os;
use crate::fig6::{run_fig6_cell, CellSpec, TlbKind};
use crate::os::USER_ASID;
use crate::parallel::{derive_seed, run_cells};
use crate::report::{group_digits, Table};
use crate::trace_buffer::TraceBufferBuilder;
use mosaic_mem::{
    Asid, FaultPlan, IcebergConfig, LinuxMemory, MemoryLayout, MemoryManager, MosaicMemory,
    PageKey, TenantQuota, PAGE_SIZE,
};
use mosaic_mmu::{Arity, Associativity, TlbStats};
use mosaic_obs::{AttribCategory, AttribCell, ObsHandle, Value};
use mosaic_workloads::{GupsConfig, Workload};

/// The ASID carrying even-numbered pages of the trace (never quota'd).
const TENANT_EVEN: Asid = Asid(1);
/// The ASID carrying odd-numbered pages: clamped to an eighth of
/// memory after the drive (quota-self trim on its next access), then
/// released (exit shootdown).
const TENANT_ODD: Asid = Asid(2);

/// Attribution sweep parameters.
#[derive(Debug, Clone)]
pub struct AttribConfig {
    /// TLB entries per design (paper: 1024).
    pub tlb_entries: usize,
    /// Associativities to sweep. `Full` is the built-in control: a
    /// fully-associative TLB can have no conflict misses by definition.
    pub associativities: Vec<Associativity>,
    /// Mosaic arities to sweep.
    pub arities: Vec<Arity>,
    /// Iceberg buckets of physical memory (64 frames each) for the
    /// memory-manager cells.
    pub mem_buckets: usize,
    /// Workload footprint as a percentage of physical memory.
    pub load_pct: u64,
    /// Run seed.
    pub seed: u64,
    /// Fault injection rate (per million) for the memory-manager
    /// cells; 0 disables the injectors entirely.
    pub fault_ppm: u32,
}

impl AttribConfig {
    /// The default experiment: 1024 frames at 105 % load (1075-page
    /// footprint) with 1056 TLB entries (~102 % TLB over-commit),
    /// direct / 4-way / full, arities 4 and 8.
    pub fn paper() -> Self {
        Self {
            tlb_entries: 1056,
            associativities: vec![
                Associativity::Ways(1),
                Associativity::Ways(4),
                Associativity::Full,
            ],
            arities: vec![Arity::new(4), Arity::new(8)],
            mem_buckets: 16,
            load_pct: 105,
            seed: 0xA77_121B,
            fault_ppm: 0,
        }
    }

    /// A small grid for unit tests and doctests.
    pub fn quick_test() -> Self {
        Self {
            tlb_entries: 528,
            associativities: vec![Associativity::Ways(1), Associativity::Full],
            arities: vec![Arity::new(4)],
            mem_buckets: 8,
            load_pct: 105,
            seed: 42,
            fault_ppm: 0,
        }
    }

    /// Physical frames under management in the memory cells.
    pub fn num_frames(&self) -> u64 {
        (self.mem_buckets * 64) as u64
    }

    /// The target workload footprint, in pages: `load_pct` percent of
    /// physical memory.
    pub fn footprint_pages(&self) -> u64 {
        self.num_frames() * self.load_pct / 100
    }
}

/// The workloads the attribution experiment drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttribWorkload {
    /// Uniform random updates: stack distances are uniform over the
    /// footprint, so nearly every steady-state set-associative miss is
    /// a conflict when the footprint barely exceeds reach.
    Gups,
    /// BFS over a Kronecker graph: scattered medium-distance reuse.
    Graph500,
}

impl AttribWorkload {
    /// Both workloads, in report order.
    pub const ALL: [AttribWorkload; 2] = [AttribWorkload::Gups, AttribWorkload::Graph500];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AttribWorkload::Gups => "GUPS",
            AttribWorkload::Graph500 => "Graph500",
        }
    }

    /// Builds the workload at approximately `footprint_pages`.
    fn build(self, footprint_pages: u64, seed: u64) -> Box<dyn Workload> {
        let bytes = footprint_pages * PAGE_SIZE;
        match self {
            AttribWorkload::Gups => Box::new(mosaic_workloads::Gups::new(
                GupsConfig {
                    table_bytes: bytes,
                    updates: footprint_pages * 32,
                },
                seed,
            )),
            AttribWorkload::Graph500 => {
                Box::new(mosaic_workloads::Graph500::with_footprint(bytes, 1, seed))
            }
        }
    }
}

/// One TLB design's classified misses for one workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbAttribRow {
    /// Workload name.
    pub workload: &'static str,
    /// TLB associativity.
    pub assoc: Associativity,
    /// Which design.
    pub kind: TlbKind,
    /// Full TLB counters.
    pub stats: TlbStats,
    /// Misses no finite TLB avoids (first touch of the page).
    pub compulsory: u64,
    /// Misses a fully-associative TLB of equal capacity also takes.
    pub capacity: u64,
    /// Misses only limited associativity explains (shadow would hit).
    pub conflict: u64,
}

impl TlbAttribRow {
    /// Total misses (the classified categories must sum to this).
    pub fn misses(&self) -> u64 {
        self.stats.misses
    }

    /// Sum of the three classes.
    pub fn classified(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }
}

/// One memory manager's fault taxonomy for one workload, with the full
/// per-tenant blame matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAttribRow {
    /// Workload name.
    pub workload: &'static str,
    /// `"mosaic"` or `"linux"`.
    pub manager: &'static str,
    /// First-ever faults (demand fill).
    pub cold: u64,
    /// Same-tenant capacity evictions.
    pub capacity_evict: u64,
    /// Evictions where one tenant displaced another's page.
    pub cross_tenant: u64,
    /// Over-quota self-evictions (admission displacement + trim).
    pub quota_self: u64,
    /// Frames reclaimed by the exit-time `release_asid` shootdown.
    pub shootdown: u64,
    /// Accesses dropped to typed errors (non-zero only under fault
    /// injection).
    pub dropped: u64,
    /// Every non-zero (category, evictor, victim) cell, sorted.
    pub blame: Vec<AttribCell>,
}

/// The full experiment result: TLB rows and memory rows per workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AttribReport {
    /// One row per (workload, associativity, design).
    pub tlb: Vec<TlbAttribRow>,
    /// One row per (workload, manager).
    pub mem: Vec<MemAttribRow>,
}

/// Which memory manager a cell drives.
#[derive(Debug, Clone, Copy)]
enum MemKind {
    Mosaic,
    Linux,
}

impl MemKind {
    fn prefix(self) -> &'static str {
        match self {
            MemKind::Mosaic => "mosaic",
            MemKind::Linux => "linux",
        }
    }
}

/// One cell of the attribution grid.
#[derive(Debug, Clone, Copy)]
enum AttribCellSpec {
    Tlb(CellSpec),
    Mem(MemKind),
}

/// Runs the full experiment (both workloads) on `jobs` threads.
///
/// Attribution columns are populated only when `obs` has attribution
/// opted in ([`ObsHandle::set_attrib`]); with a plain or disabled
/// handle the classified counts are zero while the raw [`TlbStats`]
/// stay exact. Results and — when `obs` is enabled — the merged
/// observability stream are byte-identical at any `jobs` value: there
/// is a single record-once/replay-many engine, cells come back in
/// input order, and fault-injector seeds derive from the cell index.
pub fn run_attrib(
    cfg: &AttribConfig,
    obs: &ObsHandle,
    obs_interval: u64,
    jobs: usize,
) -> AttribReport {
    let mut report = AttribReport {
        tlb: Vec::new(),
        mem: Vec::new(),
    };
    for wl in AttribWorkload::ALL {
        run_one_workload(cfg, wl, obs, obs_interval, jobs, &mut report);
    }
    report
}

/// Records `wl`'s trace once, then fans every TLB and memory cell out.
fn run_one_workload(
    cfg: &AttribConfig,
    wl: AttribWorkload,
    obs: &ObsHandle,
    obs_interval: u64,
    jobs: usize,
    report: &mut AttribReport,
) {
    let mut workload = wl.build(cfg.footprint_pages(), cfg.seed);
    let meta = workload.meta();
    let footprint_pages = meta.footprint_bytes.div_ceil(PAGE_SIZE) + 16;
    let mut os = reference_os(&cfg.arities, footprint_pages, 0, cfg.seed, USER_ASID);
    if obs.is_enabled() {
        os.set_obs(obs);
        obs.event(
            0,
            "drive.begin",
            &[("workload", Value::from(wl.name()))],
        );
    }

    // Reference pass: resolve all demand mapping while recording the
    // stream (no kernel injection — kernel huge pages would break the
    // compulsory-equality invariant the experiment checks).
    let mut builder = TraceBufferBuilder::new();
    let mut refs = 0u64;
    let mut snapshots: Vec<(u64, u64)> = Vec::new();
    workload.run(&mut |a| {
        os.touch(a.addr.vpn(), a.kind);
        builder.push(a);
        refs += 1;
        if obs_interval > 0 && refs.is_multiple_of(obs_interval) && obs.is_enabled() {
            snapshots.push((refs, refs));
            os.publish_obs();
            obs.snapshot(refs);
        }
    });
    let trace = builder
        .finish(meta.clone())
        .expect("failed to record reference trace");
    drop(workload);

    // Cell order fixes both the report row order and the merged-stream
    // order: per associativity the vanilla cell then one mosaic cell
    // per arity (Figure 6's order), then the two memory managers.
    let mut inputs: Vec<(AttribCellSpec, ObsHandle)> = Vec::new();
    for &assoc in &cfg.associativities {
        inputs.push((AttribCellSpec::Tlb(CellSpec::Vanilla(assoc)), obs.child()));
        for &arity in &cfg.arities {
            inputs.push((
                AttribCellSpec::Tlb(CellSpec::Mosaic(assoc, arity)),
                obs.child(),
            ));
        }
    }
    inputs.push((AttribCellSpec::Mem(MemKind::Mosaic), obs.child()));
    inputs.push((AttribCellSpec::Mem(MemKind::Linux), obs.child()));

    let outcomes = run_cells(jobs, inputs, |i, (spec, child)| {
        let out = match spec {
            AttribCellSpec::Tlb(tlb_spec) => Some(run_fig6_cell(
                &os,
                &trace,
                cfg.tlb_entries,
                tlb_spec,
                &child,
                &snapshots,
            )),
            AttribCellSpec::Mem(kind) => {
                run_mem_cell(cfg, kind, &trace, &child, &snapshots, i);
                None
            }
        };
        // Final per-cell snapshot: covers the tail past the last
        // interval, so the cell's curve reaches the end of the trace
        // (a table flat over the tail is simply not re-emitted).
        if child.is_enabled() {
            child.snapshot(refs);
        }
        (spec, out, child)
    });

    for (spec, stats, child) in outcomes {
        match spec {
            AttribCellSpec::Tlb(tlb_spec) => {
                let (assoc, kind, label) = match tlb_spec {
                    CellSpec::Vanilla(a) => (
                        a,
                        TlbKind::Vanilla,
                        format!("tlb.vanilla.{}", a.to_string().to_lowercase()),
                    ),
                    CellSpec::Mosaic(a, k) => (
                        a,
                        TlbKind::Mosaic(k),
                        format!("tlb.mosaic-{}.{}", k.get(), a.to_string().to_lowercase()),
                    ),
                };
                let table = child.attrib_table(&label);
                report.tlb.push(TlbAttribRow {
                    workload: wl.name(),
                    assoc,
                    kind,
                    stats: stats.expect("TLB cells return stats"),
                    compulsory: table.category_total(AttribCategory::Compulsory),
                    capacity: table.category_total(AttribCategory::Capacity),
                    conflict: table.category_total(AttribCategory::Conflict),
                });
            }
            AttribCellSpec::Mem(kind) => {
                let table = child.attrib_table(&format!("{}.faults", kind.prefix()));
                report.mem.push(MemAttribRow {
                    workload: wl.name(),
                    manager: kind.prefix(),
                    cold: table.category_total(AttribCategory::Cold),
                    capacity_evict: table.category_total(AttribCategory::CapacityEvict),
                    cross_tenant: table.category_total(AttribCategory::CrossTenant),
                    quota_self: table.category_total(AttribCategory::QuotaSelf),
                    shootdown: table.category_total(AttribCategory::Shootdown),
                    dropped: child.counter_value(&format!("{}.attrib_dropped", kind.prefix())),
                    blame: table.cells(),
                });
            }
        }
        if obs.is_enabled() {
            obs.merge_from(&child);
        }
    }
    if obs.is_enabled() {
        os.publish_obs();
        obs.snapshot(refs);
    }
}

/// Replays the shared stream through one memory manager under a
/// two-tenant split, charging the full fault taxonomy.
///
/// Pages alternate between [`TENANT_EVEN`] and [`TENANT_ODD`] by VPN
/// parity; the odd tenant is quota'd to a quarter of memory (exercising
/// quota self-eviction) and released at the end (exit shootdown).
fn run_mem_cell(
    cfg: &AttribConfig,
    kind: MemKind,
    trace: &crate::trace_buffer::TraceBuffer,
    child: &ObsHandle,
    snapshots: &[(u64, u64)],
    cell_index: usize,
) {
    let layout = MemoryLayout::new(IcebergConfig::paper_default(cfg.mem_buckets));
    let plan = if cfg.fault_ppm > 0 {
        FaultPlan::NONE
            .with_alloc_failures(cfg.fault_ppm)
            .with_io_failures(cfg.fault_ppm, 2)
            .with_toc_flips(cfg.fault_ppm)
    } else {
        FaultPlan::NONE
    };
    // Injector seeds derive from (seed, cell index) at *every* job
    // count, so fault placement is identical no matter how many
    // threads run the grid.
    let fault_seed = derive_seed(cfg.seed, cell_index as u64);
    let mut mosaic_mgr;
    let mut linux_mgr;
    let mgr: &mut dyn MemoryManager = match kind {
        MemKind::Mosaic => {
            mosaic_mgr = MosaicMemory::new(layout, cfg.seed);
            if !plan.is_none() {
                mosaic_mgr = mosaic_mgr.with_fault_injector(plan, fault_seed);
            }
            &mut mosaic_mgr
        }
        MemKind::Linux => {
            linux_mgr = LinuxMemory::new(layout);
            if !plan.is_none() {
                linux_mgr = linux_mgr.with_fault_injector(plan, fault_seed ^ 0x11);
            }
            &mut linux_mgr
        }
    };
    if child.is_enabled() {
        mgr.set_obs(child, kind.prefix());
    }

    // The drive runs un-quota'd: at >100 % load the two tenants churn
    // under pure global pressure, producing capacity (self) and
    // cross-tenant evictions.
    let mut now = 0u64;
    let mut dropped = 0u64;
    let mut max_vpn = 0u64;
    let mut snap = snapshots.iter().copied().peekable();
    trace
        .replay(&mut |a| {
            now += 1;
            let vpn = a.addr.vpn();
            max_vpn = max_vpn.max(vpn.0);
            let tenant = Asid(TENANT_EVEN.0 + (vpn.0 & 1) as u16);
            if mgr.try_access(PageKey::new(tenant, vpn), a.kind, now).is_err() {
                // Graceful degradation under injected faults: drop the
                // access, keep the manager consistent.
                dropped += 1;
            }
            if snap.peek().is_some_and(|&(r, _)| r == now) {
                let (_, stamp) = snap.next().expect("peeked position");
                mgr.publish_obs();
                child.snapshot(stamp);
            }
        })
        .expect("reference trace replay failed");

    // Epilogue: clamp the odd tenant to an eighth of memory, then touch
    // one fresh odd page — quotas are enforced on the tenant's next
    // access, so this single fault trims its residency down to the
    // clamp, charging one `QuotaSelf` cell per trimmed page.
    mgr.set_quota(
        TENANT_ODD,
        TenantQuota {
            frames: mgr.num_frames() / 8,
            priority: 0,
        },
    );
    let probe = max_vpn + 1 + ((max_vpn + 1) & 1 ^ 1);
    now += 1;
    if mgr
        .try_access(
            PageKey::new(TENANT_ODD, mosaic_mem::Vpn(probe)),
            mosaic_mem::AccessKind::Load,
            now,
        )
        .is_err()
    {
        dropped += 1;
    }
    // Exit-time shootdown of the clamped tenant: its remaining resident
    // frames come back as `Shootdown` charges.
    mgr.release_asid(TENANT_ODD);
    mgr.verify().expect("structural invariants must hold");
    mgr.publish_obs();
    if child.is_enabled() {
        child
            .counter(&format!("{}.attrib_dropped", kind.prefix()))
            .add(dropped);
    }
}

/// `vanilla.conflict − mosaic.conflict` for one (workload,
/// associativity, arity) — the quantity the differential curves plot.
pub fn conflict_removed(
    report: &AttribReport,
    workload: &str,
    assoc: Associativity,
    arity: Arity,
) -> Option<i64> {
    let vanilla = find_row(report, workload, assoc, TlbKind::Vanilla)?;
    let mosaic = find_row(report, workload, assoc, TlbKind::Mosaic(arity))?;
    Some(vanilla.conflict as i64 - mosaic.conflict as i64)
}

/// What fraction of the miss reduction (vanilla − mosaic) the conflict
/// delta explains, in percent. `None` when mosaic removed no misses
/// (nothing to explain).
pub fn explained_by_conflict_pct(
    report: &AttribReport,
    workload: &str,
    assoc: Associativity,
    arity: Arity,
) -> Option<f64> {
    let vanilla = find_row(report, workload, assoc, TlbKind::Vanilla)?;
    let mosaic = find_row(report, workload, assoc, TlbKind::Mosaic(arity))?;
    let removed = vanilla.misses() as i64 - mosaic.misses() as i64;
    if removed <= 0 {
        return None;
    }
    let conflict = vanilla.conflict as i64 - mosaic.conflict as i64;
    Some(conflict as f64 / removed as f64 * 100.0)
}

fn find_row<'a>(
    report: &'a AttribReport,
    workload: &str,
    assoc: Associativity,
    kind: TlbKind,
) -> Option<&'a TlbAttribRow> {
    report
        .tlb
        .iter()
        .find(|r| r.workload == workload && r.assoc == assoc && r.kind == kind)
}

/// Renders the full report: per workload a 3C table with the
/// differential columns, then the fault-taxonomy table, then the
/// per-tenant blame matrix for both managers.
pub fn render(report: &AttribReport) -> String {
    let mut out = String::new();
    for wl in AttribWorkload::ALL {
        let name = wl.name();
        let mut t = Table::new(vec![
            "Assoc".into(),
            "Design".into(),
            "Misses".into(),
            "Compulsory".into(),
            "Capacity".into(),
            "Conflict".into(),
            "Removed vs vanilla".into(),
            "Explained by conflict (%)".into(),
        ])
        .with_title(&format!("Miss attribution (3C) — {name}"));
        for r in report.tlb.iter().filter(|r| r.workload == name) {
            let (removed, explained) = match r.kind {
                TlbKind::Vanilla => ("-".to_string(), "-".to_string()),
                TlbKind::Mosaic(arity) => {
                    let removed = find_row(report, name, r.assoc, TlbKind::Vanilla)
                        .map_or("-".to_string(), |v| {
                            let d = v.misses() as i64 - r.misses() as i64;
                            if d < 0 {
                                format!("-{}", group_digits(d.unsigned_abs()))
                            } else {
                                group_digits(d as u64)
                            }
                        });
                    let explained = explained_by_conflict_pct(report, name, r.assoc, arity)
                        .map_or("-".to_string(), |p| format!("{p:.1}"));
                    (removed, explained)
                }
            };
            t.row(vec![
                r.assoc.to_string(),
                r.kind.to_string(),
                group_digits(r.misses()),
                group_digits(r.compulsory),
                group_digits(r.capacity),
                group_digits(r.conflict),
                removed,
                explained,
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let mut m = Table::new(vec![
            "Manager".into(),
            "Cold".into(),
            "Capacity evict".into(),
            "Cross-tenant".into(),
            "Quota self".into(),
            "Shootdown".into(),
            "Dropped".into(),
        ])
        .with_title(&format!("Memory-fault taxonomy — {name}"));
        for r in report.mem.iter().filter(|r| r.workload == name) {
            m.row(vec![
                r.manager.to_string(),
                group_digits(r.cold),
                group_digits(r.capacity_evict),
                group_digits(r.cross_tenant),
                group_digits(r.quota_self),
                group_digits(r.shootdown),
                group_digits(r.dropped),
            ]);
        }
        out.push_str(&m.render());
        out.push('\n');

        let mut b = Table::new(vec![
            "Manager".into(),
            "Category".into(),
            "Evictor".into(),
            "Victim".into(),
            "Count".into(),
        ])
        .with_title(&format!("Per-tenant blame — {name}"));
        for r in report.mem.iter().filter(|r| r.workload == name) {
            for c in &r.blame {
                b.row(vec![
                    r.manager.to_string(),
                    c.category.name().to_string(),
                    c.evictor.to_string(),
                    c.victim.to_string(),
                    group_digits(c.count),
                ]);
            }
        }
        out.push_str(&b.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrib_handle() -> ObsHandle {
        let obs = ObsHandle::enabled();
        obs.set_attrib(true);
        obs
    }

    fn quick_report(jobs: usize) -> AttribReport {
        run_attrib(&AttribConfig::quick_test(), &attrib_handle(), 0, jobs)
    }

    #[test]
    fn grid_is_complete_and_classification_sums_to_misses() {
        let r = quick_report(1);
        // 2 workloads x 2 assoc x (vanilla + 1 arity) TLB rows.
        assert_eq!(r.tlb.len(), 2 * 2 * 2);
        assert_eq!(r.mem.len(), 2 * 2);
        for row in &r.tlb {
            assert_eq!(
                row.classified(),
                row.misses(),
                "3C classes must partition misses: {row:?}"
            );
        }
    }

    #[test]
    fn compulsory_is_identical_across_designs() {
        let r = quick_report(1);
        for wl in AttribWorkload::ALL {
            let rows: Vec<_> = r.tlb.iter().filter(|x| x.workload == wl.name()).collect();
            let first = rows.first().expect("rows exist").compulsory;
            assert!(first > 0, "{}: no compulsory misses", wl.name());
            for row in rows {
                assert_eq!(
                    row.compulsory, first,
                    "{}: compulsory differs for {:?}/{}",
                    wl.name(),
                    row.kind,
                    row.assoc
                );
            }
        }
    }

    #[test]
    fn full_associativity_has_zero_conflicts() {
        let r = quick_report(1);
        for row in r.tlb.iter().filter(|x| x.assoc == Associativity::Full) {
            assert_eq!(row.conflict, 0, "conflict misses in a full-assoc TLB: {row:?}");
        }
    }

    #[test]
    fn reduction_is_explained_by_conflict_at_105_percent_load() {
        let r = quick_report(1);
        let arity = Arity::new(4);
        let direct = Associativity::Ways(1);
        for wl in AttribWorkload::ALL {
            let removed = {
                let v = find_row(&r, wl.name(), direct, TlbKind::Vanilla).expect("vanilla row");
                let m =
                    find_row(&r, wl.name(), direct, TlbKind::Mosaic(arity)).expect("mosaic row");
                v.misses() as i64 - m.misses() as i64
            };
            assert!(removed > 0, "{}: mosaic removed no misses", wl.name());
            let pct = explained_by_conflict_pct(&r, wl.name(), direct, arity)
                .expect("reduction exists");
            assert!(
                pct >= 90.0,
                "{}: only {pct:.1}% of the reduction is conflict",
                wl.name()
            );
        }
    }

    #[test]
    fn mem_rows_cover_the_full_taxonomy() {
        let r = quick_report(1);
        for row in &r.mem {
            assert!(row.cold > 0, "{row:?}");
            assert!(row.capacity_evict > 0, "{row:?}");
            assert!(row.cross_tenant > 0, "{row:?}");
            assert!(row.quota_self > 0, "{row:?}");
            assert!(row.shootdown > 0, "{row:?}");
            assert_eq!(row.dropped, 0, "fault-free run dropped accesses");
            assert!(!row.blame.is_empty());
        }
    }

    #[test]
    fn report_is_identical_at_any_job_count() {
        let serial = quick_report(1);
        for jobs in [2, 8] {
            assert_eq!(quick_report(jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn obs_export_is_byte_identical_across_job_counts_with_faults() {
        let mut cfg = AttribConfig::quick_test();
        cfg.fault_ppm = 20_000;
        let export = |jobs| {
            let obs = attrib_handle();
            run_attrib(&cfg, &obs, 20_000, jobs);
            obs.render_jsonl()
        };
        let one = export(1);
        assert_eq!(one, export(2));
        assert_eq!(one, export(8));
        assert!(one.contains("\"t\":\"attrib\""), "stream carries attrib records");
    }

    #[test]
    fn render_mentions_every_section() {
        let r = quick_report(1);
        let text = render(&r);
        for needle in [
            "Miss attribution (3C) — GUPS",
            "Miss attribution (3C) — Graph500",
            "Memory-fault taxonomy — GUPS",
            "Per-tenant blame — Graph500",
            "Explained by conflict",
            "shootdown",
        ] {
            assert!(text.contains(needle), "missing {needle:?}");
        }
    }

    #[test]
    fn plain_handle_keeps_stats_but_no_attribution() {
        let r = run_attrib(&AttribConfig::quick_test(), &ObsHandle::noop(), 0, 1);
        for row in &r.tlb {
            assert!(row.stats.misses > 0);
            assert_eq!(row.classified(), 0, "attribution off must charge nothing");
        }
    }
}
