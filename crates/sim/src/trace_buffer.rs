//! Record-once / replay-many traces: the substrate of the parallel
//! sweep engine.
//!
//! [`DualSim`](crate::dual::DualSim) used to regenerate a workload's
//! reference stream from scratch for every (associativity × TLB-kind)
//! cell of a sweep. A [`TraceBuffer`] instead records the stream once —
//! into compact packed 8-byte records, chunked so recording never
//! reallocates a giant contiguous block — and replays it read-only to
//! any number of cells, concurrently.
//!
//! Streams that outgrow an in-memory byte budget (default 128 MiB) spill
//! all-or-nothing to a temporary file in the exact
//! [`save_trace`](mosaic_workloads::save_trace) format; replay then
//! streams from disk with one file handle per replayer, so concurrent
//! cells never contend on a shared seek position. The spill file is
//! removed when the buffer is dropped.
//!
//! # Example
//!
//! ```
//! use mosaic_sim::trace_buffer::TraceBuffer;
//! use mosaic_workloads::{record, Gups, GupsConfig};
//!
//! let cfg = GupsConfig { table_bytes: 1 << 18, updates: 1_000 };
//! let buf = TraceBuffer::record(&mut Gups::new(cfg, 7)).unwrap();
//! let mut replayed = Vec::new();
//! buf.replay(&mut |a| replayed.push(a)).unwrap();
//! assert_eq!(replayed, record(&mut Gups::new(cfg, 7)));
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use mosaic_workloads::{
    decode_access, encode_access, Access, TraceError, TraceReader, TraceWriter, Workload,
    WorkloadMeta,
};

/// Default in-memory byte budget before a recording spills to disk.
pub const DEFAULT_BUDGET_BYTES: u64 = 128 * 1024 * 1024;

/// Records per chunk: 64 Ki accesses = 512 KiB, large enough to
/// amortize per-chunk bookkeeping, small enough that growth never
/// copies the already-recorded prefix.
const CHUNK_RECORDS: usize = 1 << 16;

/// Distinguishes spill files of concurrent buffers within one process.
static SPILL_SERIAL: AtomicU64 = AtomicU64::new(0);

fn spill_path() -> PathBuf {
    let serial = SPILL_SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mosaic-tracebuf-{}-{serial}.trace",
        std::process::id()
    ))
}

/// Owns the on-disk spill and deletes it when the buffer goes away.
#[derive(Debug)]
struct SpillFile {
    path: PathBuf,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // Best-effort cleanup; a leftover temp file is not worth a panic.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[derive(Debug)]
enum Storage {
    /// Chunked packed records, wholly in memory.
    Memory(Vec<Vec<u64>>),
    /// Spilled to a trace file; every replay opens its own reader.
    Disk(SpillFile),
}

/// An immutable recorded access stream, replayable any number of times
/// (including concurrently — replay takes `&self`).
#[derive(Debug)]
pub struct TraceBuffer {
    meta: WorkloadMeta,
    storage: Storage,
    len: u64,
}

impl TraceBuffer {
    /// Records `workload`'s full stream with the default spill budget.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the stream spills and the spill file
    /// cannot be written.
    pub fn record(workload: &mut dyn Workload) -> Result<Self, TraceError> {
        Self::record_with_budget(workload, DEFAULT_BUDGET_BYTES)
    }

    /// Records `workload`'s full stream, spilling to disk once the
    /// in-memory representation would exceed `budget_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the spill file cannot be written.
    pub fn record_with_budget(
        workload: &mut dyn Workload,
        budget_bytes: u64,
    ) -> Result<Self, TraceError> {
        let meta = workload.meta();
        let mut b = TraceBufferBuilder::with_budget(budget_bytes);
        workload.run(&mut |a| b.push(a));
        b.finish(meta)
    }

    /// Recorded accesses.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no accesses were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the recording overflowed its budget onto disk.
    pub fn spilled(&self) -> bool {
        matches!(self.storage, Storage::Disk(_))
    }

    /// The source workload's metadata, preserved verbatim.
    pub fn meta(&self) -> &WorkloadMeta {
        &self.meta
    }

    /// Replays every recorded access, in order, into `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if a spilled recording cannot be read back
    /// (in-memory replays cannot fail).
    pub fn replay(&self, sink: &mut dyn FnMut(Access)) -> Result<(), TraceError> {
        match &self.storage {
            Storage::Memory(chunks) => {
                for chunk in chunks {
                    for &word in chunk {
                        sink(decode_access(word));
                    }
                }
                Ok(())
            }
            Storage::Disk(spill) => {
                let mut r = TraceReader::open(&spill.path)?;
                while let Some(a) = r.next_access()? {
                    sink(a);
                }
                Ok(())
            }
        }
    }

    /// Replays every recorded access as contiguous slices, in order: the
    /// zero-copy-decode feed for batched consumers
    /// ([`DualSim::access_batch`](crate::dual::DualSim::access_batch) and
    /// the chunked cell replays). Memory-backed buffers decode one stored
    /// chunk at a time into a reused scratch vector; spilled buffers fill
    /// the same scratch from the trace reader. Slices are
    /// [`CHUNK_RECORDS`]-sized except the last.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if a spilled recording cannot be read back
    /// (in-memory replays cannot fail).
    pub fn replay_chunks(&self, sink: &mut dyn FnMut(&[Access])) -> Result<(), TraceError> {
        let mut scratch: Vec<Access> = Vec::with_capacity(CHUNK_RECORDS.min(self.len as usize));
        match &self.storage {
            Storage::Memory(chunks) => {
                for chunk in chunks {
                    scratch.clear();
                    scratch.extend(chunk.iter().map(|&word| decode_access(word)));
                    sink(&scratch);
                }
                Ok(())
            }
            Storage::Disk(spill) => {
                let mut r = TraceReader::open(&spill.path)?;
                loop {
                    scratch.clear();
                    while scratch.len() < CHUNK_RECORDS {
                        match r.next_access()? {
                            Some(a) => scratch.push(a),
                            None => break,
                        }
                    }
                    if scratch.is_empty() {
                        return Ok(());
                    }
                    sink(&scratch);
                }
            }
        }
    }

    /// A [`Workload`] adapter replaying this buffer, for driver APIs
    /// that consume `&mut dyn Workload`.
    pub fn replayer(&self) -> TraceReplayer<'_> {
        TraceReplayer {
            buffer: self,
            error: None,
        }
    }
}

/// Replays a [`TraceBuffer`] through the [`Workload`] interface.
///
/// `Workload::run` cannot return errors, so a disk-read failure during
/// the replay of a spilled buffer truncates the stream and is latched;
/// check [`TraceReplayer::error`] after driving it.
#[derive(Debug)]
pub struct TraceReplayer<'a> {
    buffer: &'a TraceBuffer,
    error: Option<TraceError>,
}

impl TraceReplayer<'_> {
    /// The I/O error that truncated the last replay, if any.
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    /// Consumes the replayer, yielding the latched replay error.
    pub fn into_error(self) -> Option<TraceError> {
        self.error
    }
}

impl Workload for TraceReplayer<'_> {
    fn meta(&self) -> WorkloadMeta {
        self.buffer.meta().clone()
    }

    fn run(&mut self, sink: &mut dyn FnMut(Access)) {
        if let Err(e) = self.buffer.replay(sink) {
            self.error = Some(e);
        }
    }

    /// Feeds the stored chunks directly (re-slicing to `batch` when the
    /// caller wants smaller bites), skipping the default's re-buffering.
    fn run_chunks(&mut self, batch: usize, sink: &mut dyn FnMut(&[Access])) {
        let batch = batch.max(1);
        let result = self.buffer.replay_chunks(&mut |chunk| {
            for piece in chunk.chunks(batch) {
                sink(piece);
            }
        });
        if let Err(e) = result {
            self.error = Some(e);
        }
    }
}

/// Push-style recorder for streams that are produced inside a sink
/// closure (the Figure 6 reference pass interleaves kernel accesses into
/// the user stream as it records, so it cannot hand the whole workload
/// to [`TraceBuffer::record`]).
///
/// `push` is infallible so it can be called from `FnMut(Access)` sinks;
/// spill I/O errors are latched and surface from
/// [`TraceBufferBuilder::finish`].
#[derive(Debug)]
pub struct TraceBufferBuilder {
    budget_bytes: u64,
    chunks: Vec<Vec<u64>>,
    chunk: Vec<u64>,
    len: u64,
    writer: Option<(TraceWriter, PathBuf)>,
    error: Option<TraceError>,
}

impl TraceBufferBuilder {
    /// A builder with the default spill budget.
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_BUDGET_BYTES)
    }

    /// A builder that spills once in-memory bytes would exceed
    /// `budget_bytes`.
    pub fn with_budget(budget_bytes: u64) -> Self {
        Self {
            budget_bytes,
            chunks: Vec::new(),
            chunk: Vec::with_capacity(CHUNK_RECORDS),
            len: 0,
            writer: None,
            error: None,
        }
    }

    /// Accesses pushed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one access. After a spill error everything further is
    /// discarded; the error resurfaces from [`TraceBufferBuilder::finish`].
    pub fn push(&mut self, a: Access) {
        if self.error.is_some() {
            return;
        }
        if let Some((w, _)) = &mut self.writer {
            if let Err(e) = w.push(a) {
                self.error = Some(e);
            } else {
                self.len += 1;
            }
            return;
        }
        if self.chunk.len() == CHUNK_RECORDS {
            let full = std::mem::replace(&mut self.chunk, Vec::with_capacity(CHUNK_RECORDS));
            self.chunks.push(full);
        }
        self.chunk.push(encode_access(a));
        self.len += 1;
        if self.len * 8 > self.budget_bytes {
            self.spill();
        }
    }

    /// Moves the whole buffered prefix to a spill file and switches
    /// subsequent pushes to streaming writes (all-or-nothing: a buffer
    /// is either fully in memory or fully on disk).
    fn spill(&mut self) {
        let path = spill_path();
        let mut w = match TraceWriter::create(&path) {
            Ok(w) => w,
            Err(e) => {
                self.error = Some(e);
                return;
            }
        };
        for chunk in self.chunks.iter().chain(std::iter::once(&self.chunk)) {
            for &word in chunk {
                if let Err(e) = w.push(decode_access(word)) {
                    self.error = Some(e);
                    let _ = std::fs::remove_file(&path);
                    return;
                }
            }
        }
        self.chunks = Vec::new();
        self.chunk = Vec::new();
        self.writer = Some((w, path));
    }

    /// Seals the recording into an immutable [`TraceBuffer`] carrying
    /// `meta` (the source workload's metadata, verbatim).
    ///
    /// # Errors
    ///
    /// Returns the latched [`TraceError`] if any spill write failed.
    pub fn finish(mut self, meta: WorkloadMeta) -> Result<TraceBuffer, TraceError> {
        if let Some(e) = self.error.take() {
            if let Some((_, path)) = self.writer.take() {
                let _ = std::fs::remove_file(&path);
            }
            return Err(e);
        }
        let storage = match self.writer.take() {
            Some((w, path)) => {
                let spill = SpillFile { path };
                w.finish()?;
                Storage::Disk(spill)
            }
            None => {
                if !self.chunk.is_empty() {
                    let last = std::mem::take(&mut self.chunk);
                    self.chunks.push(last);
                }
                Storage::Memory(std::mem::take(&mut self.chunks))
            }
        };
        Ok(TraceBuffer {
            meta,
            storage,
            len: self.len,
        })
    }
}

impl Default for TraceBufferBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_workloads::{record, Gups, GupsConfig};

    fn gups(seed: u64) -> Gups {
        Gups::new(
            GupsConfig {
                table_bytes: 1 << 18,
                updates: 3_000,
            },
            seed,
        )
    }

    fn replay_all(buf: &TraceBuffer) -> Vec<Access> {
        let mut out = Vec::new();
        buf.replay(&mut |a| out.push(a)).unwrap();
        out
    }

    #[test]
    fn in_memory_replay_matches_source_stream() {
        let expect = record(&mut gups(5));
        let buf = TraceBuffer::record(&mut gups(5)).unwrap();
        assert!(!buf.spilled());
        assert_eq!(buf.len() as usize, expect.len());
        assert_eq!(replay_all(&buf), expect);
        // Replays are repeatable.
        assert_eq!(replay_all(&buf), expect);
    }

    #[test]
    fn tiny_budget_spills_to_disk_and_replays_identically() {
        let expect = record(&mut gups(6));
        let buf = TraceBuffer::record_with_budget(&mut gups(6), 64).unwrap();
        assert!(buf.spilled());
        assert_eq!(buf.len() as usize, expect.len());
        assert_eq!(replay_all(&buf), expect);
        assert_eq!(replay_all(&buf), expect);
    }

    #[test]
    fn spill_crossing_a_chunk_boundary_replays_identically() {
        // Budget above one chunk so the spill happens after chunk
        // rotation has occurred at least once.
        let n = (CHUNK_RECORDS + CHUNK_RECORDS / 2) as u64;
        let mut w = Gups::new(
            GupsConfig {
                table_bytes: 1 << 20,
                updates: n,
            },
            9,
        );
        let expect = record(&mut Gups::new(*w.config(), 9));
        let budget = (CHUNK_RECORDS as u64 + 10) * 8;
        let buf = TraceBuffer::record_with_budget(&mut w, budget).unwrap();
        assert!(buf.spilled());
        assert_eq!(replay_all(&buf), expect);
    }

    #[test]
    fn drop_removes_spill_file() {
        let buf = TraceBuffer::record_with_budget(&mut gups(7), 64).unwrap();
        let path = match &buf.storage {
            Storage::Disk(s) => s.path.clone(),
            Storage::Memory(_) => panic!("expected a spilled buffer"),
        };
        assert!(path.exists());
        drop(buf);
        assert!(!path.exists());
    }

    #[test]
    fn builder_push_style_round_trips_and_preserves_meta() {
        let mut src = gups(8);
        let meta = src.meta();
        let expect = record(&mut gups(8));
        let mut b = TraceBufferBuilder::new();
        src.run(&mut |a| b.push(a));
        let buf = b.finish(meta.clone()).unwrap();
        assert_eq!(buf.meta(), &meta);
        assert_eq!(replay_all(&buf), expect);
    }

    #[test]
    fn replayer_is_a_workload_with_source_meta() {
        let mut src = gups(10);
        let meta = src.meta();
        let expect = record(&mut gups(10));
        let buf = TraceBuffer::record(&mut src).unwrap();
        let mut rep = buf.replayer();
        assert_eq!(rep.meta(), meta);
        let got = record(&mut rep);
        assert!(rep.error().is_none());
        assert_eq!(got, expect);
    }

    #[test]
    fn concurrent_replays_of_a_spilled_buffer_are_independent() {
        let expect = record(&mut gups(11));
        let buf = TraceBuffer::record_with_budget(&mut gups(11), 64).unwrap();
        let outs: Vec<Vec<Access>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| replay_all(&buf)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in outs {
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn empty_builder_finishes_into_empty_buffer() {
        let meta = gups(1).meta();
        let buf = TraceBufferBuilder::new().finish(meta).unwrap();
        assert!(buf.is_empty());
        assert_eq!(replay_all(&buf), Vec::new());
    }

    #[test]
    fn chunked_replay_concatenates_to_scalar_replay() {
        for budget in [DEFAULT_BUDGET_BYTES, 64] {
            let buf = TraceBuffer::record_with_budget(&mut gups(12), budget).unwrap();
            let expect = replay_all(&buf);
            let mut got = Vec::new();
            let mut chunks = 0usize;
            buf.replay_chunks(&mut |c| {
                assert!(!c.is_empty());
                chunks += 1;
                got.extend_from_slice(c);
            })
            .unwrap();
            assert_eq!(got, expect, "budget {budget}");
            assert_eq!(chunks, expect.len().div_ceil(CHUNK_RECORDS).max(1));
        }
    }

    #[test]
    fn replayer_run_chunks_respects_batch_and_order() {
        let buf = TraceBuffer::record(&mut gups(13)).unwrap();
        let expect = replay_all(&buf);
        let mut rep = buf.replayer();
        let mut got = Vec::new();
        rep.run_chunks(100, &mut |c| {
            assert!(c.len() <= 100);
            got.extend_from_slice(c);
        });
        assert!(rep.error().is_none());
        assert_eq!(got, expect);
    }
}
