//! The demand-paging OS model behind the TLB experiments.
//!
//! For the Figure 6 simulations memory is sized generously (the experiment
//! measures TLB reach, not swapping), and every first touch maps the page
//! in *both* address-translation worlds:
//!
//! * the **vanilla** world assigns frames first-come-first-served
//!   (unconstrained, like a free-list allocator) and maps the kernel
//!   region with 2 MiB huge pages — the artifact the paper notes gives
//!   vanilla a slight edge (§4.1);
//! * the **mosaic** world allocates through
//!   [`MosaicMemory`] (Iceberg placement) and
//!   mirrors each mapping into one ToC-leaved radix page table per arity
//!   under test.

use mosaic_mem::{
    AccessKind, Asid, MemoryManager, MemoryLayout, MosaicError, MosaicMemory, MosaicResult,
    PageKey, Pfn, Vpn,
};
use mosaic_mmu::{Arity, PageWalker, RadixTable, Toc};
use std::collections::HashMap;

/// The ASID the single simulated process (and the kernel's global
/// mappings) runs under in the Figure 6 experiments. Multi-tenant runs
/// mint their own ASIDs through `mosaic_tenants::TenantRegistry` and pass
/// them via [`OsModel::with_asid`]; this default makes the classic
/// experiments the one-tenant special case.
pub const USER_ASID: Asid = Asid(1);

/// First VPN of the simulated kernel region (top of the 36-bit VPN space).
pub const KERNEL_VPN_BASE: u64 = 1 << 35;

/// Node accesses a hardware walk of a 2 MiB mapping costs (the walk stops
/// one level early at the PDE).
pub const HUGE_WALK_LEVELS: u64 = 3;

/// How a vanilla page-table walk resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VanillaTranslation {
    /// A 4 KiB mapping.
    Base(Pfn),
    /// A 2 MiB mapping; the PFN is the huge page's first frame.
    Huge(Pfn),
}

/// One (batch position, arity) leaf-ToC memo slot for
/// [`OsModel::mosaic_walk_memo`].
///
/// `gen` stamps the batch generation that last filled the slot; a
/// mismatched stamp means the contents are stale, but the `toc` buffer
/// is retained so the refill copies in place instead of allocating.
#[derive(Debug, Default)]
pub(crate) struct TocMemoSlot {
    gen: u64,
    levels: u32,
    toc: Option<Toc>,
}

/// The shared OS state of one dual-TLB simulation.
#[derive(Debug)]
pub struct OsModel {
    mosaic: MosaicMemory,
    /// Vanilla 4 KiB mappings, with walk-cost counting.
    vanilla_pt: PageWalker<Pfn>,
    /// Vanilla 2 MiB kernel mappings: huge index → first frame.
    vanilla_huge: HashMap<u64, Pfn>,
    vanilla_next_pfn: u64,
    huge_walks: u64,
    /// One ToC-leaved page table per arity under test.
    mosaic_pts: Vec<(Arity, PageWalker<Toc>)>,
    /// The address space every touch is keyed under.
    asid: Asid,
    now: u64,
}

impl OsModel {
    /// Creates the OS model over `layout` worth of mosaic-managed memory,
    /// with page tables for each arity in `arities`, running as the
    /// default [`USER_ASID`].
    pub fn new(layout: MemoryLayout, arities: &[Arity], seed: u64) -> Self {
        Self::with_asid(layout, arities, seed, USER_ASID)
    }

    /// Like [`OsModel::new`], but keys every mapping under an explicit
    /// `asid` (a tenant identity minted by a registry).
    pub fn with_asid(layout: MemoryLayout, arities: &[Arity], seed: u64, asid: Asid) -> Self {
        let mosaic = MosaicMemory::new(layout, seed);
        let mosaic_pts = arities
            .iter()
            .map(|&a| {
                let mvpn_bits = 36 - a.offset_bits();
                (a, PageWalker::new(RadixTable::new(mvpn_bits, 9)))
            })
            .collect();
        Self {
            mosaic,
            vanilla_pt: PageWalker::new(RadixTable::x86_vanilla()),
            vanilla_huge: HashMap::new(),
            vanilla_next_pfn: 0,
            huge_walks: 0,
            mosaic_pts,
            asid,
            now: 0,
        }
    }

    /// The ASID this model's mappings are keyed under.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Whether a VPN is in the simulated kernel region.
    pub fn is_kernel(vpn: Vpn) -> bool {
        vpn.0 >= KERNEL_VPN_BASE
    }

    /// The mosaic memory manager (inspection).
    pub fn mosaic(&self) -> &MosaicMemory {
        &self.mosaic
    }

    /// Binds the model's page-table walkers (and the mosaic allocator)
    /// to a live metrics registry: walk counts and depths export as
    /// `ptw.vanilla.*` / `ptw.mosaic-<arity>.*`, allocator counters as
    /// `mosaic.*`.
    pub fn set_obs(&mut self, obs: &mosaic_obs::ObsHandle) {
        use mosaic_mem::MemoryManager as _;
        self.mosaic.set_obs(obs, "mosaic");
        self.vanilla_pt.set_obs(obs, "vanilla");
        for (arity, pt) in &mut self.mosaic_pts {
            pt.set_obs(obs, &format!("mosaic-{}", arity.get()));
        }
    }

    /// Publishes the allocator's point-in-time gauges.
    pub fn publish_obs(&self) {
        use mosaic_mem::MemoryManager as _;
        self.mosaic.publish_obs();
    }

    /// Demand-maps `vpn` in both worlds if needed and records the access.
    /// Returns whether this touch was the VPN's first (a growth event —
    /// the batched pipeline rewinds and replays these per instance).
    ///
    /// # Panics
    ///
    /// Panics if the mosaic pool is so over-committed that an allocation
    /// evicted a page — Figure 6 runs must be sized with headroom (use
    /// [`frames_for_footprint`]).
    pub fn touch(&mut self, vpn: Vpn, kind: AccessKind) -> bool {
        self.now += 1;
        let key = PageKey::new(self.asid, vpn);
        let newly_mapped = self.mosaic.resident_pfn(key).is_none();
        self.mosaic.access(key, kind, self.now);
        assert_eq!(
            self.mosaic.stats().evictions(),
            0,
            "mosaic pool over-committed during a TLB experiment; increase memory headroom"
        );
        if newly_mapped {
            // Mirror the new CPFN into every arity's page table.
            let cpfn = self.mosaic.cpfn_of(key).expect("just mapped");
            for (arity, pt) in &mut self.mosaic_pts {
                let (mvpn, offset) = arity.split(vpn);
                match pt.table_mut().get_mut(mvpn.0) {
                    Some(toc) => toc.set(offset, cpfn),
                    None => {
                        let mut toc = Toc::new(*arity, self.mosaic.codec().unmapped());
                        toc.set(offset, cpfn);
                        pt.table_mut().insert(mvpn.0, toc);
                    }
                }
            }
            // Vanilla mapping.
            if Self::is_kernel(vpn) {
                let huge = mosaic_mmu::arity::huge_index(vpn);
                if !self.vanilla_huge.contains_key(&huge) {
                    // Reserve a 512-frame aligned run for the huge page.
                    let first = (self.vanilla_next_pfn + 511) & !511;
                    self.vanilla_next_pfn = first + 512;
                    self.vanilla_huge.insert(huge, Pfn(first));
                }
            } else if self.vanilla_pt.table().get(vpn.0).is_none() {
                let pfn = Pfn(self.vanilla_next_pfn);
                self.vanilla_next_pfn += 1;
                self.vanilla_pt.table_mut().insert(vpn.0, pfn);
            }
        }
        newly_mapped
    }

    /// Temporarily clears `vpn`'s sub-entry from every arity's mirrored
    /// leaf, rewinding the ToCs to their pre-touch contents. The batched
    /// pipeline pre-touches a whole chunk, then unmirrors the chunk's
    /// growth events before replaying each instance so a mid-batch
    /// `mosaic_walk` sees exactly the point-in-time ToC the scalar path
    /// would — [`remirror`](Self::remirror) reapplies the event when the
    /// replay cursor passes it. Leaf *nodes* allocated by the pre-touch
    /// stay allocated, which is invisible: walk depth is fixed per table
    /// and an all-sentinel ToC is never walked (the triggering access
    /// remirrors before it walks).
    ///
    /// Reads the radix tables directly (no [`PageWalker`] accounting).
    pub(crate) fn unmirror(&mut self, vpn: Vpn) {
        for (arity, pt) in &mut self.mosaic_pts {
            let (mvpn, offset) = arity.split(vpn);
            if let Some(toc) = pt.table_mut().get_mut(mvpn.0) {
                toc.invalidate(offset);
            }
        }
    }

    /// Reapplies a growth event cleared by [`unmirror`](Self::unmirror):
    /// writes `vpn`'s current CPFN back into every arity's leaf.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is not resident (only previously-touched pages are
    /// ever unmirrored).
    pub(crate) fn remirror(&mut self, vpn: Vpn) {
        let key = PageKey::new(self.asid, vpn);
        let cpfn = self.mosaic.cpfn_of(key).expect("remirror of unmapped vpn");
        for (arity, pt) in &mut self.mosaic_pts {
            let (mvpn, offset) = arity.split(vpn);
            let toc = pt
                .table_mut()
                .get_mut(mvpn.0)
                .expect("unmirrored leaf exists");
            toc.set(offset, cpfn);
        }
    }

    /// A counted vanilla page-table walk (invoked on a vanilla TLB miss).
    ///
    /// # Panics
    ///
    /// Panics if the page was never demand-mapped (callers must `touch`
    /// each access first).
    pub fn vanilla_walk(&mut self, vpn: Vpn) -> VanillaTranslation {
        if Self::is_kernel(vpn) {
            let huge = mosaic_mmu::arity::huge_index(vpn);
            self.huge_walks += 1;
            VanillaTranslation::Huge(
                *self
                    .vanilla_huge
                    .get(&huge)
                    .expect("kernel page touched before walk"),
            )
        } else {
            VanillaTranslation::Base(
                *self
                    .vanilla_pt
                    .walk(vpn.0)
                    .expect("page touched before walk"),
            )
        }
    }

    /// A counted mosaic page-table walk for arity slot `arity_idx`,
    /// returning a copy of the leaf ToC (what the walker hands the TLB).
    ///
    /// # Panics
    ///
    /// Panics if `arity_idx` is out of range or the mosaic page has no
    /// mapped sub-page yet.
    pub fn mosaic_walk(&mut self, arity_idx: usize, vpn: Vpn) -> Toc {
        self.mosaic_walk_ref(arity_idx, vpn).clone()
    }

    /// [`OsModel::mosaic_walk`] without the copy: a counted walk that
    /// hands back the leaf ToC by reference, for fill paths that copy
    /// into a recycled buffer ([`mosaic_mmu::MosaicTlb::fill_toc_ref`]).
    ///
    /// # Panics
    ///
    /// Panics if `arity_idx` is out of range or the mosaic page has no
    /// mapped sub-page yet.
    pub fn mosaic_walk_ref(&mut self, arity_idx: usize, vpn: Vpn) -> &Toc {
        let (arity, pt) = &mut self.mosaic_pts[arity_idx];
        let (mvpn, _) = arity.split(vpn);
        pt.walk(mvpn.0).expect("page touched before walk")
    }

    /// [`OsModel::vanilla_walk`] with a per-position memo slot for the
    /// batched pipeline: the translation is resolved once per batch
    /// position, but every consuming instance still counts a full walk
    /// (counters and obs effects identical to walking again — vanilla
    /// translations never change after first touch, so the memoized
    /// result is exact).
    pub(crate) fn vanilla_walk_memo(
        &mut self,
        vpn: Vpn,
        slot: &mut Option<(VanillaTranslation, u32)>,
    ) -> VanillaTranslation {
        if let Some((tr, levels)) = *slot {
            if Self::is_kernel(vpn) {
                self.huge_walks += 1;
            } else {
                self.vanilla_pt.recount_walk(levels);
            }
            return tr;
        }
        if Self::is_kernel(vpn) {
            let tr = self.vanilla_walk(vpn);
            *slot = Some((tr, 0));
            tr
        } else {
            let (value, levels) = self.vanilla_pt.walk_leveled(vpn.0);
            let tr = VanillaTranslation::Base(*value.expect("page touched before walk"));
            *slot = Some((tr, levels));
            tr
        }
    }

    /// [`OsModel::mosaic_walk`] with a per-(position, arity) memo slot:
    /// the leaf ToC is copied out of the radix table once per batch
    /// position, and reuses count a full walk and borrow the memoized
    /// copy (the fill path copies it into a recycled buffer, so no
    /// allocation happens per consuming instance). Sound because every
    /// mosaic instance replays the identical unmirror/remirror
    /// sequence, so the ToC state at a given batch position is the
    /// same for all of them.
    ///
    /// `gen` is the current batch generation: a slot stamped with an
    /// older generation is stale, and its retained buffer is
    /// overwritten in place ([`Toc::copy_from`]) instead of
    /// reallocated — slots hold ToCs of one fixed arity, so the buffer
    /// always fits.
    pub(crate) fn mosaic_walk_memo<'a>(
        &mut self,
        arity_idx: usize,
        vpn: Vpn,
        slot: &'a mut TocMemoSlot,
        gen: u64,
    ) -> &'a Toc {
        let (arity, pt) = &mut self.mosaic_pts[arity_idx];
        if slot.gen == gen {
            pt.recount_walk(slot.levels);
            return slot.toc.as_ref().expect("fresh memo slot holds a ToC");
        }
        let (mvpn, _) = arity.split(vpn);
        let (value, levels) = pt.walk_leveled(mvpn.0);
        let leaf = value.expect("page touched before walk");
        match &mut slot.toc {
            Some(buf) => buf.copy_from(leaf),
            None => slot.toc = Some(leaf.clone()),
        }
        slot.gen = gen;
        slot.levels = levels;
        slot.toc.as_ref().expect("memo slot just filled")
    }

    /// Number of per-arity mosaic page tables (the batched pipeline's
    /// ToC-memo stride).
    pub(crate) fn arity_count(&self) -> usize {
        self.mosaic_pts.len()
    }

    /// Runs `f` with every page walker's exported counters deferred
    /// ([`PageWalker::pause_obs`]): per-walk obs updates are tallied
    /// locally and bulk-published when `f` returns, so an observed
    /// batched replay pays a handful of atomic adds per batch instead
    /// of a counter increment and a histogram lock per walk. Walk
    /// accounting ([`OsModel::walk_counts`]) stays live throughout and
    /// the exported totals outside `f` are identical to the undeferred
    /// path.
    pub(crate) fn with_deferred_walk_obs<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.vanilla_pt.pause_obs();
        for (_, pt) in &mut self.mosaic_pts {
            pt.pause_obs();
        }
        let r = f(self);
        self.vanilla_pt.resume_obs();
        for (_, pt) in &mut self.mosaic_pts {
            pt.resume_obs();
        }
        r
    }

    /// The CPFN of one sub-page (for sub-entry fills).
    pub fn cpfn_of(&self, vpn: Vpn) -> Option<mosaic_mem::Cpfn> {
        self.mosaic.cpfn_of(PageKey::new(self.asid, vpn))
    }

    /// The arities this model maintains page tables for.
    pub fn arities(&self) -> Vec<Arity> {
        self.mosaic_pts.iter().map(|&(a, _)| a).collect()
    }

    /// The vanilla 4 KiB radix table (parallel cells clone it into a
    /// private walker so per-cell walk accounting stays independent).
    pub(crate) fn vanilla_table(&self) -> &RadixTable<Pfn> {
        self.vanilla_pt.table()
    }

    /// The vanilla 2 MiB kernel mappings, shared read-only by parallel
    /// cells (huge walks never touch the radix walker's counters).
    pub(crate) fn vanilla_huge_map(&self) -> &HashMap<u64, Pfn> {
        &self.vanilla_huge
    }

    /// The unmapped-sub-page sentinel CPFN new ToCs are initialized
    /// with — parallel cells use it to grow their shadow page tables
    /// exactly as [`OsModel::touch`] grows the reference ones.
    pub(crate) fn unmapped_sentinel(&self) -> mosaic_mem::Cpfn {
        self.mosaic.codec().unmapped()
    }

    /// Checks dual-world agreement: the mosaic manager's own invariants,
    /// plus — for every resident page and every arity — that the mirrored
    /// page-table ToC sub-entry stores exactly the CPFN the manager would
    /// encode today. A stale or corrupted leaf surfaces as
    /// [`MosaicError::TocMismatch`].
    ///
    /// Reads the radix tables directly (no [`PageWalker`] accounting), so
    /// verification never perturbs the walk counters an experiment reports.
    pub fn verify(&self) -> MosaicResult<()> {
        self.mosaic.verify()?;
        for (key, _) in self.mosaic.resident_pages() {
            let expected = self.mosaic.cpfn_of(key).ok_or(MosaicError::internal(
                "resident page has no CPFN encoding",
            ))?;
            for (arity, pt) in &self.mosaic_pts {
                let (mvpn, offset) = arity.split(key.vpn);
                let found = pt.table().get(mvpn.0).and_then(|toc| toc.get(offset));
                if found != Some(expected) {
                    return Err(MosaicError::TocMismatch {
                        vpn: key.vpn.0,
                        found: found.map_or(0xFF, |c| c.0),
                        expected: Some(expected.0),
                    });
                }
            }
        }
        Ok(())
    }

    /// Total page-table walks performed (vanilla, huge, mosaic).
    pub fn walk_counts(&self) -> (u64, u64, u64) {
        (
            self.vanilla_pt.walks(),
            self.huge_walks,
            self.mosaic_pts.iter().map(|(_, pt)| pt.walks()).sum(),
        )
    }
}

/// Frames to provision so a footprint of `pages` (plus `kernel_pages`)
/// never conflicts: Iceberg sustains ~98 % utilization, so 85 % headroom
/// is comfortably safe.
pub fn frames_for_footprint(pages: u64, kernel_pages: u64) -> usize {
    (((pages + kernel_pages) as f64 / 0.85) as usize).max(1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_iceberg::IcebergConfig;

    fn model() -> OsModel {
        OsModel::new(
            MemoryLayout::new(IcebergConfig::paper_default(64)),
            &[Arity::new(4), Arity::new(8)],
            3,
        )
    }

    #[test]
    fn touch_maps_both_worlds() {
        let mut os = model();
        os.touch(Vpn(100), AccessKind::Load);
        assert_eq!(os.vanilla_walk(Vpn(100)), VanillaTranslation::Base(Pfn(0)));
        let toc = os.mosaic_walk(0, Vpn(100));
        assert!(toc.is_valid(0), "vpn 100 is offset 0 of mvpn 25 at arity 4");
        assert!(os.cpfn_of(Vpn(100)).is_some());
    }

    #[test]
    fn vanilla_frames_are_distinct() {
        let mut os = model();
        for vpn in 0..50u64 {
            os.touch(Vpn(vpn), AccessKind::Load);
        }
        let mut seen = std::collections::HashSet::new();
        for vpn in 0..50u64 {
            match os.vanilla_walk(Vpn(vpn)) {
                VanillaTranslation::Base(pfn) => assert!(seen.insert(pfn)),
                VanillaTranslation::Huge(_) => panic!("user page mapped huge"),
            }
        }
    }

    #[test]
    fn kernel_maps_huge() {
        let mut os = model();
        let kvpn = Vpn(KERNEL_VPN_BASE + 5);
        os.touch(kvpn, AccessKind::Load);
        match os.vanilla_walk(kvpn) {
            VanillaTranslation::Huge(first) => assert_eq!(first.0 % 512, 0),
            other => panic!("kernel page not huge: {other:?}"),
        }
        // Another page in the same 2 MiB region shares the mapping.
        let kvpn2 = Vpn(KERNEL_VPN_BASE + 400);
        os.touch(kvpn2, AccessKind::Load);
        let (a, b) = (os.vanilla_walk(kvpn), os.vanilla_walk(kvpn2));
        assert_eq!(a, b);
    }

    #[test]
    fn toc_accumulates_siblings() {
        let mut os = model();
        os.touch(Vpn(8), AccessKind::Load);
        os.touch(Vpn(9), AccessKind::Load);
        let toc4 = os.mosaic_walk(0, Vpn(8));
        assert_eq!(toc4.valid_count(), 2);
        // At arity 8, both live in the same ToC too.
        let toc8 = os.mosaic_walk(1, Vpn(8));
        assert_eq!(toc8.valid_count(), 2);
    }

    #[test]
    fn toc_cpfns_match_manager() {
        let mut os = model();
        for vpn in 0..200u64 {
            os.touch(Vpn(vpn), AccessKind::Store);
        }
        for vpn in 0..200u64 {
            let toc = os.mosaic_walk(0, Vpn(vpn));
            let arity = Arity::new(4);
            let (_, off) = arity.split(Vpn(vpn));
            assert_eq!(toc.get(off), os.cpfn_of(Vpn(vpn)), "vpn {vpn}");
        }
    }

    #[test]
    fn walk_counters_advance() {
        let mut os = model();
        os.touch(Vpn(1), AccessKind::Load);
        os.touch(Vpn(KERNEL_VPN_BASE), AccessKind::Load);
        os.vanilla_walk(Vpn(1));
        os.vanilla_walk(Vpn(KERNEL_VPN_BASE));
        os.mosaic_walk(0, Vpn(1));
        let (v, h, m) = os.walk_counts();
        assert_eq!((v, h, m), (1, 1, 1));
    }

    #[test]
    fn verify_detects_toc_corruption() {
        let mut os = model();
        for vpn in 0..200u64 {
            os.touch(Vpn(vpn), AccessKind::Load);
        }
        os.verify().expect("fresh dual mapping agrees");
        // Corrupt one arity-4 leaf sub-entry behind the OS model's back.
        let (arity, pt) = &mut os.mosaic_pts[0];
        let (mvpn, offset) = arity.split(Vpn(42));
        let wrong = os.mosaic.codec().encode_index(0);
        let toc = pt.table_mut().get_mut(mvpn.0).expect("mapped");
        if toc.get(offset) == Some(wrong) {
            toc.invalidate(offset);
        } else {
            toc.set(offset, wrong);
        }
        match os.verify() {
            Err(MosaicError::TocMismatch { vpn, .. }) => assert_eq!(vpn, 42),
            other => panic!("expected TocMismatch, got {other:?}"),
        }
    }

    #[test]
    fn headroom_sizing() {
        assert!(frames_for_footprint(10_000, 1_000) >= 12_000);
        assert!(frames_for_footprint(0, 0) >= 1024);
    }
}
