//! The simulated experimental platforms (Table 1 of the paper).
//!
//! These descriptors document what each experiment models and are printed
//! by the drivers so every result is labelled with its platform, just as
//! the paper's tables reference Table 1.

use crate::report::Table;

/// The gem5-analog platform used for the TLB-miss experiments (Table 1a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbPlatform {
    /// TLB entries (paper: 1024, unified 4 KiB / 2 MiB).
    pub tlb_entries: usize,
    /// VPN width in bits.
    pub vpn_bits: u32,
    /// PFN width in bits.
    pub pfn_bits: u32,
}

impl Default for TlbPlatform {
    fn default() -> Self {
        Self {
            tlb_entries: 1024,
            vpn_bits: 36,
            pfn_bits: 36,
        }
    }
}

impl TlbPlatform {
    /// Renders the Table 1a analogue.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["Component".into(), "Configuration".into()])
            .with_title("Table 1a: TLB-simulation platform (gem5 analogue)");
        t.row(vec![
            "Processor".into(),
            "trace-driven single-stream memory model".into(),
        ]);
        t.row(vec![
            "Address sizes".into(),
            format!("{}-bit VPNs and {}-bit PFNs", self.vpn_bits, self.pfn_bits),
        ]);
        t.row(vec![
            "L1 DTLB".into(),
            format!(
                "unified 4 KiB / 2 MiB, {} entries, 1- to {}-way (varied)",
                self.tlb_entries, self.tlb_entries
            ),
        ]);
        t.row(vec![
            "Page walker".into(),
            "radix tree; vanilla VPN->PFN, mosaic MVPN->ToC leaves".into(),
        ]);
        t
    }
}

/// The Linux-prototype-analog platform for the swapping experiments
/// (Table 1b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapPlatform {
    /// Frames of memory the managers control.
    pub frames: usize,
    /// Iceberg bucket description.
    pub geometry: String,
}

impl SwapPlatform {
    /// Builds the descriptor for a given frame count.
    pub fn new(frames: usize) -> Self {
        Self {
            frames,
            geometry: "56-slot front yard + 8-slot backyard, d = 6 (h = 104)".into(),
        }
    }

    /// Renders the Table 1b analogue.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["Component".into(), "Configuration".into()])
            .with_title("Table 1b: swapping-experiment platform (Linux-prototype analogue)");
        t.row(vec![
            "Memory".into(),
            format!(
                "{} frames ({} MiB) under the manager being tested",
                self.frames,
                self.frames * 4096 / (1 << 20)
            ),
        ]);
        t.row(vec!["Mosaic geometry".into(), self.geometry.clone()]);
        t.row(vec![
            "Baseline".into(),
            "fully-associative allocator, LRU reclaim at 0.8% free watermark".into(),
        ]);
        t.row(vec![
            "Swap device".into(),
            "counted I/O model (pswpin/pswpout), no latency".into(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlb_platform_defaults_match_paper() {
        let p = TlbPlatform::default();
        assert_eq!(p.tlb_entries, 1024);
        assert_eq!(p.vpn_bits, 36);
        let text = p.table().render();
        assert!(text.contains("1024 entries"));
        assert!(text.contains("36-bit VPNs"));
    }

    #[test]
    fn swap_platform_reports_mib() {
        let p = SwapPlatform::new(16384);
        let text = p.table().render();
        assert!(text.contains("16384 frames (64 MiB)"));
        assert!(text.contains("h = 104"));
    }
}
