//! Deterministic parallel cell execution for the sweep drivers.
//!
//! A *cell* is one independent unit of a sweep grid — one
//! (associativity × TLB kind) pair of Figure 6, one (workload × ratio)
//! pair of Table 4, one fragmentation level, one hash-function count of
//! Table 5. Cells share only immutable inputs (a recorded
//! [`TraceBuffer`](crate::trace_buffer::TraceBuffer), a frozen OS
//! model), so they can fan out across threads freely.
//!
//! [`run_cells`] is the one execution primitive: it maps a closure over
//! the cells on a rayon pool of `jobs` threads and returns the results
//! **in input order**, so result tables are assembled identically at any
//! `--jobs` value. Determinism therefore reduces to each cell being a
//! pure function of its inputs — which [`derive_seed`] guarantees for
//! cells that need their own randomness, by deriving a per-cell seed
//! from (base seed, cell index) instead of from any shared mutable RNG.

use mosaic_hash::SplitMix64;
use rayon::prelude::*;

/// Derives cell `index`'s private seed from a sweep-wide base seed.
///
/// The derivation is a [`SplitMix64`] output whose state seeds are
/// spread by the golden-ratio increment, so neighboring cell indices
/// get statistically unrelated streams while remaining a pure function
/// of `(base, index)` — the same cell gets the same seed no matter
/// which thread runs it or how many threads exist.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    SplitMix64::new(base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))).next_u64()
}

/// Runs `f` over `cells` on `jobs` threads, returning results in input
/// order.
///
/// `jobs == 1` (or a single cell) short-circuits to a plain in-order
/// serial loop on the calling thread — no pool, no send bounds
/// exercised, and bit-identical to the pre-parallel drivers by
/// construction. `jobs == 0` uses the machine's available parallelism.
pub fn run_cells<T, R, F>(jobs: usize, cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if jobs == 1 || cells.len() <= 1 {
        return cells.into_iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let pool = match rayon::ThreadPoolBuilder::new().num_threads(jobs).build() {
        Ok(p) => p,
        // Pool construction cannot fail in the vendored shim; fall back
        // to serial execution rather than aborting the sweep if it ever
        // does with a real rayon.
        Err(_) => {
            return cells.into_iter().enumerate().map(|(i, c)| f(i, c)).collect();
        }
    };
    pool.install(|| {
        cells
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(i, c)| f(i, c))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order_at_any_job_count() {
        let cells: Vec<u64> = (0..37).collect();
        let expect: Vec<(usize, u64)> = cells.iter().map(|&c| (c as usize, c * 3)).collect();
        for jobs in [1, 2, 8] {
            let got = run_cells(jobs, cells.clone(), |i, c| (i, c * 3));
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn derive_seed_is_pure_and_spreads_indices() {
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
        let seeds: std::collections::HashSet<u64> =
            (0..100).map(|i| derive_seed(0xF166, i)).collect();
        assert_eq!(seeds.len(), 100, "collisions across cell indices");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0), "base seed matters");
    }

    #[test]
    fn zero_jobs_uses_machine_default_and_stays_ordered() {
        let got = run_cells(0, (0..16).collect::<Vec<u64>>(), |_, c| c + 1);
        assert_eq!(got, (1..17).collect::<Vec<u64>>());
    }

    #[test]
    fn single_cell_runs_on_calling_thread() {
        let here = std::thread::current().id();
        let got = run_cells(8, vec![()], |_, ()| std::thread::current().id());
        assert_eq!(got, vec![here]);
    }
}
