//! The memory-pressure experiments: Table 3 (utilization) and Table 4
//! (swap I/O), comparing Mosaic against the Linux-like baseline.
//!
//! Each run builds a workload with a footprint that is a configured ratio
//! of physical memory (the paper sweeps ≈101 %–157 %), then drives the
//! workload's page-reference stream through both memory managers,
//! recording:
//!
//! * the utilization at Mosaic's **first associativity conflict**
//!   (Table 3 predicts ≈98 %, i.e. δ ≈ 2 %);
//! * the **steady-state utilization** (ghosts push it past `1 − δ`);
//! * total **swap I/O** for each manager (Table 4's columns).

use crate::parallel::{derive_seed, run_cells};
use crate::report::{group_digits, Table};
use crate::trace_buffer::TraceBuffer;
use mosaic_mem::{
    Asid, FaultPlan, IcebergConfig, LinuxMemory, MemoryLayout, MemoryManager, MosaicError,
    MosaicMemory, MosaicResult, PageKey, ResilienceStats, PAGE_SIZE,
};
use mosaic_obs::{ObsHandle, Value};
use mosaic_workloads::{Access, BTreeWorkload, Graph500, Workload, XsBench};

/// The workloads the swapping experiments use (the paper's Tables 3–4
/// run Graph500, XSBench, and BTree; GUPS is Figure-6-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PressureWorkload {
    /// BFS over a Kronecker graph.
    Graph500,
    /// XSBench cross-section lookups.
    XsBench,
    /// B+-tree point lookups.
    BTree,
}

impl PressureWorkload {
    /// The three workloads in the paper's table order.
    pub const ALL: [PressureWorkload; 3] = [
        PressureWorkload::Graph500,
        PressureWorkload::XsBench,
        PressureWorkload::BTree,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PressureWorkload::Graph500 => "Graph500",
            PressureWorkload::XsBench => "XSBench",
            PressureWorkload::BTree => "BTree",
        }
    }

    /// Builds the workload at approximately `footprint_bytes`.
    pub fn build(self, footprint_bytes: u64, seed: u64) -> Box<dyn Workload> {
        let pages = footprint_bytes / PAGE_SIZE;
        match self {
            PressureWorkload::Graph500 => {
                Box::new(Graph500::with_footprint(footprint_bytes, 2, seed))
            }
            PressureWorkload::XsBench => {
                // Enough lookups that every grid page is touched and the
                // working set cycles several times.
                Box::new(XsBench::with_footprint(footprint_bytes, pages * 8, seed))
            }
            PressureWorkload::BTree => {
                Box::new(BTreeWorkload::with_footprint(footprint_bytes, pages * 4, seed))
            }
        }
    }
}

/// Parameters of a pressure run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureConfig {
    /// Iceberg buckets of memory (64 frames each) under management.
    pub mem_buckets: usize,
    /// Run seed.
    pub seed: u64,
    /// Accesses per replay chunk fed to the drive loop; `<= 1` selects
    /// the per-access feed. Results are bit-identical either way (the
    /// chunking only amortizes trace decode and sink dispatch).
    pub batch: usize,
}

impl PressureConfig {
    /// 4096 frames (16 MiB) — a fast default that preserves the paper's
    /// footprint-to-memory ratios.
    pub fn quick() -> Self {
        Self {
            mem_buckets: 64,
            seed: 0x7AB1E,
            batch: crate::fig6::DEFAULT_BATCH,
        }
    }

    /// 16 Ki frames (64 MiB) — the benchmark default.
    pub fn default_size() -> Self {
        Self {
            mem_buckets: 256,
            seed: 0x7AB1E,
            batch: crate::fig6::DEFAULT_BATCH,
        }
    }

    /// Memory under management, in bytes.
    pub fn mem_bytes(&self) -> u64 {
        (self.mem_buckets * 64) as u64 * PAGE_SIZE
    }

    /// The paper's footprint ratios: Table 4 sweeps 4158–6459 MiB over
    /// 4096 MiB of memory.
    pub fn paper_ratios() -> Vec<f64> {
        vec![
            1.0151, 1.0774, 1.1399, 1.2021, 1.2646, 1.3271, 1.3894, 1.4519, 1.5144, 1.5769,
        ]
    }

    /// Table 3's four footprint ratios (4158–4924 MiB over 4096 MiB).
    pub fn table3_ratios() -> Vec<f64> {
        vec![1.0151, 1.0774, 1.1399, 1.2021]
    }
}

/// The measured outcome of one (workload, footprint) run.
#[derive(Debug, Clone, PartialEq)]
pub struct PressureRow {
    /// Which workload.
    pub workload: &'static str,
    /// Actual footprint of the built workload, in bytes.
    pub footprint_bytes: u64,
    /// Swap I/O (pages in + out) under the Linux baseline.
    pub linux_swaps: u64,
    /// Swap I/O under Mosaic (Horizon LRU).
    pub mosaic_swaps: u64,
    /// Mosaic utilization at its first conflict, percent.
    pub first_conflict_pct: Option<f64>,
    /// Mosaic steady-state utilization, percent.
    pub steady_state_pct: Option<f64>,
    /// Linux steady-state utilization, percent.
    pub linux_steady_pct: Option<f64>,
}

impl PressureRow {
    /// Table 4's "Difference (%)" column: the percent reduction in swap
    /// I/O Mosaic achieves (positive = Mosaic swaps less).
    pub fn difference_pct(&self) -> f64 {
        if self.linux_swaps == 0 {
            0.0
        } else {
            (1.0 - self.mosaic_swaps as f64 / self.linux_swaps as f64) * 100.0
        }
    }
}

/// A Table 3 row: utilization milestones for one (workload, footprint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Which workload.
    pub workload: &'static str,
    /// Footprint in bytes.
    pub footprint_bytes: u64,
    /// Utilization at the first associativity conflict, percent.
    pub first_conflict_pct: f64,
    /// Steady-state utilization, percent.
    pub steady_state_pct: f64,
}

const PRESSURE_ASID: Asid = Asid(1);

/// Fault-injection parameters of a resilience run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// What to inject, and at what rates.
    pub plan: FaultPlan,
    /// Seed of the injector's decision stream (independent of the
    /// workload seed, so fault placement can be varied separately).
    pub fault_seed: u64,
    /// Accesses between structural `verify()` passes; `0` disables
    /// interval checking (a final pass still runs).
    pub verify_every: u64,
}

impl ResilienceConfig {
    /// No faults, no interval verification: `run_pressure` semantics.
    pub fn none() -> Self {
        Self {
            plan: FaultPlan::NONE,
            fault_seed: 0,
            verify_every: 0,
        }
    }
}

/// What the fault-injection harness observed in one pressure run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Injection/recovery counters of the Mosaic manager.
    pub mosaic: ResilienceStats,
    /// Injection/recovery counters of the Linux baseline.
    pub linux: ResilienceStats,
    /// Mosaic accesses abandoned with a typed error (retry budget spent).
    pub mosaic_dropped: u64,
    /// Linux accesses abandoned with a typed error.
    pub linux_dropped: u64,
    /// Structural `verify()` passes that ran (all of which succeeded —
    /// a failing pass aborts the run with the violation instead).
    pub verify_passes: u64,
    /// Total accesses driven through the managers (both drives of the
    /// shared trace), the denominator of a wall-clock ns/access figure.
    pub accesses_driven: u64,
    /// A sample of the last typed error surfaced, for diagnostics.
    pub last_error: Option<MosaicError>,
}

impl ResilienceReport {
    /// Merged counters of both managers.
    pub fn combined(&self) -> ResilienceStats {
        let mut all = self.mosaic;
        all.merge(&self.linux);
        all
    }

    /// Total accesses dropped across both managers.
    pub fn dropped(&self) -> u64 {
        self.mosaic_dropped + self.linux_dropped
    }
}

/// Runs one workload at one footprint through both managers.
pub fn run_pressure(
    workload: PressureWorkload,
    footprint_ratio: f64,
    cfg: &PressureConfig,
) -> PressureRow {
    let (row, _) = run_pressure_resilient(workload, footprint_ratio, cfg, &ResilienceConfig::none())
        .unwrap_or_else(|e| panic!("fault-free pressure run cannot fail: {e}"));
    row
}

/// Runs one workload at one footprint through both managers under a fault
/// plan, verifying structural invariants along the way.
///
/// With [`ResilienceConfig::none`] this is exactly [`run_pressure`]: no
/// injectors are attached and the resulting row is bit-identical to a
/// fault-free run.
///
/// # Errors
///
/// Returns the violation if any structural `verify()` pass fails — that is
/// a bug, not a tolerable fault. Injected faults never surface here; they
/// are absorbed (retried or dropped) and counted in the report.
pub fn run_pressure_resilient(
    workload: PressureWorkload,
    footprint_ratio: f64,
    cfg: &PressureConfig,
    res: &ResilienceConfig,
) -> MosaicResult<(PressureRow, ResilienceReport)> {
    run_pressure_observed(workload, footprint_ratio, cfg, res, &ObsHandle::noop(), 0)
}

/// [`run_pressure_resilient`] with metric/event export: both managers
/// register their counters (under `mosaic.*` and `linux.*`) on `obs`, and
/// — when `obs_interval > 0` — a full registry snapshot is taken every
/// `obs_interval` references, yielding the interval time series
/// `obs_report` renders. With a [`ObsHandle::noop`] handle this is
/// exactly [`run_pressure_resilient`].
///
/// The reference timeline is continuous across the two managers (Mosaic
/// drives first, then the baseline resumes at the next reference), so
/// snapshot and event timestamps in the export are strictly increasing.
///
/// # Errors
///
/// Returns the violation if any structural `verify()` pass fails.
pub fn run_pressure_observed(
    workload: PressureWorkload,
    footprint_ratio: f64,
    cfg: &PressureConfig,
    res: &ResilienceConfig,
    obs: &ObsHandle,
    obs_interval: u64,
) -> MosaicResult<(PressureRow, ResilienceReport)> {
    let target = (cfg.mem_bytes() as f64 * footprint_ratio) as u64;
    let layout = MemoryLayout::new(IcebergConfig::paper_default(cfg.mem_buckets));
    let mut mosaic = MosaicMemory::new(layout, cfg.seed);
    let mut linux = LinuxMemory::new(layout);
    if !res.plan.is_none() {
        mosaic = mosaic.with_fault_injector(res.plan, res.fault_seed);
        linux = linux.with_fault_injector(res.plan, res.fault_seed ^ 0x11);
    }
    if obs.is_enabled() {
        mosaic.set_obs(obs, "mosaic");
        linux.set_obs(obs, "linux");
    }

    let mut report = ResilienceReport {
        mosaic: ResilienceStats::ZERO,
        linux: ResilienceStats::ZERO,
        mosaic_dropped: 0,
        linux_dropped: 0,
        verify_passes: 0,
        accesses_driven: 0,
        last_error: None,
    };

    // Identical reference streams for both managers: the workload is
    // built and recorded once, then replayed read-only for each drive —
    // the stream each manager sees is the same *object*, not merely the
    // same seed, and the generation cost is paid once instead of twice.
    let mut source = workload.build(target, cfg.seed);
    let trace = TraceBuffer::record(source.as_mut()).map_err(MosaicError::from)?;
    drop(source);
    // One drive per manager over the shared trace.
    report.accesses_driven = trace.len() * 2;
    if obs.is_enabled() {
        obs.event(
            0,
            "drive.begin",
            &[
                ("mgr", Value::from("mosaic")),
                ("workload", Value::from(workload.name())),
                ("ratio", Value::from(footprint_ratio)),
            ],
        );
    }
    let mut replay = trace.replayer();
    let (footprint, m_dropped, end) = drive(
        &mut mosaic, &mut replay, target, cfg.batch, res, &mut report, 0, obs, obs_interval,
    )?;
    if let Some(e) = replay.into_error() {
        return Err(e.into());
    }
    // The baseline's timeline resumes where Mosaic's stopped (only when
    // exporting; `now` offsets never change manager behavior, but the
    // default path stays untouched for bit-identity with the seed).
    let start2 = if obs.is_enabled() { end } else { 0 };
    if obs.is_enabled() {
        obs.event(
            start2,
            "drive.begin",
            &[
                ("mgr", Value::from("linux")),
                ("workload", Value::from(workload.name())),
                ("ratio", Value::from(footprint_ratio)),
            ],
        );
    }
    let mut replay = trace.replayer();
    let (footprint2, l_dropped, end2) = drive(
        &mut linux, &mut replay, target, cfg.batch, res, &mut report, start2, obs, obs_interval,
    )?;
    if let Some(e) = replay.into_error() {
        return Err(e.into());
    }
    debug_assert_eq!(footprint, footprint2);
    report.mosaic = *mosaic.resilience();
    report.linux = *linux.resilience();
    report.mosaic_dropped = m_dropped;
    report.linux_dropped = l_dropped;
    if obs.is_enabled() {
        mosaic.publish_obs();
        linux.publish_obs();
        obs.snapshot(end2);
    }

    let row = PressureRow {
        workload: workload.name(),
        footprint_bytes: footprint,
        linux_swaps: linux.stats().swap_ops(),
        mosaic_swaps: mosaic.stats().swap_ops(),
        first_conflict_pct: mosaic
            .utilization_tracker()
            .first_conflict()
            .map(|u| u * 100.0),
        steady_state_pct: mosaic
            .utilization_tracker()
            .steady_state_mean()
            .map(|u| u * 100.0),
        linux_steady_pct: linux
            .utilization_tracker()
            .steady_state_mean()
            .map(|u| u * 100.0),
    };
    Ok((row, report))
}

/// Drives one manager with `w`'s page-reference stream (callers build —
/// or replay — the workload; `footprint_bytes` is the *target* footprint
/// and only sizes the warmup window). Returns the workload's actual
/// footprint in bytes, the number of accesses dropped to typed errors,
/// and the final reference count; propagates only invariant violations.
///
/// `batch > 1` pulls the stream through [`Workload::run_chunks`] — for a
/// trace replayer that's a slice-at-a-time feed straight from the
/// recorded chunks — while the per-access body (and so every counter,
/// sample, snapshot, and verify cadence) stays identical.
#[allow(clippy::too_many_arguments)]
fn drive(
    manager: &mut dyn MemoryManager,
    w: &mut dyn Workload,
    footprint_bytes: u64,
    batch: usize,
    res: &ResilienceConfig,
    report: &mut ResilienceReport,
    start_now: u64,
    obs: &ObsHandle,
    obs_interval: u64,
) -> MosaicResult<(u64, u64, u64)> {
    let mut now = start_now;
    // Steady-state sampling every ~64 Ki accesses, after a warmup of one
    // footprint's worth of touches.
    let warmup = footprint_bytes / PAGE_SIZE;
    let mut counter = 0u64;
    let mut dropped = 0u64;
    let mut violation: Option<MosaicError> = None;
    let mut step = |a: Access| {
        if violation.is_some() {
            return;
        }
        now += 1;
        let key = PageKey::new(PRESSURE_ASID, a.addr.vpn());
        if let Err(e) = manager.try_access(key, a.kind, now) {
            // Graceful degradation: the access is dropped, the manager
            // stays consistent, and the experiment keeps running.
            dropped += 1;
            report.last_error = Some(e);
        }
        counter += 1;
        if counter > warmup && counter.is_multiple_of(65_536) {
            manager.sample_utilization();
        }
        if obs_interval > 0 && counter.is_multiple_of(obs_interval) {
            manager.publish_obs();
            obs.snapshot(now);
        }
        if res.verify_every > 0 && counter.is_multiple_of(res.verify_every) {
            match manager.verify() {
                Ok(()) => report.verify_passes += 1,
                Err(e) => violation = Some(e),
            }
        }
    };
    if batch > 1 {
        w.run_chunks(batch, &mut |chunk| {
            for &a in chunk {
                step(a);
            }
        });
    } else {
        w.run(&mut step);
    }
    if let Some(e) = violation {
        return Err(e);
    }
    manager.sample_utilization();
    // Always end on a full structural check.
    manager.verify()?;
    report.verify_passes += 1;
    Ok((w.meta().footprint_bytes, dropped, now))
}

/// Runs the full Table 4 grid.
pub fn run_table4(cfg: &PressureConfig, ratios: &[f64]) -> Vec<PressureRow> {
    let mut rows = Vec::new();
    for &w in &PressureWorkload::ALL {
        for &r in ratios {
            rows.push(run_pressure(w, r, cfg));
        }
    }
    rows
}

/// Extracts Table 3 rows (runs that conflicted) from pressure results.
pub fn table3_rows(rows: &[PressureRow]) -> Vec<Table3Row> {
    rows.iter()
        .filter_map(|r| {
            Some(Table3Row {
                workload: r.workload,
                footprint_bytes: r.footprint_bytes,
                first_conflict_pct: r.first_conflict_pct?,
                steady_state_pct: r.steady_state_pct?,
            })
        })
        .collect()
}

/// Renders Table 4.
pub fn render_table4(rows: &[PressureRow]) -> Table {
    let mut t = Table::new(vec![
        "Workload".into(),
        "Footprint (MiB)".into(),
        "Linux (pages)".into(),
        "Mosaic (pages)".into(),
        "Difference (%)".into(),
    ])
    .with_title("Table 4: swap I/O while increasing workload size");
    for r in rows {
        t.row(vec![
            r.workload.to_string(),
            format!("{:.0}", r.footprint_bytes as f64 / (1 << 20) as f64),
            group_digits(r.linux_swaps),
            group_digits(r.mosaic_swaps),
            format!("{:+.2}", r.difference_pct()),
        ]);
    }
    t
}

/// Runs the Table 4 grid under a fault plan, collecting resilience
/// reports alongside the usual rows.
///
/// # Errors
///
/// Propagates the first structural invariant violation, if any.
pub fn run_table4_resilient(
    cfg: &PressureConfig,
    ratios: &[f64],
    res: &ResilienceConfig,
) -> MosaicResult<Vec<(PressureRow, ResilienceReport)>> {
    run_table4_observed(cfg, ratios, res, &ObsHandle::noop(), 0)
}

/// The Table 4 grid with metric/event export: every (workload, ratio)
/// cell runs through [`run_pressure_observed`] against the shared `obs`
/// registry, so one JSONL stream carries the full grid (counters are
/// cumulative across cells; `drive.begin` events delimit them).
///
/// # Errors
///
/// Propagates the first structural invariant violation, if any.
pub fn run_table4_observed(
    cfg: &PressureConfig,
    ratios: &[f64],
    res: &ResilienceConfig,
    obs: &ObsHandle,
    obs_interval: u64,
) -> MosaicResult<Vec<(PressureRow, ResilienceReport)>> {
    let mut rows = Vec::new();
    for &w in &PressureWorkload::ALL {
        for &r in ratios {
            rows.push(run_pressure_observed(w, r, cfg, res, obs, obs_interval)?);
        }
    }
    Ok(rows)
}

/// [`run_table4_resilient`] on `jobs` threads.
///
/// # Errors
///
/// Propagates the first structural invariant violation, if any.
pub fn run_table4_jobs(
    cfg: &PressureConfig,
    ratios: &[f64],
    res: &ResilienceConfig,
    jobs: usize,
) -> MosaicResult<Vec<(PressureRow, ResilienceReport)>> {
    run_table4_observed_jobs(cfg, ratios, res, &ObsHandle::noop(), 0, jobs)
}

/// [`run_table4_observed`] on `jobs` threads: every (workload, ratio)
/// cell is independent (own managers, own recorded trace), so the grid
/// fans out freely; results and merged observability come back in the
/// serial grid order.
///
/// Fault runs derive each cell's injector seed from
/// (`res.fault_seed`, cell index) via [`derive_seed`] — at *every* job
/// count, including 1 — so resilience sweeps are identical no matter
/// how many threads run them. Fault-free `jobs == 1` runs route to the
/// serial engine unchanged.
///
/// # Errors
///
/// Propagates the first structural invariant violation, if any.
pub fn run_table4_observed_jobs(
    cfg: &PressureConfig,
    ratios: &[f64],
    res: &ResilienceConfig,
    obs: &ObsHandle,
    obs_interval: u64,
    jobs: usize,
) -> MosaicResult<Vec<(PressureRow, ResilienceReport)>> {
    if jobs == 1 && res.plan.is_none() {
        return run_table4_observed(cfg, ratios, res, obs, obs_interval);
    }
    run_table4_cells(cfg, ratios, res, obs, obs_interval, jobs)
        .into_iter()
        .collect()
}

/// [`run_table4_observed_jobs`] with per-cell outcomes: a cell that dies
/// under fault injection comes back as `Err` *in place* (grid order is
/// preserved), so callers can skip the row and keep the rest of the
/// sweep — the graceful-degradation contract the resilience harness
/// promises. Observability from every cell, failed or not, is merged
/// into `obs` in grid order.
pub fn run_table4_cells(
    cfg: &PressureConfig,
    ratios: &[f64],
    res: &ResilienceConfig,
    obs: &ObsHandle,
    obs_interval: u64,
    jobs: usize,
) -> Vec<MosaicResult<(PressureRow, ResilienceReport)>> {
    let mut inputs = Vec::new();
    for &w in &PressureWorkload::ALL {
        for &r in ratios {
            inputs.push((w, r, obs.child()));
        }
    }
    let outcomes = run_cells(jobs, inputs, |i, (w, r, child)| {
        let cell_res = if res.plan.is_none() {
            *res
        } else {
            ResilienceConfig {
                plan: res.plan,
                fault_seed: derive_seed(res.fault_seed, i as u64),
                verify_every: res.verify_every,
            }
        };
        let out = run_pressure_observed(w, r, cfg, &cell_res, &child, obs_interval);
        (out, child)
    });
    outcomes
        .into_iter()
        .map(|(out, child)| {
            if obs.is_enabled() {
                obs.merge_from(&child);
            }
            out
        })
        .collect()
}

/// Renders the fault-injection summary: what was injected and how the
/// managers absorbed it (combined over Mosaic and the baseline).
pub fn render_resilience(rows: &[(PressureRow, ResilienceReport)]) -> Table {
    let mut t = Table::new(vec![
        "Workload".into(),
        "Footprint (MiB)".into(),
        "Faults injected".into(),
        "Retries".into(),
        "Backoff (ticks)".into(),
        "ToC re-walks".into(),
        "Dropped accesses".into(),
        "Recovered (%)".into(),
        "Verify passes".into(),
    ])
    .with_title("Resilience: injected faults and recovery under pressure");
    for (row, rep) in rows {
        let all = rep.combined();
        t.row(vec![
            row.workload.to_string(),
            format!("{:.0}", row.footprint_bytes as f64 / (1 << 20) as f64),
            group_digits(all.faults_injected()),
            group_digits(all.retries()),
            group_digits(all.io_backoff_ticks),
            group_digits(all.toc_rewalks),
            group_digits(rep.dropped()),
            crate::report::percent_or_dash(all.recoveries(), all.faults_injected()),
            group_digits(rep.verify_passes),
        ]);
    }
    t
}

/// Renders Table 3.
pub fn render_table3(rows: &[Table3Row]) -> Table {
    let mut t = Table::new(vec![
        "Workload".into(),
        "Footprint (MiB)".into(),
        "First conflict (1-δ, %)".into(),
        "Steady-state util (%)".into(),
    ])
    .with_title("Table 3: memory utilization under Mosaic page allocation");
    for r in rows {
        t.row(vec![
            r.workload.to_string(),
            format!("{:.0}", r.footprint_bytes as f64 / (1 << 20) as f64),
            format!("{:.2}", r.first_conflict_pct),
            format!("{:.2}", r.steady_state_pct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> PressureConfig {
        PressureConfig {
            mem_buckets: 16, // 1024 frames = 4 MiB
            seed: 5,
            batch: crate::fig6::DEFAULT_BATCH,
        }
    }

    #[test]
    fn overcommitted_run_swaps_in_both_managers() {
        let row = run_pressure(PressureWorkload::XsBench, 1.25, &tiny_cfg());
        assert!(row.linux_swaps > 0, "Linux must swap at 125%");
        assert!(row.mosaic_swaps > 0, "Mosaic must swap at 125%");
        assert!(row.first_conflict_pct.is_some());
    }

    #[test]
    fn first_conflict_is_near_98_percent() {
        let row = run_pressure(PressureWorkload::XsBench, 1.25, &tiny_cfg());
        let fc = row.first_conflict_pct.unwrap();
        assert!(
            (94.0..100.0).contains(&fc),
            "first conflict at {fc:.2}% (paper: ~98%)"
        );
    }

    #[test]
    fn steady_state_exceeds_first_conflict() {
        // Ghosts let utilization climb past 1 - δ (§4.2).
        let row = run_pressure(PressureWorkload::BTree, 1.2, &tiny_cfg());
        let fc = row.first_conflict_pct.unwrap();
        let ss = row.steady_state_pct.unwrap();
        assert!(ss > fc - 2.0, "steady {ss:.2} vs first conflict {fc:.2}");
    }

    #[test]
    fn undercommitted_run_never_swaps() {
        let row = run_pressure(PressureWorkload::XsBench, 0.60, &tiny_cfg());
        assert_eq!(row.linux_swaps, 0);
        assert_eq!(row.mosaic_swaps, 0);
        assert_eq!(row.first_conflict_pct, None);
    }

    #[test]
    fn difference_sign_convention() {
        let row = PressureRow {
            workload: "X",
            footprint_bytes: 0,
            linux_swaps: 100,
            mosaic_swaps: 80,
            first_conflict_pct: None,
            steady_state_pct: None,
            linux_steady_pct: None,
        };
        assert!((row.difference_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn renders_are_complete() {
        let rows = vec![run_pressure(PressureWorkload::XsBench, 1.2, &tiny_cfg())];
        let t4 = render_table4(&rows).render();
        assert!(t4.contains("XSBench"));
        let t3 = render_table3(&table3_rows(&rows)).render();
        assert!(t3.contains("XSBench"));
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_plain_run() {
        let plain = run_pressure(PressureWorkload::BTree, 1.2, &tiny_cfg());
        let (resilient, rep) = run_pressure_resilient(
            PressureWorkload::BTree,
            1.2,
            &tiny_cfg(),
            &ResilienceConfig::none(),
        )
        .unwrap();
        assert_eq!(plain, resilient);
        assert_eq!(rep.combined(), ResilienceStats::ZERO);
        assert_eq!(rep.dropped(), 0);
    }

    #[test]
    fn faulty_run_survives_and_reports() {
        let res = ResilienceConfig {
            plan: FaultPlan::NONE
                .with_alloc_failures(10_000) // 1% of allocations
                .with_io_failures(10_000, 1)
                .with_toc_flips(1_000),
            fault_seed: 0xF00D,
            verify_every: 50_000,
        };
        let (row, rep) =
            run_pressure_resilient(PressureWorkload::XsBench, 1.25, &tiny_cfg(), &res)
                .expect("invariants must hold under injected faults");
        assert!(row.mosaic_swaps > 0, "overcommit still swaps");
        let all = rep.combined();
        assert!(all.faults_injected() > 0, "plan injected nothing");
        assert!(all.retries() > 0, "no transient fault was retried");
        assert!(rep.verify_passes >= 2, "interval verification never ran");
        // Retry budgets (3-4 retries at 1% fault rate) absorb almost
        // everything; only multi-failure streaks drop an access.
        assert!(rep.dropped() < all.faults_injected());
        let table = render_resilience(&[(row, rep)]).render();
        assert!(table.contains("Faults injected") && table.contains("XSBench"));
    }

    #[test]
    fn resilience_report_sample_error_is_transient() {
        // Drive hard enough that at least one retry budget is exhausted;
        // the surfaced error must be a typed transient failure.
        let res = ResilienceConfig {
            plan: FaultPlan::NONE.with_io_failures(60_000, 6),
            fault_seed: 9,
            verify_every: 0,
        };
        let (_, rep) =
            run_pressure_resilient(PressureWorkload::BTree, 1.3, &tiny_cfg(), &res).unwrap();
        if let Some(e) = &rep.last_error {
            assert!(e.is_transient(), "unexpected error class: {e}");
        }
        assert!(rep.verify_passes >= 2, "final verify always runs");
    }
}
