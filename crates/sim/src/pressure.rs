//! The memory-pressure experiments: Table 3 (utilization) and Table 4
//! (swap I/O), comparing Mosaic against the Linux-like baseline.
//!
//! Each run builds a workload with a footprint that is a configured ratio
//! of physical memory (the paper sweeps ≈101 %–157 %), then drives the
//! workload's page-reference stream through both memory managers,
//! recording:
//!
//! * the utilization at Mosaic's **first associativity conflict**
//!   (Table 3 predicts ≈98 %, i.e. δ ≈ 2 %);
//! * the **steady-state utilization** (ghosts push it past `1 − δ`);
//! * total **swap I/O** for each manager (Table 4's columns).

use crate::report::{group_digits, Table};
use mosaic_mem::{
    Asid, IcebergConfig, LinuxMemory, MemoryLayout, MemoryManager, MosaicMemory,
    PageKey, PAGE_SIZE,
};
use mosaic_workloads::{BTreeWorkload, Graph500, Workload, XsBench};

/// The workloads the swapping experiments use (the paper's Tables 3–4
/// run Graph500, XSBench, and BTree; GUPS is Figure-6-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PressureWorkload {
    /// BFS over a Kronecker graph.
    Graph500,
    /// XSBench cross-section lookups.
    XsBench,
    /// B+-tree point lookups.
    BTree,
}

impl PressureWorkload {
    /// The three workloads in the paper's table order.
    pub const ALL: [PressureWorkload; 3] = [
        PressureWorkload::Graph500,
        PressureWorkload::XsBench,
        PressureWorkload::BTree,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PressureWorkload::Graph500 => "Graph500",
            PressureWorkload::XsBench => "XSBench",
            PressureWorkload::BTree => "BTree",
        }
    }

    /// Builds the workload at approximately `footprint_bytes`.
    pub fn build(self, footprint_bytes: u64, seed: u64) -> Box<dyn Workload> {
        let pages = footprint_bytes / PAGE_SIZE;
        match self {
            PressureWorkload::Graph500 => {
                Box::new(Graph500::with_footprint(footprint_bytes, 2, seed))
            }
            PressureWorkload::XsBench => {
                // Enough lookups that every grid page is touched and the
                // working set cycles several times.
                Box::new(XsBench::with_footprint(footprint_bytes, pages * 8, seed))
            }
            PressureWorkload::BTree => {
                Box::new(BTreeWorkload::with_footprint(footprint_bytes, pages * 4, seed))
            }
        }
    }
}

/// Parameters of a pressure run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureConfig {
    /// Iceberg buckets of memory (64 frames each) under management.
    pub mem_buckets: usize,
    /// Run seed.
    pub seed: u64,
}

impl PressureConfig {
    /// 4096 frames (16 MiB) — a fast default that preserves the paper's
    /// footprint-to-memory ratios.
    pub fn quick() -> Self {
        Self {
            mem_buckets: 64,
            seed: 0x7AB1E,
        }
    }

    /// 16 Ki frames (64 MiB) — the benchmark default.
    pub fn default_size() -> Self {
        Self {
            mem_buckets: 256,
            seed: 0x7AB1E,
        }
    }

    /// Memory under management, in bytes.
    pub fn mem_bytes(&self) -> u64 {
        (self.mem_buckets * 64) as u64 * PAGE_SIZE
    }

    /// The paper's footprint ratios: Table 4 sweeps 4158–6459 MiB over
    /// 4096 MiB of memory.
    pub fn paper_ratios() -> Vec<f64> {
        vec![
            1.0151, 1.0774, 1.1399, 1.2021, 1.2646, 1.3271, 1.3894, 1.4519, 1.5144, 1.5769,
        ]
    }

    /// Table 3's four footprint ratios (4158–4924 MiB over 4096 MiB).
    pub fn table3_ratios() -> Vec<f64> {
        vec![1.0151, 1.0774, 1.1399, 1.2021]
    }
}

/// The measured outcome of one (workload, footprint) run.
#[derive(Debug, Clone, PartialEq)]
pub struct PressureRow {
    /// Which workload.
    pub workload: &'static str,
    /// Actual footprint of the built workload, in bytes.
    pub footprint_bytes: u64,
    /// Swap I/O (pages in + out) under the Linux baseline.
    pub linux_swaps: u64,
    /// Swap I/O under Mosaic (Horizon LRU).
    pub mosaic_swaps: u64,
    /// Mosaic utilization at its first conflict, percent.
    pub first_conflict_pct: Option<f64>,
    /// Mosaic steady-state utilization, percent.
    pub steady_state_pct: Option<f64>,
    /// Linux steady-state utilization, percent.
    pub linux_steady_pct: Option<f64>,
}

impl PressureRow {
    /// Table 4's "Difference (%)" column: the percent reduction in swap
    /// I/O Mosaic achieves (positive = Mosaic swaps less).
    pub fn difference_pct(&self) -> f64 {
        if self.linux_swaps == 0 {
            0.0
        } else {
            (1.0 - self.mosaic_swaps as f64 / self.linux_swaps as f64) * 100.0
        }
    }
}

/// A Table 3 row: utilization milestones for one (workload, footprint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Which workload.
    pub workload: &'static str,
    /// Footprint in bytes.
    pub footprint_bytes: u64,
    /// Utilization at the first associativity conflict, percent.
    pub first_conflict_pct: f64,
    /// Steady-state utilization, percent.
    pub steady_state_pct: f64,
}

const PRESSURE_ASID: Asid = Asid(1);

/// Runs one workload at one footprint through both managers.
pub fn run_pressure(
    workload: PressureWorkload,
    footprint_ratio: f64,
    cfg: &PressureConfig,
) -> PressureRow {
    let target = (cfg.mem_bytes() as f64 * footprint_ratio) as u64;
    let layout = MemoryLayout::new(IcebergConfig::paper_default(cfg.mem_buckets));
    let mut mosaic = MosaicMemory::new(layout, cfg.seed);
    let mut linux = LinuxMemory::new(layout);

    // Identical reference streams: the workload is rebuilt with the same
    // seed for each manager so the traces match exactly.
    let footprint = drive(&mut mosaic, workload, target, cfg.seed);
    let footprint2 = drive(&mut linux, workload, target, cfg.seed);
    debug_assert_eq!(footprint, footprint2);

    PressureRow {
        workload: workload.name(),
        footprint_bytes: footprint,
        linux_swaps: linux.stats().swap_ops(),
        mosaic_swaps: mosaic.stats().swap_ops(),
        first_conflict_pct: mosaic
            .utilization_tracker()
            .first_conflict()
            .map(|u| u * 100.0),
        steady_state_pct: mosaic
            .utilization_tracker()
            .steady_state_mean()
            .map(|u| u * 100.0),
        linux_steady_pct: linux
            .utilization_tracker()
            .steady_state_mean()
            .map(|u| u * 100.0),
    }
}

/// Drives one manager with the workload's page-reference stream and
/// returns the workload's actual footprint in bytes.
fn drive(
    manager: &mut dyn MemoryManager,
    workload: PressureWorkload,
    footprint_bytes: u64,
    seed: u64,
) -> u64 {
    let mut w = workload.build(footprint_bytes, seed);
    let mut now = 0u64;
    // Steady-state sampling every ~64 Ki accesses, after a warmup of one
    // footprint's worth of touches.
    let warmup = footprint_bytes / PAGE_SIZE;
    let mut counter = 0u64;
    w.run(&mut |a| {
        now += 1;
        let key = PageKey::new(PRESSURE_ASID, a.addr.vpn());
        manager.access(key, a.kind, now);
        counter += 1;
        if counter > warmup && counter.is_multiple_of(65_536) {
            manager.sample_utilization();
        }
    });
    manager.sample_utilization();
    w.meta().footprint_bytes
}

/// Runs the full Table 4 grid.
pub fn run_table4(cfg: &PressureConfig, ratios: &[f64]) -> Vec<PressureRow> {
    let mut rows = Vec::new();
    for &w in &PressureWorkload::ALL {
        for &r in ratios {
            rows.push(run_pressure(w, r, cfg));
        }
    }
    rows
}

/// Extracts Table 3 rows (runs that conflicted) from pressure results.
pub fn table3_rows(rows: &[PressureRow]) -> Vec<Table3Row> {
    rows.iter()
        .filter_map(|r| {
            Some(Table3Row {
                workload: r.workload,
                footprint_bytes: r.footprint_bytes,
                first_conflict_pct: r.first_conflict_pct?,
                steady_state_pct: r.steady_state_pct?,
            })
        })
        .collect()
}

/// Renders Table 4.
pub fn render_table4(rows: &[PressureRow]) -> Table {
    let mut t = Table::new(vec![
        "Workload".into(),
        "Footprint (MiB)".into(),
        "Linux (pages)".into(),
        "Mosaic (pages)".into(),
        "Difference (%)".into(),
    ])
    .with_title("Table 4: swap I/O while increasing workload size");
    for r in rows {
        t.row(vec![
            r.workload.to_string(),
            format!("{:.0}", r.footprint_bytes as f64 / (1 << 20) as f64),
            group_digits(r.linux_swaps),
            group_digits(r.mosaic_swaps),
            format!("{:+.2}", r.difference_pct()),
        ]);
    }
    t
}

/// Renders Table 3.
pub fn render_table3(rows: &[Table3Row]) -> Table {
    let mut t = Table::new(vec![
        "Workload".into(),
        "Footprint (MiB)".into(),
        "First conflict (1-δ, %)".into(),
        "Steady-state util (%)".into(),
    ])
    .with_title("Table 3: memory utilization under Mosaic page allocation");
    for r in rows {
        t.row(vec![
            r.workload.to_string(),
            format!("{:.0}", r.footprint_bytes as f64 / (1 << 20) as f64),
            format!("{:.2}", r.first_conflict_pct),
            format!("{:.2}", r.steady_state_pct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> PressureConfig {
        PressureConfig {
            mem_buckets: 16, // 1024 frames = 4 MiB
            seed: 5,
        }
    }

    #[test]
    fn overcommitted_run_swaps_in_both_managers() {
        let row = run_pressure(PressureWorkload::XsBench, 1.25, &tiny_cfg());
        assert!(row.linux_swaps > 0, "Linux must swap at 125%");
        assert!(row.mosaic_swaps > 0, "Mosaic must swap at 125%");
        assert!(row.first_conflict_pct.is_some());
    }

    #[test]
    fn first_conflict_is_near_98_percent() {
        let row = run_pressure(PressureWorkload::XsBench, 1.25, &tiny_cfg());
        let fc = row.first_conflict_pct.unwrap();
        assert!(
            (94.0..100.0).contains(&fc),
            "first conflict at {fc:.2}% (paper: ~98%)"
        );
    }

    #[test]
    fn steady_state_exceeds_first_conflict() {
        // Ghosts let utilization climb past 1 - δ (§4.2).
        let row = run_pressure(PressureWorkload::BTree, 1.2, &tiny_cfg());
        let fc = row.first_conflict_pct.unwrap();
        let ss = row.steady_state_pct.unwrap();
        assert!(ss > fc - 2.0, "steady {ss:.2} vs first conflict {fc:.2}");
    }

    #[test]
    fn undercommitted_run_never_swaps() {
        let row = run_pressure(PressureWorkload::XsBench, 0.60, &tiny_cfg());
        assert_eq!(row.linux_swaps, 0);
        assert_eq!(row.mosaic_swaps, 0);
        assert_eq!(row.first_conflict_pct, None);
    }

    #[test]
    fn difference_sign_convention() {
        let row = PressureRow {
            workload: "X",
            footprint_bytes: 0,
            linux_swaps: 100,
            mosaic_swaps: 80,
            first_conflict_pct: None,
            steady_state_pct: None,
            linux_steady_pct: None,
        };
        assert!((row.difference_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn renders_are_complete() {
        let rows = vec![run_pressure(PressureWorkload::XsBench, 1.2, &tiny_cfg())];
        let t4 = render_table4(&rows).render();
        assert!(t4.contains("XSBench"));
        let t3 = render_table3(&table3_rows(&rows)).render();
        assert!(t3.contains("XSBench"));
    }
}
