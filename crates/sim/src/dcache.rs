//! A physically-indexed data cache and the page-coloring question of
//! §5.3.
//!
//! Page coloring constrains frame choice so virtual pages don't contend
//! for the same cache sets; the paper notes Mosaic's restrictions are
//! stricter than coloring's, "However, Mosaic's randomization of
//! virtual-to-physical mappings may be sufficient in expectation to
//! avoid the cache pathologies prevented by page coloring, which we
//! leave for future work." This module does that future work in
//! miniature: a set-associative physically-indexed cache model plus an
//! experiment comparing cache behaviour under sequential, colored,
//! pathological, and Mosaic frame placements.

use mosaic_hash::SplitMix64;
use mosaic_mem::{
    AccessKind, Asid, IcebergConfig, MemoryLayout, MemoryManager, MosaicMemory, PageKey, Pfn,
    PhysAddr, PAGE_SIZE,
};
use mosaic_mmu::tlb::{Associativity, SetAssocCache, TlbConfig};
use mosaic_workloads::Workload;
use std::collections::HashMap;

/// A physically-indexed, physically-tagged set-associative data cache.
///
/// # Example
///
/// ```
/// use mosaic_sim::dcache::DataCache;
/// use mosaic_mem::PhysAddr;
///
/// let mut c = DataCache::new(64 * 1024, 8, 64); // 64 KiB, 8-way, 64 B lines
/// assert!(!c.access(PhysAddr(0)));  // cold miss
/// assert!(c.access(PhysAddr(32))); // same line: hit
/// ```
#[derive(Debug)]
pub struct DataCache {
    cache: SetAssocCache<u64, ()>,
    num_sets: u64,
    line_bytes: u64,
    hits: u64,
    misses: u64,
}

impl DataCache {
    /// Creates a cache of `capacity_bytes` with the given associativity
    /// and line size.
    ///
    /// # Panics
    ///
    /// Panics unless all dimensions are powers of two and consistent.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(capacity_bytes.is_power_of_two(), "capacity must be a power of two");
        let lines = capacity_bytes / line_bytes;
        assert!(
            (lines as usize).is_multiple_of(ways),
            "lines must divide into ways"
        );
        let num_sets = lines / ways as u64;
        Self {
            cache: SetAssocCache::new(TlbConfig::new(
                lines as usize,
                Associativity::Ways(ways),
            )),
            num_sets,
            line_bytes,
            hits: 0,
            misses: 0,
        }
    }

    /// Cache sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Page colors: how many distinct sets one page's lines span groups of
    /// (`sets × line / page`), the quantity page coloring manages.
    pub fn num_colors(&self) -> u64 {
        (self.num_sets * self.line_bytes / PAGE_SIZE).max(1)
    }

    /// The color of a physical frame.
    pub fn color_of(&self, pfn: Pfn) -> u64 {
        pfn.0 % self.num_colors()
    }

    /// Accesses a physical address; returns whether it hit.
    pub fn access(&mut self, pa: PhysAddr) -> bool {
        let line = pa.0 / self.line_bytes;
        let set = (line % self.num_sets) as usize;
        if self.cache.lookup(set, line).is_some() {
            self.hits += 1;
            true
        } else {
            self.cache.insert(set, line, ());
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Frame-placement policies for the coloring experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// First-fit sequential frames (colors rotate naturally).
    Sequential,
    /// Classic page coloring: frame color matches the virtual page color.
    Colored,
    /// The pathology coloring exists to prevent: every frame shares one
    /// color, so all pages contend for the same cache sets.
    Pathological,
    /// Mosaic's hashed placement (random in expectation).
    Mosaic,
}

impl Placement {
    /// All policies, in the order the driver prints.
    pub const ALL: [Placement; 4] = [
        Placement::Sequential,
        Placement::Colored,
        Placement::Pathological,
        Placement::Mosaic,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Placement::Sequential => "Sequential frames",
            Placement::Colored => "Page coloring",
            Placement::Pathological => "Pathological (one color)",
            Placement::Mosaic => "Mosaic (hashed)",
        }
    }
}

/// Result of one coloring run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColoringResult {
    /// The placement policy.
    pub placement: Placement,
    /// Data-cache miss rate over the workload.
    pub miss_rate: f64,
    /// Distinct colors the mapped frames used.
    pub colors_used: u64,
}

/// Runs `workload` over a physically-indexed cache with frames assigned
/// by `placement`, returning the cache behaviour.
pub fn run_coloring(
    placement: Placement,
    cache_bytes: u64,
    ways: usize,
    workload: &mut dyn Workload,
    seed: u64,
) -> ColoringResult {
    let mut cache = DataCache::new(cache_bytes, ways, 64);
    let colors = cache.num_colors();
    let mut rng = SplitMix64::new(seed);
    let mut map: HashMap<u64, Pfn> = HashMap::new();
    // Size the mosaic pool at a realistic ~77 % occupancy: cache color is
    // `pfn % colors`, and with 64-frame buckets the color correlates with
    // the slot index, so a nearly-empty pool (all pages in the first few
    // slots of their buckets) would cluster colors — see the
    // `low_occupancy_clusters_colors` test and EXPERIMENTS.md.
    let footprint_pages = workload.meta().footprint_bytes.div_ceil(PAGE_SIZE) as usize;
    let mut mosaic = MosaicMemory::new(
        MemoryLayout::new(IcebergConfig::default())
            .with_at_least_frames((footprint_pages * 13 / 10).max(512)),
        seed,
    );
    let mut next_seq = 0u64;
    let mut per_color_cursor: HashMap<u64, u64> = HashMap::new();
    let mut used = std::collections::HashSet::new();
    let mut now = 0u64;

    workload.run(&mut |a| {
        now += 1;
        let vpn = a.addr.vpn();
        let pfn = *map.entry(vpn.0).or_insert_with(|| match placement {
            Placement::Sequential => {
                let p = Pfn(next_seq);
                next_seq += 1;
                p
            }
            Placement::Colored => {
                // Frame color == virtual page color; frames within a
                // color assigned upward in strides of `colors`.
                let color = vpn.0 % colors;
                let row = per_color_cursor.entry(color).or_insert(0);
                let p = Pfn(color + *row * colors);
                *row += 1;
                p
            }
            Placement::Pathological => {
                // All frames in color 0: the contention coloring prevents.
                let row = per_color_cursor.entry(0).or_insert(0);
                let p = Pfn(*row * colors);
                *row += 1;
                p
            }
            Placement::Mosaic => {
                let key = PageKey::new(Asid::new(1), vpn);
                mosaic.access(key, AccessKind::Store, now);
                mosaic.resident_pfn(key).expect("just mapped")
            }
        });
        used.insert(cache.color_of(pfn));
        let _ = rng.next_u64(); // keep streams comparable across policies
        cache.access(pfn.with_offset(a.addr.page_offset()));
    });

    ColoringResult {
        placement,
        miss_rate: cache.miss_rate(),
        colors_used: used.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_workloads::{Gups, GupsConfig, XsBench, XsBenchConfig};

    #[test]
    fn cache_geometry() {
        // 2 MiB, 8-way, 64 B lines: 4096 sets, 64 colors.
        let c = DataCache::new(2 << 20, 8, 64);
        assert_eq!(c.num_sets(), 4096);
        assert_eq!(c.num_colors(), 64);
    }

    #[test]
    fn line_granularity_hits() {
        let mut c = DataCache::new(1 << 16, 4, 64);
        assert!(!c.access(PhysAddr(128)));
        assert!(c.access(PhysAddr(129)));
        assert!(c.access(PhysAddr(191)));
        assert!(!c.access(PhysAddr(192)), "next line is cold");
    }

    #[test]
    fn capacity_conflicts_in_one_set() {
        // 4-way cache: five lines mapping to the same set overflow it.
        let mut c = DataCache::new(1 << 14, 4, 64); // 64 sets
        let stride = 64 * 64; // same set, different tags
        for i in 0..5u64 {
            c.access(PhysAddr(i * stride));
        }
        assert!(!c.access(PhysAddr(0)), "LRU line was evicted");
    }

    #[test]
    fn pathological_placement_thrashes_where_others_do_not() {
        // Working set: 96 pages, one line each, streamed repeatedly.
        // Cache: 256 KiB 4-way => 1024 sets, 16 colors; per-color capacity
        // is 4 ways x 64 sets-per-page-span... enough for 96 pages spread
        // over 16 colors, catastrophic when all 96 share one color.
        let make = || {
            Gups::new(
                GupsConfig {
                    table_bytes: 96 * 4096,
                    updates: 40_000,
                },
                9,
            )
        };
        let run = |p| run_coloring(p, 256 << 10, 4, &mut make(), 5);
        let seq = run(Placement::Sequential);
        let colored = run(Placement::Colored);
        let bad = run(Placement::Pathological);
        let mosaic = run(Placement::Mosaic);

        assert_eq!(bad.colors_used, 1);
        assert!(
            bad.miss_rate > seq.miss_rate * 2.0,
            "pathology not visible: {bad:?} vs {seq:?}"
        );
        // The §5.3 question: hashed placement behaves like coloring in
        // expectation.
        assert!(
            mosaic.miss_rate < bad.miss_rate / 2.0,
            "mosaic {mosaic:?} vs pathological {bad:?}"
        );
        assert!(
            mosaic.miss_rate < colored.miss_rate * 1.5 + 0.02,
            "mosaic {mosaic:?} vs colored {colored:?}"
        );
    }

    #[test]
    fn mosaic_spreads_colors_at_realistic_load() {
        // At ~77 % pool occupancy the bucket slots fill deep enough that
        // `pfn % 64` covers most of the color space.
        let mut w = XsBench::new(XsBenchConfig::at_scale(0), 3);
        let r = run_coloring(Placement::Mosaic, 2 << 20, 8, &mut w, 7);
        assert!(r.colors_used > 40, "only {} colors", r.colors_used);
    }

    #[test]
    fn low_occupancy_clusters_colors() {
        // The reproduction's own finding (§5.3 follow-up): with 64-frame
        // buckets, color = pfn % 64 correlates with the *slot index*, and
        // a nearly-empty pool packs pages into the first slots of their
        // buckets — clustering cache colors. (At the high utilizations
        // Mosaic targets, the effect disappears; see the test above.)
        let mut w = Gups::new(
            GupsConfig {
                table_bytes: 96 * 4096,
                updates: 5_000,
            },
            9,
        );
        let cache = DataCache::new(2 << 20, 8, 64);
        let mut mosaic = MosaicMemory::new(
            // A huge pool: ~2 % occupancy.
            MemoryLayout::new(IcebergConfig::default()).with_at_least_frames(8192),
            3,
        );
        let mut used = std::collections::HashSet::new();
        let mut now = 0;
        w.run(&mut |a| {
            now += 1;
            let key = PageKey::new(Asid::new(1), a.addr.vpn());
            mosaic.access(key, AccessKind::Store, now);
            let pfn = mosaic.resident_pfn(key).unwrap();
            used.insert(cache.color_of(pfn));
        });
        assert!(
            used.len() < 32,
            "expected slot-index color clustering, got {} colors",
            used.len()
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        DataCache::new(1000, 4, 64);
    }
}
