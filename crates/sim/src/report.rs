//! Plain-text table rendering for experiment output.
//!
//! The experiment binaries print paper-style tables; this keeps the
//! formatting in one place (fixed-width ASCII with a header rule, the way
//! artifact scripts usually emit CSV-adjacent summaries).

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use mosaic_sim::report::Table;
///
/// let mut t = Table::new(vec!["workload".into(), "misses".into()]);
/// t.row(vec!["GUPS".into(), "123".into()]);
/// let text = t.render();
/// assert!(text.contains("workload"));
/// assert!(text.contains("GUPS"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Self {
            header,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_string());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned ASCII text.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".,%+-±x".contains(c));
                if numeric && !cell.is_empty() {
                    line.push_str(&" ".repeat(widths[i] - cell.len()));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(widths[i] - cell.len()));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (the artifact's `process.sh` output format).
    pub fn render_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

pub use mosaic_obs::fmt::{fmt_pct, fmt_ratio};

/// `num / den` guarded against an empty stream: `0.0` when `den == 0`
/// instead of NaN/infinity leaking into reports.
///
/// Delegates to the shared guard in [`mosaic_obs::fmt`] so every crate
/// formats rates identically.
pub fn safe_ratio(num: u64, den: u64) -> f64 {
    mosaic_obs::fmt::safe_ratio(num, den)
}

/// Formats `num / den` as a percentage with one decimal, or `--` when the
/// denominator is zero (an empty stream has no meaningful rate).
///
/// Delegates to [`mosaic_obs::fmt::fmt_pct`].
pub fn percent_or_dash(num: u64, den: u64) -> String {
    fmt_pct(num, den)
}

/// Formats a count with thousands separators (`1234567` → `1,234,567`).
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a count the way Figure 6's axis labels do (`107M`, `940K`).
pub fn humanize(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "value".into()]);
        t.row(vec!["xx".into(), "1".into()]);
        t.row(vec!["y".into(), "22222".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines have the same column start for col 2.
        assert!(lines[2].starts_with("xx"));
        assert!(lines[3].starts_with("y"));
    }

    #[test]
    fn title_is_prepended() {
        let t = Table::new(vec!["c".into()]).with_title("Table 9: stuff");
        assert!(t.render().starts_with("Table 9: stuff\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x,y".into(), "2".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\",2"));
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(1234567), "1,234,567");
    }

    #[test]
    fn guarded_rates() {
        assert_eq!(safe_ratio(3, 4), 0.75);
        assert_eq!(safe_ratio(3, 0), 0.0);
        assert_eq!(safe_ratio(0, 0), 0.0);
        assert_eq!(percent_or_dash(1, 8), "12.5%");
        assert_eq!(percent_or_dash(0, 0), "--");
    }

    #[test]
    fn humanized_counts() {
        assert_eq!(humanize(5), "5");
        assert_eq!(humanize(53_000), "53K");
        assert_eq!(humanize(1_500_000), "1.5M");
        assert_eq!(humanize(107_000_000), "107M");
    }
}
