//! The fragmentation experiment: the paper's *motivation* made measurable.
//!
//! §1 argues that contiguity-based reach techniques — transparent huge
//! pages, TLB coalescing — lose their gains when physical memory is
//! fragmented (citing Zhu et al.'s Redis result: 2 MiB pages drop from
//! +29 % to −11 % at 50 % fragmentation), while mosaic pages need no
//! contiguity at all. This module pre-fragments physical memory with
//! immovable filler pages and runs one workload through four designs:
//!
//! * **Vanilla-4K** — conventional TLB, base pages only;
//! * **THP** — conventional TLB; each 2 MiB virtual region is promoted to
//!   a huge mapping iff an aligned 512-frame free run still exists;
//! * **CoLT** — coalescing TLB packing whatever physical contiguity the
//!   first-fit allocator happens to produce;
//! * **Mosaic-4** — hash-constrained allocation; contiguity-free.

use mosaic_hash::SplitMix64;
use mosaic_mem::{
    AccessKind, Asid, IcebergConfig, MemoryLayout, MemoryManager, MosaicMemory, PageKey, Pfn,
    Vpn, PAGE_SIZE,
};
use mosaic_mmu::{
    Arity, Associativity, CoalescedTlb, MosaicLookup, MosaicTlb, TlbConfig, Toc, VanillaTlb,
};
use mosaic_workloads::Workload;
use std::collections::{BTreeSet, HashMap, HashSet};

const ASID: Asid = Asid(1);

/// Frames per 2 MiB huge page.
const HUGE_SPAN: u64 = 512;

/// Fragmentation-sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragConfig {
    /// TLB entries for every design.
    pub tlb_entries: usize,
    /// TLB associativity for every design.
    pub associativity: Associativity,
    /// CoLT window and mosaic arity (kept equal for a fair fight).
    pub span: usize,
    /// Fraction of physical frames pre-occupied by immovable filler.
    pub fragmentation: f64,
    /// Run seed.
    pub seed: u64,
}

impl FragConfig {
    /// A moderate default: 256-entry 8-way TLBs, span 4.
    pub fn new(fragmentation: f64, seed: u64) -> Self {
        assert!(
            (0.0..0.95).contains(&fragmentation),
            "fragmentation must be in [0, 0.95)"
        );
        Self {
            tlb_entries: 256,
            associativity: Associativity::Ways(8),
            span: 4,
            fragmentation,
            seed,
        }
    }
}

/// Miss counts (and contiguity diagnostics) for one fragmentation level.
#[derive(Debug, Clone, PartialEq)]
pub struct FragResult {
    /// The configured fragmentation level.
    pub fragmentation: f64,
    /// Conventional TLB, 4 KiB pages only.
    pub vanilla_misses: u64,
    /// Conventional TLB with opportunistic 2 MiB promotion.
    pub thp_misses: u64,
    /// Coalescing TLB over the 4 KiB allocations.
    pub colt_misses: u64,
    /// Mosaic TLB (hash-constrained allocation).
    pub mosaic_misses: u64,
    /// 2 MiB regions the THP world managed to promote / total regions.
    pub huge_formed: u64,
    /// Total 2 MiB virtual regions the workload touched.
    pub huge_regions: u64,
    /// Mean translations packed per resident CoLT entry at the end.
    pub colt_mean_pack: f64,
    /// Workload accesses driven.
    pub accesses: u64,
}

/// An address-ordered first-fit 4 KiB frame allocator over a fragmented
/// pool (the buddy-world substrate vanilla/THP/CoLT allocate from).
#[derive(Debug, Clone)]
struct FirstFitPool {
    free: BTreeSet<u64>,
    /// 2 MiB blocks with every frame still free (for THP promotion).
    free_blocks: HashSet<u64>,
}

/// Granularity of filler allocations: real fragmentation is clustered
/// (the buddy allocator hands out runs), so filler occupies contiguous
/// 64-frame chunks rather than single random pages. Page-granular random
/// filler would annihilate every 2 MiB block at ~5 % fragmentation,
/// which is the *worst* case, not the common one.
const FILLER_CHUNK: u64 = 64;

impl FirstFitPool {
    /// Builds a pool of `frames` frames with `filler` of them pre-occupied
    /// by immovable chunk-granular filler.
    fn new(frames: u64, filler: u64, rng: &mut SplitMix64) -> Self {
        let mut free: BTreeSet<u64> = (0..frames).collect();
        let mut occupied = 0;
        let chunks = frames / FILLER_CHUNK;
        // ~70 % of filler in 64-frame chunks (buddy-style long-lived
        // allocations), ~30 % as scattered small allocations that break
        // up the remaining runs — the mixed size distribution real
        // fragmentation studies report.
        let chunked_target = filler * 7 / 10;
        while occupied + FILLER_CHUNK <= chunked_target {
            let base = rng.next_below(chunks) * FILLER_CHUNK;
            let taken: Vec<u64> = (base..base + FILLER_CHUNK)
                .filter(|f| free.contains(f))
                .collect();
            if taken.is_empty() {
                continue;
            }
            for f in taken {
                free.remove(&f);
                occupied += 1;
            }
        }
        // Top up the remainder page-granularly.
        while occupied < filler {
            let f = rng.next_below(frames);
            if free.remove(&f) {
                occupied += 1;
            }
        }
        let mut free_blocks = HashSet::new();
        for block in 0..frames / HUGE_SPAN {
            let base = block * HUGE_SPAN;
            if (base..base + HUGE_SPAN).all(|f| free.contains(&f)) {
                free_blocks.insert(block);
            }
        }
        Self { free, free_blocks }
    }

    /// Allocates the lowest free frame.
    fn alloc_base(&mut self) -> Pfn {
        let f = *self.free.iter().next().expect("pool exhausted");
        self.free.remove(&f);
        self.free_blocks.remove(&(f / HUGE_SPAN));
        Pfn(f)
    }

    /// Tries to allocate an aligned 512-frame run (a huge page).
    fn alloc_huge(&mut self) -> Option<Pfn> {
        let &block = self.free_blocks.iter().next()?;
        self.free_blocks.remove(&block);
        let base = block * HUGE_SPAN;
        for f in base..base + HUGE_SPAN {
            self.free.remove(&f);
        }
        Some(Pfn(base))
    }
}

/// Runs one workload at one fragmentation level through all four designs.
///
/// # Panics
///
/// Panics if the workload over-commits the (auto-sized) pools.
pub fn run_frag(cfg: &FragConfig, workload: &mut dyn Workload) -> FragResult {
    let meta = workload.meta();
    let footprint = meta.footprint_bytes.div_ceil(PAGE_SIZE) + 8;
    // Pool sized so the free portion holds the footprint with headroom,
    // rounded up to whole 2 MiB blocks (plus one) so an unfragmented pool
    // can promote every region the footprint spans.
    let raw = ((footprint as f64) * 1.10 / (1.0 - cfg.fragmentation)) as u64;
    let frames = (raw.div_ceil(HUGE_SPAN) + 1) * HUGE_SPAN;
    let filler = (frames as f64 * cfg.fragmentation) as u64;
    let mut rng = SplitMix64::new(cfg.seed);

    // Buddy worlds: one 4 KiB-only pool (vanilla + CoLT), one THP pool.
    let mut pool4k = FirstFitPool::new(frames, filler, &mut rng);
    let mut rng_thp = SplitMix64::new(cfg.seed); // identical filler pattern
    let mut pool_thp = FirstFitPool::new(frames, filler, &mut rng_thp);

    // Mosaic world: a hashed pool with the same filler *load*.
    let mosaic_frames = (((footprint + filler) as f64) * 1.12) as usize;
    let layout = MemoryLayout::new(IcebergConfig::default())
        .with_at_least_frames(mosaic_frames.max(1024));
    let mut mosaic_mem = MosaicMemory::new(layout, cfg.seed ^ 0xF11);
    {
        // Filler pages under other ASIDs, hashed like any other page.
        let mut placed = 0u64;
        let mut k = 0u64;
        while placed < filler {
            mosaic_mem.access(
                PageKey::new(Asid(999), Vpn(k)),
                AccessKind::Store,
                placed + 1,
            );
            k += 1;
            placed += 1;
        }
    }

    let tlb_cfg = TlbConfig::new(cfg.tlb_entries, cfg.associativity);
    let arity = Arity::new(cfg.span);
    let mut vanilla = VanillaTlb::new(tlb_cfg);
    let mut thp = VanillaTlb::new(tlb_cfg);
    let mut colt = CoalescedTlb::new(tlb_cfg, cfg.span);
    let mut mosaic_tlb = MosaicTlb::new(tlb_cfg, arity);

    // Page tables (mappings) per world.
    let mut map4k: HashMap<u64, Pfn> = HashMap::new();
    let mut thp_huge: HashMap<u64, Option<Pfn>> = HashMap::new(); // region -> promoted base
    let mut map_thp_base: HashMap<u64, Pfn> = HashMap::new();
    let mut accesses = 0u64;
    let mut now = filler;
    // CoLT neighbor-window scratch, reused across misses instead of
    // allocating a fresh Vec per miss on the hot path.
    let mut neighbors: Vec<Option<Pfn>> = Vec::with_capacity(cfg.span);

    workload.run(&mut |a| {
        accesses += 1;
        now += 1;
        let vpn = a.addr.vpn();

        // -- demand mapping, all worlds --
        let pfn4k = *map4k
            .entry(vpn.0)
            .or_insert_with(|| pool4k.alloc_base());
        let region = vpn.0 / HUGE_SPAN;
        let huge_base = *thp_huge
            .entry(region)
            .or_insert_with(|| pool_thp.alloc_huge());
        let thp_translation: (bool, Pfn) = match huge_base {
            Some(base) => (true, base),
            None => (
                false,
                *map_thp_base
                    .entry(vpn.0)
                    .or_insert_with(|| pool_thp.alloc_base()),
            ),
        };
        let key = PageKey::new(ASID, vpn);
        mosaic_mem.access(key, a.kind, now);
        assert_eq!(
            mosaic_mem.stats().evictions(),
            0,
            "mosaic pool over-committed; widen headroom"
        );

        // -- vanilla 4K --
        if !vanilla.lookup(ASID, vpn).is_hit() {
            vanilla.fill_base(ASID, vpn, pfn4k);
        }
        // -- THP --
        if !thp.lookup(ASID, vpn).is_hit() {
            match thp_translation {
                (true, base) => thp.fill_huge(ASID, vpn, base),
                (false, pfn) => thp.fill_base(ASID, vpn, pfn),
            }
        }
        // -- CoLT --
        if !colt.lookup(ASID, vpn).is_hit() {
            let window_base = vpn.0 / cfg.span as u64 * cfg.span as u64;
            neighbors.clear();
            neighbors
                .extend((0..cfg.span as u64).map(|j| map4k.get(&(window_base + j)).copied()));
            colt.fill(ASID, vpn, pfn4k, &neighbors);
        }
        // -- Mosaic --
        match mosaic_tlb.lookup(ASID, vpn) {
            MosaicLookup::Hit(_) => {}
            MosaicLookup::SubMiss => {
                let cpfn = mosaic_mem.cpfn_of(key).expect("just mapped");
                mosaic_tlb.fill_sub(ASID, vpn, cpfn);
            }
            MosaicLookup::Miss => {
                let (mvpn, _) = arity.split(vpn);
                let mut toc = Toc::new(arity, mosaic_mem.codec().unmapped());
                for off in 0..arity.get() {
                    let k = PageKey::new(ASID, arity.vpn_at(mvpn, off));
                    if let Some(c) = mosaic_mem.cpfn_of(k) {
                        toc.set(off, c);
                    }
                }
                mosaic_tlb.fill_toc(ASID, vpn, toc);
            }
        }
    });

    let huge_formed = thp_huge.values().filter(|v| v.is_some()).count() as u64;
    FragResult {
        fragmentation: cfg.fragmentation,
        vanilla_misses: vanilla.stats().misses,
        thp_misses: thp.stats().misses,
        colt_misses: colt.stats().misses,
        mosaic_misses: mosaic_tlb.stats().misses,
        huge_formed,
        huge_regions: thp_huge.len() as u64,
        colt_mean_pack: colt.mean_pack(),
        accesses,
    }
}

/// Runs a whole fragmentation sweep — one [`run_frag`] per config — on
/// `jobs` threads. The workload's trace is recorded once and every
/// level replays the same stream, so results are identical to serial
/// per-level runs (workload generation is deterministic) while the
/// generation cost is paid once instead of per level.
///
/// # Panics
///
/// Panics if a workload over-commits the (auto-sized) pools, or if the
/// recorded trace cannot be spilled/replayed.
pub fn run_frag_jobs(
    cfgs: &[FragConfig],
    workload: &mut dyn Workload,
    jobs: usize,
) -> Vec<FragResult> {
    let trace = crate::trace_buffer::TraceBuffer::record(workload)
        .expect("failed to record fragmentation trace");
    crate::parallel::run_cells(jobs, cfgs.to_vec(), |_, cfg| {
        let mut replay = trace.replayer();
        let result = run_frag(&cfg, &mut replay);
        assert!(
            replay.error().is_none(),
            "fragmentation trace replay failed: {:?}",
            replay.into_error()
        );
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_workloads::{BTreeConfig, BTreeWorkload};

    fn workload() -> BTreeWorkload {
        // ~1800 node pages: beyond even the coalesced/mosaic 4x reach of
        // the 256-entry test TLB, so capacity misses dominate.
        BTreeWorkload::new(
            BTreeConfig {
                num_keys: 300_000,
                num_lookups: 20_000,
            },
            5,
        )
    }

    fn run_at(frag: f64) -> FragResult {
        run_frag(&FragConfig::new(frag, 11), &mut workload())
    }

    #[test]
    fn unfragmented_contiguity_techniques_shine() {
        let r = run_at(0.0);
        // All regions promote; THP nearly eliminates misses.
        assert_eq!(r.huge_formed, r.huge_regions);
        assert!(r.thp_misses * 10 < r.vanilla_misses, "thp {:?}", r);
        // CoLT packs nearly the full window.
        assert!(r.colt_mean_pack > 3.0, "pack {}", r.colt_mean_pack);
        assert!(r.colt_misses < r.vanilla_misses);
    }

    #[test]
    fn fragmentation_destroys_thp_but_not_mosaic() {
        let clean = run_at(0.0);
        let dirty = run_at(0.6);
        // THP promotion collapses.
        assert!(dirty.huge_formed * 4 < dirty.huge_regions.max(1));
        assert!(
            dirty.thp_misses > clean.thp_misses * 3,
            "thp {} -> {}",
            clean.thp_misses,
            dirty.thp_misses
        );
        // CoLT's packing degrades.
        assert!(dirty.colt_mean_pack < clean.colt_mean_pack - 0.5);
        // Mosaic's misses stay flat (within noise).
        let ratio = dirty.mosaic_misses as f64 / clean.mosaic_misses.max(1) as f64;
        assert!(
            (0.8..1.2).contains(&ratio),
            "mosaic {} -> {}",
            clean.mosaic_misses,
            dirty.mosaic_misses
        );
    }

    #[test]
    fn all_designs_see_every_access() {
        let r = run_at(0.3);
        assert!(r.accesses > 0);
        // Vanilla is the weakest on this tree workload.
        assert!(r.mosaic_misses < r.vanilla_misses);
    }

    #[test]
    #[should_panic(expected = "fragmentation must be in")]
    fn bad_fragmentation_panics() {
        FragConfig::new(0.99, 1);
    }
}
