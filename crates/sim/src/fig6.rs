//! The Figure 6 experiment: TLB misses across workloads, mosaic arity,
//! and TLB associativity.

use crate::dual::{DualSim, KernelConfig};
use crate::report::{humanize, Table};
use mosaic_mem::PAGE_SIZE;
use mosaic_mmu::{Arity, Associativity, TlbStats};
use mosaic_workloads::Workload;

/// Which TLB design a result row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbKind {
    /// The conventional VPN → PFN TLB.
    Vanilla,
    /// A mosaic TLB with the given arity.
    Mosaic(Arity),
}

impl core::fmt::Display for TlbKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TlbKind::Vanilla => write!(f, "Vanilla"),
            TlbKind::Mosaic(a) => write!(f, "{a}"),
        }
    }
}

/// Figure 6 sweep parameters.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// TLB entries (paper: 1024).
    pub tlb_entries: usize,
    /// Associativities to sweep (paper: direct, 2, 4, 8, full).
    pub associativities: Vec<Associativity>,
    /// Mosaic arities to sweep (paper: 4–64).
    pub arities: Vec<Arity>,
    /// Kernel-access model; `None` disables the huge-page artifact.
    pub kernel: Option<KernelConfig>,
    /// Simulation seed.
    pub seed: u64,
}

impl Fig6Config {
    /// The full paper sweep: 1024 entries, associativity {1, 2, 4, 8,
    /// full}, arities {4, 8, 16, 32, 64}, kernel model on.
    pub fn paper() -> Self {
        Self {
            tlb_entries: 1024,
            associativities: Associativity::FIGURE6_SWEEP.to_vec(),
            arities: [4, 8, 16, 32, 64].map(Arity::new).to_vec(),
            kernel: Some(KernelConfig::default()),
            seed: 0xF16_6EED,
        }
    }

    /// A tiny grid for unit tests and doctests.
    pub fn quick_test() -> Self {
        Self {
            tlb_entries: 64,
            associativities: vec![Associativity::Ways(1), Associativity::Full],
            arities: vec![Arity::new(4)],
            kernel: None,
            seed: 42,
        }
    }
}

/// One cell of Figure 6: a (workload, associativity, TLB design) triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig6Row {
    /// Workload name.
    pub workload: String,
    /// TLB associativity.
    pub assoc: Associativity,
    /// Which design.
    pub kind: TlbKind,
    /// Full TLB counters (misses are Figure 6's y-axis).
    pub stats: TlbStats,
}

impl Fig6Row {
    /// The quantity Figure 6 plots.
    pub fn misses(&self) -> u64 {
        self.stats.misses
    }
}

/// Runs the sweep for one workload: a single pass over its trace feeds
/// every (associativity × design) TLB simultaneously.
pub fn run_workload(cfg: &Fig6Config, workload: &mut dyn Workload) -> Vec<Fig6Row> {
    run_workload_observed(cfg, workload, &mosaic_obs::ObsHandle::noop(), 0)
}

/// [`run_workload`] with metric export: every TLB instance and page-table
/// walker registers on `obs` (see [`DualSim::set_obs`] for the labeling),
/// and — when `obs_interval > 0` — the registry is snapshotted every
/// `obs_interval` user accesses, producing the per-interval miss-rate
/// series. With a noop handle this is exactly [`run_workload`].
pub fn run_workload_observed(
    cfg: &Fig6Config,
    workload: &mut dyn Workload,
    obs: &mosaic_obs::ObsHandle,
    obs_interval: u64,
) -> Vec<Fig6Row> {
    let meta = workload.meta();
    let footprint_pages = meta.footprint_bytes.div_ceil(PAGE_SIZE) + 16;
    let mut sim = DualSim::new(
        cfg.tlb_entries,
        &cfg.associativities,
        &cfg.arities,
        footprint_pages,
        cfg.kernel,
        cfg.seed,
    );
    if obs.is_enabled() {
        sim.set_obs(obs);
        obs.event(
            0,
            "drive.begin",
            &[("workload", mosaic_obs::Value::from(meta.name))],
        );
    }
    workload.run(&mut |a| {
        sim.access(a);
        if obs_interval > 0 && sim.user_accesses().is_multiple_of(obs_interval) {
            sim.publish_obs();
            obs.snapshot(sim.user_accesses());
        }
    });
    if obs.is_enabled() {
        sim.publish_obs();
        obs.snapshot(sim.user_accesses());
    }
    sim.results()
        .into_iter()
        .map(|(assoc, arity, stats)| Fig6Row {
            workload: meta.name.to_string(),
            assoc,
            kind: arity.map_or(TlbKind::Vanilla, TlbKind::Mosaic),
            stats,
        })
        .collect()
}

/// Renders one workload's rows as the paper lays Figure 6 out: one row
/// per design, one column per associativity.
pub fn render(workload: &str, rows: &[Fig6Row]) -> Table {
    let mut assocs: Vec<Associativity> = Vec::new();
    for r in rows {
        if !assocs.contains(&r.assoc) {
            assocs.push(r.assoc);
        }
    }
    let mut kinds: Vec<TlbKind> = Vec::new();
    for r in rows {
        if !kinds.contains(&r.kind) {
            kinds.push(r.kind);
        }
    }
    let mut header = vec!["TLB design".to_string()];
    header.extend(assocs.iter().map(ToString::to_string));
    let mut table =
        Table::new(header).with_title(&format!("Figure 6: TLB misses — {workload}"));
    for kind in kinds {
        let mut cells = vec![kind.to_string()];
        for &assoc in &assocs {
            let cell = rows
                .iter()
                .find(|r| r.kind == kind && r.assoc == assoc)
                .map_or_else(|| "-".to_string(), |r| humanize(r.misses()));
            cells.push(cell);
        }
        table.row(cells);
    }
    table
}

/// The headline claim of §4.1 in checkable form: per associativity, the
/// reduction of Mosaic-`a` misses relative to vanilla, in percent
/// (positive = mosaic wins).
pub fn reduction_percent(rows: &[Fig6Row], assoc: Associativity, arity: Arity) -> Option<f64> {
    let vanilla = rows
        .iter()
        .find(|r| r.assoc == assoc && r.kind == TlbKind::Vanilla)?
        .misses();
    let mosaic = rows
        .iter()
        .find(|r| r.assoc == assoc && r.kind == TlbKind::Mosaic(arity))?
        .misses();
    if vanilla == 0 {
        return None;
    }
    Some((1.0 - mosaic as f64 / vanilla as f64) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_workloads::{Gups, GupsConfig};

    fn quick_rows() -> Vec<Fig6Row> {
        let cfg = Fig6Config::quick_test();
        let mut w = Gups::new(
            GupsConfig {
                table_bytes: 1 << 20,
                updates: 20_000,
            },
            5,
        );
        run_workload(&cfg, &mut w)
    }

    #[test]
    fn grid_is_complete() {
        let rows = quick_rows();
        assert_eq!(rows.len(), 2 * 2); // 2 assoc x (vanilla + 1 arity)
        for r in &rows {
            // 20 000 updates x 2 + 256 init stores.
            assert_eq!(r.stats.accesses, 40_256);
            assert!(r.misses() <= r.stats.accesses);
        }
    }

    #[test]
    fn full_assoc_beats_direct_for_vanilla() {
        let rows = quick_rows();
        let direct = rows
            .iter()
            .find(|r| r.kind == TlbKind::Vanilla && r.assoc == Associativity::Ways(1))
            .unwrap()
            .misses();
        let full = rows
            .iter()
            .find(|r| r.kind == TlbKind::Vanilla && r.assoc == Associativity::Full)
            .unwrap()
            .misses();
        assert!(full <= direct, "full {full} vs direct {direct}");
    }

    #[test]
    fn render_has_all_cells() {
        let rows = quick_rows();
        let text = render("GUPS", &rows).render();
        assert!(text.contains("Vanilla"));
        assert!(text.contains("Mosaic-4"));
        assert!(text.contains("Direct"));
        assert!(text.contains("Full"));
    }

    #[test]
    fn reduction_percent_is_computable() {
        let rows = quick_rows();
        let red = reduction_percent(&rows, Associativity::Full, Arity::new(4));
        assert!(red.is_some());
        assert!(red.unwrap() <= 100.0);
    }
}
