//! The Figure 6 experiment: TLB misses across workloads, mosaic arity,
//! and TLB associativity.
//!
//! Two execution engines produce byte-identical results:
//!
//! * the **serial** engine ([`run_workload`]) drives one [`DualSim`]
//!   whose grid of TLBs shares a single pass over the trace;
//! * the **parallel** engine ([`run_workload_jobs`]) records the
//!   combined user+kernel reference stream once into a
//!   [`TraceBuffer`], resolves all demand mapping in that single
//!   reference pass, then fans the (associativity × design) cells out
//!   across threads — each cell replaying the shared stream against its
//!   own TLB and page-table walker. Results are collected in the serial
//!   engine's instance order, so output is identical at any `--jobs`.

use crate::dual::{reference_os, DualSim, KernelConfig, KernelInjector};
use crate::os::OsModel;
use crate::parallel::run_cells;
use crate::report::{humanize, Table};
use crate::trace_buffer::{TraceBuffer, TraceBufferBuilder};
use mosaic_mem::{AccessKind, Asid, Cpfn, Pfn, VirtAddr, PAGE_SIZE};
use mosaic_mmu::{
    Arity, Associativity, MosaicLookup, MosaicTlb, PageWalker, RadixTable, TlbConfig, TlbStats,
    Toc, VanillaTlb,
};
use mosaic_workloads::{Access, Workload};
use std::collections::HashMap;

/// Which TLB design a result row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbKind {
    /// The conventional VPN → PFN TLB.
    Vanilla,
    /// A mosaic TLB with the given arity.
    Mosaic(Arity),
}

impl core::fmt::Display for TlbKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TlbKind::Vanilla => write!(f, "Vanilla"),
            TlbKind::Mosaic(a) => write!(f, "{a}"),
        }
    }
}

/// Figure 6 sweep parameters.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// TLB entries (paper: 1024).
    pub tlb_entries: usize,
    /// Associativities to sweep (paper: direct, 2, 4, 8, full).
    pub associativities: Vec<Associativity>,
    /// Mosaic arities to sweep (paper: 4–64).
    pub arities: Vec<Arity>,
    /// Kernel-access model; `None` disables the huge-page artifact.
    pub kernel: Option<KernelConfig>,
    /// Simulation seed.
    pub seed: u64,
    /// Accesses per [`DualSim::access_batch`] chunk in the serial
    /// engine; `<= 1` selects the scalar per-access loop. Results are
    /// bit-identical either way.
    pub batch: usize,
}

/// Default serial-engine batch: 4096 accesses ≈ 32 KiB of decoded
/// trace, big enough to amortize instance dispatch, small enough to
/// stay cache-resident alongside the TLB arrays.
pub const DEFAULT_BATCH: usize = 4096;

impl Fig6Config {
    /// The full paper sweep: 1024 entries, associativity {1, 2, 4, 8,
    /// full}, arities {4, 8, 16, 32, 64}, kernel model on.
    pub fn paper() -> Self {
        Self {
            tlb_entries: 1024,
            associativities: Associativity::FIGURE6_SWEEP.to_vec(),
            arities: [4, 8, 16, 32, 64].map(Arity::new).to_vec(),
            kernel: Some(KernelConfig::default()),
            seed: 0xF16_6EED,
            batch: DEFAULT_BATCH,
        }
    }

    /// A tiny grid for unit tests and doctests.
    pub fn quick_test() -> Self {
        Self {
            tlb_entries: 64,
            associativities: vec![Associativity::Ways(1), Associativity::Full],
            arities: vec![Arity::new(4)],
            kernel: None,
            seed: 42,
            batch: DEFAULT_BATCH,
        }
    }
}

/// One cell of Figure 6: a (workload, associativity, TLB design) triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig6Row {
    /// Workload name.
    pub workload: String,
    /// TLB associativity.
    pub assoc: Associativity,
    /// Which design.
    pub kind: TlbKind,
    /// Full TLB counters (misses are Figure 6's y-axis).
    pub stats: TlbStats,
}

impl Fig6Row {
    /// The quantity Figure 6 plots.
    pub fn misses(&self) -> u64 {
        self.stats.misses
    }
}

/// Runs the sweep for one workload: a single pass over its trace feeds
/// every (associativity × design) TLB simultaneously.
pub fn run_workload(cfg: &Fig6Config, workload: &mut dyn Workload) -> Vec<Fig6Row> {
    run_workload_observed(cfg, workload, &mosaic_obs::ObsHandle::noop(), 0)
}

/// [`run_workload`] with metric export: every TLB instance and page-table
/// walker registers on `obs` (see [`DualSim::set_obs`] for the labeling),
/// and — when `obs_interval > 0` — the registry is snapshotted every
/// `obs_interval` user accesses, producing the per-interval miss-rate
/// series. With a noop handle this is exactly [`run_workload`].
pub fn run_workload_observed(
    cfg: &Fig6Config,
    workload: &mut dyn Workload,
    obs: &mosaic_obs::ObsHandle,
    obs_interval: u64,
) -> Vec<Fig6Row> {
    let meta = workload.meta();
    let footprint_pages = meta.footprint_bytes.div_ceil(PAGE_SIZE) + 16;
    let mut sim = DualSim::new(
        cfg.tlb_entries,
        &cfg.associativities,
        &cfg.arities,
        footprint_pages,
        cfg.kernel,
        cfg.seed,
    );
    if obs.is_enabled() {
        sim.set_obs(obs);
        obs.event(
            0,
            "drive.begin",
            &[("workload", mosaic_obs::Value::from(meta.name))],
        );
    }
    if cfg.batch <= 1 {
        workload.run(&mut |a| {
            sim.access(a);
            if obs_interval > 0 && sim.user_accesses().is_multiple_of(obs_interval) {
                sim.publish_obs();
                obs.snapshot(sim.user_accesses());
            }
        });
    } else {
        // Buffer the stream into batches, flushing early at every
        // `obs_interval` user-access boundary so counter totals at each
        // snapshot equal the scalar loop's (within a batch only the
        // increment *order* differs, never a boundary total).
        let mut buf: Vec<Access> = Vec::with_capacity(cfg.batch);
        let mut flushed = 0u64;
        workload.run(&mut |a| {
            buf.push(a);
            let at_interval =
                obs_interval > 0 && (flushed + buf.len() as u64).is_multiple_of(obs_interval);
            if at_interval || buf.len() >= cfg.batch {
                sim.access_batch(&buf);
                buf.clear();
                flushed = sim.user_accesses();
                if at_interval {
                    sim.publish_obs();
                    obs.snapshot(sim.user_accesses());
                }
            }
        });
        if !buf.is_empty() {
            sim.access_batch(&buf);
        }
    }
    if obs.is_enabled() {
        sim.publish_obs();
        obs.snapshot(sim.user_accesses());
    }
    sim.results()
        .into_iter()
        .map(|(assoc, arity, stats)| Fig6Row {
            workload: meta.name.to_string(),
            assoc,
            kind: arity.map_or(TlbKind::Vanilla, TlbKind::Mosaic),
            stats,
        })
        .collect()
}

/// One cell of the parallel grid: which TLB design at which
/// associativity. Shared with the attribution experiment
/// ([`crate::attrib`]), whose TLB cells are exactly Figure 6 cells.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CellSpec {
    Vanilla(Associativity),
    Mosaic(Associativity, Arity),
}

/// A cell's private simulation state: its TLB plus its own page-table
/// walker over state derived from the frozen reference [`OsModel`].
enum CellSim<'a> {
    Vanilla {
        tlb: VanillaTlb,
        /// A private walker over a clone of the final vanilla table.
        /// Mapped 4 KiB walks always touch all four levels and the
        /// translations never change after first touch, so walking the
        /// final table reproduces the serial engine's walk counters and
        /// depth histograms exactly.
        walker: PageWalker<Pfn>,
        /// Kernel 2 MiB mappings, shared read-only (huge walks bypass
        /// the radix walker in the serial engine too).
        huge: &'a HashMap<u64, Pfn>,
    },
    Mosaic {
        tlb: MosaicTlb,
        /// An incremental *shadow* page table, grown on each VPN's
        /// first occurrence in the stream. A cell cannot walk the
        /// frozen reference table: a ToC fill caches the leaf's
        /// point-in-time validity, and the fully-populated final ToCs
        /// would turn later sub-entry misses into hits.
        shadow: PageWalker<Toc>,
        arity: Arity,
        sentinel: Cpfn,
        os: &'a OsModel,
    },
}

impl CellSim<'_> {
    /// Feeds one reference through the cell, mirroring
    /// `DualSim::reference` for this single instance.
    fn step(&mut self, asid: Asid, a: Access) {
        let vpn = a.addr.vpn();
        match self {
            CellSim::Vanilla { tlb, walker, huge } => {
                if !tlb.lookup(asid, vpn).is_hit() {
                    if OsModel::is_kernel(vpn) {
                        let idx = mosaic_mmu::arity::huge_index(vpn);
                        let first = *huge.get(&idx).expect("kernel page touched before walk");
                        tlb.fill_huge(asid, vpn, first);
                    } else {
                        let pfn = *walker.walk(vpn.0).expect("page touched before walk");
                        tlb.fill_base(asid, vpn, pfn);
                    }
                }
            }
            CellSim::Mosaic {
                tlb,
                shadow,
                arity,
                sentinel,
                os,
            } => {
                let (mvpn, offset) = arity.split(vpn);
                // First occurrence of this VPN in the stream: mirror the
                // mapping into the shadow table, exactly as the
                // reference pass mapped it (pages are never evicted, so
                // "absent from the shadow" ⟺ "not yet touched").
                let mapped = shadow
                    .table()
                    .get(mvpn.0)
                    .and_then(|toc| toc.get(offset))
                    .is_some();
                if !mapped {
                    let cpfn = os.cpfn_of(vpn).expect("page in stream must be mapped");
                    match shadow.table_mut().get_mut(mvpn.0) {
                        Some(toc) => toc.set(offset, cpfn),
                        None => {
                            let mut toc = Toc::new(*arity, *sentinel);
                            toc.set(offset, cpfn);
                            shadow.table_mut().insert(mvpn.0, toc);
                        }
                    }
                }
                match tlb.lookup(asid, vpn) {
                    MosaicLookup::Hit(_) => {}
                    MosaicLookup::SubMiss => {
                        let cpfn = os.cpfn_of(vpn).expect("touched page must be mapped");
                        tlb.fill_sub(asid, vpn, cpfn);
                    }
                    MosaicLookup::Miss => {
                        let toc = shadow.walk(mvpn.0).expect("page touched before walk");
                        tlb.fill_toc_ref(asid, vpn, toc);
                    }
                }
            }
        }
    }

    fn stats(&self) -> TlbStats {
        match self {
            CellSim::Vanilla { tlb, .. } => *tlb.stats(),
            CellSim::Mosaic { tlb, .. } => *tlb.stats(),
        }
    }
}

/// Runs one cell: replays the shared reference stream against a private
/// TLB + walker, snapshotting its child registry at the recorded
/// positions so merged observability matches a serial run's cadence.
pub(crate) fn run_fig6_cell(
    os: &OsModel,
    trace: &TraceBuffer,
    tlb_entries: usize,
    spec: CellSpec,
    child: &mosaic_obs::ObsHandle,
    snapshots: &[(u64, u64)],
) -> TlbStats {
    let mut sim = match spec {
        CellSpec::Vanilla(assoc) => {
            let mut tlb = VanillaTlb::new(TlbConfig::new(tlb_entries, assoc));
            let mut walker = PageWalker::new(os.vanilla_table().clone());
            if child.is_enabled() {
                let assoc_label = assoc.to_string().to_lowercase();
                tlb.set_obs(child, &format!("vanilla.{assoc_label}"));
                walker.set_obs(child, "vanilla");
            }
            CellSim::Vanilla {
                tlb,
                walker,
                huge: os.vanilla_huge_map(),
            }
        }
        CellSpec::Mosaic(assoc, arity) => {
            let mut tlb = MosaicTlb::new(TlbConfig::new(tlb_entries, assoc), arity);
            let mvpn_bits = 36 - arity.offset_bits();
            let mut shadow = PageWalker::new(RadixTable::new(mvpn_bits, 9));
            if child.is_enabled() {
                let assoc_label = assoc.to_string().to_lowercase();
                tlb.set_obs(child, &format!("mosaic-{}.{assoc_label}", arity.get()));
                shadow.set_obs(child, &format!("mosaic-{}", arity.get()));
            }
            CellSim::Mosaic {
                tlb,
                shadow,
                arity,
                sentinel: os.unmapped_sentinel(),
                os,
            }
        }
    };
    let mut refs = 0u64;
    let mut snap = snapshots.iter().copied().peekable();
    let asid = os.asid();
    // Chunked replay amortizes record decode; stepping stays per-access
    // so snapshot positions land exactly where the serial engine's did.
    trace
        .replay_chunks(&mut |chunk| {
            for &a in chunk {
                sim.step(asid, a);
                refs += 1;
                if snap.peek().is_some_and(|&(r, _)| r == refs) {
                    let (_, user_accesses) = snap.next().expect("peeked position");
                    child.snapshot(user_accesses);
                }
            }
        })
        .expect("reference trace replay failed");
    sim.stats()
}

/// [`run_workload`] on `jobs` threads, byte-identical at any job count.
///
/// `jobs == 1` routes to the serial engine; otherwise the reference
/// stream is recorded once and the grid's cells replay it in parallel.
/// `jobs == 0` uses the machine's available parallelism.
pub fn run_workload_jobs(
    cfg: &Fig6Config,
    workload: &mut dyn Workload,
    jobs: usize,
) -> Vec<Fig6Row> {
    run_workload_observed_jobs(cfg, workload, &mosaic_obs::ObsHandle::noop(), 0, jobs)
}

/// [`run_workload_observed`] on `jobs` threads.
///
/// The reference pass registers the allocator and emits the interval
/// snapshots it can observe (allocator gauges evolve during recording);
/// each cell registers its TLB and walker on a private child registry
/// under the serial engine's labels and snapshots it at the same
/// user-access positions. Children merge into `obs` in cell-index order
/// after the join, so the export is deterministic at any `--jobs` and
/// merged counter totals equal a serial run's.
pub fn run_workload_observed_jobs(
    cfg: &Fig6Config,
    workload: &mut dyn Workload,
    obs: &mosaic_obs::ObsHandle,
    obs_interval: u64,
    jobs: usize,
) -> Vec<Fig6Row> {
    if jobs == 1 {
        return run_workload_observed(cfg, workload, obs, obs_interval);
    }
    let meta = workload.meta();
    let footprint_pages = meta.footprint_bytes.div_ceil(PAGE_SIZE) + 16;
    let kernel_pages = cfg.kernel.map_or(0, |k| k.pages);
    let mut os = reference_os(
        &cfg.arities,
        footprint_pages,
        kernel_pages,
        cfg.seed,
        crate::os::USER_ASID,
    );
    if obs.is_enabled() {
        os.set_obs(obs);
        obs.event(
            0,
            "drive.begin",
            &[("workload", mosaic_obs::Value::from(meta.name))],
        );
    }
    let mut kernel = cfg.kernel.map(|k| KernelInjector::new(k, cfg.seed));

    // Reference pass: record the combined user+kernel stream once while
    // resolving every demand mapping in stream order.
    let mut builder = TraceBufferBuilder::new();
    let mut user_accesses = 0u64;
    let mut refs = 0u64;
    let mut snapshots: Vec<(u64, u64)> = Vec::new();
    workload.run(&mut |a| {
        user_accesses += 1;
        os.touch(a.addr.vpn(), a.kind);
        builder.push(a);
        refs += 1;
        if let Some(injector) = kernel.as_mut() {
            if let Some(kvpn) = injector.after_user_access() {
                os.touch(kvpn, AccessKind::Load);
                builder.push(Access {
                    addr: VirtAddr(kvpn.0 * PAGE_SIZE),
                    kind: AccessKind::Load,
                });
                refs += 1;
            }
        }
        if obs_interval > 0 && user_accesses.is_multiple_of(obs_interval) && obs.is_enabled() {
            snapshots.push((refs, user_accesses));
            os.publish_obs();
            obs.snapshot(user_accesses);
        }
    });
    let trace = builder
        .finish(meta.clone())
        .expect("failed to record reference trace");

    // Fan the grid out: serial instance order (per associativity, the
    // vanilla cell then one mosaic cell per arity).
    let mut inputs: Vec<(CellSpec, mosaic_obs::ObsHandle)> = Vec::new();
    for &assoc in &cfg.associativities {
        inputs.push((CellSpec::Vanilla(assoc), obs.child()));
        for &arity in &cfg.arities {
            inputs.push((CellSpec::Mosaic(assoc, arity), obs.child()));
        }
    }
    let outcomes = run_cells(jobs, inputs, |_, (spec, child)| {
        let stats = run_fig6_cell(&os, &trace, cfg.tlb_entries, spec, &child, &snapshots);
        (spec, stats, child)
    });

    let mut rows = Vec::with_capacity(outcomes.len());
    for (spec, stats, child) in outcomes {
        if obs.is_enabled() {
            obs.merge_from(&child);
        }
        let (assoc, kind) = match spec {
            CellSpec::Vanilla(assoc) => (assoc, TlbKind::Vanilla),
            CellSpec::Mosaic(assoc, arity) => (assoc, TlbKind::Mosaic(arity)),
        };
        rows.push(Fig6Row {
            workload: meta.name.to_string(),
            assoc,
            kind,
            stats,
        });
    }
    if obs.is_enabled() {
        os.publish_obs();
        obs.snapshot(user_accesses);
    }
    rows
}

/// Renders one workload's rows as the paper lays Figure 6 out: one row
/// per design, one column per associativity.
pub fn render(workload: &str, rows: &[Fig6Row]) -> Table {
    let mut assocs: Vec<Associativity> = Vec::new();
    for r in rows {
        if !assocs.contains(&r.assoc) {
            assocs.push(r.assoc);
        }
    }
    let mut kinds: Vec<TlbKind> = Vec::new();
    for r in rows {
        if !kinds.contains(&r.kind) {
            kinds.push(r.kind);
        }
    }
    let mut header = vec!["TLB design".to_string()];
    header.extend(assocs.iter().map(ToString::to_string));
    let mut table =
        Table::new(header).with_title(&format!("Figure 6: TLB misses — {workload}"));
    for kind in kinds {
        let mut cells = vec![kind.to_string()];
        for &assoc in &assocs {
            let cell = rows
                .iter()
                .find(|r| r.kind == kind && r.assoc == assoc)
                .map_or_else(|| "-".to_string(), |r| humanize(r.misses()));
            cells.push(cell);
        }
        table.row(cells);
    }
    table
}

/// The headline claim of §4.1 in checkable form: per associativity, the
/// reduction of Mosaic-`a` misses relative to vanilla, in percent
/// (positive = mosaic wins).
pub fn reduction_percent(rows: &[Fig6Row], assoc: Associativity, arity: Arity) -> Option<f64> {
    let vanilla = rows
        .iter()
        .find(|r| r.assoc == assoc && r.kind == TlbKind::Vanilla)?
        .misses();
    let mosaic = rows
        .iter()
        .find(|r| r.assoc == assoc && r.kind == TlbKind::Mosaic(arity))?
        .misses();
    if vanilla == 0 {
        return None;
    }
    Some((1.0 - mosaic as f64 / vanilla as f64) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_workloads::{Gups, GupsConfig};

    fn quick_rows() -> Vec<Fig6Row> {
        let cfg = Fig6Config::quick_test();
        let mut w = Gups::new(
            GupsConfig {
                table_bytes: 1 << 20,
                updates: 20_000,
            },
            5,
        );
        run_workload(&cfg, &mut w)
    }

    #[test]
    fn grid_is_complete() {
        let rows = quick_rows();
        assert_eq!(rows.len(), 2 * 2); // 2 assoc x (vanilla + 1 arity)
        for r in &rows {
            // 20 000 updates x 2 + 256 init stores.
            assert_eq!(r.stats.accesses, 40_256);
            assert!(r.misses() <= r.stats.accesses);
        }
    }

    #[test]
    fn full_assoc_beats_direct_for_vanilla() {
        let rows = quick_rows();
        let direct = rows
            .iter()
            .find(|r| r.kind == TlbKind::Vanilla && r.assoc == Associativity::Ways(1))
            .unwrap()
            .misses();
        let full = rows
            .iter()
            .find(|r| r.kind == TlbKind::Vanilla && r.assoc == Associativity::Full)
            .unwrap()
            .misses();
        assert!(full <= direct, "full {full} vs direct {direct}");
    }

    #[test]
    fn render_has_all_cells() {
        let rows = quick_rows();
        let text = render("GUPS", &rows).render();
        assert!(text.contains("Vanilla"));
        assert!(text.contains("Mosaic-4"));
        assert!(text.contains("Direct"));
        assert!(text.contains("Full"));
    }

    #[test]
    fn reduction_percent_is_computable() {
        let rows = quick_rows();
        let red = reduction_percent(&rows, Associativity::Full, Arity::new(4));
        assert!(red.is_some());
        assert!(red.unwrap() <= 100.0);
    }

    fn gups_at(seed: u64) -> Gups {
        Gups::new(
            GupsConfig {
                table_bytes: 1 << 20,
                updates: 20_000,
            },
            seed,
        )
    }

    #[test]
    fn parallel_engine_matches_serial_without_kernel() {
        let cfg = Fig6Config::quick_test();
        let serial = run_workload(&cfg, &mut gups_at(5));
        for jobs in [2, 4] {
            let par = run_workload_jobs(&cfg, &mut gups_at(5), jobs);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_engine_matches_serial_with_kernel_injection() {
        // The kernel model exercises the huge-page path and the
        // record-once combined stream (user + injected accesses).
        let mut cfg = Fig6Config::quick_test();
        cfg.kernel = Some(KernelConfig {
            pages: 64,
            period: 16,
        });
        cfg.arities = vec![Arity::new(4), Arity::new(8)];
        let serial = run_workload(&cfg, &mut gups_at(9));
        for jobs in [2, 8] {
            let par = run_workload_jobs(&cfg, &mut gups_at(9), jobs);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_obs_merge_matches_serial_counter_totals() {
        let mut cfg = Fig6Config::quick_test();
        cfg.kernel = Some(KernelConfig {
            pages: 32,
            period: 8,
        });
        let serial_obs = mosaic_obs::ObsHandle::enabled();
        let serial = run_workload_observed(&cfg, &mut gups_at(7), &serial_obs, 5_000);
        let par_obs = mosaic_obs::ObsHandle::enabled();
        let par = run_workload_observed_jobs(&cfg, &mut gups_at(7), &par_obs, 5_000, 4);
        assert_eq!(par, serial);
        for name in [
            "tlb.vanilla.direct.misses",
            "tlb.vanilla.full.misses",
            "tlb.mosaic-4.direct.misses",
            "tlb.mosaic-4.full.accesses",
            "ptw.vanilla.walks",
            "ptw.mosaic-4.walks",
        ] {
            assert_eq!(
                par_obs.counter_value(name),
                serial_obs.counter_value(name),
                "counter {name}"
            );
        }
    }

    #[test]
    fn parallel_obs_export_is_deterministic_across_job_counts() {
        let cfg = Fig6Config::quick_test();
        let export = |jobs| {
            let obs = mosaic_obs::ObsHandle::enabled();
            run_workload_observed_jobs(&cfg, &mut gups_at(3), &obs, 5_000, jobs);
            obs.render_jsonl()
        };
        let two = export(2);
        assert_eq!(two, export(4));
        assert_eq!(two, export(8));
    }
}
