//! The dual-TLB simulator: the paper's Figure 6 methodology.
//!
//! "For ease of simulation, we maintain one TLB for the conventional
//! (vanilla) mode and another TLB for the mosaic mode; results are
//! computed for both modes simultaneously. Each memory access is fed to
//! both TLBs with a separate page table walker for each TLB" (§3.1).
//! This simulator generalises that to a whole grid: one pass over the
//! workload trace drives a vanilla TLB and a mosaic TLB *per
//! associativity per arity*, so the entire Figure 6 sweep for a workload
//! costs one trace generation.
//!
//! The kernel-access model injects periodic references to a kernel region
//! that vanilla maps with 2 MiB pages while mosaic maps it with ordinary
//! mosaic pages — reproducing the paper's artifact that fully-associative
//! vanilla can edge out Mosaic-4 (§4.1).

use crate::os::{frames_for_footprint, OsModel, VanillaTranslation, KERNEL_VPN_BASE};
use mosaic_hash::SplitMix64;
use mosaic_mem::{AccessKind, Asid, MemoryLayout, Vpn};
use mosaic_mmu::{
    Arity, Associativity, MosaicLookup, MosaicTlb, TlbConfig, TlbStats, VanillaTlb,
};
use mosaic_workloads::Access;

/// The kernel-access injection model.
///
/// Kernel text/data accesses are heavily skewed in practice (syscall
/// entry paths, scheduler data): most references hit a small hot core
/// while the long tail covers the whole mapped region. The model sends
/// seven of every eight kernel references to the hot core (1/16 of the
/// region) and the rest uniformly over all `pages`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Kernel pages mapped (text + data touched by syscalls/interrupts).
    pub pages: u64,
    /// Inject one kernel access every `period` user accesses.
    pub period: u64,
}

impl KernelConfig {
    /// Pages in the hot core (1/16 of the region, at least one).
    pub fn hot_pages(&self) -> u64 {
        (self.pages / 16).max(1)
    }

    /// Draws the next kernel page to touch.
    pub(crate) fn next_page(&self, rng: &mut SplitMix64) -> u64 {
        if rng.next_below(8) < 7 {
            rng.next_below(self.hot_pages())
        } else {
            rng.next_below(self.pages)
        }
    }
}

impl Default for KernelConfig {
    /// 4 MiB of mapped kernel pages, one kernel access per 64 user
    /// accesses.
    fn default() -> Self {
        Self {
            pages: 1024,
            period: 64,
        }
    }
}

/// The kernel-injection state machine, factored out of [`DualSim`] so
/// the parallel engine's record-once reference pass replays *exactly*
/// the serial simulator's kernel stream (same RNG seeding, same due
/// counter semantics).
#[derive(Debug)]
pub(crate) struct KernelInjector {
    cfg: KernelConfig,
    rng: SplitMix64,
    due: u64,
}

impl KernelInjector {
    /// Builds the injector exactly as [`DualSim::new`] seeds it.
    pub(crate) fn new(cfg: KernelConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: SplitMix64::new(seed ^ 0x4B45_524E),
            due: 0,
        }
    }

    /// Called once after every user access; returns the kernel VPN to
    /// inject when one is due.
    pub(crate) fn after_user_access(&mut self) -> Option<Vpn> {
        self.due += 1;
        if self.due >= self.cfg.period {
            self.due = 0;
            let page = self.cfg.next_page(&mut self.rng);
            Some(Vpn(KERNEL_VPN_BASE + page))
        } else {
            None
        }
    }
}

/// Builds the OS model sized as every Figure 6 driver sizes it. Shared
/// by [`DualSim::new`] and the parallel engine's reference pass so the
/// two can never drift apart.
pub(crate) fn reference_os(
    arities: &[Arity],
    footprint_pages: u64,
    kernel_pages: u64,
    seed: u64,
    asid: Asid,
) -> OsModel {
    let frames = frames_for_footprint(footprint_pages, kernel_pages);
    let layout = MemoryLayout::default().with_at_least_frames(frames);
    OsModel::with_asid(layout, arities, seed, asid)
}

/// One simultaneously-simulated TLB configuration and its counters.
#[derive(Debug)]
enum Instance {
    Vanilla(VanillaTlb),
    /// `usize` is the index into the OS model's per-arity page tables.
    Mosaic(usize, MosaicTlb),
}

/// Per-reference scratch reused across the instance loop. The CPFN of a
/// sub-page is arity- and associativity-independent, so one resolution
/// serves every TLB instance that sub-misses on the same reference
/// (counted page walks stay per-instance — they model per-TLB walkers).
#[derive(Debug, Default, Clone, Copy)]
struct StepScratch {
    cpfn: Option<mosaic_mem::Cpfn>,
}

/// A dual-TLB simulation over one shared OS model.
#[derive(Debug)]
pub struct DualSim {
    os: OsModel,
    asid: Asid,
    /// `(associativity, instance)` pairs, all fed every access.
    instances: Vec<(Associativity, Instance)>,
    kernel: Option<KernelInjector>,
    scratch: StepScratch,
    user_accesses: u64,
}

impl DualSim {
    /// Builds a simulation: a vanilla TLB and one mosaic TLB per arity,
    /// for every associativity, over memory sized for `footprint_pages`,
    /// running as the default [`crate::os::USER_ASID`].
    pub fn new(
        tlb_entries: usize,
        associativities: &[Associativity],
        arities: &[Arity],
        footprint_pages: u64,
        kernel: Option<KernelConfig>,
        seed: u64,
    ) -> Self {
        Self::with_asid(
            tlb_entries,
            associativities,
            arities,
            footprint_pages,
            kernel,
            seed,
            crate::os::USER_ASID,
        )
    }

    /// Like [`DualSim::new`], but tags every mapping and TLB entry with an
    /// explicit `asid` (a tenant identity minted by a registry).
    #[allow(clippy::too_many_arguments)]
    pub fn with_asid(
        tlb_entries: usize,
        associativities: &[Associativity],
        arities: &[Arity],
        footprint_pages: u64,
        kernel: Option<KernelConfig>,
        seed: u64,
        asid: Asid,
    ) -> Self {
        let kernel_pages = kernel.map_or(0, |k| k.pages);
        let os = reference_os(arities, footprint_pages, kernel_pages, seed, asid);

        let mut instances = Vec::new();
        for &assoc in associativities {
            let cfg = TlbConfig::new(tlb_entries, assoc);
            instances.push((assoc, Instance::Vanilla(VanillaTlb::new(cfg))));
            for (idx, &arity) in arities.iter().enumerate() {
                instances.push((
                    assoc,
                    Instance::Mosaic(idx, MosaicTlb::new(cfg, arity)),
                ));
            }
        }

        let kernel = kernel.map(|k| KernelInjector::new(k, seed));
        Self {
            os,
            asid,
            instances,
            kernel,
            scratch: StepScratch::default(),
            user_accesses: 0,
        }
    }

    /// Feeds one workload access (plus any due kernel injection) to every
    /// TLB instance.
    pub fn access(&mut self, access: Access) {
        self.user_accesses += 1;
        self.reference(access.addr.vpn(), access.kind);
        // Kernel injection.
        if let Some(injector) = &mut self.kernel {
            if let Some(vpn) = injector.after_user_access() {
                self.reference(vpn, AccessKind::Load);
            }
        }
    }

    /// Drives one page reference through the OS and all TLB instances.
    fn reference(&mut self, vpn: Vpn, kind: AccessKind) {
        self.os.touch(vpn, kind);
        let asid = self.asid;
        self.scratch.cpfn = None;
        for (_, inst) in &mut self.instances {
            match inst {
                Instance::Vanilla(tlb) => {
                    if !tlb.lookup(asid, vpn).is_hit() {
                        match self.os.vanilla_walk(vpn) {
                            VanillaTranslation::Base(pfn) => tlb.fill_base(asid, vpn, pfn),
                            VanillaTranslation::Huge(first) => tlb.fill_huge(asid, vpn, first),
                        }
                    }
                }
                Instance::Mosaic(arity_idx, tlb) => match tlb.lookup(asid, vpn) {
                    MosaicLookup::Hit(_) => {}
                    MosaicLookup::SubMiss => {
                        let cpfn = match self.scratch.cpfn {
                            Some(c) => c,
                            None => {
                                let c = self
                                    .os
                                    .cpfn_of(vpn)
                                    .expect("touched page must be mapped");
                                self.scratch.cpfn = Some(c);
                                c
                            }
                        };
                        tlb.fill_sub(asid, vpn, cpfn);
                    }
                    MosaicLookup::Miss => {
                        let toc = self.os.mosaic_walk(*arity_idx, vpn);
                        tlb.fill_toc(asid, vpn, toc);
                    }
                },
            }
        }
    }

    /// Binds every TLB instance (and the shared OS model) to a live
    /// metrics registry. Instance labels are
    /// `<design>.<associativity>` in lowercase — e.g.
    /// `tlb.vanilla.direct.misses`, `tlb.mosaic-4.full.accesses` — so a
    /// whole Figure 6 grid exports into one stream.
    pub fn set_obs(&mut self, obs: &mosaic_obs::ObsHandle) {
        self.os.set_obs(obs);
        let arities = self.os.arities();
        for (assoc, inst) in &mut self.instances {
            let assoc_label = assoc.to_string().to_lowercase();
            match inst {
                Instance::Vanilla(tlb) => {
                    tlb.set_obs(obs, &format!("vanilla.{assoc_label}"));
                }
                Instance::Mosaic(idx, tlb) => {
                    let label = format!("mosaic-{}.{assoc_label}", arities[*idx].get());
                    tlb.set_obs(obs, &label);
                }
            }
        }
    }

    /// Publishes point-in-time gauges (allocator utilization).
    pub fn publish_obs(&self) {
        self.os.publish_obs();
    }

    /// User (workload) accesses driven so far.
    pub fn user_accesses(&self) -> u64 {
        self.user_accesses
    }

    /// The OS model (inspection).
    pub fn os(&self) -> &OsModel {
        &self.os
    }

    /// Per-instance results: `(associativity, arity-or-None, stats)`.
    pub fn results(&self) -> Vec<(Associativity, Option<Arity>, TlbStats)> {
        let arities = self.os.arities();
        self.instances
            .iter()
            .map(|(assoc, inst)| match inst {
                Instance::Vanilla(tlb) => (*assoc, None, *tlb.stats()),
                Instance::Mosaic(idx, tlb) => (*assoc, Some(arities[*idx]), *tlb.stats()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_mem::VirtAddr;

    fn sim(entries: usize, kernel: Option<KernelConfig>) -> DualSim {
        DualSim::new(
            entries,
            &[Associativity::Ways(1), Associativity::Full],
            &[Arity::new(4)],
            4096,
            kernel,
            7,
        )
    }

    fn touch_pages(sim: &mut DualSim, pages: impl Iterator<Item = u64>) {
        for p in pages {
            sim.access(Access::load(VirtAddr(p * 4096)));
        }
    }

    #[test]
    fn instance_grid_shape() {
        let s = sim(64, None);
        // 2 associativities x (1 vanilla + 1 arity).
        assert_eq!(s.results().len(), 4);
    }

    #[test]
    fn sequential_pages_benefit_mosaic() {
        let mut s = sim(64, None);
        // Cycle over 128 sequential pages, twice the vanilla TLB's reach
        // but well within mosaic-4's.
        for _ in 0..20 {
            touch_pages(&mut s, 0..128);
        }
        let res = s.results();
        let vanilla_full = res
            .iter()
            .find(|(a, k, _)| *a == Associativity::Full && k.is_none())
            .unwrap()
            .2;
        let mosaic_full = res
            .iter()
            .find(|(a, k, _)| *a == Associativity::Full && k.is_some())
            .unwrap()
            .2;
        // Vanilla: 64 entries over a 128-page LRU cycle => ~every access
        // misses. Mosaic-4: 32 entries cover the whole set.
        assert!(vanilla_full.misses > 2000, "vanilla {:?}", vanilla_full);
        // Mosaic-4's only misses are the 128 cold fills (one per page:
        // 32 whole-ToC misses + 96 sub-entry fills).
        assert!(
            mosaic_full.misses <= 130,
            "mosaic should cover the set: {mosaic_full:?}"
        );
    }

    #[test]
    fn all_instances_see_every_access() {
        let mut s = sim(64, None);
        touch_pages(&mut s, 0..500);
        for (_, _, st) in s.results() {
            assert_eq!(st.accesses, 500);
        }
        assert_eq!(s.user_accesses(), 500);
    }

    #[test]
    fn kernel_injection_adds_accesses() {
        let mut s = sim(
            64,
            Some(KernelConfig {
                pages: 16,
                period: 10,
            }),
        );
        touch_pages(&mut s, 0..100);
        for (_, _, st) in s.results() {
            assert_eq!(st.accesses, 110, "100 user + 10 kernel");
        }
        assert_eq!(s.user_accesses(), 100);
    }

    #[test]
    fn kernel_pages_walk_huge_in_vanilla() {
        let mut s = sim(
            64,
            Some(KernelConfig {
                pages: 8,
                period: 1,
            }),
        );
        touch_pages(&mut s, 0..50);
        let (_, huge_walks, _) = s.os().walk_counts();
        assert!(huge_walks > 0, "kernel misses must walk as huge pages");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut s = sim(64, Some(KernelConfig::default()));
            touch_pages(&mut s, (0..400).map(|i| (i * 37) % 512));
            s.results()
        };
        assert_eq!(run(), run());
    }
}
