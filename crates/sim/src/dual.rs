//! The dual-TLB simulator: the paper's Figure 6 methodology.
//!
//! "For ease of simulation, we maintain one TLB for the conventional
//! (vanilla) mode and another TLB for the mosaic mode; results are
//! computed for both modes simultaneously. Each memory access is fed to
//! both TLBs with a separate page table walker for each TLB" (§3.1).
//! This simulator generalises that to a whole grid: one pass over the
//! workload trace drives a vanilla TLB and a mosaic TLB *per
//! associativity per arity*, so the entire Figure 6 sweep for a workload
//! costs one trace generation.
//!
//! The kernel-access model injects periodic references to a kernel region
//! that vanilla maps with 2 MiB pages while mosaic maps it with ordinary
//! mosaic pages — reproducing the paper's artifact that fully-associative
//! vanilla can edge out Mosaic-4 (§4.1).

use crate::os::{frames_for_footprint, OsModel, TocMemoSlot, VanillaTranslation, KERNEL_VPN_BASE};
use mosaic_hash::SplitMix64;
use mosaic_mem::{AccessKind, Asid, MemoryLayout, Vpn};
use mosaic_mmu::{
    Arity, Associativity, MosaicLookup, MosaicTlb, TlbConfig, TlbStats, VanillaTlb,
};
use mosaic_workloads::Access;

/// The kernel-access injection model.
///
/// Kernel text/data accesses are heavily skewed in practice (syscall
/// entry paths, scheduler data): most references hit a small hot core
/// while the long tail covers the whole mapped region. The model sends
/// seven of every eight kernel references to the hot core (1/16 of the
/// region) and the rest uniformly over all `pages`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Kernel pages mapped (text + data touched by syscalls/interrupts).
    pub pages: u64,
    /// Inject one kernel access every `period` user accesses.
    pub period: u64,
}

impl KernelConfig {
    /// Pages in the hot core (1/16 of the region, at least one).
    pub fn hot_pages(&self) -> u64 {
        (self.pages / 16).max(1)
    }

    /// Draws the next kernel page to touch.
    pub(crate) fn next_page(&self, rng: &mut SplitMix64) -> u64 {
        if rng.next_below(8) < 7 {
            rng.next_below(self.hot_pages())
        } else {
            rng.next_below(self.pages)
        }
    }
}

impl Default for KernelConfig {
    /// 4 MiB of mapped kernel pages, one kernel access per 64 user
    /// accesses.
    fn default() -> Self {
        Self {
            pages: 1024,
            period: 64,
        }
    }
}

/// The kernel-injection state machine, factored out of [`DualSim`] so
/// the parallel engine's record-once reference pass replays *exactly*
/// the serial simulator's kernel stream (same RNG seeding, same due
/// counter semantics).
#[derive(Debug)]
pub(crate) struct KernelInjector {
    cfg: KernelConfig,
    rng: SplitMix64,
    due: u64,
}

impl KernelInjector {
    /// Builds the injector exactly as [`DualSim::new`] seeds it.
    pub(crate) fn new(cfg: KernelConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: SplitMix64::new(seed ^ 0x4B45_524E),
            due: 0,
        }
    }

    /// Called once after every user access; returns the kernel VPN to
    /// inject when one is due.
    pub(crate) fn after_user_access(&mut self) -> Option<Vpn> {
        self.due += 1;
        if self.due >= self.cfg.period {
            self.due = 0;
            let page = self.cfg.next_page(&mut self.rng);
            Some(Vpn(KERNEL_VPN_BASE + page))
        } else {
            None
        }
    }
}

/// Builds the OS model sized as every Figure 6 driver sizes it. Shared
/// by [`DualSim::new`] and the parallel engine's reference pass so the
/// two can never drift apart.
pub(crate) fn reference_os(
    arities: &[Arity],
    footprint_pages: u64,
    kernel_pages: u64,
    seed: u64,
    asid: Asid,
) -> OsModel {
    let frames = frames_for_footprint(footprint_pages, kernel_pages);
    let layout = MemoryLayout::default().with_at_least_frames(frames);
    OsModel::with_asid(layout, arities, seed, asid)
}

/// One simultaneously-simulated TLB configuration and its counters.
#[derive(Debug)]
enum Instance {
    Vanilla(VanillaTlb),
    /// `usize` is the index into the OS model's per-arity page tables.
    Mosaic(usize, MosaicTlb),
}

/// Drives one page reference through one TLB instance, filling from the
/// OS on a miss. `cpfn_memo` caches the sub-page CPFN resolution: it is
/// arity- and associativity-independent (and never changes once the page
/// is mapped), so one resolution serves every instance that sub-misses on
/// the same reference — per-access in the scalar path, per-batch-position
/// in the batched path. Counted page walks stay per-instance (they model
/// per-TLB walkers).
fn step_instance(
    os: &mut OsModel,
    asid: Asid,
    inst: &mut Instance,
    vpn: Vpn,
    cpfn_memo: &mut Option<mosaic_mem::Cpfn>,
) {
    match inst {
        Instance::Vanilla(tlb) => {
            if !tlb.lookup(asid, vpn).is_hit() {
                match os.vanilla_walk(vpn) {
                    VanillaTranslation::Base(pfn) => tlb.fill_base(asid, vpn, pfn),
                    VanillaTranslation::Huge(first) => tlb.fill_huge(asid, vpn, first),
                }
            }
        }
        Instance::Mosaic(arity_idx, tlb) => match tlb.lookup(asid, vpn) {
            MosaicLookup::Hit(_) => {}
            MosaicLookup::SubMiss => {
                let cpfn = match *cpfn_memo {
                    Some(c) => c,
                    None => {
                        let c = os.cpfn_of(vpn).expect("touched page must be mapped");
                        *cpfn_memo = Some(c);
                        c
                    }
                };
                tlb.fill_sub(asid, vpn, cpfn);
            }
            MosaicLookup::Miss => {
                let toc = os.mosaic_walk_ref(*arity_idx, vpn);
                tlb.fill_toc_ref(asid, vpn, toc);
            }
        },
    }
}

/// A dual-TLB simulation over one shared OS model.
#[derive(Debug)]
pub struct DualSim {
    os: OsModel,
    asid: Asid,
    /// `(associativity, instance)` pairs, all fed every access.
    instances: Vec<(Associativity, Instance)>,
    kernel: Option<KernelInjector>,
    user_accesses: u64,
    /// Batch scratch (reused allocation): the expanded reference stream.
    batch_refs: Vec<Vpn>,
    /// Batch scratch: first-touch growth events as `(position, vpn)`.
    batch_growth: Vec<(u32, Vpn)>,
    /// Batch scratch: per-position CPFN memo shared across instances.
    batch_cpfn: Vec<Option<mosaic_mem::Cpfn>>,
    /// Batch scratch: per-position vanilla-translation memo (result plus
    /// walk depth, so reuses can recount the walk exactly).
    batch_vwalk: Vec<Option<(VanillaTranslation, u32)>>,
    /// Batch scratch: per-(position, arity) leaf-ToC memo, indexed
    /// `position * arity_count + arity_idx`. Slots are
    /// generation-stamped rather than cleared, so their ToC buffers
    /// survive across batches and refills never allocate.
    batch_toc: Vec<TocMemoSlot>,
    /// Current batch generation for `batch_toc` staleness checks.
    /// Starts at 1 so default (gen-0) slots always read as stale.
    batch_gen: u64,
}

impl DualSim {
    /// Builds a simulation: a vanilla TLB and one mosaic TLB per arity,
    /// for every associativity, over memory sized for `footprint_pages`,
    /// running as the default [`crate::os::USER_ASID`].
    pub fn new(
        tlb_entries: usize,
        associativities: &[Associativity],
        arities: &[Arity],
        footprint_pages: u64,
        kernel: Option<KernelConfig>,
        seed: u64,
    ) -> Self {
        Self::with_asid(
            tlb_entries,
            associativities,
            arities,
            footprint_pages,
            kernel,
            seed,
            crate::os::USER_ASID,
        )
    }

    /// Like [`DualSim::new`], but tags every mapping and TLB entry with an
    /// explicit `asid` (a tenant identity minted by a registry).
    #[allow(clippy::too_many_arguments)]
    pub fn with_asid(
        tlb_entries: usize,
        associativities: &[Associativity],
        arities: &[Arity],
        footprint_pages: u64,
        kernel: Option<KernelConfig>,
        seed: u64,
        asid: Asid,
    ) -> Self {
        let kernel_pages = kernel.map_or(0, |k| k.pages);
        let os = reference_os(arities, footprint_pages, kernel_pages, seed, asid);

        let mut instances = Vec::new();
        for &assoc in associativities {
            let cfg = TlbConfig::new(tlb_entries, assoc);
            instances.push((assoc, Instance::Vanilla(VanillaTlb::new(cfg))));
            for (idx, &arity) in arities.iter().enumerate() {
                instances.push((
                    assoc,
                    Instance::Mosaic(idx, MosaicTlb::new(cfg, arity)),
                ));
            }
        }

        let kernel = kernel.map(|k| KernelInjector::new(k, seed));
        Self {
            os,
            asid,
            instances,
            kernel,
            user_accesses: 0,
            batch_refs: Vec::new(),
            batch_growth: Vec::new(),
            batch_cpfn: Vec::new(),
            batch_vwalk: Vec::new(),
            batch_toc: Vec::new(),
            batch_gen: 0,
        }
    }

    /// Feeds one workload access (plus any due kernel injection) to every
    /// TLB instance.
    pub fn access(&mut self, access: Access) {
        self.user_accesses += 1;
        self.reference(access.addr.vpn(), access.kind);
        // Kernel injection.
        if let Some(injector) = &mut self.kernel {
            if let Some(vpn) = injector.after_user_access() {
                self.reference(vpn, AccessKind::Load);
            }
        }
    }

    /// Feeds a batch of workload accesses through the pipeline:
    /// equivalent to calling [`access`](Self::access) per element, but
    /// replayed **instance-major** — one TLB instance over the whole
    /// batch, then the next — so each instance's ToC lines and set
    /// metadata stay hot and the instance dispatch is amortized over the
    /// batch instead of paid per reference.
    ///
    /// Two mechanisms keep the result bit-identical to the scalar loop:
    ///
    /// * an OS pre-pass touches every reference (expanding kernel
    ///   injections inline) in stream order, so allocator clocks and
    ///   walk tables advance exactly as the scalar path advances them;
    /// * first-touch **growth events** recorded by the pre-pass are
    ///   unmirrored from the shared ToC leaves before each mosaic
    ///   instance's replay and remirrored as the replay cursor passes
    ///   them, so a mid-batch `mosaic_walk` copies the same
    ///   point-in-time ToC the scalar path would have seen (vanilla
    ///   translations never change after first touch, so vanilla
    ///   instances replay without rewinding).
    ///
    /// Per-position memos (the batch analogue of the old per-access
    /// scratch) are shared across all instances: the sub-page CPFN, the
    /// vanilla translation, and the per-arity leaf ToC. Results are
    /// resolved once per position; every consuming instance still
    /// *counts* its own page walk (same counters, same obs effects), so
    /// walk accounting matches the scalar loop exactly.
    pub fn access_batch(&mut self, accesses: &[Access]) {
        // Phase 1: stream-order OS pre-pass.
        self.batch_refs.clear();
        self.batch_growth.clear();
        for access in accesses {
            self.user_accesses += 1;
            let vpn = access.addr.vpn();
            if self.os.touch(vpn, access.kind) {
                self.batch_growth.push((self.batch_refs.len() as u32, vpn));
            }
            self.batch_refs.push(vpn);
            if let Some(injector) = &mut self.kernel {
                if let Some(kvpn) = injector.after_user_access() {
                    if self.os.touch(kvpn, AccessKind::Load) {
                        self.batch_growth.push((self.batch_refs.len() as u32, kvpn));
                    }
                    self.batch_refs.push(kvpn);
                }
            }
        }
        let n = self.batch_refs.len();
        self.batch_cpfn.clear();
        self.batch_cpfn.resize(n, None);
        self.batch_vwalk.clear();
        self.batch_vwalk.resize(n, None);
        let arity_count = self.os.arity_count();
        // ToC memo slots are invalidated by bumping the generation, not
        // by clearing: stale slots keep their buffers for reuse.
        self.batch_gen += 1;
        if self.batch_toc.len() < n * arity_count {
            self.batch_toc
                .resize_with(n * arity_count, TocMemoSlot::default);
        }

        // Phase 2: instance-major replay. The variant match is hoisted
        // out of the position loop so each instance replays the batch
        // through a straight-line body. Exported obs counters are
        // deferred for the whole phase — the TLB and walker deltas are
        // flushed in bulk at instance/batch end (the scalar per-access
        // API cannot defer: its contract is that exported counters are
        // current after every call returns).
        let asid = self.asid;
        let instances = &mut self.instances;
        let refs = &self.batch_refs;
        let growth = &self.batch_growth;
        let cpfns = &mut self.batch_cpfn;
        let vwalks = &mut self.batch_vwalk;
        let tocs = &mut self.batch_toc;
        let gen = self.batch_gen;
        self.os.with_deferred_walk_obs(|os| {
            for (_, inst) in instances.iter_mut() {
                match inst {
                    Instance::Vanilla(tlb) => tlb.with_deferred_obs(|tlb| {
                        // Vanilla translations never change after first
                        // touch, so no rewind is needed.
                        for (j, &vpn) in refs.iter().enumerate() {
                            if !tlb.lookup(asid, vpn).is_hit() {
                                match os.vanilla_walk_memo(vpn, &mut vwalks[j]) {
                                    VanillaTranslation::Base(pfn) => tlb.fill_base(asid, vpn, pfn),
                                    VanillaTranslation::Huge(first) => {
                                        tlb.fill_huge(asid, vpn, first)
                                    }
                                }
                            }
                        }
                    }),
                    Instance::Mosaic(arity_idx, tlb) => {
                        let ai = *arity_idx;
                        tlb.with_deferred_obs(|tlb| {
                            let rewind = !growth.is_empty();
                            if rewind {
                                for &(_, vpn) in growth {
                                    os.unmirror(vpn);
                                }
                            }
                            let mut cursor = 0;
                            for (j, &vpn) in refs.iter().enumerate() {
                                if rewind {
                                    while cursor < growth.len() && growth[cursor].0 as usize == j {
                                        os.remirror(growth[cursor].1);
                                        cursor += 1;
                                    }
                                }
                                match tlb.lookup(asid, vpn) {
                                    MosaicLookup::Hit(_) => {}
                                    MosaicLookup::SubMiss => {
                                        let cpfn = match cpfns[j] {
                                            Some(c) => c,
                                            None => {
                                                let c = os
                                                    .cpfn_of(vpn)
                                                    .expect("touched page must be mapped");
                                                cpfns[j] = Some(c);
                                                c
                                            }
                                        };
                                        tlb.fill_sub(asid, vpn, cpfn);
                                    }
                                    MosaicLookup::Miss => {
                                        let toc = os.mosaic_walk_memo(
                                            ai,
                                            vpn,
                                            &mut tocs[j * arity_count + ai],
                                            gen,
                                        );
                                        tlb.fill_toc_ref(asid, vpn, toc);
                                    }
                                }
                            }
                            debug_assert!(!rewind || cursor == growth.len());
                        })
                    }
                }
            }
        });
    }

    /// Drives one page reference through the OS and all TLB instances.
    fn reference(&mut self, vpn: Vpn, kind: AccessKind) {
        self.os.touch(vpn, kind);
        let asid = self.asid;
        let mut cpfn_memo = None;
        for (_, inst) in &mut self.instances {
            step_instance(&mut self.os, asid, inst, vpn, &mut cpfn_memo);
        }
    }

    /// Binds every TLB instance (and the shared OS model) to a live
    /// metrics registry. Instance labels are
    /// `<design>.<associativity>` in lowercase — e.g.
    /// `tlb.vanilla.direct.misses`, `tlb.mosaic-4.full.accesses` — so a
    /// whole Figure 6 grid exports into one stream.
    pub fn set_obs(&mut self, obs: &mosaic_obs::ObsHandle) {
        self.os.set_obs(obs);
        let arities = self.os.arities();
        for (assoc, inst) in &mut self.instances {
            let assoc_label = assoc.to_string().to_lowercase();
            match inst {
                Instance::Vanilla(tlb) => {
                    tlb.set_obs(obs, &format!("vanilla.{assoc_label}"));
                }
                Instance::Mosaic(idx, tlb) => {
                    let label = format!("mosaic-{}.{assoc_label}", arities[*idx].get());
                    tlb.set_obs(obs, &label);
                }
            }
        }
    }

    /// Publishes point-in-time gauges (allocator utilization).
    pub fn publish_obs(&self) {
        self.os.publish_obs();
    }

    /// User (workload) accesses driven so far.
    pub fn user_accesses(&self) -> u64 {
        self.user_accesses
    }

    /// The OS model (inspection).
    pub fn os(&self) -> &OsModel {
        &self.os
    }

    /// Per-instance results: `(associativity, arity-or-None, stats)`.
    pub fn results(&self) -> Vec<(Associativity, Option<Arity>, TlbStats)> {
        let arities = self.os.arities();
        self.instances
            .iter()
            .map(|(assoc, inst)| match inst {
                Instance::Vanilla(tlb) => (*assoc, None, *tlb.stats()),
                Instance::Mosaic(idx, tlb) => (*assoc, Some(arities[*idx]), *tlb.stats()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_mem::VirtAddr;

    fn sim(entries: usize, kernel: Option<KernelConfig>) -> DualSim {
        DualSim::new(
            entries,
            &[Associativity::Ways(1), Associativity::Full],
            &[Arity::new(4)],
            4096,
            kernel,
            7,
        )
    }

    fn touch_pages(sim: &mut DualSim, pages: impl Iterator<Item = u64>) {
        for p in pages {
            sim.access(Access::load(VirtAddr(p * 4096)));
        }
    }

    #[test]
    fn instance_grid_shape() {
        let s = sim(64, None);
        // 2 associativities x (1 vanilla + 1 arity).
        assert_eq!(s.results().len(), 4);
    }

    #[test]
    fn sequential_pages_benefit_mosaic() {
        let mut s = sim(64, None);
        // Cycle over 128 sequential pages, twice the vanilla TLB's reach
        // but well within mosaic-4's.
        for _ in 0..20 {
            touch_pages(&mut s, 0..128);
        }
        let res = s.results();
        let vanilla_full = res
            .iter()
            .find(|(a, k, _)| *a == Associativity::Full && k.is_none())
            .unwrap()
            .2;
        let mosaic_full = res
            .iter()
            .find(|(a, k, _)| *a == Associativity::Full && k.is_some())
            .unwrap()
            .2;
        // Vanilla: 64 entries over a 128-page LRU cycle => ~every access
        // misses. Mosaic-4: 32 entries cover the whole set.
        assert!(vanilla_full.misses > 2000, "vanilla {:?}", vanilla_full);
        // Mosaic-4's only misses are the 128 cold fills (one per page:
        // 32 whole-ToC misses + 96 sub-entry fills).
        assert!(
            mosaic_full.misses <= 130,
            "mosaic should cover the set: {mosaic_full:?}"
        );
    }

    #[test]
    fn all_instances_see_every_access() {
        let mut s = sim(64, None);
        touch_pages(&mut s, 0..500);
        for (_, _, st) in s.results() {
            assert_eq!(st.accesses, 500);
        }
        assert_eq!(s.user_accesses(), 500);
    }

    #[test]
    fn kernel_injection_adds_accesses() {
        let mut s = sim(
            64,
            Some(KernelConfig {
                pages: 16,
                period: 10,
            }),
        );
        touch_pages(&mut s, 0..100);
        for (_, _, st) in s.results() {
            assert_eq!(st.accesses, 110, "100 user + 10 kernel");
        }
        assert_eq!(s.user_accesses(), 100);
    }

    #[test]
    fn kernel_pages_walk_huge_in_vanilla() {
        let mut s = sim(
            64,
            Some(KernelConfig {
                pages: 8,
                period: 1,
            }),
        );
        touch_pages(&mut s, 0..50);
        let (_, huge_walks, _) = s.os().walk_counts();
        assert!(huge_walks > 0, "kernel misses must walk as huge pages");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut s = sim(64, Some(KernelConfig::default()));
            touch_pages(&mut s, (0..400).map(|i| (i * 37) % 512));
            s.results()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batch_matches_scalar() {
        for kernel in [None, Some(KernelConfig { pages: 16, period: 10 })] {
            let trace: Vec<Access> = (0..400u64)
                .map(|i| Access::load(VirtAddr(((i * 37) % 512) * 4096)))
                .collect();
            let mut scalar = sim(64, kernel);
            for &a in &trace {
                scalar.access(a);
            }
            let mut batched = sim(64, kernel);
            for chunk in trace.chunks(33) {
                batched.access_batch(chunk);
            }
            assert_eq!(scalar.results(), batched.results());
            assert_eq!(scalar.user_accesses(), batched.user_accesses());
            assert_eq!(scalar.os().walk_counts(), batched.os().walk_counts());
            batched.os().verify().expect("ToCs fully remirrored");
        }
    }
}
