//! Full-system composition: the experiment drivers that reproduce the
//! Mosaic Pages evaluation (§4).
//!
//! This crate wires the substrates together — workload traces feed a
//! demand-paged OS model whose translations populate vanilla and mosaic
//! TLBs — and provides one driver per paper artifact:
//!
//! * [`fig6`] — TLB misses across workloads × arity × associativity
//!   (Figure 6), using the paper's dual-TLB methodology: every memory
//!   reference is fed to a vanilla TLB and the mosaic TLBs simultaneously;
//! * [`pressure`] — memory utilization at first conflict and steady state
//!   (Table 3) and swap I/O under increasing footprints (Table 4),
//!   comparing [`MosaicMemory`](mosaic_mem::MosaicMemory) against the
//!   Linux-like baseline;
//! * [`platform`] — the simulated-platform descriptions of Table 1;
//! * [`report`] — plain-text table rendering shared by the binaries.
//!
//! # Example
//!
//! ```
//! use mosaic_sim::fig6::{Fig6Config, run_workload};
//! use mosaic_workloads::{Gups, GupsConfig};
//!
//! let cfg = Fig6Config::quick_test();
//! let mut w = Gups::new(GupsConfig { table_bytes: 1 << 20, updates: 5_000 }, 1);
//! let rows = run_workload(&cfg, &mut w);
//! assert!(!rows.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Production code returns typed errors; .unwrap() is for tests only.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod attrib;
pub mod dcache;
pub mod dual;
pub mod fig6;
pub mod frag;
pub mod os;
pub mod parallel;
pub mod platform;
pub mod pressure;
pub mod report;
pub mod trace_buffer;

pub use attrib::{
    conflict_removed, explained_by_conflict_pct, run_attrib, AttribConfig, AttribReport,
    AttribWorkload, MemAttribRow, TlbAttribRow,
};
pub use dcache::{run_coloring, ColoringResult, DataCache, Placement};
pub use dual::{DualSim, KernelConfig};
pub use fig6::{Fig6Config, Fig6Row, TlbKind};
pub use frag::{run_frag, run_frag_jobs, FragConfig, FragResult};
pub use parallel::{derive_seed, run_cells};
pub use pressure::{PressureConfig, PressureRow, PressureWorkload, Table3Row};
pub use report::Table;
pub use trace_buffer::{TraceBuffer, TraceBufferBuilder, TraceReplayer};
