//! Cross-thread-count determinism suite for the parallel sweep engine.
//!
//! Every driver that fans cells out over a rayon pool must produce
//! results byte-identical to its serial twin at any `--jobs` value:
//! the record-once/replay-many trace plus deterministic per-cell seed
//! derivation make thread count a pure throughput knob. These tests pin
//! that contract for the Figure 6 grid, the Table 4 pressure sweep
//! (fault-free and fault-injected), and the fragmentation sweep.

use mosaic_mem::{FaultPlan, ResilienceStats};
use mosaic_sim::fig6::{run_workload, run_workload_jobs, Fig6Config};
use mosaic_sim::frag::{run_frag, run_frag_jobs, FragConfig};
use mosaic_sim::pressure::{
    run_table4, run_table4_jobs, PressureConfig, ResilienceConfig,
};
use mosaic_workloads::{BTreeConfig, BTreeWorkload, Gups, GupsConfig};

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

fn quick_gups() -> Gups {
    Gups::new(
        GupsConfig {
            table_bytes: 1 << 20,
            updates: 20_000,
        },
        5,
    )
}

fn tiny_pressure_cfg() -> PressureConfig {
    PressureConfig {
        mem_buckets: 16, // 1024 frames = 4 MiB
        seed: 5,
        batch: mosaic_sim::fig6::DEFAULT_BATCH,
    }
}

fn small_btree() -> BTreeWorkload {
    BTreeWorkload::new(
        BTreeConfig {
            num_keys: 50_000,
            num_lookups: 5_000,
        },
        7,
    )
}

#[test]
fn fig6_rows_identical_across_job_counts() {
    let cfg = Fig6Config::quick_test();
    let serial = run_workload(&cfg, &mut quick_gups());
    for jobs in JOB_COUNTS {
        let rows = run_workload_jobs(&cfg, &mut quick_gups(), jobs);
        assert_eq!(rows, serial, "fig6 rows diverged at jobs={jobs}");
    }
}

#[test]
fn fig6_with_kernel_identical_across_job_counts() {
    // The kernel model interleaves page-table-walker accesses into the
    // recorded reference stream; replay must preserve them verbatim.
    let cfg = Fig6Config {
        kernel: Some(mosaic_sim::dual::KernelConfig::default()),
        ..Fig6Config::quick_test()
    };
    let serial = run_workload(&cfg, &mut quick_gups());
    for jobs in JOB_COUNTS {
        let rows = run_workload_jobs(&cfg, &mut quick_gups(), jobs);
        assert_eq!(rows, serial, "fig6 kernel rows diverged at jobs={jobs}");
    }
}

#[test]
fn table4_zero_fault_parallel_matches_serial_bit_for_bit() {
    let cfg = tiny_pressure_cfg();
    let ratios = [1.25];
    let serial = run_table4(&cfg, &ratios);
    for jobs in JOB_COUNTS {
        let cells = run_table4_jobs(&cfg, &ratios, &ResilienceConfig::none(), jobs)
            .expect("fault-free table4 cannot fail");
        let rows: Vec<_> = cells.iter().map(|(row, _)| row.clone()).collect();
        assert_eq!(rows, serial, "table4 rows diverged at jobs={jobs}");
        for (_, rep) in &cells {
            assert_eq!(
                rep.combined(),
                ResilienceStats::ZERO,
                "zero-fault run reported faults at jobs={jobs}"
            );
        }
    }
}

#[test]
fn table4_fault_plan_identical_across_job_counts() {
    // With an active plan every cell derives its injector seed from
    // (base seed, cell index), so fault placement is a function of the
    // grid position — never of which thread ran the cell.
    let cfg = tiny_pressure_cfg();
    let ratios = [1.25];
    let res = ResilienceConfig {
        plan: FaultPlan::NONE
            .with_alloc_failures(5_000)
            .with_io_failures(5_000, 1)
            .with_toc_flips(500),
        fault_seed: 0xF00D,
        verify_every: 50_000,
    };
    let baseline = run_table4_jobs(&cfg, &ratios, &res, 1).expect("faulty run at jobs=1");
    assert!(
        baseline
            .iter()
            .any(|(_, rep)| rep.combined() != ResilienceStats::ZERO),
        "plan injected nothing; test would not exercise fault determinism"
    );
    for jobs in JOB_COUNTS {
        let cells = run_table4_jobs(&cfg, &ratios, &res, jobs).expect("faulty run");
        assert_eq!(cells, baseline, "faulty table4 diverged at jobs={jobs}");
    }
}

#[test]
fn frag_results_identical_across_job_counts() {
    let cfgs = [FragConfig::new(0.0, 11), FragConfig::new(0.5, 11)];
    let serial: Vec<_> = cfgs
        .iter()
        .map(|c| run_frag(c, &mut small_btree()))
        .collect();
    for jobs in JOB_COUNTS {
        let results = run_frag_jobs(&cfgs, &mut small_btree(), jobs);
        assert_eq!(results, serial, "frag results diverged at jobs={jobs}");
    }
}
