//! Property tests for the batched translation pipeline: for ANY access
//! stream, chunking, and kernel model, [`DualSim::access_batch`] must be
//! observationally identical to the scalar per-access loop. This is the
//! contract every golden-output gate rests on — `--batch` may change
//! wall-clock time, never results.

use mosaic_mem::VirtAddr;
use mosaic_mmu::{Arity, Associativity};
use mosaic_sim::dual::{DualSim, KernelConfig};
use mosaic_workloads::Access;
use proptest::collection::vec;
use proptest::prelude::*;

fn sim(kernel: bool) -> DualSim {
    DualSim::new(
        64,
        &[
            Associativity::Ways(1),
            Associativity::Ways(8),
            Associativity::Full,
        ],
        &[4, 16].map(Arity::new),
        1024,
        kernel.then(KernelConfig::default),
        0xBA7C,
    )
}

/// Loads and stores over a small page pool, so streams revisit pages
/// (TLB hits), touch fresh ones (walks + OS growth), and straddle mosaic
/// ToC boundaries.
fn any_access() -> impl Strategy<Value = Access> {
    (0u64..512, any::<bool>()).prop_map(|(page, store)| {
        let addr = VirtAddr(page * 4096);
        if store {
            Access::store(addr)
        } else {
            Access::load(addr)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scalar and batched engines agree on every counter for any stream,
    /// any chunking of that stream, with and without the kernel model.
    #[test]
    fn access_batch_matches_scalar(
        accesses in vec(any_access(), 1..300),
        chunk in 1usize..64,
        kernel in any::<bool>(),
    ) {
        let mut scalar = sim(kernel);
        for &a in &accesses {
            scalar.access(a);
        }

        let mut batched = sim(kernel);
        for c in accesses.chunks(chunk) {
            batched.access_batch(c);
        }

        prop_assert_eq!(scalar.user_accesses(), batched.user_accesses());
        prop_assert_eq!(scalar.results(), batched.results());
        prop_assert_eq!(scalar.os().walk_counts(), batched.os().walk_counts());
        batched.os().verify().expect("batched OS state is structurally sound");
    }

    /// Deferred obs publication is invisible from outside a batch: after
    /// any stream and chunking, the full exported obs state — every
    /// counter, gauge, and histogram, including the walker depth
    /// histograms flushed via `record_n` — renders byte-identically to
    /// the scalar run's.
    #[test]
    fn obs_exports_match_scalar(
        accesses in vec(any_access(), 1..200),
        chunk in 1usize..64,
    ) {
        let scalar_obs = mosaic_obs::ObsHandle::enabled();
        let mut scalar = sim(true);
        scalar.set_obs(&scalar_obs);
        for &a in &accesses {
            scalar.access(a);
        }

        let batched_obs = mosaic_obs::ObsHandle::enabled();
        let mut batched = sim(true);
        batched.set_obs(&batched_obs);
        for c in accesses.chunks(chunk) {
            batched.access_batch(c);
        }

        scalar_obs.snapshot(accesses.len() as u64);
        batched_obs.snapshot(accesses.len() as u64);
        prop_assert_eq!(scalar_obs.render_jsonl(), batched_obs.render_jsonl());
    }

    /// Re-chunking is also self-consistent: two different chunkings of
    /// the same stream agree with each other (catches any chunk-boundary
    /// state leak independently of the scalar path).
    #[test]
    fn chunking_is_invisible(
        accesses in vec(any_access(), 1..300),
        chunk_a in 1usize..48,
        chunk_b in 1usize..48,
    ) {
        let mut sim_a = sim(true);
        for c in accesses.chunks(chunk_a) {
            sim_a.access_batch(c);
        }
        let mut sim_b = sim(true);
        for c in accesses.chunks(chunk_b) {
            sim_b.access_batch(c);
        }
        prop_assert_eq!(sim_a.results(), sim_b.results());
        prop_assert_eq!(sim_a.os().walk_counts(), sim_b.os().walk_counts());
    }
}
