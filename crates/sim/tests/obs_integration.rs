//! Integration tests for the observability export of the pressure
//! pipeline: the fault-event timeline must be *replayable* (every
//! injected fault has exactly one recovery outcome), agree with the
//! independently-kept [`ResilienceStats`] counters, and the whole JSONL
//! stream must be byte-deterministic for a fixed seed.

use mosaic_sim::pressure::{
    run_pressure_observed, PressureConfig, PressureWorkload, ResilienceConfig,
};
use mosaic_mem::FaultPlan;
use mosaic_obs::ObsHandle;

fn faulty_config() -> (PressureConfig, ResilienceConfig) {
    let cfg = PressureConfig {
        mem_buckets: 8,
        seed: 0x0B5_7E57,
        batch: mosaic_sim::fig6::DEFAULT_BATCH,
    };
    let res = ResilienceConfig {
        plan: FaultPlan::NONE
            .with_alloc_failures(20_000) // 2 %
            .with_io_failures(20_000, 2)
            .with_toc_flips(5_000),
        fault_seed: cfg.seed ^ 0xFA17,
        verify_every: 100_000,
    };
    (cfg, res)
}

fn observed_run(obs: &ObsHandle, interval: u64) -> mosaic_sim::pressure::ResilienceReport {
    let (cfg, res) = faulty_config();
    let (_row, report) =
        run_pressure_observed(PressureWorkload::XsBench, 1.2, &cfg, &res, obs, interval)
            .expect("pressure run under bounded faults should complete");
    report
}

fn count_events(jsonl: &str, name: &str) -> u64 {
    let needle = format!("\"name\":\"{name}\"");
    jsonl
        .lines()
        .filter(|l| l.starts_with("{\"t\":\"event\"") && l.contains(&needle))
        .count() as u64
}

/// Every `fault.injected` event is matched by exactly one
/// `fault.recovered` or `fault.unrecovered` outcome, per manager, and
/// the counters agree with the event timeline *and* with the
/// `ResilienceStats` the managers keep independently.
#[test]
fn fault_timeline_conserves_and_matches_stats() {
    let obs = ObsHandle::enabled();
    let report = observed_run(&obs, 0);

    for prefix in ["mosaic", "linux"] {
        let injected = obs.counter_value(&format!("{prefix}.fault.injected"));
        let recovered = obs.counter_value(&format!("{prefix}.fault.recovered"));
        let unrecovered = obs.counter_value(&format!("{prefix}.fault.unrecovered"));
        assert!(injected > 0, "{prefix}: plan should inject faults");
        assert_eq!(
            injected,
            recovered + unrecovered,
            "{prefix}: every injected fault needs exactly one outcome"
        );
    }

    // Counters vs. the managers' own ResilienceStats bookkeeping.
    let m = &report.mosaic;
    assert_eq!(
        obs.counter_value("mosaic.fault.injected"),
        m.alloc_faults_injected + m.io_faults_injected + m.toc_flips_injected,
    );
    let l = &report.linux;
    assert_eq!(obs.counter_value("linux.fault.injected"), l.io_faults_injected);

    // Counters vs. the event timeline (the replayable form).
    let jsonl = obs.render_jsonl();
    let injected_total =
        obs.counter_value("mosaic.fault.injected") + obs.counter_value("linux.fault.injected");
    assert_eq!(count_events(&jsonl, "fault.injected"), injected_total);
    assert_eq!(
        count_events(&jsonl, "fault.recovered") + count_events(&jsonl, "fault.unrecovered"),
        injected_total,
    );
}

/// The same seed produces a byte-identical JSONL stream — the golden
/// determinism property `scripts/check.sh` also gates end to end.
#[test]
fn fixed_seed_jsonl_is_byte_deterministic() {
    let (a, b) = (ObsHandle::enabled(), ObsHandle::enabled());
    observed_run(&a, 100_000);
    observed_run(&b, 100_000);
    assert!(a.num_records() > 0);
    assert_eq!(a.render_jsonl(), b.render_jsonl());
}

/// Interval snapshots actually appear when requested: a snapshot every
/// 100k references over a multi-hundred-k access stream must yield
/// strictly more records than the single end-of-run snapshot.
#[test]
fn interval_snapshots_add_records() {
    let sparse = ObsHandle::enabled();
    observed_run(&sparse, 0);
    let dense = ObsHandle::enabled();
    observed_run(&dense, 100_000);
    assert!(
        dense.num_records() > sparse.num_records(),
        "interval snapshots should add records ({} vs {})",
        dense.num_records(),
        sparse.num_records()
    );
}
