//! Property tests for the record-once/replay-many trace buffer.
//!
//! The parallel sweep engine is only byte-identical to the serial one if
//! recording and replaying a reference stream is lossless — for any
//! access sequence, in memory or spilled to disk. [`RecordedTrace`]
//! turns an arbitrary proptest-generated stream into a [`Workload`], the
//! same adapter the trace-file tooling uses.

use mosaic_mem::VirtAddr;
use mosaic_sim::trace_buffer::TraceBuffer;
use mosaic_workloads::tracefile::RecordedTrace;
use mosaic_workloads::{Access, Workload};
use proptest::collection::vec;
use proptest::prelude::*;

/// Addresses keep bit 63 clear — the trace encoding uses it as the
/// load/store flag, and no simulated virtual layout reaches it.
fn any_access() -> impl Strategy<Value = Access> {
    (0u64..(1u64 << 63), any::<bool>()).prop_map(|(addr, store)| {
        if store {
            Access::store(VirtAddr(addr))
        } else {
            Access::load(VirtAddr(addr))
        }
    })
}

fn replayed(buf: &TraceBuffer) -> Vec<Access> {
    let mut out = Vec::new();
    buf.replay(&mut |a| out.push(a)).expect("replay failed");
    out
}

proptest! {
    #[test]
    fn in_memory_record_replay_round_trips(accesses in vec(any_access(), 1..400)) {
        let mut w = RecordedTrace::new(accesses.clone());
        let meta = w.meta();
        let buf = TraceBuffer::record(&mut w).expect("record failed");
        prop_assert!(!buf.spilled(), "default budget must hold a tiny stream");
        prop_assert_eq!(buf.len(), accesses.len() as u64);
        prop_assert_eq!(buf.meta(), &meta);
        prop_assert_eq!(replayed(&buf), accesses);
    }

    #[test]
    fn spilled_record_replay_round_trips(accesses in vec(any_access(), 16..400)) {
        // A 64-byte budget forces any stream past 8 encoded words onto
        // disk, exercising the spill writer and reader.
        let mut w = RecordedTrace::new(accesses.clone());
        let buf = TraceBuffer::record_with_budget(&mut w, 64).expect("record failed");
        prop_assert!(buf.spilled(), "budget of 64 bytes must spill {} accesses", accesses.len());
        prop_assert_eq!(buf.len(), accesses.len() as u64);
        prop_assert_eq!(replayed(&buf), accesses);
    }

    #[test]
    fn replay_many_is_stable(accesses in vec(any_access(), 1..200)) {
        // Record once, replay many: every replay — closure-based or via
        // the Workload adapter — yields the identical stream.
        let mut w = RecordedTrace::new(accesses.clone());
        let buf = TraceBuffer::record_with_budget(&mut w, 64).expect("record failed");
        let first = replayed(&buf);
        let second = replayed(&buf);
        prop_assert_eq!(&first, &second);
        let mut via_workload = Vec::new();
        let mut replayer = buf.replayer();
        replayer.run(&mut |a| via_workload.push(a));
        prop_assert!(replayer.error().is_none());
        prop_assert_eq!(via_workload, accesses);
    }
}
