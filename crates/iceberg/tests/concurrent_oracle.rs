//! Concurrent-vs-serial-oracle equivalence and epoch-reclamation safety.
//!
//! Two harness shapes, matching what each can honestly promise:
//!
//! * **Seeded logical interleavings** — N logical threads' op streams are
//!   interleaved whole-op by a seeded scheduler and executed on one real
//!   thread. Whole ops linearize trivially, so the concurrent table must
//!   match the serial table **exactly**: every outcome, every placement
//!   slot, every conflict (including remove-heavy and at-capacity
//!   insert-failure interleavings), plus final occupancy/probe stats.
//! * **Real-thread stress** — threads race on disjoint key ranges below
//!   85 % load; each op's linearization stamp orders a log that is then
//!   replayed into a fresh serial table. Final contents, length and load
//!   factor must agree (placement itself may legally differ: power-of-d
//!   reads transient fills under real races).

use mosaic_hash::{SplitMix64, XxFamily};
use mosaic_iceberg::{ConcurrentIcebergTable, IcebergConfig, IcebergTable, SlotState};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
}

/// One logical thread's op stream over a shared keyspace; `remove_weight`
/// removes per 3 inserts (the vendored proptest's `prop_oneof!` is
/// unweighted, so the bias rides in a selector field).
fn stream_strategy(keyspace: u64, remove_weight: u32) -> impl Strategy<Value = Vec<Op>> {
    let op = (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(move |(k, v, sel)| {
        if sel % (3 + remove_weight) < 3 {
            Op::Insert(k % keyspace, v)
        } else {
            Op::Remove(k % keyspace)
        }
    });
    prop::collection::vec(op, 1..120)
}

/// Interleaves the streams whole-op with a seeded scheduler and runs the
/// same sequence through both tables, demanding exact equality.
fn check_interleaving(buckets: usize, streams: Vec<Vec<Op>>, sched_seed: u64) -> Result<(), TestCaseError> {
    let cfg = IcebergConfig::paper_default(buckets);
    let ct: ConcurrentIcebergTable<u64, u64, XxFamily> =
        ConcurrentIcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 0xFEED));
    let mut st: IcebergTable<u64, u64, XxFamily> =
        IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 0xFEED));

    let mut cursors: Vec<std::vec::IntoIter<Op>> =
        streams.into_iter().map(Vec::into_iter).collect();
    let mut rng = SplitMix64::new(sched_seed);
    let mut live: Vec<usize> = (0..cursors.len()).collect();
    while !live.is_empty() {
        let pick = rng.next_below(live.len() as u64) as usize;
        let Some(op) = cursors[live[pick]].next() else {
            live.swap_remove(pick);
            continue;
        };
        match op {
            Op::Insert(k, v) => {
                let c = ct.insert(k, v).map(|(_, o)| o).map_err(|e| e.value);
                let s = st.insert(k, v).map_err(|e| e.value);
                prop_assert_eq!(c, s, "insert({}) diverged", k);
            }
            Op::Remove(k) => {
                let c = ct.remove(&k).map(|(_, v)| v);
                let s = st.remove(&k);
                prop_assert_eq!(c, s, "remove({}) diverged", k);
            }
        }
        prop_assert_eq!(ct.len(), st.len());
    }

    prop_assert_eq!(ct.pending_reclaim(), 0, "unpinned limbo must drain");
    let (co, so) = (ct.occupancy(), st.occupancy());
    prop_assert_eq!(co.front_occupied, so.front_occupied);
    prop_assert_eq!(co.back_occupied, so.back_occupied);
    // Probe-length (candidate-index) distribution: exact per key.
    for (k, v) in st.iter() {
        prop_assert_eq!(ct.get(k), Some(*v));
        prop_assert_eq!(ct.slot_of(k), st.slot_of(k), "placement of {} diverged", k);
        prop_assert_eq!(ct.candidate_index_of(k), st.candidate_index_of(k));
    }
    ct.verify().expect("concurrent invariants");
    st.verify().expect("serial invariants");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mixed insert/remove interleavings well below capacity.
    #[test]
    fn interleavings_match_serial_oracle(
        streams in prop::collection::vec(stream_strategy(300, 1), 2..5),
        sched_seed in any::<u64>(),
    ) {
        check_interleaving(8, streams, sched_seed)?; // 512 slots >= 300 keys
    }

    /// Remove-heavy interleavings: the limbo/reclaim path dominates.
    #[test]
    fn remove_heavy_interleavings_match_serial_oracle(
        streams in prop::collection::vec(stream_strategy(300, 6), 2..5),
        sched_seed in any::<u64>(),
    ) {
        check_interleaving(8, streams, sched_seed)?;
    }

    /// At-capacity interleavings: the keyspace (1200) exceeds the slot
    /// count (512), so insert failures (associativity conflicts) must
    /// fire at exactly the same ops as the serial table's.
    #[test]
    fn at_capacity_insert_failures_match_serial_oracle(
        streams in prop::collection::vec(stream_strategy(1200, 1), 2..5),
        sched_seed in any::<u64>(),
    ) {
        check_interleaving(8, streams, sched_seed)?;
    }

    /// Epoch-reclamation safety: while a reader guard from before the
    /// removals is pinned, no retired slot may be recycled (it stays
    /// LIMBO and is never re-handed to an insert); all drain on unpin.
    #[test]
    fn no_slot_reused_while_reader_holds_guard(
        keys in prop::collection::hash_set(0u64..400, 10..120),
        removals in prop::collection::vec(any::<u64>(), 1..40),
        fresh in prop::collection::hash_set(1000u64..1400, 1..60),
    ) {
        let cfg = IcebergConfig::paper_default(8);
        let ct: ConcurrentIcebergTable<u64, u64, XxFamily> =
            ConcurrentIcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 0xACE));
        let keys: Vec<u64> = keys.into_iter().collect();
        for &k in &keys {
            ct.insert(k, k).expect("below capacity");
        }
        let reader = ct.register_reader();
        let guard = reader.pin();
        let mut retired = Vec::new();
        for idx in removals {
            let k = keys[(idx % keys.len() as u64) as usize];
            if let Some(slot) = ct.slot_of(&k) {
                if ct.remove(&k).is_some() {
                    retired.push(slot);
                }
            }
        }
        // Pressure the allocator while the guard is live: fresh inserts
        // and explicit quiesce attempts must not recycle retired slots.
        ct.quiesce();
        for &k in &fresh {
            ct.insert(k, k).expect("still below capacity");
        }
        prop_assert_eq!(ct.pending_reclaim(), retired.len());
        for &slot in &retired {
            prop_assert_eq!(ct.slot_state(slot), SlotState::Limbo,
                "slot {:?} recycled under a pinned reader", slot);
        }
        drop(guard);
        prop_assert_eq!(ct.quiesce(), 0);
        for &slot in &retired {
            prop_assert_eq!(ct.slot_state(slot), SlotState::Empty);
        }
        ct.verify().expect("invariants after drain");
    }
}

/// Real threads, disjoint key ranges, ≤85 % load: the stamped op log,
/// replayed serially in stamp order, must reproduce the concurrent
/// table's final contents exactly — and no conflicts may fire.
#[test]
fn real_thread_stress_matches_serialized_replay() {
    let cfg = IcebergConfig::paper_default(32); // 2048 slots
    let ct: ConcurrentIcebergTable<u64, u64, XxFamily> =
        ConcurrentIcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 0xD1CE));
    let threads = 4u64;
    let per = 400u64; // peak 1600 live entries = 78 % load
    let logs: Vec<Vec<(u64, Op)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ct = &ct;
                s.spawn(move || {
                    let mut rng = SplitMix64::new(0x5EED ^ t);
                    let mut log = Vec::new();
                    let mut live: Vec<u64> = Vec::new();
                    for i in 0..per {
                        let key = t * 1_000_000 + i;
                        let (seq, _) = ct.insert(key, key ^ 0xFF).expect("below 85% load");
                        log.push((seq, Op::Insert(key, key ^ 0xFF)));
                        live.push(key);
                        // Remove ~1/3 of our own keys as we go.
                        if rng.next_below(3) == 0 {
                            let victim = live.swap_remove(
                                rng.next_below(live.len() as u64) as usize,
                            );
                            let (seq, _) = ct.remove(&victim).expect("own key present");
                            log.push((seq, Op::Remove(victim)));
                        }
                    }
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });

    ct.quiesce();
    assert_eq!(ct.conflict_count(), 0, "78% load must not conflict");
    assert_eq!(ct.pending_reclaim(), 0);
    ct.verify().expect("concurrent invariants");

    // Serialized replay in linearization-stamp order.
    let mut log: Vec<(u64, Op)> = logs.into_iter().flatten().collect();
    log.sort_unstable_by_key(|&(seq, _)| seq);
    let stamps: Vec<u64> = log.iter().map(|&(s, _)| s).collect();
    assert_eq!(stamps.len() as u64, ct.seq(), "stamps are dense");
    assert!(stamps.windows(2).all(|w| w[0] < w[1]), "stamps are unique");
    let mut oracle: IcebergTable<u64, u64, XxFamily> =
        IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 0xD1CE));
    for (_, op) in log {
        match op {
            Op::Insert(k, v) => {
                oracle.insert(k, v).expect("oracle below capacity");
            }
            Op::Remove(k) => {
                oracle.remove(&k).expect("oracle has the key");
            }
        }
    }
    assert_eq!(ct.len(), oracle.len());
    assert!((ct.load_factor() - oracle.load_factor()).abs() < 1e-12);
    let mut got: Vec<(u64, u64)> = ct.iter_snapshot();
    got.sort_unstable();
    let mut want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    want.sort_unstable();
    assert_eq!(got, want, "final contents differ from serialized replay");
}
