//! Model-based property tests: an [`IcebergTable`] must behave exactly
//! like a `HashMap` for every operation sequence (as long as inserts
//! succeed), while additionally honouring the Iceberg guarantees.

use mosaic_hash::XxFamily;
use mosaic_iceberg::{IcebergConfig, IcebergTable, InsertOutcome, Yard};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 800, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 800)),
        any::<u16>().prop_map(|k| Op::Get(k % 800)),
    ]
}

proptest! {
    /// Semantic equivalence with HashMap across arbitrary op sequences.
    #[test]
    fn behaves_like_hashmap(ops in prop::collection::vec(op_strategy(), 1..300), seed in any::<u64>()) {
        let cfg = IcebergConfig::paper_default(32); // 2048 slots >> 800 keys
        let mut table: IcebergTable<u16, u32, XxFamily> =
            IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), seed));
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let expect_update = model.contains_key(&k);
                    let outcome = table.insert(k, v).expect("far below capacity");
                    model.insert(k, v);
                    prop_assert_eq!(
                        matches!(outcome, InsertOutcome::Updated(_)),
                        expect_update
                    );
                }
                Op::Remove(k) => {
                    prop_assert_eq!(table.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(table.get(&k), model.get(&k));
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        // Final sweep: identical contents.
        for (k, v) in &model {
            prop_assert_eq!(table.get(k), Some(v));
        }
        let mut dumped: Vec<(u16, u32)> = table.iter().map(|(&k, &v)| (k, v)).collect();
        dumped.sort_unstable();
        let mut expect: Vec<(u16, u32)> = model.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(dumped, expect);
    }

    /// Every stored entry sits in a slot belonging to its own candidate
    /// set, with a consistent candidate index.
    #[test]
    fn entries_live_in_their_candidate_sets(keys in prop::collection::hash_set(any::<u32>(), 1..500), seed in any::<u64>()) {
        let cfg = IcebergConfig::paper_default(16);
        let mut table: IcebergTable<u32, (), XxFamily> =
            IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), seed));
        for &k in &keys {
            if table.insert(k, ()).is_err() {
                break;
            }
        }
        for (&k, _) in table.iter() {
            let slot = table.slot_of(&k).expect("iterated key is present");
            let idx = table.candidate_index_of(&k).expect("slot is a candidate");
            let cands = table.candidates(&k);
            prop_assert_eq!(cands.slot_for_index(&cfg, idx), slot);
            match slot.yard {
                Yard::Front => prop_assert_eq!(slot.bucket, cands.front_bucket),
                Yard::Back => prop_assert!(cands.back_buckets.contains(&slot.bucket)),
            }
        }
    }

    /// Occupancy accounting is exact for any fill level.
    #[test]
    fn occupancy_matches_len(n in 0usize..1500, seed in any::<u64>()) {
        let cfg = IcebergConfig::paper_default(32);
        let mut table: IcebergTable<u32, (), XxFamily> =
            IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), seed));
        for k in 0..n as u32 {
            table.insert(k, ()).expect("below capacity");
        }
        let occ = table.occupancy();
        prop_assert_eq!(occ.occupied(), n);
        prop_assert_eq!(occ.occupied(), table.len());
        prop_assert!((occ.load_factor() - table.load_factor()).abs() < 1e-12);
    }
}
