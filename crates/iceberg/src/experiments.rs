//! Load-factor experiments over the raw hashing scheme.
//!
//! These measure δ — the headroom the scheme needs before its first
//! associativity conflict (§2.3, §4.2) — at the hash-table level, isolated
//! from paging concerns. The full-system Table 3 reproduction lives in
//! `mosaic-sim`; the functions here validate the underlying claim that
//! Iceberg hashing sustains ≈98 % utilization.

use crate::config::IcebergConfig;
use crate::stats::{OccupancyStats, Summary};
use crate::table::IcebergTable;
use mosaic_hash::{SplitMix64, XxFamily};

/// Result of filling a table until its first conflict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillResult {
    /// Occupancy at the moment the first insert failed.
    pub at_first_conflict: OccupancyStats,
    /// Number of successful insertions.
    pub inserted: usize,
}

impl FillResult {
    /// Utilization percentage at first conflict — the `1 − δ` of Table 3.
    pub fn first_conflict_percent(&self) -> f64 {
        self.at_first_conflict.utilization_percent()
    }
}

/// Inserts uniformly random distinct keys until the first associativity
/// conflict, returning the achieved utilization.
///
/// # Example
///
/// ```
/// use mosaic_iceberg::{experiments, IcebergConfig};
///
/// let cfg = IcebergConfig::paper_default(64);
/// let r = experiments::fill_to_first_conflict(cfg, 42);
/// assert!(r.first_conflict_percent() > 90.0);
/// ```
pub fn fill_to_first_conflict(cfg: IcebergConfig, seed: u64) -> FillResult {
    let mut rng = SplitMix64::new(seed);
    let family = XxFamily::new(cfg.hash_count(), rng.next_u64());
    let mut table: IcebergTable<u64, (), XxFamily> = IcebergTable::new(cfg, family);
    loop {
        let key = rng.next_u64();
        if table.contains_key(&key) {
            continue; // keep keys distinct
        }
        if table.insert(key, ()).is_err() {
            return FillResult {
                at_first_conflict: table.occupancy(),
                inserted: table.len(),
            };
        }
    }
}

/// Runs [`fill_to_first_conflict`] `runs` times with derived seeds and
/// summarises the first-conflict utilization percentage.
pub fn first_conflict_summary(cfg: IcebergConfig, seed: u64, runs: usize) -> Summary {
    assert!(runs > 0, "need at least one run");
    let mut rng = SplitMix64::new(seed);
    let samples: Vec<f64> = (0..runs)
        .map(|_| fill_to_first_conflict(cfg, rng.next_u64()).first_conflict_percent())
        .collect();
    Summary::of(&samples)
}

/// Measures steady-state behaviour under churn: fill to `target_load`, then
/// perform `churn_ops` random delete+insert pairs, reporting how many of the
/// churn inserts conflicted.
///
/// Iceberg's guarantees are for any request sequence chosen without
/// knowledge of the hash function, so conflict counts should stay near zero
/// for loads a few percent below 1.
pub fn churn_conflicts(
    cfg: IcebergConfig,
    seed: u64,
    target_load: f64,
    churn_ops: usize,
) -> usize {
    assert!(
        (0.0..=1.0).contains(&target_load),
        "target_load must be in [0, 1]"
    );
    let mut rng = SplitMix64::new(seed);
    let family = XxFamily::new(cfg.hash_count(), rng.next_u64());
    let mut table: IcebergTable<u64, (), XxFamily> = IcebergTable::new(cfg, family);
    let target = (cfg.total_slots() as f64 * target_load) as usize;

    let mut live: Vec<u64> = Vec::with_capacity(target);
    while table.len() < target {
        let key = rng.next_u64();
        if !table.contains_key(&key) && table.insert(key, ()).is_ok() {
            live.push(key);
        }
    }

    let mut conflicts = 0;
    for _ in 0..churn_ops {
        let victim_idx = rng.next_index(live.len());
        let victim = live.swap_remove(victim_idx);
        table.remove(&victim);
        loop {
            let key = rng.next_u64();
            if table.contains_key(&key) {
                continue;
            }
            match table.insert(key, ()) {
                Ok(_) => {
                    live.push(key);
                    break;
                }
                Err(_) => {
                    conflicts += 1;
                    // Count the conflict and retry with a fresh key, keeping
                    // the population size constant.
                }
            }
        }
    }
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_conflict_is_high_utilization() {
        // Paper: δ ≈ 2 %. Smaller tables have proportionally more variance;
        // at 256 buckets (16 Ki slots) we conservatively require > 95 %.
        let r = fill_to_first_conflict(IcebergConfig::paper_default(256), 7);
        assert!(
            r.first_conflict_percent() > 95.0,
            "got {:.2}%",
            r.first_conflict_percent()
        );
        assert_eq!(r.inserted, r.at_first_conflict.occupied());
    }

    #[test]
    fn backyard_stays_small_at_high_load() {
        let r = fill_to_first_conflict(IcebergConfig::paper_default(128), 9);
        // Backyard is 12.5 % of slots; at conflict it holds at most that.
        assert!(r.at_first_conflict.backyard_fraction() < 0.15);
    }

    #[test]
    fn summary_over_runs_is_tight() {
        let s = first_conflict_summary(IcebergConfig::paper_default(64), 3, 5);
        assert!(s.mean > 94.0, "mean {:.2}", s.mean);
        assert!(s.stddev < 3.0, "stddev {:.2}", s.stddev);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn churn_at_moderate_load_never_conflicts() {
        let c = churn_conflicts(IcebergConfig::paper_default(64), 11, 0.90, 2_000);
        assert_eq!(c, 0, "90% load must churn conflict-free");
    }

    #[test]
    fn churn_near_capacity_may_conflict_but_rarely() {
        // At 94 % load — still below the paper's 98 % conflict onset — churn
        // should conflict only occasionally even on a small table.
        let c = churn_conflicts(IcebergConfig::paper_default(64), 13, 0.94, 2_000);
        assert!(c < 100, "conflict rate too high near capacity: {c}");
    }

    #[test]
    #[should_panic(expected = "target_load")]
    fn bad_target_load_panics() {
        churn_conflicts(IcebergConfig::paper_default(8), 0, 1.5, 1);
    }
}
