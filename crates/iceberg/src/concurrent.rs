//! A sharded, lock-free-on-the-hot-path concurrent Iceberg table.
//!
//! [`ConcurrentIcebergTable`] keeps the *exact* geometry and placement
//! policy of the serial [`IcebergTable`](crate::IcebergTable) — same
//! [`CandidateSet`] per key, same front-yard-first scan, same
//! power-of-d-choices backyard with ties broken by lowest choice index —
//! but stores every slot as a triplet of atomic words so threads can
//! claim slots with CAS instead of taking a table lock:
//!
//! * a **state word** packing a 2-bit tag (`EMPTY → CLAIMED → OCCUPIED →
//!   LIMBO`) with a generation counter (bumped on every transition, so
//!   CAS can never ABA onto a recycled slot);
//! * a **key word** and a **value word**, each an injective 64-bit
//!   encoding via [`AtomicWord`].
//!
//! Readers use seqlock-style validation: load the state word, load
//! key/value, re-load the state word, and retry if the generation moved.
//! Removals do not free a slot immediately — the slot is *retired* into a
//! per-shard limbo list tagged with the current [`EpochDomain`] epoch,
//! and only recycled once no reader pinned before the retirement still
//! holds a [`Guard`](crate::epoch::Guard) (see [`crate::epoch`]). In
//! Mosaic terms: a frame being freed is not re-handed to another page
//! while an in-flight translation may still be using it.
//!
//! Two occupancy ledgers coexist by design:
//!
//! * `back_fill[b]` (per bucket) counts CLAIMED + OCCUPIED + LIMBO slots
//!   *plus outstanding reservations* — it is what power-of-d choices and
//!   bucket-full checks read, and it only drops back at reclaim time so
//!   a limbo slot can never be double-allocated;
//! * per-shard `front_occupied`/`back_occupied` count *logical* entries
//!   — they drop at remove time, so [`len`](ConcurrentIcebergTable::len)
//!   and [`occupancy`](ConcurrentIcebergTable::occupancy) reflect the
//!   map's contents, in O(shards).
//!
//! **Single-thread conformance.** With no guards pinned, a retirement is
//! reclaimed immediately (the limbo list never survives an operation),
//! so a single-threaded caller observes placements, conflicts, lengths
//! and occupancy byte-identical to the serial table — that is what lets
//! the tenants golden run unchanged with `--concurrent-alloc` at 1
//! thread, and what makes the serial table a replay *oracle* for
//! concurrent runs (see `tests/concurrent_oracle.rs`).
//!
//! **Same-key insert races.** Two threads inserting the *same* key
//! concurrently can both pass the update-in-place check and claim two
//! slots. The table resolves this deterministically after publication:
//! the copy at the lowest candidate index survives, any later copy is
//! retired (either by its own inserter or by the keeper's inserter,
//! whichever notices first — slot generations make the retire race
//! safe). Mosaic's allocator never inserts one page concurrently from
//! two threads, so this path is a guard rail, not a hot path.

use crate::config::IcebergConfig;
use crate::epoch::{EpochDomain, Participant};
use crate::placement::{CandidateSet, SlotRef, Yard};
use crate::stats::OccupancyStats;
use crate::table::{IcebergKey, InsertError, InsertOutcome, TableInvariantError};
use mosaic_hash::HashFamily;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Mutex, PoisonError};

/// Types storable in a [`ConcurrentIcebergTable`] slot word: an
/// **injective** round-trip through `u64`. Injectivity is what lets the
/// seqlock read path compare keys by word without false positives.
pub trait AtomicWord: Copy + Eq {
    /// Encodes `self` as a 64-bit word.
    fn to_word(&self) -> u64;
    /// Decodes a word produced by [`to_word`](Self::to_word).
    fn from_word(word: u64) -> Self;
}

macro_rules! impl_atomic_word_for_uint {
    ($($t:ty),*) => {
        $(impl AtomicWord for $t {
            fn to_word(&self) -> u64 {
                u64::from(*self)
            }
            fn from_word(word: u64) -> Self {
                word as $t
            }
        })*
    };
}

impl_atomic_word_for_uint!(u8, u16, u32, u64);

impl AtomicWord for (u32, u32) {
    fn to_word(&self) -> u64 {
        (u64::from(self.0) << 32) | u64::from(self.1)
    }
    fn from_word(word: u64) -> Self {
        ((word >> 32) as u32, word as u32)
    }
}

/// The lifecycle tag of one concurrent slot (low 2 bits of its state
/// word; the rest is the anti-ABA generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Free and claimable.
    Empty,
    /// Mid-transition: an operation holds the slot exclusively.
    Claimed,
    /// Holds a live entry.
    Occupied,
    /// Retired by a remove; awaiting epoch reclamation before reuse.
    Limbo,
}

const TAG_EMPTY: u64 = 0;
const TAG_CLAIMED: u64 = 1;
const TAG_OCCUPIED: u64 = 2;
const TAG_LIMBO: u64 = 3;

fn pack(generation: u64, tag: u64) -> u64 {
    (generation << 2) | tag
}

fn tag_of(word: u64) -> u64 {
    word & 0b11
}

fn gen_of(word: u64) -> u64 {
    word >> 2
}

/// A retired slot waiting out its epoch in a shard's limbo list.
#[derive(Debug, Clone, Copy)]
struct LimboEntry {
    slot: SlotRef,
    /// Global epoch at retirement; recyclable once `< min_pinned`.
    epoch: u64,
}

/// Per-shard bookkeeping: logical occupancy counters plus the limbo
/// list for retired slots whose buckets hash to this shard.
#[derive(Debug)]
struct Shard {
    front_occupied: AtomicUsize,
    back_occupied: AtomicUsize,
    limbo: Mutex<Vec<LimboEntry>>,
}

/// Maximum shard count; buckets are striped `bucket % shards`.
const MAX_SHARDS: usize = 16;

/// A concurrent Iceberg hash table sharing the serial table's placement
/// policy exactly — see the [module docs](self) for the protocol.
///
/// All operations take `&self`; the table is `Sync` and is shared across
/// threads by reference (or `Arc`).
#[derive(Debug)]
pub struct ConcurrentIcebergTable<K, V, F> {
    cfg: IcebergConfig,
    family: F,
    /// Flat front-yard state words: `bucket * front_slots + slot`.
    front_state: Vec<AtomicU64>,
    front_key: Vec<AtomicU64>,
    front_val: Vec<AtomicU64>,
    /// Flat backyard state words: `bucket * back_slots + slot`.
    back_state: Vec<AtomicU64>,
    back_key: Vec<AtomicU64>,
    back_val: Vec<AtomicU64>,
    /// Per-bucket allocation ledger: non-EMPTY slots + reservations.
    back_fill: Vec<AtomicU32>,
    shards: Vec<Shard>,
    /// Linearization stamp source: each committing op takes the next.
    seq: AtomicU64,
    inserts: AtomicU64,
    conflicts: AtomicU64,
    domain: EpochDomain,
    _marker: PhantomData<(K, V)>,
}

impl<K, V, F> ConcurrentIcebergTable<K, V, F>
where
    K: IcebergKey + AtomicWord,
    V: AtomicWord,
    F: HashFamily,
{
    /// Creates an empty table with the given geometry and hash family.
    ///
    /// # Panics
    ///
    /// Panics if the family provides fewer than `cfg.hash_count()`
    /// functions (same contract as the serial table).
    pub fn new(cfg: IcebergConfig, family: F) -> Self {
        assert!(
            family.count() >= cfg.hash_count(),
            "hash family has {} functions but the scheme needs {}",
            family.count(),
            cfg.hash_count()
        );
        let atoms = |n: usize| -> Vec<AtomicU64> {
            std::iter::repeat_with(|| AtomicU64::new(0)).take(n).collect()
        };
        let front_n = cfg.num_buckets() * cfg.front_slots();
        let back_n = cfg.num_buckets() * cfg.back_slots();
        let num_shards = cfg.num_buckets().clamp(1, MAX_SHARDS);
        Self {
            front_state: atoms(front_n),
            front_key: atoms(front_n),
            front_val: atoms(front_n),
            back_state: atoms(back_n),
            back_key: atoms(back_n),
            back_val: atoms(back_n),
            back_fill: std::iter::repeat_with(|| AtomicU32::new(0))
                .take(cfg.num_buckets())
                .collect(),
            shards: std::iter::repeat_with(|| Shard {
                front_occupied: AtomicUsize::new(0),
                back_occupied: AtomicUsize::new(0),
                limbo: Mutex::new(Vec::new()),
            })
            .take(num_shards)
            .collect(),
            seq: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            domain: EpochDomain::new(),
            cfg,
            family,
            _marker: PhantomData,
        }
    }

    /// The table geometry.
    pub fn config(&self) -> &IcebergConfig {
        &self.cfg
    }

    /// The epoch domain governing slot reclamation; register readers
    /// here (or via [`register_reader`](Self::register_reader)).
    pub fn domain(&self) -> &EpochDomain {
        &self.domain
    }

    /// Registers a reader participant: pin it around lookups whose slot
    /// (frame) must not be recycled mid-read.
    pub fn register_reader(&self) -> Participant {
        self.domain.register()
    }

    /// The candidate set for a key (identical to the serial table's).
    pub fn candidates(&self, key: &K) -> CandidateSet {
        CandidateSet::compute(&self.family, &self.cfg, key.hash_key())
    }

    fn state_cell(&self, slot: SlotRef) -> &AtomicU64 {
        match slot.yard {
            Yard::Front => &self.front_state[slot.bucket * self.cfg.front_slots() + slot.slot],
            Yard::Back => &self.back_state[slot.bucket * self.cfg.back_slots() + slot.slot],
        }
    }

    fn key_cell(&self, slot: SlotRef) -> &AtomicU64 {
        match slot.yard {
            Yard::Front => &self.front_key[slot.bucket * self.cfg.front_slots() + slot.slot],
            Yard::Back => &self.back_key[slot.bucket * self.cfg.back_slots() + slot.slot],
        }
    }

    fn val_cell(&self, slot: SlotRef) -> &AtomicU64 {
        match slot.yard {
            Yard::Front => &self.front_val[slot.bucket * self.cfg.front_slots() + slot.slot],
            Yard::Back => &self.back_val[slot.bucket * self.cfg.back_slots() + slot.slot],
        }
    }

    fn shard_of(&self, bucket: usize) -> usize {
        bucket % self.shards.len()
    }

    fn stamp(&self) -> u64 {
        self.seq.fetch_add(1, SeqCst) + 1
    }

    /// Number of entries (sum of the per-shard logical counters).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.front_occupied.load(SeqCst) + s.back_occupied.load(SeqCst))
            .sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current load factor (`len / total_slots`).
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.cfg.total_slots() as f64
    }

    /// Occupancy statistics from the per-shard counters — O(shards),
    /// and equal to the serial table's after a serialized replay.
    pub fn occupancy(&self) -> OccupancyStats {
        let front = self.shards.iter().map(|s| s.front_occupied.load(SeqCst)).sum();
        let back = self.shards.iter().map(|s| s.back_occupied.load(SeqCst)).sum();
        OccupancyStats::new(&self.cfg, front, back)
    }

    /// Highest linearization stamp handed out so far (0 before any op).
    pub fn seq(&self) -> u64 {
        self.seq.load(SeqCst)
    }

    /// Successful placements so far.
    pub fn insert_count(&self) -> u64 {
        self.inserts.load(SeqCst)
    }

    /// Associativity conflicts so far (inserts refused with every
    /// candidate slot unavailable even after a reclamation pass).
    pub fn conflict_count(&self) -> u64 {
        self.conflicts.load(SeqCst)
    }

    /// The lifecycle tag of a slot right now (racy by nature; exact
    /// under quiescence — meant for harnesses and invariant checks).
    pub fn slot_state(&self, slot: SlotRef) -> SlotState {
        match tag_of(self.state_cell(slot).load(SeqCst)) {
            TAG_EMPTY => SlotState::Empty,
            TAG_CLAIMED => SlotState::Claimed,
            TAG_OCCUPIED => SlotState::Occupied,
            _ => SlotState::Limbo,
        }
    }

    /// The allocation-ledger fill of one backyard bucket (what
    /// power-of-d reads); equals the serial `back_occupancy` under
    /// quiescence with an empty limbo.
    pub fn back_fill_of(&self, bucket: usize) -> u32 {
        self.back_fill[bucket].load(SeqCst)
    }

    /// Retired slots not yet recycled (sum of the shard limbo lists).
    pub fn pending_reclaim(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.limbo).len()).sum()
    }

    /// Advances the epoch and reclaims every shard's reclaimable limbo
    /// entries; returns how many retired slots remain (held by pinned
    /// readers). Call between phases, or after dropping guards.
    pub fn quiesce(&self) -> usize {
        self.domain.try_advance();
        for i in 0..self.shards.len() {
            self.reclaim_shard(i);
        }
        self.pending_reclaim()
    }

    fn reclaim_shard(&self, shard: usize) {
        let min = self.domain.min_pinned();
        let mut limbo = lock(&self.shards[shard].limbo);
        limbo.retain(|entry| {
            let free = min.is_none_or(|m| entry.epoch < m);
            if free {
                let st = self.state_cell(entry.slot);
                let s = st.load(SeqCst);
                debug_assert_eq!(tag_of(s), TAG_LIMBO);
                st.store(pack(gen_of(s) + 1, TAG_EMPTY), SeqCst);
                if entry.slot.yard == Yard::Back {
                    self.back_fill[entry.slot.bucket].fetch_sub(1, SeqCst);
                }
            }
            !free
        });
    }

    /// Retires an OCCUPIED slot into limbo (the tail of `remove` and of
    /// same-key duplicate resolution). No-op if the slot moved on.
    fn retire_slot(&self, slot: SlotRef) {
        let st = self.state_cell(slot);
        let s1 = st.load(SeqCst);
        if tag_of(s1) != TAG_OCCUPIED {
            return;
        }
        if st
            .compare_exchange(s1, pack(gen_of(s1) + 1, TAG_CLAIMED), SeqCst, SeqCst)
            .is_err()
        {
            return;
        }
        self.finish_retire(slot, gen_of(s1));
    }

    /// Publishes LIMBO for a slot this thread holds CLAIMED (claimed at
    /// generation `claimed_from`), updates the ledgers, and tries to
    /// reclaim. The epoch is read *after* the claim, so any reader that
    /// validated the slot OCCUPIED is pinned at or before it (see
    /// `crate::epoch` for why that blocks reclamation under them).
    fn finish_retire(&self, slot: SlotRef, claimed_from: u64) {
        let epoch = self.domain.epoch();
        self.state_cell(slot)
            .store(pack(claimed_from + 2, TAG_LIMBO), SeqCst);
        let shard = self.shard_of(slot.bucket);
        match slot.yard {
            Yard::Front => {
                self.shards[shard].front_occupied.fetch_sub(1, SeqCst);
            }
            Yard::Back => {
                self.shards[shard].back_occupied.fetch_sub(1, SeqCst);
            }
        }
        lock(&self.shards[shard].limbo).push(LimboEntry { slot, epoch });
        self.domain.try_advance();
        self.reclaim_shard(shard);
    }
}

impl<K, V, F> ConcurrentIcebergTable<K, V, F>
where
    K: IcebergKey + AtomicWord,
    V: AtomicWord,
    F: HashFamily,
{
    /// Inserts `key -> value`, returning the linearization stamp and the
    /// outcome. Placement policy is identical to the serial table:
    /// update in place, else first free front-yard slot, else first free
    /// slot of the emptiest backyard choice (ties to the lowest index).
    ///
    /// # Errors
    ///
    /// Returns [`InsertError`] handing `value` back when every candidate
    /// slot is unavailable even after one reclamation pass (an
    /// *associativity conflict* — single-threaded this is exactly the
    /// serial table's conflict, since the limbo is already empty).
    pub fn insert(&self, key: K, value: V) -> Result<(u64, InsertOutcome), InsertError<V>> {
        let cands = self.candidates(&key);
        match self.try_insert(&cands, key, value) {
            Ok(done) => Ok(done),
            Err(value) => {
                // Limbo slots are logically free: reclaim, then retry
                // once before declaring a conflict.
                self.domain.try_advance();
                for i in 0..self.shards.len() {
                    self.reclaim_shard(i);
                }
                self.try_insert(&cands, key, value).map_err(|value| {
                    self.conflicts.fetch_add(1, SeqCst);
                    InsertError { value }
                })
            }
        }
    }

    fn try_insert(
        &self,
        cands: &CandidateSet,
        key: K,
        value: V,
    ) -> Result<(u64, InsertOutcome), V> {
        // Stability: an existing key is updated where it lives.
        'rescan: loop {
            for slot in cands.slots(&self.cfg) {
                let st = self.state_cell(slot);
                loop {
                    let s1 = st.load(SeqCst);
                    match tag_of(s1) {
                        TAG_OCCUPIED => {
                            let kw = self.key_cell(slot).load(SeqCst);
                            if st.load(SeqCst) != s1 {
                                continue; // seqlock: slot moved, re-read
                            }
                            if K::from_word(kw) != key {
                                break;
                            }
                            let claimed = pack(gen_of(s1) + 1, TAG_CLAIMED);
                            if st.compare_exchange(s1, claimed, SeqCst, SeqCst).is_err() {
                                continue 'rescan;
                            }
                            self.val_cell(slot).store(value.to_word(), SeqCst);
                            let seq = self.stamp();
                            st.store(pack(gen_of(s1) + 2, TAG_OCCUPIED), SeqCst);
                            return Ok((seq, InsertOutcome::Updated(slot)));
                        }
                        TAG_CLAIMED => {
                            // An op is mid-flight on this slot; it will
                            // resolve to OCCUPIED or LIMBO momentarily.
                            std::hint::spin_loop();
                            continue;
                        }
                        _ => break,
                    }
                }
            }
            break;
        }

        // Front yard first.
        for idx in 0..self.cfg.front_slots() {
            let slot = SlotRef {
                yard: Yard::Front,
                bucket: cands.front_bucket,
                slot: idx,
            };
            let st = self.state_cell(slot);
            let s1 = st.load(SeqCst);
            if tag_of(s1) != TAG_EMPTY {
                continue;
            }
            if st
                .compare_exchange(s1, pack(gen_of(s1) + 1, TAG_CLAIMED), SeqCst, SeqCst)
                .is_err()
            {
                continue; // lost the slot; serial callers never do
            }
            self.key_cell(slot).store(key.to_word(), SeqCst);
            self.val_cell(slot).store(value.to_word(), SeqCst);
            let seq = self.stamp();
            st.store(pack(gen_of(s1) + 2, TAG_OCCUPIED), SeqCst);
            self.shards[self.shard_of(slot.bucket)]
                .front_occupied
                .fetch_add(1, SeqCst);
            self.inserts.fetch_add(1, SeqCst);
            self.resolve_duplicate(cands, key, slot);
            return Ok((seq, InsertOutcome::PlacedFront(slot)));
        }

        // Power of d choices over the backyard, via the fill ledger.
        loop {
            let emptiest = cands
                .back_buckets
                .iter()
                .copied()
                .min_by_key(|&b| self.back_fill[b].load(SeqCst))
                .expect("d_choices >= 1");
            let reserved = self.back_fill[emptiest]
                .fetch_update(SeqCst, SeqCst, |f| {
                    ((f as usize) < self.cfg.back_slots()).then_some(f + 1)
                })
                .is_ok();
            if !reserved {
                // The emptiest choice is full. If every choice is full
                // this is a conflict; otherwise we lost a race — re-pick.
                let all_full = cands.back_buckets.iter().all(|&b| {
                    self.back_fill[b].load(SeqCst) as usize >= self.cfg.back_slots()
                });
                if all_full {
                    return Err(value);
                }
                continue;
            }
            // Counting argument: `back_fill` counts every non-EMPTY slot
            // plus every outstanding reservation, so holding one means an
            // EMPTY slot exists in this bucket until we claim it.
            loop {
                let mut claimed_at = None;
                for idx in 0..self.cfg.back_slots() {
                    let slot = SlotRef {
                        yard: Yard::Back,
                        bucket: emptiest,
                        slot: idx,
                    };
                    let st = self.state_cell(slot);
                    let s1 = st.load(SeqCst);
                    if tag_of(s1) != TAG_EMPTY {
                        continue;
                    }
                    if st
                        .compare_exchange(s1, pack(gen_of(s1) + 1, TAG_CLAIMED), SeqCst, SeqCst)
                        .is_err()
                    {
                        continue;
                    }
                    claimed_at = Some((slot, gen_of(s1)));
                    break;
                }
                let Some((slot, generation)) = claimed_at else {
                    std::hint::spin_loop();
                    continue;
                };
                self.key_cell(slot).store(key.to_word(), SeqCst);
                self.val_cell(slot).store(value.to_word(), SeqCst);
                let seq = self.stamp();
                self.state_cell(slot)
                    .store(pack(generation + 2, TAG_OCCUPIED), SeqCst);
                self.shards[self.shard_of(slot.bucket)]
                    .back_occupied
                    .fetch_add(1, SeqCst);
                self.inserts.fetch_add(1, SeqCst);
                self.resolve_duplicate(cands, key, slot);
                return Ok((seq, InsertOutcome::PlacedBack(slot)));
            }
        }
    }

    /// Post-publication tie-break for racing same-key inserts: scan the
    /// other candidate slots; if a second copy exists, retire whichever
    /// sits at the higher candidate index (lowest index wins, so every
    /// racer converges on the same survivor). Single-threaded this finds
    /// nothing — the update-in-place check already ran.
    fn resolve_duplicate(&self, cands: &CandidateSet, key: K, mine: SlotRef) {
        let Some(my_idx) = cands.index_of_slot(&self.cfg, mine) else {
            return;
        };
        for (idx, slot) in cands.slots(&self.cfg).enumerate() {
            // Skip every appearance of our own slot: with few buckets the
            // d backyard choices can repeat, so one physical slot can sit
            // at several candidate indices.
            if slot == mine {
                continue;
            }
            let st = self.state_cell(slot);
            let s1 = st.load(SeqCst);
            if tag_of(s1) != TAG_OCCUPIED {
                continue;
            }
            let kw = self.key_cell(slot).load(SeqCst);
            if st.load(SeqCst) != s1 || K::from_word(kw) != key {
                continue;
            }
            let loser = if idx < my_idx { mine } else { slot };
            self.retire_slot(loser);
            if loser == mine {
                return;
            }
        }
    }

    /// Removes `key`, returning the linearization stamp and its value if
    /// present. The slot is retired into limbo, not freed — it becomes
    /// claimable again only once no pinned reader predates the removal
    /// (immediately, when nothing is pinned).
    pub fn remove(&self, key: &K) -> Option<(u64, V)> {
        let cands = self.candidates(key);
        'rescan: loop {
            for slot in cands.slots(&self.cfg) {
                let st = self.state_cell(slot);
                loop {
                    let s1 = st.load(SeqCst);
                    match tag_of(s1) {
                        TAG_OCCUPIED => {
                            let kw = self.key_cell(slot).load(SeqCst);
                            if st.load(SeqCst) != s1 {
                                continue;
                            }
                            if K::from_word(kw) != *key {
                                break;
                            }
                            let claimed = pack(gen_of(s1) + 1, TAG_CLAIMED);
                            if st.compare_exchange(s1, claimed, SeqCst, SeqCst).is_err() {
                                continue 'rescan;
                            }
                            let vw = self.val_cell(slot).load(SeqCst);
                            let seq = self.stamp();
                            self.finish_retire(slot, gen_of(s1));
                            return Some((seq, V::from_word(vw)));
                        }
                        TAG_CLAIMED => {
                            std::hint::spin_loop();
                            continue;
                        }
                        _ => break,
                    }
                }
            }
            return None;
        }
    }

    /// Finds the slot currently holding `key`, seqlock-validated.
    pub fn slot_of(&self, key: &K) -> Option<SlotRef> {
        self.find(key).map(|(slot, _)| slot)
    }

    /// Returns the value for `key` (by value — slots store words).
    pub fn get(&self, key: &K) -> Option<V> {
        self.find(key).map(|(_, vw)| V::from_word(vw))
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// The *candidate index* (CPFN encoding, also probe-length − 1 in
    /// canonical order) of `key`'s current slot, if present.
    pub fn candidate_index_of(&self, key: &K) -> Option<usize> {
        let cands = self.candidates(key);
        let (slot, _) = self.find(key)?;
        cands.index_of_slot(&self.cfg, slot)
    }

    fn find(&self, key: &K) -> Option<(SlotRef, u64)> {
        let cands = self.candidates(key);
        for slot in cands.slots(&self.cfg) {
            let st = self.state_cell(slot);
            loop {
                let s1 = st.load(SeqCst);
                match tag_of(s1) {
                    TAG_OCCUPIED => {
                        let kw = self.key_cell(slot).load(SeqCst);
                        let vw = self.val_cell(slot).load(SeqCst);
                        if st.load(SeqCst) != s1 {
                            continue; // torn read; retry this slot
                        }
                        if K::from_word(kw) == *key {
                            return Some((slot, vw));
                        }
                        break;
                    }
                    TAG_CLAIMED => {
                        // Mid-flight op (possibly an update of this very
                        // key): wait it out rather than report absence.
                        std::hint::spin_loop();
                        continue;
                    }
                    _ => break,
                }
            }
        }
        None
    }

    /// A point-in-time copy of all entries (per-slot seqlock reads; the
    /// set is exact under quiescence, best-effort under contention).
    pub fn iter_snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        let all_front = (0..self.cfg.num_buckets()).flat_map(|bucket| {
            (0..self.cfg.front_slots()).map(move |slot| SlotRef {
                yard: Yard::Front,
                bucket,
                slot,
            })
        });
        let all_back = (0..self.cfg.num_buckets()).flat_map(|bucket| {
            (0..self.cfg.back_slots()).map(move |slot| SlotRef {
                yard: Yard::Back,
                bucket,
                slot,
            })
        });
        for slot in all_front.chain(all_back) {
            let st = self.state_cell(slot);
            loop {
                let s1 = st.load(SeqCst);
                if tag_of(s1) != TAG_OCCUPIED {
                    break;
                }
                let kw = self.key_cell(slot).load(SeqCst);
                let vw = self.val_cell(slot).load(SeqCst);
                if st.load(SeqCst) != s1 {
                    continue;
                }
                out.push((K::from_word(kw), V::from_word(vw)));
                break;
            }
        }
        out
    }

    /// Checks structural invariants under **quiescence** (no in-flight
    /// ops): no slot left CLAIMED, the shard counters and per-bucket
    /// fill ledger match a full walk (fill = occupied + limbo), and
    /// every occupied slot sits inside its key's candidate set.
    pub fn verify(&self) -> Result<(), TableInvariantError> {
        let mut front_by_shard = vec![0usize; self.shards.len()];
        let mut back_by_shard = vec![0usize; self.shards.len()];
        for bucket in 0..self.cfg.num_buckets() {
            let mut bucket_fill = 0u32;
            for idx in 0..self.cfg.front_slots() {
                let slot = SlotRef { yard: Yard::Front, bucket, slot: idx };
                match self.slot_state(slot) {
                    SlotState::Claimed => {
                        return Err(TableInvariantError {
                            invariant: "concurrent-claimed",
                            detail: format!("slot {slot:?} left CLAIMED at quiescence"),
                        });
                    }
                    SlotState::Occupied => front_by_shard[self.shard_of(bucket)] += 1,
                    _ => {}
                }
            }
            for idx in 0..self.cfg.back_slots() {
                let slot = SlotRef { yard: Yard::Back, bucket, slot: idx };
                match self.slot_state(slot) {
                    SlotState::Claimed => {
                        return Err(TableInvariantError {
                            invariant: "concurrent-claimed",
                            detail: format!("slot {slot:?} left CLAIMED at quiescence"),
                        });
                    }
                    SlotState::Occupied => {
                        back_by_shard[self.shard_of(bucket)] += 1;
                        bucket_fill += 1;
                    }
                    SlotState::Limbo => bucket_fill += 1,
                    SlotState::Empty => {}
                }
            }
            let ledger = self.back_fill[bucket].load(SeqCst);
            if ledger != bucket_fill {
                return Err(TableInvariantError {
                    invariant: "back-fill",
                    detail: format!(
                        "bucket {bucket}: fill ledger {ledger} vs walked {bucket_fill}"
                    ),
                });
            }
        }
        for (i, shard) in self.shards.iter().enumerate() {
            let (f, b) = (
                shard.front_occupied.load(SeqCst),
                shard.back_occupied.load(SeqCst),
            );
            if f != front_by_shard[i] || b != back_by_shard[i] {
                return Err(TableInvariantError {
                    invariant: "yard-occupancy",
                    detail: format!(
                        "shard {i}: cached {f}/{b} front/back vs walk {}/{}",
                        front_by_shard[i], back_by_shard[i]
                    ),
                });
            }
        }
        for (key, _) in self.iter_snapshot() {
            let cands = self.candidates(&key);
            let Some(slot) = self.slot_of(&key) else {
                return Err(TableInvariantError {
                    invariant: "candidate-placement",
                    detail: "snapshotted key not findable via its candidates".into(),
                });
            };
            if cands.index_of_slot(&self.cfg, slot).is_none() {
                return Err(TableInvariantError {
                    invariant: "candidate-placement",
                    detail: format!("entry at {slot:?} is outside its candidate set"),
                });
            }
        }
        Ok(())
    }
}

/// Mutex acquisition that survives poisoning: the limbo lists hold plain
/// slot indices, valid regardless of a panicking holder.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::IcebergTable;
    use mosaic_hash::{SplitMix64, XxFamily};

    fn pair(buckets: usize) -> (
        ConcurrentIcebergTable<u64, u64, XxFamily>,
        IcebergTable<u64, u64, XxFamily>,
    ) {
        let cfg = IcebergConfig::paper_default(buckets);
        (
            ConcurrentIcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 0xC0FFEE)),
            IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 0xC0FFEE)),
        )
    }

    #[test]
    fn single_thread_matches_serial_table_exactly() {
        // Every op's outcome (placement slot included) must be identical
        // to the serial table's across a long random mixed workload —
        // the byte-identity that keeps the goldens intact at 1 thread.
        let (ct, mut st) = pair(8);
        let mut rng = SplitMix64::new(42);
        for step in 0..30_000u64 {
            let key = rng.next_below(900);
            if rng.next_below(3) == 0 {
                let c = ct.remove(&key).map(|(_, v)| v);
                let s = st.remove(&key);
                assert_eq!(c, s, "remove({key}) diverged at step {step}");
            } else {
                let c = ct.insert(key, step).map(|(_, o)| o).map_err(|e| e.value);
                let s = st.insert(key, step).map_err(|e| e.value);
                assert_eq!(c, s, "insert({key}) diverged at step {step}");
            }
            assert_eq!(ct.len(), st.len(), "len diverged at step {step}");
        }
        assert_eq!(ct.pending_reclaim(), 0, "unpinned limbo must drain");
        let co = ct.occupancy();
        let so = st.occupancy();
        assert_eq!(co.front_occupied, so.front_occupied);
        assert_eq!(co.back_occupied, so.back_occupied);
        // With an empty limbo the fill ledger IS the backyard occupancy
        // the serial power-of-d reads: recompute serial's per-bucket
        // counts from entry placements and compare.
        let mut serial_back = vec![0u32; st.config().num_buckets()];
        for (k, _) in st.iter() {
            if let Some(slot) = st.slot_of(k) {
                if slot.yard == Yard::Back {
                    serial_back[slot.bucket] += 1;
                }
            }
        }
        for (b, &expect) in serial_back.iter().enumerate() {
            assert_eq!(ct.back_fill_of(b), expect, "bucket {b} fill ledger");
        }
        ct.verify().expect("concurrent invariants hold");
        st.verify().expect("serial invariants hold");
        for (key, value) in ct.iter_snapshot() {
            assert_eq!(st.get(&key), Some(&value));
            assert_eq!(ct.slot_of(&key), st.slot_of(&key), "slot of {key}");
        }
    }

    #[test]
    fn conflict_hands_value_back_like_serial() {
        let cfg = IcebergConfig::new(1, 4, 2, 1);
        let ct: ConcurrentIcebergTable<u64, u64, _> =
            ConcurrentIcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 3));
        let mut st: IcebergTable<u64, u64, _> =
            IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 3));
        for k in 0..100u64 {
            let c = ct.insert(k, k).map(|(_, o)| o).map_err(|e| e.value);
            let s = st.insert(k, k).map_err(|e| e.value);
            assert_eq!(c, s, "key {k}");
        }
        assert_eq!(ct.conflict_count() as usize, 100 - cfg.total_slots());
    }

    #[test]
    fn seq_stamps_are_dense_and_monotone() {
        let (ct, _) = pair(8);
        let mut last = 0;
        for k in 0..100u64 {
            let (seq, _) = ct.insert(k, k).unwrap();
            assert_eq!(seq, last + 1);
            last = seq;
        }
        let (seq, _) = ct.remove(&50).unwrap();
        assert_eq!(seq, last + 1);
        assert_eq!(ct.seq(), seq);
    }

    #[test]
    fn limbo_slot_not_reused_while_guard_pinned() {
        let (ct, _) = pair(8);
        ct.insert(7, 70).unwrap();
        let slot = ct.slot_of(&7).expect("present");
        let reader = ct.register_reader();
        let guard = reader.pin();
        // Retire under the pin: the slot must stay in limbo, invisible
        // to allocation, until the guard drops.
        ct.remove(&7).unwrap();
        assert_eq!(ct.slot_state(slot), SlotState::Limbo);
        assert_eq!(ct.pending_reclaim(), 1);
        assert!(ct.quiesce() == 1, "pinned reader blocks reclamation");
        assert_eq!(ct.slot_state(slot), SlotState::Limbo);
        // Re-inserting the same key must not land on the limbo slot.
        ct.insert(7, 71).unwrap();
        assert_ne!(ct.slot_of(&7), Some(slot), "limbo slot was re-handed");
        drop(guard);
        assert_eq!(ct.quiesce(), 0, "unpinned limbo drains");
        assert_eq!(ct.slot_state(slot), SlotState::Empty);
        ct.verify().unwrap();
    }

    #[test]
    fn racing_same_key_inserts_leave_one_copy() {
        let cfg = IcebergConfig::paper_default(8);
        let ct: ConcurrentIcebergTable<u64, u64, _> =
            ConcurrentIcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 9));
        for round in 0..50u64 {
            let key = round;
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let ct = &ct;
                    s.spawn(move || {
                        let _ = ct.insert(key, t);
                    });
                }
            });
            ct.quiesce();
            let copies = ct
                .iter_snapshot()
                .iter()
                .filter(|(k, _)| *k == key)
                .count();
            assert_eq!(copies, 1, "round {round}: duplicate copies survived");
        }
        ct.verify().unwrap();
        assert_eq!(ct.len(), 50);
    }

    #[test]
    fn parallel_disjoint_inserts_and_removes_are_exact() {
        let cfg = IcebergConfig::paper_default(32);
        let ct: ConcurrentIcebergTable<u64, u64, _> =
            ConcurrentIcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 11));
        let threads = 4u64;
        let per = 300u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let ct = &ct;
                s.spawn(move || {
                    for i in 0..per {
                        let key = t * 1_000_000 + i;
                        ct.insert(key, key + 1).unwrap();
                    }
                    // Remove every other key again.
                    for i in (0..per).step_by(2) {
                        let key = t * 1_000_000 + i;
                        assert_eq!(ct.remove(&key).map(|(_, v)| v), Some(key + 1));
                    }
                });
            }
        });
        ct.quiesce();
        assert_eq!(ct.len() as u64, threads * per / 2);
        for t in 0..threads {
            for i in 0..per {
                let key = t * 1_000_000 + i;
                assert_eq!(ct.get(&key).is_some(), i % 2 == 1, "key {key}");
            }
        }
        ct.verify().unwrap();
        assert_eq!(ct.conflict_count(), 0);
    }

    #[test]
    fn atomic_word_round_trips() {
        assert_eq!(u8::from_word(7u8.to_word()), 7);
        assert_eq!(u16::from_word(0xBEEFu16.to_word()), 0xBEEF);
        assert_eq!(u32::from_word(0xDEAD_BEEFu32.to_word()), 0xDEAD_BEEF);
        assert_eq!(u64::from_word(u64::MAX.to_word()), u64::MAX);
        let t = (0xAAAA_0001u32, 0x5555_0002u32);
        assert_eq!(<(u32, u32)>::from_word(t.to_word()), t);
    }
}
