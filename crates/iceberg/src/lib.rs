//! Iceberg hashing: stable, low-associativity, high-utilization hash tables.
//!
//! Mosaic Pages structures physical memory as an *Iceberg hash table*
//! (Bender et al., 2021; paper §2.3). The scheme must satisfy three criteria
//! simultaneously, which classical tables cannot:
//!
//! 1. **Low associativity** — each key has at most `h` candidate slots
//!    (`h = 104` in the paper: one front-yard bucket of 56 slots plus
//!    `d = 6` backyard buckets of 8 slots each);
//! 2. **Stability** — once placed, an item never moves (unlike cuckoo
//!    hashing), so mapped pages are never migrated;
//! 3. **High utilization** — load factors within a few percent of 100 %
//!    before the first placement conflict (δ ≈ 2 % empirically, §4.2).
//!
//! This crate provides:
//!
//! * [`IcebergConfig`] — the bucket geometry (front/back yards, `d` choices);
//! * [`placement`] — pure candidate-set computation shared by the hash table
//!   and by the `mosaic-mem` frame allocator;
//! * [`IcebergTable`] — a generic stable hash table over the scheme;
//! * [`experiments`] — load-factor measurements (first-conflict utilization)
//!   underpinning the Table 3 reproduction.
//!
//! # Example
//!
//! ```
//! use mosaic_iceberg::{IcebergConfig, IcebergTable};
//! use mosaic_hash::XxFamily;
//!
//! let cfg = IcebergConfig::paper_default(64); // 64 buckets of 56 + 8 slots
//! let family = XxFamily::new(cfg.hash_count(), 1);
//! let mut table: IcebergTable<u64, &str, _> = IcebergTable::new(cfg, family);
//! table.insert(17, "value").unwrap();
//! assert_eq!(table.get(&17), Some(&"value"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Production code returns typed errors; .unwrap() is for tests only.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod concurrent;
pub mod config;
pub mod epoch;
pub mod experiments;
pub mod placement;
pub mod stats;
pub mod table;

pub use concurrent::{AtomicWord, ConcurrentIcebergTable, SlotState};
pub use config::IcebergConfig;
pub use epoch::{EpochDomain, Guard, Participant};
pub use placement::{CandidateSet, SlotRef, Yard};
pub use stats::OccupancyStats;
pub use table::{IcebergTable, InsertError, InsertOutcome, TableInvariantError};
