//! A minimal epoch-based reclamation domain for the concurrent table.
//!
//! Offline shim in the spirit of `crossbeam-epoch` (the `Atomic<Bucket>`
//! tables in SNIPPETS.md retire buckets through it): readers *pin* an
//! epoch before touching shared slots, removers *retire* slots into a
//! limbo list tagged with the epoch of removal, and retired slots are
//! only recycled once every pinned reader entered **after** the removal.
//!
//! Because this crate is `forbid(unsafe_code)`, slots are indices into
//! always-valid atomic arrays rather than raw pointers, so there is no
//! memory-safety hazard to begin with. The epoch protocol still carries
//! real semantics for Mosaic: a slot models a physical frame, and a
//! pinned guard models an in-flight translation that may still be using
//! the frame — the frame must not be handed to another page until that
//! reader is done (the "no slot reused while a reader holds a guard"
//! property the reclamation tests pin).
//!
//! The rules, precisely:
//!
//! * the global epoch `G` starts at 1 and only advances;
//! * [`Participant::pin`] publishes the current `G` as the participant's
//!   local epoch (re-reading until stable) and returns a [`Guard`];
//!   nested pins share the outermost epoch;
//! * a retirement performed while `G = e` is tagged `e`;
//! * a retired slot is reclaimable iff `e < m`, where `m` is the minimum
//!   local epoch over currently-pinned participants (everything is
//!   reclaimable when nothing is pinned) — a reader pinned at `m` can
//!   only be holding slots that were still live at `m`, so anything
//!   retired strictly before `m` is invisible to it;
//! * [`EpochDomain::try_advance`] bumps `G` when no participant is
//!   pinned below it, so long-held guards cannot stall the clock for
//!   later retirements.
//!
//! With no guards pinned, retire-then-reclaim frees immediately — which
//! is what keeps the concurrent table's single-threaded behaviour
//! byte-identical to the serial [`IcebergTable`](crate::IcebergTable).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Local-epoch sentinel: the participant is not currently pinned.
const UNPINNED: u64 = 0;
/// Local-epoch sentinel: the participant was dropped.
const RETIRED: u64 = u64::MAX;

#[derive(Debug)]
struct ParticipantSlot {
    /// The epoch this participant pinned at; [`UNPINNED`] / [`RETIRED`].
    epoch: AtomicU64,
    /// Pin nesting depth (a participant is single-threaded by contract).
    depth: AtomicU32,
}

#[derive(Debug)]
struct DomainInner {
    global: AtomicU64,
    participants: Mutex<Vec<Arc<ParticipantSlot>>>,
}

/// A reclamation domain: one global epoch clock plus its participants.
///
/// Cloning shares the domain (the clone is a second handle, not a second
/// clock).
#[derive(Debug, Clone)]
pub struct EpochDomain {
    inner: Arc<DomainInner>,
}

impl Default for EpochDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochDomain {
    /// A fresh domain with no participants, at epoch 1.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(DomainInner {
                global: AtomicU64::new(1),
                participants: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The current global epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.global.load(Ordering::SeqCst)
    }

    /// Registers a new participant (typically one per thread).
    pub fn register(&self) -> Participant {
        let slot = Arc::new(ParticipantSlot {
            epoch: AtomicU64::new(UNPINNED),
            depth: AtomicU32::new(0),
        });
        let mut list = lock(&self.inner.participants);
        // Dropped participants are pruned lazily here, so the list stays
        // proportional to live registrations.
        list.retain(|p| p.epoch.load(Ordering::SeqCst) != RETIRED);
        list.push(Arc::clone(&slot));
        drop(list);
        Participant {
            slot,
            domain: Arc::clone(&self.inner),
        }
    }

    /// The minimum epoch any currently-pinned participant holds, or
    /// `None` when nothing is pinned (everything retired is reclaimable).
    pub fn min_pinned(&self) -> Option<u64> {
        lock(&self.inner.participants)
            .iter()
            .map(|p| p.epoch.load(Ordering::SeqCst))
            .filter(|&e| e != UNPINNED && e != RETIRED)
            .min()
    }

    /// Advances the global epoch if no participant is pinned below it.
    /// Returns whether the clock moved.
    pub fn try_advance(&self) -> bool {
        let g = self.inner.global.load(Ordering::SeqCst);
        let stalled = lock(&self.inner.participants).iter().any(|p| {
            let e = p.epoch.load(Ordering::SeqCst);
            e != UNPINNED && e != RETIRED && e < g
        });
        if stalled {
            return false;
        }
        self.inner
            .global
            .compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Whether a retirement tagged `epoch` is safe to recycle now.
    pub fn reclaimable(&self, epoch: u64) -> bool {
        self.min_pinned().is_none_or(|m| epoch < m)
    }
}

/// One thread's membership in an [`EpochDomain`]. Obtain with
/// [`EpochDomain::register`]; pin with [`Participant::pin`].
///
/// A participant must only be used from one thread at a time (it is
/// `Send`, so it may be *moved* into a worker), matching crossbeam's
/// per-thread participant model.
#[derive(Debug)]
pub struct Participant {
    slot: Arc<ParticipantSlot>,
    domain: Arc<DomainInner>,
}

impl Participant {
    /// Pins the current epoch, returning a guard; shared slots read while
    /// any guard is live cannot be recycled under the reader. Nested pins
    /// keep the outermost epoch.
    pub fn pin(&self) -> Guard<'_> {
        if self.slot.depth.fetch_add(1, Ordering::SeqCst) == 0 {
            // Publish-and-recheck: if the global moved between our read
            // and our publish, republish so `min_pinned` never misses us
            // at an epoch older than anything we could observe.
            let mut e = self.domain.global.load(Ordering::SeqCst);
            loop {
                self.slot.epoch.store(e, Ordering::SeqCst);
                let again = self.domain.global.load(Ordering::SeqCst);
                if again == e {
                    break;
                }
                e = again;
            }
        }
        Guard { participant: self }
    }

    /// Whether this participant currently holds any guard.
    pub fn is_pinned(&self) -> bool {
        self.slot.depth.load(Ordering::SeqCst) > 0
    }
}

impl Drop for Participant {
    fn drop(&mut self) {
        self.slot.epoch.store(RETIRED, Ordering::SeqCst);
    }
}

/// An active pin; dropping the last nested guard unpins the participant.
#[derive(Debug)]
pub struct Guard<'a> {
    participant: &'a Participant,
}

impl Guard<'_> {
    /// The epoch this guard (chain) is pinned at.
    pub fn epoch(&self) -> u64 {
        self.participant.slot.epoch.load(Ordering::SeqCst)
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        if self.participant.slot.depth.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.participant.slot.epoch.store(UNPINNED, Ordering::SeqCst);
        }
    }
}

/// Mutex acquisition that survives poisoning: the protected data is a
/// plain list of atomics, valid regardless of a panicking holder.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpinned_domain_reclaims_everything() {
        let d = EpochDomain::new();
        assert_eq!(d.epoch(), 1);
        assert!(d.reclaimable(1));
        assert!(d.min_pinned().is_none());
        assert!(d.try_advance());
        assert_eq!(d.epoch(), 2);
    }

    #[test]
    fn pinned_guard_blocks_reclaim_of_its_epoch() {
        let d = EpochDomain::new();
        let p = d.register();
        let g = p.pin();
        let e = g.epoch();
        // A retirement at the reader's epoch (or later) must wait.
        assert!(!d.reclaimable(e));
        // But anything retired strictly before the pin is invisible.
        assert!(d.reclaimable(e - 1));
        drop(g);
        assert!(d.reclaimable(e));
    }

    #[test]
    fn advance_skips_past_pinned_epoch_once() {
        let d = EpochDomain::new();
        let p = d.register();
        let _g = p.pin();
        // The pinned participant sits AT the global epoch, so the clock
        // may advance once past it — but retirements tagged at or after
        // the pin stay blocked.
        assert!(d.try_advance());
        let pinned = d.min_pinned().expect("one guard live");
        assert!(!d.reclaimable(pinned));
        assert!(d.reclaimable(pinned - 1));
    }

    #[test]
    fn nested_pins_share_the_outer_epoch() {
        let d = EpochDomain::new();
        let p = d.register();
        let g1 = p.pin();
        let outer = g1.epoch();
        d.try_advance();
        let g2 = p.pin();
        assert_eq!(g2.epoch(), outer, "nested pin keeps the outer epoch");
        drop(g2);
        assert!(p.is_pinned());
        drop(g1);
        assert!(!p.is_pinned());
        assert!(d.min_pinned().is_none());
    }

    #[test]
    fn dropped_participants_are_pruned() {
        let d = EpochDomain::new();
        let p1 = d.register();
        drop(p1);
        // A retired participant never stalls the clock or the min scan.
        assert!(d.min_pinned().is_none());
        assert!(d.try_advance());
        let p2 = d.register();
        let _g = p2.pin();
        assert!(d.min_pinned().is_some());
    }

    #[test]
    fn cross_thread_pin_is_visible() {
        let d = EpochDomain::new();
        let p = d.register();
        let d2 = d.clone();
        std::thread::scope(|s| {
            let handle = s.spawn(move || {
                let g = p.pin();
                let e = g.epoch();
                assert!(!d2.reclaimable(e));
                e
            });
            let e = handle.join().expect("reader thread");
            // The guard died with the thread's scope.
            assert!(d.reclaimable(e));
        });
    }
}
