//! Occupancy statistics for Iceberg tables and allocators.

use crate::config::IcebergConfig;

/// A snapshot of how full an Iceberg structure is, split by yard.
///
/// The Iceberg analysis (§2.3) predicts the backyard holds only
/// `o(p / log log p)` elements; [`backyard_fraction`](Self::backyard_fraction)
/// lets experiments check that directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyStats {
    /// Total slots in the structure (`p`).
    pub total_slots: usize,
    /// Total front-yard slots.
    pub front_slots: usize,
    /// Total backyard slots.
    pub back_slots: usize,
    /// Occupied front-yard slots.
    pub front_occupied: usize,
    /// Occupied backyard slots.
    pub back_occupied: usize,
}

impl OccupancyStats {
    /// Builds stats from per-yard occupied counts under a geometry.
    ///
    /// # Panics
    ///
    /// Panics if either occupied count exceeds its yard's capacity.
    pub fn new(cfg: &IcebergConfig, front_occupied: usize, back_occupied: usize) -> Self {
        let front_slots = cfg.num_buckets() * cfg.front_slots();
        let back_slots = cfg.num_buckets() * cfg.back_slots();
        assert!(front_occupied <= front_slots, "front overflow");
        assert!(back_occupied <= back_slots, "back overflow");
        Self {
            total_slots: front_slots + back_slots,
            front_slots,
            back_slots,
            front_occupied,
            back_occupied,
        }
    }

    /// Total occupied slots.
    pub fn occupied(&self) -> usize {
        self.front_occupied + self.back_occupied
    }

    /// Overall load factor in `[0, 1]`.
    pub fn load_factor(&self) -> f64 {
        self.occupied() as f64 / self.total_slots as f64
    }

    /// Utilization as a percentage, the unit Table 3 reports.
    pub fn utilization_percent(&self) -> f64 {
        self.load_factor() * 100.0
    }

    /// Fraction of *occupied* slots that live in the backyard.
    pub fn backyard_fraction(&self) -> f64 {
        mosaic_obs::fmt::safe_ratio(self.back_occupied as u64, self.occupied() as u64)
    }

    /// Load factor of the front yard alone.
    pub fn front_load_factor(&self) -> f64 {
        self.front_occupied as f64 / self.front_slots as f64
    }

    /// Load factor of the backyard alone.
    pub fn back_load_factor(&self) -> f64 {
        self.back_occupied as f64 / self.back_slots as f64
    }
}

impl core::fmt::Display for OccupancyStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}/{} occupied ({:.2}%), backyard {:.2}% of entries",
            self.occupied(),
            self.total_slots,
            self.utilization_percent(),
            self.backyard_fraction() * 100.0
        )
    }
}

/// Mean and sample standard deviation of a data series; Table 3 and Table 4
/// report `avg ± stddev` over repeated runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator); zero for n < 2.
    pub stddev: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarises a slice of samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Self { mean, stddev, n }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2} ±{:.2}", self.mean, self.stddev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IcebergConfig {
        IcebergConfig::paper_default(10)
    }

    #[test]
    fn arithmetic() {
        let s = OccupancyStats::new(&cfg(), 280, 40);
        assert_eq!(s.front_slots, 560);
        assert_eq!(s.back_slots, 80);
        assert_eq!(s.occupied(), 320);
        assert!((s.load_factor() - 0.5).abs() < 1e-12);
        assert!((s.utilization_percent() - 50.0).abs() < 1e-9);
        assert!((s.backyard_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn empty_backyard_fraction_is_zero() {
        let s = OccupancyStats::new(&cfg(), 0, 0);
        assert_eq!(s.backyard_fraction(), 0.0);
        assert_eq!(s.load_factor(), 0.0);
    }

    #[test]
    #[should_panic(expected = "front overflow")]
    fn overflow_panics() {
        OccupancyStats::new(&cfg(), 561, 0);
    }

    #[test]
    fn display_is_informative() {
        let s = OccupancyStats::new(&cfg(), 560, 80).to_string();
        assert!(s.contains("640/640"));
        assert!(s.contains("100.00%"));
    }

    #[test]
    fn summary_mean_and_stddev() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of that classic series is ~2.138.
        assert!((s.stddev - 2.1380899).abs() < 1e-6);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn summary_empty_panics() {
        Summary::of(&[]);
    }
}
