//! Bucket geometry for the Iceberg hashing scheme.

/// Geometry of an Iceberg table / Mosaic physical-memory layout.
///
/// Physical memory (or a generic table) is divided into `num_buckets`
/// buckets. Each bucket has `front_slots` front-yard slots and `back_slots`
/// backyard slots. A key hashes to **one** front-yard bucket and `d_choices`
/// backyard buckets, so its candidate-slot count — the *associativity* `h`
/// of the scheme — is `front_slots + d_choices * back_slots`.
///
/// The paper's prototype uses 56 + 6 × 8 = 104, which fits a CPFN in 7 bits.
///
/// # Example
///
/// ```
/// use mosaic_iceberg::IcebergConfig;
///
/// let cfg = IcebergConfig::paper_default(1024);
/// assert_eq!(cfg.associativity(), 104);
/// assert_eq!(cfg.cpfn_bits(), 7);
/// assert_eq!(cfg.slots_per_bucket(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IcebergConfig {
    num_buckets: usize,
    front_slots: usize,
    back_slots: usize,
    d_choices: usize,
}

/// Paper-default front-yard slots per bucket (§3.1).
pub const PAPER_FRONT_SLOTS: usize = 56;
/// Paper-default backyard slots per bucket (§3.1).
pub const PAPER_BACK_SLOTS: usize = 8;
/// Paper-default number of backyard choices (§3.1).
pub const PAPER_D_CHOICES: usize = 6;

impl IcebergConfig {
    /// Creates a configuration with explicit geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, or if `d_choices > num_buckets`
    /// (the power-of-d-choices needs `d` distinct buckets to choose among).
    pub fn new(
        num_buckets: usize,
        front_slots: usize,
        back_slots: usize,
        d_choices: usize,
    ) -> Self {
        assert!(num_buckets > 0, "num_buckets must be positive");
        assert!(front_slots > 0, "front_slots must be positive");
        assert!(back_slots > 0, "back_slots must be positive");
        assert!(d_choices > 0, "d_choices must be positive");
        assert!(
            d_choices <= num_buckets,
            "d_choices ({d_choices}) cannot exceed num_buckets ({num_buckets})"
        );
        Self {
            num_buckets,
            front_slots,
            back_slots,
            d_choices,
        }
    }

    /// The paper's prototype geometry (56-slot front yard, 8-slot backyard,
    /// `d = 6`) with the given bucket count.
    pub fn paper_default(num_buckets: usize) -> Self {
        Self::new(
            num_buckets,
            PAPER_FRONT_SLOTS,
            PAPER_BACK_SLOTS,
            PAPER_D_CHOICES,
        )
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Front-yard slots per bucket.
    pub fn front_slots(&self) -> usize {
        self.front_slots
    }

    /// Backyard slots per bucket.
    pub fn back_slots(&self) -> usize {
        self.back_slots
    }

    /// Number of backyard bucket choices (`d` in the power-of-d-choices).
    pub fn d_choices(&self) -> usize {
        self.d_choices
    }

    /// Total slots per bucket (front + back).
    pub fn slots_per_bucket(&self) -> usize {
        self.front_slots + self.back_slots
    }

    /// Total slots in the table (`p` in the paper's notation).
    pub fn total_slots(&self) -> usize {
        self.num_buckets * self.slots_per_bucket()
    }

    /// The associativity `h`: candidate slots per key.
    pub fn associativity(&self) -> usize {
        self.front_slots + self.d_choices * self.back_slots
    }

    /// Bits needed to encode a CPFN: `ceil(log2(h + 1))`.
    ///
    /// The `+ 1` reserves the all-ones pattern for "unmapped" (§3.1).
    pub fn cpfn_bits(&self) -> u32 {
        usize::BITS - self.associativity().leading_zeros()
    }

    /// Number of hash functions the scheme needs: one front + `d` backyard.
    pub fn hash_count(&self) -> usize {
        1 + self.d_choices
    }

    /// Splits a past-the-front candidate index into `(choice, slot)` —
    /// i.e. `(rest / back_slots, rest % back_slots)` — using shift/mask
    /// when `back_slots` is a power of two (it is for the paper shape,
    /// where back_slots = 8), keeping the probe path division-free.
    #[inline]
    pub fn back_split(&self, rest: usize) -> (usize, usize) {
        if self.back_slots.is_power_of_two() {
            let shift = self.back_slots.trailing_zeros();
            (rest >> shift, rest & (self.back_slots - 1))
        } else {
            (rest / self.back_slots, rest % self.back_slots)
        }
    }

    /// Returns a copy with a different bucket count (same per-bucket shape).
    pub fn with_num_buckets(&self, num_buckets: usize) -> Self {
        Self::new(num_buckets, self.front_slots, self.back_slots, self.d_choices)
    }
}

impl Default for IcebergConfig {
    /// The paper geometry with 1024 buckets (64 Ki slots ≈ 256 MiB of 4 KiB
    /// frames), a convenient experiment size.
    fn default() -> Self {
        Self::paper_default(1024)
    }
}

impl core::fmt::Display for IcebergConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} buckets x ({} front + {} back), d = {}, h = {}",
            self.num_buckets,
            self.front_slots,
            self.back_slots,
            self.d_choices,
            self.associativity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let cfg = IcebergConfig::paper_default(4096);
        assert_eq!(cfg.front_slots(), 56);
        assert_eq!(cfg.back_slots(), 8);
        assert_eq!(cfg.d_choices(), 6);
        assert_eq!(cfg.associativity(), 104);
        assert_eq!(cfg.cpfn_bits(), 7);
        assert_eq!(cfg.hash_count(), 7);
        assert_eq!(cfg.slots_per_bucket(), 64);
        assert_eq!(cfg.total_slots(), 4096 * 64);
    }

    #[test]
    fn cpfn_bits_edge_cases() {
        // h = 63 -> 6 bits (64 patterns, one reserved).
        let cfg = IcebergConfig::new(16, 31, 8, 4);
        assert_eq!(cfg.associativity(), 63);
        assert_eq!(cfg.cpfn_bits(), 6);
        // h = 64 -> needs 7 bits.
        let cfg = IcebergConfig::new(16, 32, 8, 4);
        assert_eq!(cfg.cpfn_bits(), 7);
    }

    #[test]
    #[should_panic(expected = "num_buckets must be positive")]
    fn zero_buckets_panics() {
        IcebergConfig::new(0, 56, 8, 6);
    }

    #[test]
    #[should_panic(expected = "cannot exceed num_buckets")]
    fn too_many_choices_panics() {
        IcebergConfig::new(4, 56, 8, 6);
    }

    #[test]
    fn display_mentions_geometry() {
        let s = IcebergConfig::paper_default(8).to_string();
        assert!(s.contains("56 front"));
        assert!(s.contains("h = 104"));
    }

    #[test]
    fn with_num_buckets_preserves_shape() {
        let cfg = IcebergConfig::paper_default(8).with_num_buckets(32);
        assert_eq!(cfg.num_buckets(), 32);
        assert_eq!(cfg.associativity(), 104);
    }
}
