//! Candidate-set computation: where a key is allowed to live.
//!
//! This is the heart of Mosaic's low-associativity mapping. Given a key
//! (for page allocation, a packed `(ASID, VPN)` pair), hash function 0
//! selects the single front-yard bucket and hash functions `1..=d` select
//! the backyard candidates. The functions here are *pure* — the hash table
//! in this crate and the frame allocator in `mosaic-mem` both build on them,
//! guaranteeing that the OS allocator and the (simulated) TLB hardware agree
//! on every key's candidate set.

use crate::config::IcebergConfig;
use mosaic_hash::HashFamily;

/// Which yard a slot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Yard {
    /// The large per-bucket area tried first (56 slots in the paper).
    Front,
    /// The small overflow area filled by power-of-d-choices (8 slots).
    Back,
}

/// A concrete slot position within the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotRef {
    /// Yard the slot is in.
    pub yard: Yard,
    /// Bucket index within the table.
    pub bucket: usize,
    /// Slot index within that bucket's yard.
    pub slot: usize,
}

/// The candidate buckets for one key: one front-yard bucket plus `d`
/// backyard buckets (duplicates possible — the scheme is robust to hash
/// collisions among the `d` choices, §2.5).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CandidateSet {
    /// The front-yard bucket (hash function 0).
    pub front_bucket: usize,
    /// The backyard buckets (hash functions `1..=d`), in choice order.
    /// `back_buckets[i]` corresponds to backyard-choice index `i` in the
    /// CPFN encoding.
    pub back_buckets: Vec<usize>,
}

impl CandidateSet {
    /// Computes the candidate set for `key` under `cfg` using `family`.
    ///
    /// # Panics
    ///
    /// Panics if `family.count() < cfg.hash_count()`.
    pub fn compute<F: HashFamily>(family: &F, cfg: &IcebergConfig, key: u64) -> Self {
        assert!(
            family.count() >= cfg.hash_count(),
            "hash family has {} functions but the scheme needs {}",
            family.count(),
            cfg.hash_count()
        );
        let n = cfg.num_buckets();
        let front_bucket = family.hash_to(key, 0, n);
        let back_buckets = (1..=cfg.d_choices())
            .map(|i| family.hash_to(key, i, n))
            .collect();
        Self {
            front_bucket,
            back_buckets,
        }
    }

    /// Number of backyard choices.
    pub fn d(&self) -> usize {
        self.back_buckets.len()
    }

    /// Iterates over every candidate slot in canonical (CPFN-encoding)
    /// order: front-yard slots `0..front_slots`, then backyard choice 0's
    /// slots, choice 1's slots, and so on.
    pub fn slots(&self, cfg: &IcebergConfig) -> impl Iterator<Item = SlotRef> + '_ {
        let front_slots = cfg.front_slots();
        let back_slots = cfg.back_slots();
        let front_bucket = self.front_bucket;
        let front = (0..front_slots).map(move |slot| SlotRef {
            yard: Yard::Front,
            bucket: front_bucket,
            slot,
        });
        let back = self.back_buckets.iter().flat_map(move |&bucket| {
            (0..back_slots).map(move |slot| SlotRef {
                yard: Yard::Back,
                bucket,
                slot,
            })
        });
        front.chain(back)
    }

    /// Returns the slot for a given *candidate index* in `0..h`
    /// (the value a CPFN encodes, before the unmapped sentinel).
    ///
    /// Index `0..front_slots` maps to the front yard; the remainder maps to
    /// backyard choice `(idx - front_slots) / back_slots`, slot
    /// `(idx - front_slots) % back_slots`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= cfg.associativity()`.
    pub fn slot_for_index(&self, cfg: &IcebergConfig, index: usize) -> SlotRef {
        assert!(
            index < cfg.associativity(),
            "candidate index {index} out of range (h = {})",
            cfg.associativity()
        );
        if index < cfg.front_slots() {
            SlotRef {
                yard: Yard::Front,
                bucket: self.front_bucket,
                slot: index,
            }
        } else {
            let rest = index - cfg.front_slots();
            let (choice, slot) = cfg.back_split(rest);
            SlotRef {
                yard: Yard::Back,
                bucket: self.back_buckets[choice],
                slot,
            }
        }
    }

    /// Inverse of [`slot_for_index`](Self::slot_for_index): the candidate
    /// index of a slot, if the slot is in this candidate set.
    ///
    /// When backyard choices collide (two choice indices select the same
    /// bucket), the lowest matching choice index is returned.
    pub fn index_of_slot(&self, cfg: &IcebergConfig, slot: SlotRef) -> Option<usize> {
        match slot.yard {
            Yard::Front => {
                (slot.bucket == self.front_bucket && slot.slot < cfg.front_slots())
                    .then_some(slot.slot)
            }
            Yard::Back => {
                if slot.slot >= cfg.back_slots() {
                    return None;
                }
                self.back_buckets
                    .iter()
                    .position(|&b| b == slot.bucket)
                    .map(|choice| cfg.front_slots() + choice * cfg.back_slots() + slot.slot)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_hash::XxFamily;

    fn setup() -> (IcebergConfig, XxFamily) {
        let cfg = IcebergConfig::paper_default(128);
        let family = XxFamily::new(cfg.hash_count(), 99);
        (cfg, family)
    }

    #[test]
    fn candidate_count_matches_associativity() {
        let (cfg, family) = setup();
        let cands = CandidateSet::compute(&family, &cfg, 12345);
        assert_eq!(cands.slots(&cfg).count(), cfg.associativity());
        assert_eq!(cands.d(), 6);
    }

    #[test]
    fn deterministic_per_key() {
        let (cfg, family) = setup();
        assert_eq!(
            CandidateSet::compute(&family, &cfg, 7),
            CandidateSet::compute(&family, &cfg, 7)
        );
    }

    #[test]
    fn slots_within_bounds() {
        let (cfg, family) = setup();
        for key in 0..500u64 {
            let cands = CandidateSet::compute(&family, &cfg, key);
            for s in cands.slots(&cfg) {
                assert!(s.bucket < cfg.num_buckets());
                match s.yard {
                    Yard::Front => assert!(s.slot < cfg.front_slots()),
                    Yard::Back => assert!(s.slot < cfg.back_slots()),
                }
            }
        }
    }

    #[test]
    fn index_round_trip() {
        let (cfg, family) = setup();
        let cands = CandidateSet::compute(&family, &cfg, 424242);
        for idx in 0..cfg.associativity() {
            let slot = cands.slot_for_index(&cfg, idx);
            let back = cands
                .index_of_slot(&cfg, slot)
                .expect("slot must be a candidate");
            // With colliding backyard choices the round trip may land on an
            // earlier choice index that denotes the same physical slot.
            assert_eq!(cands.slot_for_index(&cfg, back), slot);
        }
    }

    #[test]
    fn canonical_order_matches_slot_for_index() {
        let (cfg, family) = setup();
        let cands = CandidateSet::compute(&family, &cfg, 31337);
        for (idx, slot) in cands.slots(&cfg).enumerate() {
            assert_eq!(slot, cands.slot_for_index(&cfg, idx));
        }
    }

    #[test]
    fn foreign_slot_has_no_index() {
        let (cfg, family) = setup();
        let cands = CandidateSet::compute(&family, &cfg, 1);
        // A front-yard slot in a different bucket is not a candidate.
        let foreign = SlotRef {
            yard: Yard::Front,
            bucket: (cands.front_bucket + 1) % cfg.num_buckets(),
            slot: 0,
        };
        assert_eq!(cands.index_of_slot(&cfg, foreign), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_beyond_h_panics() {
        let (cfg, family) = setup();
        let cands = CandidateSet::compute(&family, &cfg, 1);
        cands.slot_for_index(&cfg, cfg.associativity());
    }

    #[test]
    #[should_panic(expected = "hash family has")]
    fn small_family_panics() {
        let cfg = IcebergConfig::paper_default(16);
        let family = XxFamily::new(2, 0); // needs 7
        CandidateSet::compute(&family, &cfg, 0);
    }

    #[test]
    fn front_bucket_spread() {
        // Front buckets of sequential keys should cover the bucket space.
        let (cfg, family) = setup();
        let mut seen = vec![false; cfg.num_buckets()];
        for key in 0..4000u64 {
            seen[CandidateSet::compute(&family, &cfg, key).front_bucket] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered > cfg.num_buckets() * 9 / 10);
    }
}
