//! A generic, stable Iceberg hash table.
//!
//! [`IcebergTable`] realises the scheme of §2.3 as an ordinary key→value
//! map: insertion tries the key's front-yard bucket first and overflows to
//! the emptiest of its `d` backyard buckets. Entries **never move** after
//! insertion (stability) and the table refuses an insert — rather than
//! relocating anything — when every candidate slot is full, which with the
//! paper's geometry does not happen until the table is ≈98 % full.

use crate::config::IcebergConfig;
use crate::placement::{CandidateSet, SlotRef, Yard};
use crate::stats::OccupancyStats;
use mosaic_hash::HashFamily;

/// Keys usable in an [`IcebergTable`]: equality-comparable with a 64-bit
/// hashable projection. The projection need not be injective — lookups
/// compare full keys — but a near-injective projection keeps candidate sets
/// independent.
pub trait IcebergKey: Copy + Eq {
    /// The 64-bit value fed to the hash family.
    fn hash_key(&self) -> u64;
}

macro_rules! impl_iceberg_key_for_uint {
    ($($t:ty),*) => {
        $(impl IcebergKey for $t {
            fn hash_key(&self) -> u64 {
                u64::from(*self)
            }
        })*
    };
}

impl_iceberg_key_for_uint!(u8, u16, u32, u64);

impl IcebergKey for (u32, u32) {
    fn hash_key(&self) -> u64 {
        (u64::from(self.0) << 32) | u64::from(self.1)
    }
}

impl IcebergKey for (u64, u64) {
    fn hash_key(&self) -> u64 {
        // Non-injective but well-mixed combination.
        self.0.rotate_left(32) ^ self.1.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// How an insertion was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was new and placed in its front-yard bucket.
    PlacedFront(SlotRef),
    /// The key was new and placed in a backyard bucket.
    PlacedBack(SlotRef),
    /// The key already existed; its value was replaced in place.
    Updated(SlotRef),
}

impl InsertOutcome {
    /// The slot involved.
    pub fn slot(&self) -> SlotRef {
        match *self {
            InsertOutcome::PlacedFront(s)
            | InsertOutcome::PlacedBack(s)
            | InsertOutcome::Updated(s) => s,
        }
    }
}

/// Insertion failure: every candidate slot for the key is occupied.
///
/// The value is handed back so the caller can resolve the conflict (the
/// Mosaic allocator would evict a page at this point, §2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertError<V> {
    /// The value that could not be placed.
    pub value: V,
}

impl<V> core::fmt::Display for InsertError<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "all candidate slots occupied (associativity conflict)")
    }
}

impl<V: core::fmt::Debug> std::error::Error for InsertError<V> {}

/// A structural invariant of the table failed a [`IcebergTable::verify`]
/// pass: the occupancy accounting or candidate placement no longer matches
/// the stored entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableInvariantError {
    /// Short stable name of the violated invariant.
    pub invariant: &'static str,
    /// What was observed.
    pub detail: String,
}

impl core::fmt::Display for TableInvariantError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "table invariant `{}` violated: {}", self.invariant, self.detail)
    }
}

impl std::error::Error for TableInvariantError {}

/// A stable, low-associativity, high-utilization hash table (§2.3).
///
/// # Example
///
/// ```
/// use mosaic_iceberg::{IcebergConfig, IcebergTable};
/// use mosaic_hash::XxFamily;
///
/// let cfg = IcebergConfig::paper_default(32);
/// let mut t = IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 7));
/// for k in 0u64..1000 {
///     t.insert(k, k * 2).unwrap();
/// }
/// assert_eq!(t.len(), 1000);
/// assert_eq!(t.get(&500), Some(&1000));
/// ```
#[derive(Debug, Clone)]
pub struct IcebergTable<K, V, F> {
    cfg: IcebergConfig,
    family: F,
    /// Flat front-yard storage: `bucket * front_slots + slot`.
    front: Vec<Option<(K, V)>>,
    /// Flat backyard storage: `bucket * back_slots + slot`.
    back: Vec<Option<(K, V)>>,
    /// Per-bucket backyard occupancy, for O(1) power-of-d-choices.
    back_occupancy: Vec<u32>,
    /// Occupied front-yard slots, maintained on insert/remove so
    /// [`occupancy`](Self::occupancy) is O(1) instead of an O(slots) scan.
    front_occupied: usize,
    /// Occupied backyard slots (the sum of `back_occupancy`), cached for
    /// the same reason.
    back_occupied: usize,
    len: usize,
    obs: TableObs,
}

/// Observability handles for one table (all no-ops by default, so the
/// probe paths cost a branch each unless `set_obs` binds them).
#[derive(Debug, Clone, Default)]
struct TableObs {
    /// Front-yard slots scanned per placing insert.
    probe_front: mosaic_obs::Histogram,
    /// Backyard slots scanned per placing insert (after power-of-d).
    probe_back: mosaic_obs::Histogram,
    /// Candidate slots examined per key lookup.
    probe_lookup: mosaic_obs::Histogram,
    /// Successful placements.
    inserts: mosaic_obs::Counter,
    /// Associativity conflicts (insert failed with every candidate full).
    conflicts: mosaic_obs::Counter,
    /// Current load factor.
    load: mosaic_obs::Gauge,
}

impl<K: IcebergKey, V, F: HashFamily> IcebergTable<K, V, F> {
    /// Creates an empty table with the given geometry and hash family.
    ///
    /// # Panics
    ///
    /// Panics if the family provides fewer than `cfg.hash_count()` functions.
    pub fn new(cfg: IcebergConfig, family: F) -> Self {
        assert!(
            family.count() >= cfg.hash_count(),
            "hash family has {} functions but the scheme needs {}",
            family.count(),
            cfg.hash_count()
        );
        Self {
            front: std::iter::repeat_with(|| None)
                .take(cfg.num_buckets() * cfg.front_slots())
                .collect(),
            back: std::iter::repeat_with(|| None)
                .take(cfg.num_buckets() * cfg.back_slots())
                .collect(),
            back_occupancy: vec![0; cfg.num_buckets()],
            front_occupied: 0,
            back_occupied: 0,
            len: 0,
            cfg,
            family,
            obs: TableObs::default(),
        }
    }

    /// Exports this table's probe lengths and load under
    /// `iceberg.<label>.*` (histograms `probe_front`, `probe_back`,
    /// `probe_lookup`; counters `inserts`, `conflicts`; gauge `load`).
    ///
    /// A no-op when `obs` is disabled; table behavior is identical
    /// either way.
    pub fn set_obs(&mut self, obs: &mosaic_obs::ObsHandle, label: &str) {
        self.obs = TableObs {
            probe_front: obs.histogram(&format!("iceberg.{label}.probe_front")),
            probe_back: obs.histogram(&format!("iceberg.{label}.probe_back")),
            probe_lookup: obs.histogram(&format!("iceberg.{label}.probe_lookup")),
            inserts: obs.counter(&format!("iceberg.{label}.inserts")),
            conflicts: obs.counter(&format!("iceberg.{label}.conflicts")),
            load: obs.gauge(&format!("iceberg.{label}.load")),
        };
        self.obs.load.set(self.load_factor());
    }

    /// The table geometry.
    pub fn config(&self) -> &IcebergConfig {
        &self.cfg
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current load factor (`len / total_slots`).
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.cfg.total_slots() as f64
    }

    /// The candidate set for a key.
    pub fn candidates(&self, key: &K) -> CandidateSet {
        CandidateSet::compute(&self.family, &self.cfg, key.hash_key())
    }

    fn flat_index(&self, slot: SlotRef) -> usize {
        match slot.yard {
            Yard::Front => slot.bucket * self.cfg.front_slots() + slot.slot,
            Yard::Back => slot.bucket * self.cfg.back_slots() + slot.slot,
        }
    }

    fn cell(&self, slot: SlotRef) -> &Option<(K, V)> {
        let idx = self.flat_index(slot);
        match slot.yard {
            Yard::Front => &self.front[idx],
            Yard::Back => &self.back[idx],
        }
    }

    fn cell_mut(&mut self, slot: SlotRef) -> &mut Option<(K, V)> {
        let idx = self.flat_index(slot);
        match slot.yard {
            Yard::Front => &mut self.front[idx],
            Yard::Back => &mut self.back[idx],
        }
    }

    /// Finds the slot currently holding `key`, if present.
    pub fn slot_of(&self, key: &K) -> Option<SlotRef> {
        let cands = self.candidates(key);
        let mut probed = 0u64;
        let found = cands.slots(&self.cfg).find(|&s| {
            probed += 1;
            matches!(self.cell(s), Some((k, _)) if k == key)
        });
        self.obs.probe_lookup.record(probed);
        found
    }

    /// The *candidate index* (the value a CPFN would encode) of `key`'s
    /// current slot, if present.
    pub fn candidate_index_of(&self, key: &K) -> Option<usize> {
        let cands = self.candidates(key);
        let slot = cands
            .slots(&self.cfg)
            .find(|&s| matches!(self.cell(s), Some((k, _)) if k == key))?;
        cands.index_of_slot(&self.cfg, slot)
    }

    /// Returns a reference to the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.slot_of(key)
            .and_then(|s| self.cell(s).as_ref().map(|(_, v)| v))
    }

    /// Returns a mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let slot = self.slot_of(key)?;
        self.cell_mut(slot).as_mut().map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.slot_of(key).is_some()
    }

    /// Inserts `key -> value`.
    ///
    /// If the key exists, its value is replaced **in place** (stability).
    /// A new key goes to the first free front-yard slot of its bucket, or —
    /// if the front yard is full — to the first free slot of the emptiest of
    /// its `d` backyard buckets (ties broken by lowest choice index).
    ///
    /// # Errors
    ///
    /// Returns [`InsertError`] handing `value` back when every candidate
    /// slot is occupied (an *associativity conflict*, §2.2).
    pub fn insert(&mut self, key: K, value: V) -> Result<InsertOutcome, InsertError<V>> {
        let cands = self.candidates(&key);

        // Stability: an existing key is updated where it lives.
        let existing = cands
            .slots(&self.cfg)
            .find(|&s| matches!(self.cell(s), Some((k, _)) if *k == key));
        if let Some(slot) = existing {
            *self.cell_mut(slot) = Some((key, value));
            return Ok(InsertOutcome::Updated(slot));
        }

        // Front yard first.
        for slot in (0..self.cfg.front_slots()).map(|slot| SlotRef {
            yard: Yard::Front,
            bucket: cands.front_bucket,
            slot,
        }) {
            if self.cell(slot).is_none() {
                *self.cell_mut(slot) = Some((key, value));
                self.front_occupied += 1;
                self.len += 1;
                self.obs.probe_front.record(slot.slot as u64 + 1);
                self.obs.inserts.inc();
                self.obs.load.set(self.load_factor());
                return Ok(InsertOutcome::PlacedFront(slot));
            }
        }

        // Power of d choices over the backyard.
        let emptiest = cands
            .back_buckets
            .iter()
            .copied()
            .min_by_key(|&b| self.back_occupancy[b])
            .expect("d_choices >= 1");
        if (self.back_occupancy[emptiest] as usize) < self.cfg.back_slots() {
            let slot = (0..self.cfg.back_slots())
                .map(|slot| SlotRef {
                    yard: Yard::Back,
                    bucket: emptiest,
                    slot,
                })
                .find(|&s| self.cell(s).is_none())
                .expect("occupancy counter says a free slot exists");
            *self.cell_mut(slot) = Some((key, value));
            self.back_occupancy[emptiest] += 1;
            self.back_occupied += 1;
            self.len += 1;
            self.obs
                .probe_front
                .record(self.cfg.front_slots() as u64);
            self.obs.probe_back.record(slot.slot as u64 + 1);
            self.obs.inserts.inc();
            self.obs.load.set(self.load_factor());
            return Ok(InsertOutcome::PlacedBack(slot));
        }

        self.obs.conflicts.inc();
        Err(InsertError { value })
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = self.slot_of(key)?;
        let (_, value) = self.cell_mut(slot).take()?;
        match slot.yard {
            Yard::Front => self.front_occupied -= 1,
            Yard::Back => {
                self.back_occupancy[slot.bucket] -= 1;
                self.back_occupied -= 1;
            }
        }
        self.len -= 1;
        self.obs.load.set(self.load_factor());
        Some(value)
    }

    /// Iterates over `(key, value)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.front
            .iter()
            .chain(self.back.iter())
            .filter_map(|c| c.as_ref().map(|(k, v)| (k, v)))
    }

    /// Occupancy statistics for the whole table, from the cached per-yard
    /// counters — O(1), so snapshot/obs paths can call it per interval
    /// without rescanning both yards. [`verify`](Self::verify) cross-checks
    /// the counters against a full scan.
    pub fn occupancy(&self) -> OccupancyStats {
        OccupancyStats::new(&self.cfg, self.front_occupied, self.back_occupied)
    }

    /// Checks the table's structural invariants: the cached length and
    /// per-bucket backyard occupancy counters match the stored cells, and
    /// every entry sits inside its key's candidate set (so it remains
    /// findable and CPFN-encodable). O(slots); intended for fault-injection
    /// harnesses and debug assertions, not hot paths.
    pub fn verify(&self) -> Result<(), TableInvariantError> {
        let front_occupied = self.front.iter().filter(|c| c.is_some()).count();
        let back_occupied = self.back.iter().filter(|c| c.is_some()).count();
        if front_occupied + back_occupied != self.len {
            return Err(TableInvariantError {
                invariant: "table-len",
                detail: format!(
                    "len {} but {} cells occupied",
                    self.len,
                    front_occupied + back_occupied
                ),
            });
        }
        if front_occupied != self.front_occupied || back_occupied != self.back_occupied {
            return Err(TableInvariantError {
                invariant: "yard-occupancy",
                detail: format!(
                    "cached {}/{} front/back occupied vs walk {front_occupied}/{back_occupied}",
                    self.front_occupied, self.back_occupied
                ),
            });
        }
        for bucket in 0..self.cfg.num_buckets() {
            let walked = (0..self.cfg.back_slots())
                .filter(|&slot| {
                    self.back[bucket * self.cfg.back_slots() + slot].is_some()
                })
                .count();
            if walked != self.back_occupancy[bucket] as usize {
                return Err(TableInvariantError {
                    invariant: "back-occupancy",
                    detail: format!(
                        "bucket {bucket}: counter {} vs walk {walked}",
                        self.back_occupancy[bucket]
                    ),
                });
            }
        }
        for (flat, cell) in self.front.iter().chain(self.back.iter()).enumerate() {
            let Some((key, _)) = cell else { continue };
            let slot = if flat < self.front.len() {
                SlotRef {
                    yard: Yard::Front,
                    bucket: flat / self.cfg.front_slots(),
                    slot: flat % self.cfg.front_slots(),
                }
            } else {
                let idx = flat - self.front.len();
                SlotRef {
                    yard: Yard::Back,
                    bucket: idx / self.cfg.back_slots(),
                    slot: idx % self.cfg.back_slots(),
                }
            };
            let cands = self.candidates(key);
            if cands.index_of_slot(&self.cfg, slot).is_none() {
                return Err(TableInvariantError {
                    invariant: "candidate-placement",
                    detail: format!("entry at {slot:?} is outside its candidate set"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_hash::{SplitMix64, XxFamily};

    fn table(buckets: usize) -> IcebergTable<u64, u64, XxFamily> {
        let cfg = IcebergConfig::paper_default(buckets);
        IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 0xC0FFEE))
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = table(16);
        assert!(t.is_empty());
        t.insert(1, 100).unwrap();
        t.insert(2, 200).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&1), Some(&100));
        assert_eq!(t.get(&2), Some(&200));
        assert_eq!(t.get(&3), None);
        assert_eq!(t.remove(&1), Some(100));
        assert_eq!(t.remove(&1), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_in_place_is_stable() {
        let mut t = table(16);
        t.insert(42, 1).unwrap();
        let before = t.slot_of(&42).unwrap();
        let outcome = t.insert(42, 2).unwrap();
        assert_eq!(outcome, InsertOutcome::Updated(before));
        assert_eq!(t.get(&42), Some(&2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn entries_never_move() {
        // Stability across a long mixed workload: record each key's slot at
        // insertion; it must be unchanged at every later point it exists.
        let mut t = table(8);
        let mut rng = SplitMix64::new(5);
        let mut placed: std::collections::HashMap<u64, SlotRef> =
            std::collections::HashMap::new();
        for step in 0..20_000u64 {
            let key = rng.next_below(2_000);
            if rng.next_below(3) == 0 {
                t.remove(&key);
                placed.remove(&key);
            } else if let Ok(outcome) = t.insert(key, step) {
                match outcome {
                    InsertOutcome::Updated(slot) => {
                        assert_eq!(placed[&key], slot, "entry moved on update");
                    }
                    other => {
                        placed.insert(key, other.slot());
                    }
                }
            }
            if step % 1000 == 0 {
                for (k, &slot) in &placed {
                    assert_eq!(t.slot_of(k), Some(slot), "entry for {k} moved");
                }
            }
        }
    }

    #[test]
    fn fills_front_yard_before_backyard() {
        let mut t = table(8);
        // Keys sharing a front bucket: generate until we find front_slots + 1
        // keys mapping to bucket 0.
        let cfg = *t.config();
        let mut keys = Vec::new();
        let mut k = 0u64;
        while keys.len() <= cfg.front_slots() {
            if t.candidates(&k).front_bucket == 0 {
                keys.push(k);
            }
            k += 1;
        }
        for (i, &key) in keys.iter().enumerate() {
            let outcome = t.insert(key, 0).unwrap();
            if i < cfg.front_slots() {
                assert!(matches!(outcome, InsertOutcome::PlacedFront(_)), "key {i}");
            } else {
                assert!(matches!(outcome, InsertOutcome::PlacedBack(_)), "overflow key");
            }
        }
    }

    #[test]
    fn backyard_uses_emptiest_choice() {
        let mut t = table(8);
        let cfg = *t.config();
        // Fill bucket 3's front yard completely via direct candidates.
        let mut k = 0u64;
        let mut filled = 0;
        while filled < cfg.front_slots() {
            if t.candidates(&k).front_bucket == 3 {
                t.insert(k, 0).unwrap();
                filled += 1;
            }
            k += 1;
        }
        // Next key with front bucket 3 must go to its emptiest backyard.
        let key = loop {
            if t.candidates(&k).front_bucket == 3 {
                break k;
            }
            k += 1;
        };
        let cands = t.candidates(&key);
        let expect_bucket = *cands
            .back_buckets
            .iter()
            .min_by_key(|&&b| t.back_occupancy[b])
            .unwrap();
        match t.insert(key, 0).unwrap() {
            InsertOutcome::PlacedBack(slot) => assert_eq!(slot.bucket, expect_bucket),
            other => panic!("expected backyard placement, got {other:?}"),
        }
    }

    #[test]
    fn conflict_returns_value() {
        // A tiny table (1 bucket) conflicts once all 64 slots fill.
        let cfg = IcebergConfig::new(1, 4, 2, 1);
        let mut t: IcebergTable<u64, String, _> =
            IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 3));
        let mut inserted = 0;
        for k in 0..100u64 {
            match t.insert(k, format!("v{k}")) {
                Ok(_) => inserted += 1,
                Err(e) => {
                    assert_eq!(e.value, format!("v{k}"));
                    assert_eq!(inserted, cfg.total_slots());
                    return;
                }
            }
        }
        panic!("table never conflicted");
    }

    #[test]
    fn high_load_factor_before_first_conflict() {
        // The headline Iceberg property: with the paper geometry, the first
        // conflict should not occur before ~95+% load (paper measures ~98%).
        let mut t = table(64); // 4096 slots
        let mut rng = SplitMix64::new(123);
        let total = t.config().total_slots();
        loop {
            let key = rng.next_u64();
            if t.insert(key, 0).is_err() {
                let lf = t.load_factor();
                assert!(lf > 0.95, "first conflict at load factor {lf}");
                break;
            }
            assert!(t.len() <= total);
        }
    }

    #[test]
    fn candidate_index_matches_slot() {
        let mut t = table(64);
        for k in 0..2000u64 {
            t.insert(k, k).unwrap();
        }
        let cfg = *t.config();
        for k in 0..2000u64 {
            let idx = t.candidate_index_of(&k).unwrap();
            let cands = t.candidates(&k);
            assert_eq!(cands.slot_for_index(&cfg, idx), t.slot_of(&k).unwrap());
        }
    }

    #[test]
    fn iter_visits_all_entries() {
        let mut t = table(16);
        for k in 0..500u64 {
            t.insert(k, k + 1).unwrap();
        }
        let mut pairs: Vec<(u64, u64)> = t.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs.len(), 500);
        for (i, (k, v)) in pairs.into_iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(v, k + 1);
        }
    }

    #[test]
    fn verify_passes_through_churn_and_catches_corruption() {
        let mut t = table(8);
        let mut rng = SplitMix64::new(17);
        for step in 0..5_000u64 {
            let key = rng.next_below(600);
            if rng.next_below(3) == 0 {
                t.remove(&key);
            } else {
                let _ = t.insert(key, step);
            }
        }
        t.verify().expect("churned table stays consistent");
        // Corrupt the length cache; verify must name the invariant.
        t.len += 1;
        let err = t.verify().unwrap_err();
        assert_eq!(err.invariant, "table-len");
        t.len -= 1;
        // Corrupt an occupancy counter.
        t.back_occupancy[0] += 1;
        let err = t.verify().unwrap_err();
        assert_eq!(err.invariant, "back-occupancy");
        assert!(err.to_string().contains("back-occupancy"));
    }

    #[test]
    fn occupancy_counters_match_full_scan_after_random_ops() {
        // The O(1) occupancy() must agree with an O(slots) walk at every
        // point of a random insert/remove/update sequence.
        let mut t = table(8);
        let mut rng = SplitMix64::new(0xBEEF);
        for step in 0..10_000u64 {
            let key = rng.next_below(700);
            if rng.next_below(3) == 0 {
                t.remove(&key);
            } else {
                let _ = t.insert(key, step);
            }
            if step % 500 == 0 {
                let scan_front = t.front.iter().filter(|c| c.is_some()).count();
                let scan_back = t.back.iter().filter(|c| c.is_some()).count();
                let o = t.occupancy();
                assert_eq!(o.front_occupied, scan_front, "step {step}");
                assert_eq!(o.back_occupied, scan_back, "step {step}");
                assert_eq!(o.occupied(), t.len(), "step {step}");
            }
        }
        t.verify().expect("counters stay consistent");
        // Corrupt a cached counter; verify must name the invariant.
        t.front_occupied += 1;
        let err = t.verify().unwrap_err();
        assert_eq!(err.invariant, "yard-occupancy");
        t.front_occupied -= 1;
        t.verify().unwrap();
    }

    #[test]
    fn tuple_keys_work() {
        let cfg = IcebergConfig::paper_default(8);
        let mut t: IcebergTable<(u32, u32), u8, _> =
            IcebergTable::new(cfg, XxFamily::new(cfg.hash_count(), 1));
        t.insert((1, 2), 9).unwrap();
        t.insert((2, 1), 8).unwrap();
        assert_eq!(t.get(&(1, 2)), Some(&9));
        assert_eq!(t.get(&(2, 1)), Some(&8));
    }
}
