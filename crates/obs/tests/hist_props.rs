//! Property tests for the log-linear histogram (vendored proptest shim).
//!
//! Two guarantees the tentpole relies on:
//!
//! 1. **Quantile accuracy**: for any sample set, a reported quantile is
//!    within one bucket width of the exact (nearest-rank) sample
//!    quantile — for both uniform and zipf-like distributions.
//! 2. **Mergeability**: merging per-shard histograms is *identical* to
//!    building one histogram from the concatenated samples, so interval
//!    snapshots can be combined without error.

use mosaic_obs::hist::{bucket_of, bucket_width};
use mosaic_obs::Histo;
use proptest::prelude::*;

/// Exact nearest-rank quantile of a sample set.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[target - 1]
}

/// Asserts the histogram quantile is within one bucket width of the
/// exact sample quantile, for a spread of q values.
fn check_quantiles(samples: &[u64]) -> Result<(), TestCaseError> {
    let mut h = Histo::new();
    let mut sorted = samples.to_vec();
    for &v in samples {
        h.record(v);
    }
    sorted.sort_unstable();
    for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q);
        let width = bucket_width(bucket_of(exact));
        // The estimate is the lower bound of the bucket holding the
        // exact quantile, so it can undershoot by at most width - 1
        // and never overshoot past the bucket's upper edge.
        let lo = exact.saturating_sub(width);
        let hi = exact.saturating_add(width);
        prop_assert!(
            est >= lo && est <= hi,
            "q={} exact={} est={} width={}",
            q,
            exact,
            est,
            width
        );
    }
    prop_assert_eq!(h.max(), *sorted.last().expect("non-empty"));
    prop_assert_eq!(h.min(), sorted[0]);
    prop_assert_eq!(h.count(), sorted.len() as u64);
    Ok(())
}

/// Deterministic zipf-ish sampler: rank r gets weight 1/r, sampled via
/// an inverse-CDF walk over a fixed harmonic table.
fn zipf_samples(seed: u64, n: usize, ranks: u64) -> Vec<u64> {
    let harmonics: Vec<f64> = (1..=ranks)
        .scan(0.0, |acc, r| {
            *acc += 1.0 / r as f64;
            Some(*acc)
        })
        .collect();
    let total = *harmonics.last().expect("ranks >= 1");
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let u = (z >> 11) as f64 / (1u64 << 53) as f64 * total;
            harmonics.partition_point(|&h| h < u) as u64 + 1
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uniform_quantiles_within_one_bucket(
        samples in prop::collection::vec(0u64..1_000_000, 1..400)
    ) {
        check_quantiles(&samples)?;
    }

    #[test]
    fn small_value_quantiles_are_exact(
        samples in prop::collection::vec(0u64..16, 1..200)
    ) {
        // Buckets 0..16 have width 1, so quantiles are exact.
        let mut h = Histo::new();
        let mut sorted = samples.clone();
        for &v in &samples { h.record(v); }
        sorted.sort_unstable();
        for q in [0.1, 0.5, 0.95, 1.0] {
            prop_assert_eq!(h.quantile(q), exact_quantile(&sorted, q));
        }
    }

    #[test]
    fn zipf_quantiles_within_one_bucket(seed in any::<u64>(), n in 1usize..500) {
        let samples = zipf_samples(seed, n, 10_000);
        check_quantiles(&samples)?;
    }

    #[test]
    fn merge_equals_concat(
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut ha = Histo::new();
        let mut hb = Histo::new();
        let mut hc = Histo::new();
        for &v in &a { ha.record(v); hc.record(v); }
        for &v in &b { hb.record(v); hc.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(&ha, &hc);
        // Summaries agree too (count/sum/min/max and quantiles).
        prop_assert_eq!(ha.summary(), hc.summary());
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn record_n_equals_repeated_record(v in any::<u64>(), n in 0u64..100) {
        let mut bulk = Histo::new();
        let mut looped = Histo::new();
        bulk.record_n(v, n);
        for _ in 0..n { looped.record(v); }
        prop_assert_eq!(&bulk, &looped);
    }
}
