//! Property tests for [`ObsHandle::merge_from`] — the join side of
//! per-thread observability (vendored proptest shim).
//!
//! The parallel engine hands every cell its own enabled child handle
//! and merges the children back after the threads join. Two algebraic
//! guarantees make `--jobs N` byte-identical to `--jobs 1`:
//!
//! 1. **Serial equivalence**: merging children that each recorded a
//!    slice of the work leaves the parent's aggregate state (counters,
//!    histograms, attribution tables) identical to one handle that
//!    recorded everything itself.
//! 2. **Order-insensitivity**: the aggregate state is the same for any
//!    merge permutation — counters add, histograms merge bucket-wise,
//!    attribution cells add — so thread scheduling cannot leak into
//!    the merged registry. (The buffered *record stream* is ordered by
//!    construction: the engine always merges in cell-input order.)

use mosaic_obs::{AttribCategory, AttribTable, Histo, ObsHandle};
use proptest::prelude::*;

const COUNTERS: [&str; 3] = ["tlb.accesses", "tlb.misses", "mem.faults"];
const HISTS: [&str; 2] = ["iceberg.probe", "swap.latency"];
const TABLES: [&str; 2] = ["tlb.vanilla.direct", "mosaic.faults"];

/// One instrument operation a child cell might perform.
#[derive(Debug, Clone, Copy)]
enum Op {
    Count(usize, u64),
    Hist(usize, u64),
    Attrib(usize, usize, u16, u16, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..COUNTERS.len(), 0u64..1_000).prop_map(|(i, n)| Op::Count(i, n)),
        (0usize..HISTS.len(), 0u64..100_000).prop_map(|(i, v)| Op::Hist(i, v)),
        (
            0usize..TABLES.len(),
            0usize..AttribCategory::ALL.len(),
            0u16..4,
            0u16..4,
            1u64..50,
        )
            .prop_map(|(t, c, e, v, n)| Op::Attrib(t, c, e, v, n)),
    ]
}

fn apply(h: &ObsHandle, ops: &[Op]) {
    for &op in ops {
        match op {
            Op::Count(i, n) => h.counter(COUNTERS[i]).add(n),
            Op::Hist(i, v) => h.histogram(HISTS[i]).record(v),
            Op::Attrib(t, c, e, v, n) => {
                h.attrib(TABLES[t])
                    .charge_n(AttribCategory::ALL[c], e, v, n);
            }
        }
    }
}

/// The parent's aggregate state, read back through the public API.
fn state(h: &ObsHandle) -> (Vec<u64>, Vec<Histo>, Vec<AttribTable>) {
    (
        COUNTERS.iter().map(|n| h.counter_value(n)).collect(),
        HISTS.iter().map(|n| h.histogram(n).snapshot()).collect(),
        TABLES.iter().map(|n| h.attrib_table(n)).collect(),
    )
}

/// A parent with attribution opted in (children inherit via `child()`).
fn parent() -> ObsHandle {
    let h = ObsHandle::enabled();
    h.set_attrib(true);
    h
}

/// Deterministic Fisher–Yates permutation of `0..n` from `seed`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        // SplitMix64 step.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        idx.swap(i, (z % (i as u64 + 1)) as usize);
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merging_children_equals_serial_recording(
        children in prop::collection::vec(
            prop::collection::vec(op_strategy(), 0..40),
            3..6,
        ),
        perm_seed in any::<u64>(),
    ) {
        // Serial reference: one handle records every child's ops.
        let serial = parent();
        for ops in &children {
            apply(&serial, ops);
        }

        // Parallel shape, merged in input order.
        let in_order = parent();
        let cells: Vec<ObsHandle> = children
            .iter()
            .map(|ops| {
                let c = in_order.child();
                apply(&c, ops);
                c
            })
            .collect();
        for c in &cells {
            in_order.merge_from(c);
        }
        prop_assert_eq!(state(&in_order), state(&serial));

        // Same children merged in an arbitrary permutation: aggregate
        // state must not depend on join order.
        let permuted = parent();
        let cells: Vec<ObsHandle> = children
            .iter()
            .map(|ops| {
                let c = permuted.child();
                apply(&c, ops);
                c
            })
            .collect();
        for &i in &permutation(cells.len(), perm_seed) {
            permuted.merge_from(&cells[i]);
        }
        prop_assert_eq!(state(&permuted), state(&serial));
    }

    #[test]
    fn merging_a_fresh_child_is_identity(
        ops in prop::collection::vec(op_strategy(), 0..60),
    ) {
        let h = parent();
        apply(&h, &ops);
        let before = state(&h);
        h.merge_from(&h.child());
        prop_assert_eq!(state(&h), before);
    }
}
