//! Miss/fault attribution tables.
//!
//! An [`AttribTable`] charges every classified miss (or memory fault)
//! to a `(category, evictor ASID, victim ASID)` cell. TLB misses use
//! the classic 3C taxonomy (compulsory / capacity / conflict, decided
//! against a shadow fully-associative LRU tag store); memory faults use
//! a reclaim-cause taxonomy (cold / capacity eviction / cross-tenant
//! displacement / quota self-eviction / shootdown-induced) recorded at
//! evict time.
//!
//! Tables live in the [`crate::ObsHandle`] registry next to counters
//! and histograms: they snapshot into deterministic JSONL
//! (`{"t":"attrib",...}` records), merge cell-wise in
//! [`crate::ObsHandle::merge_from`] (addition is commutative, so
//! parallel cells merged in any fixed order serialize identically),
//! and cost nothing when attribution is off — [`AttribHandle`] is an
//! `Option` just like [`crate::Counter`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Why a classified miss or fault happened.
///
/// Codes are stable across releases: they define the JSONL wire order
/// and the packed cell-key layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum AttribCategory {
    /// TLB: first-ever reference to the page — no finite TLB avoids it.
    Compulsory = 0,
    /// TLB: the shadow fully-associative TLB of equal capacity would
    /// also miss — the working set simply exceeds the reach.
    Capacity = 1,
    /// TLB: the shadow fully-associative TLB would have hit — the miss
    /// is an artifact of limited associativity (set conflicts).
    Conflict = 2,
    /// Memory: first-ever fault on the page (demand-zero fill).
    Cold = 3,
    /// Memory: eviction under capacity pressure where the evictor and
    /// the victim are the same tenant.
    CapacityEvict = 4,
    /// Memory: eviction where one tenant displaced another's page.
    CrossTenant = 5,
    /// Memory: an over-quota tenant forced to evict its own page
    /// before admission (quota self-eviction or trim).
    QuotaSelf = 6,
    /// Memory: frame reclaimed by an exit-time shootdown
    /// (`release_asid`).
    Shootdown = 7,
}

impl AttribCategory {
    /// Every category, in code order.
    pub const ALL: [AttribCategory; 8] = [
        AttribCategory::Compulsory,
        AttribCategory::Capacity,
        AttribCategory::Conflict,
        AttribCategory::Cold,
        AttribCategory::CapacityEvict,
        AttribCategory::CrossTenant,
        AttribCategory::QuotaSelf,
        AttribCategory::Shootdown,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            AttribCategory::Compulsory => "compulsory",
            AttribCategory::Capacity => "capacity",
            AttribCategory::Conflict => "conflict",
            AttribCategory::Cold => "cold",
            AttribCategory::CapacityEvict => "capacity_evict",
            AttribCategory::CrossTenant => "cross_tenant",
            AttribCategory::QuotaSelf => "quota_self",
            AttribCategory::Shootdown => "shootdown",
        }
    }

    /// Inverse of [`AttribCategory::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Decodes a stable wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }
}

/// One non-zero attribution cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttribCell {
    /// Why the miss/fault was charged.
    pub category: AttribCategory,
    /// The ASID whose access caused the miss or forced the eviction.
    pub evictor: u16,
    /// The ASID whose entry/page was lost (equal to `evictor` for
    /// self-inflicted categories).
    pub victim: u16,
    /// Charges accumulated in this cell.
    pub count: u64,
}

/// Packs `(category, evictor, victim)` into the sorted cell key:
/// category in the high bits so iteration groups by category, then by
/// evictor, then victim.
fn pack(category: AttribCategory, evictor: u16, victim: u16) -> u64 {
    ((category as u64) << 32) | (u64::from(evictor) << 16) | u64::from(victim)
}

fn unpack(key: u64) -> Option<(AttribCategory, u16, u16)> {
    let cat = AttribCategory::from_code((key >> 32) as u8)?;
    Some((cat, (key >> 16) as u16, key as u16))
}

/// A sparse `(category, evictor, victim) → count` table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttribTable {
    cells: BTreeMap<u64, u64>,
}

impl AttribTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to one cell.
    pub fn charge_n(&mut self, category: AttribCategory, evictor: u16, victim: u16, n: u64) {
        *self.cells.entry(pack(category, evictor, victim)).or_insert(0) += n;
    }

    /// Adds 1 to one cell.
    pub fn charge(&mut self, category: AttribCategory, evictor: u16, victim: u16) {
        self.charge_n(category, evictor, victim, 1);
    }

    /// Cell-wise addition (commutative and associative — the property
    /// the parallel merge relies on).
    pub fn merge(&mut self, other: &AttribTable) {
        for (&key, &n) in &other.cells {
            *self.cells.entry(key).or_insert(0) += n;
        }
    }

    /// Every non-zero cell in deterministic (category, evictor, victim)
    /// order.
    pub fn cells(&self) -> Vec<AttribCell> {
        self.cells
            .iter()
            .filter(|&(_, &n)| n > 0)
            .filter_map(|(&key, &count)| {
                unpack(key).map(|(category, evictor, victim)| AttribCell {
                    category,
                    evictor,
                    victim,
                    count,
                })
            })
            .collect()
    }

    /// Total charges in one category, summed over ASID pairs.
    pub fn category_total(&self, category: AttribCategory) -> u64 {
        self.cells
            .range(pack(category, 0, 0)..=pack(category, u16::MAX, u16::MAX))
            .map(|(_, &n)| n)
            .sum()
    }

    /// Total charges across all cells.
    pub fn total(&self) -> u64 {
        self.cells.values().sum()
    }

    /// Whether no cell has been charged.
    pub fn is_empty(&self) -> bool {
        self.cells.values().all(|&n| n == 0)
    }
}

/// A named attribution-table handle: a mutex-guarded charge when
/// attribution is on, a branch on `None` when not (the default — the
/// hot path stays free unless `--attrib` asked for the taxonomy).
#[derive(Debug, Clone, Default)]
pub struct AttribHandle(pub(crate) Option<Arc<Mutex<AttribTable>>>);

impl AttribHandle {
    /// A disabled handle (all operations are no-ops).
    pub const fn noop() -> Self {
        AttribHandle(None)
    }

    /// Whether charges are recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Charges one miss/fault to `(category, evictor, victim)`.
    #[inline]
    pub fn charge(&self, category: AttribCategory, evictor: u16, victim: u16) {
        if let Some(t) = &self.0 {
            crate::lock(t).charge(category, evictor, victim);
        }
    }

    /// Charges `n` at once.
    #[inline]
    pub fn charge_n(&self, category: AttribCategory, evictor: u16, victim: u16, n: u64) {
        if n > 0 {
            if let Some(t) = &self.0 {
                crate::lock(t).charge_n(category, evictor, victim, n);
            }
        }
    }

    /// Copies out the current table (empty when disabled).
    pub fn snapshot(&self) -> AttribTable {
        self.0
            .as_ref()
            .map_or_else(AttribTable::new, |t| crate::lock(t).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_orders_by_category_then_asids() {
        let mut t = AttribTable::new();
        t.charge(AttribCategory::Conflict, 2, 1);
        t.charge(AttribCategory::Compulsory, 9, 9);
        t.charge(AttribCategory::Conflict, 1, 3);
        let cells = t.cells();
        assert_eq!(cells[0].category, AttribCategory::Compulsory);
        assert_eq!(
            (cells[1].evictor, cells[1].victim),
            (1, 3),
            "within a category, evictor sorts first"
        );
        assert_eq!((cells[2].evictor, cells[2].victim), (2, 1));
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = AttribTable::new();
        a.charge_n(AttribCategory::Cold, 1, 1, 5);
        a.charge(AttribCategory::CrossTenant, 1, 2);
        let mut b = AttribTable::new();
        b.charge_n(AttribCategory::Cold, 1, 1, 3);
        b.charge(AttribCategory::Shootdown, 2, 2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.category_total(AttribCategory::Cold), 8);
        assert_eq!(ab.total(), 10);
    }

    #[test]
    fn category_names_round_trip() {
        for c in AttribCategory::ALL {
            assert_eq!(AttribCategory::from_name(c.name()), Some(c));
            assert_eq!(AttribCategory::from_code(c as u8), Some(c));
        }
        assert_eq!(AttribCategory::from_name("nope"), None);
        assert_eq!(AttribCategory::from_code(99), None);
    }

    #[test]
    fn noop_handle_is_inert() {
        let h = AttribHandle::noop();
        assert!(!h.is_enabled());
        h.charge(AttribCategory::Conflict, 1, 1);
        assert!(h.snapshot().is_empty());
    }
}
