//! Observability layer for the Mosaic Pages simulator.
//!
//! A registry of named **counters**, **gauges**, and log-linear
//! **histograms** plus a structured **event sink**, exported as JSONL
//! or a Chrome `trace_event` file (loadable in perfetto or
//! `chrome://tracing`).
//!
//! Design constraints (see `docs/OBSERVABILITY.md`):
//!
//! * **Zero-cost when disabled.** [`ObsHandle::noop`] hands out metric
//!   handles whose inner `Option` is `None`; the hot-path `inc()` /
//!   `record()` is a single branch on a `None` discriminant. The
//!   criterion microbench (`crates/bench/benches/obs.rs`) keeps this
//!   honest (<2 % overhead on the access path).
//! * **Deterministic.** Timestamps are *simulated reference counts*
//!   supplied by the caller — never wall clock. Snapshot output is
//!   sorted by metric name, numbers use Rust's shortest-roundtrip
//!   formatting, so a fixed-seed run serializes byte-identically.
//!
//! ```
//! use mosaic_obs::{ObsHandle, Value};
//!
//! let obs = ObsHandle::enabled();
//! let hits = obs.counter("tlb.hits");
//! hits.inc();
//! obs.event(42, "fault.injected", &[("kind", Value::from("io"))]);
//! obs.snapshot(100);
//! let jsonl = obs.render_jsonl();
//! assert!(jsonl.contains("\"tlb.hits\""));
//!
//! // Disabled: same call sites, no work, no output.
//! let off = ObsHandle::noop();
//! off.counter("tlb.hits").inc();
//! assert!(off.render_jsonl().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod attrib;
pub mod fmt;
pub mod hist;
pub mod json;

pub use attrib::{AttribCategory, AttribCell, AttribHandle, AttribTable};
pub use hist::Histo;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a mutex, recovering the data from a poisoned lock (metrics
/// must never take the process down).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A field value attached to an event or meta record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized with shortest-roundtrip formatting).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                out.push_str(&v.to_string());
            }
            Value::I64(v) => {
                out.push_str(&v.to_string());
            }
            Value::F64(v) => json::write_f64(out, *v),
            Value::Str(s) => json::write_str(out, s),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// One serialized record in the output stream.
#[derive(Debug, Clone)]
enum Record {
    /// Run-level metadata (binary name, seed, config...).
    Meta(Vec<(String, Value)>),
    /// Counter value at a snapshot instant.
    Counter { now: u64, name: String, value: u64 },
    /// Gauge value at a snapshot instant.
    Gauge { now: u64, name: String, value: f64 },
    /// Histogram summary at a snapshot instant.
    Hist {
        now: u64,
        name: String,
        count: u64,
        sum: u64,
        p50: u64,
        p90: u64,
        p99: u64,
        max: u64,
        buckets: Vec<(u64, u64)>,
    },
    /// A discrete structured event.
    Event {
        now: u64,
        name: String,
        fields: Vec<(String, Value)>,
    },
    /// Attribution-table snapshot: every non-zero
    /// `(category, evictor, victim)` cell at the instant.
    Attrib {
        now: u64,
        name: String,
        cells: Vec<AttribCell>,
    },
}

/// Shared state behind an enabled [`ObsHandle`].
#[derive(Debug, Default)]
struct ObsCore {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>, // f64 bits
    hists: Mutex<BTreeMap<String, Arc<Mutex<Histo>>>>,
    attribs: Mutex<BTreeMap<String, Arc<Mutex<AttribTable>>>>,
    /// Cells as of each table's last emission: [`ObsHandle::snapshot`]
    /// re-emits a table only when it changed, so registries that keep
    /// snapshotting after a table froze (e.g. a grid driver's reference
    /// pass for the *next* workload) don't replay stale tables into the
    /// stream.
    attrib_emitted: Mutex<BTreeMap<String, Vec<AttribCell>>>,
    /// Attribution opt-in (`--attrib`): when false, [`ObsHandle::attrib`]
    /// hands out no-ops so the classifier shadow structures stay off.
    attrib_on: AtomicBool,
    records: Mutex<Vec<Record>>,
}

/// A named counter handle: one relaxed atomic add when enabled,
/// a branch on `None` when not.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A disabled counter (all operations are no-ops).
    pub const fn noop() -> Self {
        Counter(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A named gauge holding an `f64` (stored as bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A disabled gauge.
    pub const fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// A named histogram handle over a shared [`Histo`].
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<Mutex<Histo>>>);

impl Histogram {
    /// A disabled histogram.
    pub const fn noop() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            lock(h).record(v);
        }
    }

    /// Records `n` observations of `v` under a single lock — exactly
    /// equivalent to `n` calls to [`Histogram::record`]. Deferred-obs
    /// batch paths use this to publish a locally-tallied distribution
    /// in one shot.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if let Some(h) = &self.0 {
            lock(h).record_n(v, n);
        }
    }

    /// Copies out the current distribution (empty when disabled).
    pub fn snapshot(&self) -> Histo {
        self.0.as_ref().map_or_else(Histo::new, |h| lock(h).clone())
    }
}

/// Cheap-to-clone entry point: either a shared registry or a no-op.
///
/// Constructors and instrumented structs default to [`ObsHandle::noop`],
/// which keeps the default simulation paths byte-identical to the
/// uninstrumented build.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    core: Option<Arc<ObsCore>>,
}

impl ObsHandle {
    /// A disabled handle: every metric it hands out is a no-op and
    /// rendering produces empty output.
    pub const fn noop() -> Self {
        ObsHandle { core: None }
    }

    /// A live handle with a fresh empty registry.
    pub fn enabled() -> Self {
        ObsHandle {
            core: Some(Arc::new(ObsCore::default())),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Registers (or re-fetches) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.core {
            None => Counter(None),
            Some(core) => {
                let mut map = lock(&core.counters);
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter(Some(Arc::clone(cell)))
            }
        }
    }

    /// Registers (or re-fetches) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.core {
            None => Gauge(None),
            Some(core) => {
                let mut map = lock(&core.gauges);
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
                Gauge(Some(Arc::clone(cell)))
            }
        }
    }

    /// Registers (or re-fetches) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.core {
            None => Histogram(None),
            Some(core) => {
                let mut map = lock(&core.hists);
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(Mutex::new(Histo::new())));
                Histogram(Some(Arc::clone(cell)))
            }
        }
    }

    /// Turns attribution recording on or off. Off (the default) keeps
    /// [`ObsHandle::attrib`] handing out no-ops, so existing streams
    /// and goldens are byte-identical and the shadow classifiers never
    /// allocate.
    pub fn set_attrib(&self, on: bool) {
        if let Some(core) = &self.core {
            core.attrib_on.store(on, Ordering::Relaxed);
        }
    }

    /// Whether attribution recording is on (always false when the
    /// handle itself is disabled).
    pub fn attrib_enabled(&self) -> bool {
        self.core
            .as_ref()
            .is_some_and(|c| c.attrib_on.load(Ordering::Relaxed))
    }

    /// Registers (or re-fetches) the attribution table `name`.
    ///
    /// Returns a no-op handle unless the registry is enabled *and*
    /// attribution is opted in via [`ObsHandle::set_attrib`].
    pub fn attrib(&self, name: &str) -> AttribHandle {
        if !self.attrib_enabled() {
            return AttribHandle::noop();
        }
        match &self.core {
            None => AttribHandle::noop(),
            Some(core) => {
                let mut map = lock(&core.attribs);
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(Mutex::new(AttribTable::new())));
                AttribHandle(Some(Arc::clone(cell)))
            }
        }
    }

    /// Copy of the attribution table `name` (empty if unknown).
    pub fn attrib_table(&self, name: &str) -> AttribTable {
        self.core.as_ref().map_or_else(AttribTable::new, |core| {
            lock(&core.attribs)
                .get(name)
                .map_or_else(AttribTable::new, |t| lock(t).clone())
        })
    }

    /// Names of every registered attribution table, sorted.
    pub fn attrib_names(&self) -> Vec<String> {
        self.core.as_ref().map_or_else(Vec::new, |core| {
            lock(&core.attribs).keys().cloned().collect()
        })
    }

    /// A fresh child registry for a parallel cell: enabled iff this
    /// handle is, with the attribution opt-in propagated. Merge it back
    /// with [`ObsHandle::merge_from`] in a fixed order after the join.
    pub fn child(&self) -> ObsHandle {
        if self.is_enabled() {
            let c = ObsHandle::enabled();
            c.set_attrib(self.attrib_enabled());
            c
        } else {
            ObsHandle::noop()
        }
    }

    /// Current value of counter `name` (0 if unknown or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.core.as_ref().map_or(0, |core| {
            lock(&core.counters)
                .get(name)
                .map_or(0, |c| c.load(Ordering::Relaxed))
        })
    }

    /// Appends run-level metadata (binary name, seed, config...).
    pub fn meta(&self, fields: &[(&str, Value)]) {
        if let Some(core) = &self.core {
            lock(&core.records).push(Record::Meta(
                fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
            ));
        }
    }

    /// Records a discrete event at simulated time `now` (a reference
    /// count, never wall clock).
    pub fn event(&self, now: u64, name: &str, fields: &[(&str, Value)]) {
        if let Some(core) = &self.core {
            lock(&core.records).push(Record::Event {
                now,
                name: name.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Emits the current value of every registered counter, gauge, and
    /// histogram as records stamped with simulated time `now`.
    ///
    /// Output order is deterministic: counters, then gauges, then
    /// histograms, each sorted by name.
    pub fn snapshot(&self, now: u64) {
        let Some(core) = &self.core else { return };
        let mut batch = Vec::new();
        for (name, cell) in lock(&core.counters).iter() {
            batch.push(Record::Counter {
                now,
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            });
        }
        for (name, cell) in lock(&core.gauges).iter() {
            batch.push(Record::Gauge {
                now,
                name: name.clone(),
                value: f64::from_bits(cell.load(Ordering::Relaxed)),
            });
        }
        for (name, cell) in lock(&core.hists).iter() {
            let h = lock(cell);
            let (p50, p90, p99, max) = h.summary();
            batch.push(Record::Hist {
                now,
                name: name.clone(),
                count: h.count(),
                sum: h.sum(),
                p50,
                p90,
                p99,
                max,
                buckets: h.nonzero_buckets(),
            });
        }
        for (name, cell) in lock(&core.attribs).iter() {
            let cells = lock(cell).cells();
            let mut emitted = lock(&core.attrib_emitted);
            if emitted.get(name) == Some(&cells) {
                continue; // unchanged since last emission
            }
            emitted.insert(name.clone(), cells.clone());
            batch.push(Record::Attrib {
                now,
                name: name.clone(),
                cells,
            });
        }
        lock(&core.records).extend(batch);
    }

    /// Merges another registry into this one: counter values add,
    /// gauges take the child's value, histograms merge bucket-wise
    /// ([`Histo::merge`]), and the child's buffered records are appended
    /// in their original order.
    ///
    /// This is the join side of per-thread observability: give each
    /// parallel cell its own enabled handle, then merge the children
    /// into the parent **in a fixed order** (e.g. cell index) after the
    /// threads join — the merged stream is then independent of thread
    /// scheduling. A disabled handle on either side makes this a no-op.
    pub fn merge_from(&self, child: &ObsHandle) {
        let (Some(core), Some(child_core)) = (&self.core, &child.core) else {
            return;
        };
        for (name, cell) in lock(&child_core.counters).iter() {
            self.counter(name).add(cell.load(Ordering::Relaxed));
        }
        for (name, cell) in lock(&child_core.gauges).iter() {
            self.gauge(name)
                .set(f64::from_bits(cell.load(Ordering::Relaxed)));
        }
        for (name, cell) in lock(&child_core.hists).iter() {
            let theirs = lock(cell).clone();
            let ours = self.histogram(name);
            if let Some(h) = &ours.0 {
                lock(h).merge(&theirs);
            }
        }
        for (name, cell) in lock(&child_core.attribs).iter() {
            let theirs = lock(cell).clone();
            // Merge directly into the registry, bypassing the attrib_on
            // gate: the child only has a table because attribution was
            // on when it recorded, and dropping data at the join would
            // make `--jobs N` diverge from the serial run.
            let mut map = lock(&core.attribs);
            let ours = map
                .entry(name.clone())
                .or_insert_with(|| Arc::new(Mutex::new(AttribTable::new())));
            lock(ours).merge(&theirs);
            // The child's appended records already carry its table's
            // final state, so mark the merged result as emitted: a
            // later parent snapshot re-emits the table only if *new*
            // cells are charged after the join. Re-emitting the plain
            // sum would corrupt delta-walks over the stream (the sum
            // spans runs the per-cell series kept separate).
            let merged = lock(ours).cells();
            lock(&core.attrib_emitted).insert(name.clone(), merged);
        }
        let child_records = lock(&child_core.records).clone();
        lock(&core.records).extend(child_records);
    }

    /// Number of buffered records (0 when disabled).
    pub fn num_records(&self) -> usize {
        self.core.as_ref().map_or(0, |c| lock(&c.records).len())
    }

    /// Serializes the record stream as JSONL (one record per line).
    ///
    /// Empty string when disabled — callers can skip file creation.
    pub fn render_jsonl(&self) -> String {
        let Some(core) = &self.core else {
            return String::new();
        };
        let mut out = String::new();
        for rec in lock(&core.records).iter() {
            render_jsonl_record(&mut out, rec);
            out.push('\n');
        }
        out
    }

    /// Serializes the record stream as a Chrome `trace_event` document
    /// (open in perfetto / `chrome://tracing`). Counter and histogram
    /// snapshots become `"C"` (counter) events; discrete events become
    /// `"i"` (instant) events. `ts` is the simulated reference count.
    pub fn render_chrome_trace(&self) -> String {
        let Some(core) = &self.core else {
            return String::new();
        };
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for rec in lock(&core.records).iter() {
            let mut line = String::new();
            if render_trace_record(&mut line, rec) {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                out.push_str(&line);
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

fn write_fields_obj(out: &mut String, fields: &[(String, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(out, k);
        out.push(':');
        v.write_json(out);
    }
    out.push('}');
}

fn render_jsonl_record(out: &mut String, rec: &Record) {
    use std::fmt::Write as _;
    match rec {
        Record::Meta(fields) => {
            out.push_str("{\"t\":\"meta\"");
            for (k, v) in fields {
                out.push(',');
                json::write_str(out, k);
                out.push(':');
                v.write_json(out);
            }
            out.push('}');
        }
        Record::Counter { now, name, value } => {
            out.push_str("{\"t\":\"counter\",\"ref\":");
            let _ = write!(out, "{now}");
            out.push_str(",\"name\":");
            json::write_str(out, name);
            let _ = write!(out, ",\"value\":{value}}}");
        }
        Record::Gauge { now, name, value } => {
            out.push_str("{\"t\":\"gauge\",\"ref\":");
            let _ = write!(out, "{now}");
            out.push_str(",\"name\":");
            json::write_str(out, name);
            out.push_str(",\"value\":");
            json::write_f64(out, *value);
            out.push('}');
        }
        Record::Hist {
            now,
            name,
            count,
            sum,
            p50,
            p90,
            p99,
            max,
            buckets,
        } => {
            out.push_str("{\"t\":\"hist\",\"ref\":");
            let _ = write!(out, "{now}");
            out.push_str(",\"name\":");
            json::write_str(out, name);
            let _ = write!(
                out,
                ",\"count\":{count},\"sum\":{sum},\"p50\":{p50},\"p90\":{p90},\"p99\":{p99},\"max\":{max},\"buckets\":["
            );
            for (i, (lo, n)) in buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{n}]");
            }
            out.push_str("]}");
        }
        Record::Event { now, name, fields } => {
            out.push_str("{\"t\":\"event\",\"ref\":");
            let _ = write!(out, "{now}");
            out.push_str(",\"name\":");
            json::write_str(out, name);
            out.push_str(",\"fields\":");
            write_fields_obj(out, fields);
            out.push('}');
        }
        Record::Attrib { now, name, cells } => {
            out.push_str("{\"t\":\"attrib\",\"ref\":");
            let _ = write!(out, "{now}");
            out.push_str(",\"name\":");
            json::write_str(out, name);
            out.push_str(",\"cells\":[");
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("[\"");
                out.push_str(c.category.name());
                let _ = write!(out, "\",{},{},{}]", c.evictor, c.victim, c.count);
            }
            out.push_str("]}");
        }
    }
}

/// Renders one record as a Chrome trace event. Returns false for
/// records that have no trace representation.
fn render_trace_record(out: &mut String, rec: &Record) -> bool {
    use std::fmt::Write as _;
    match rec {
        Record::Meta(fields) => {
            out.push_str(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"mosaic-sim\"}}",
            );
            // Also surface the metadata as an instant event at t=0 so it
            // is visible in the timeline.
            out.push_str(",\n{\"name\":\"run.meta\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":");
            write_fields_obj(out, fields);
            out.push('}');
            true
        }
        Record::Counter { now, name, value } => {
            out.push_str("{\"name\":");
            json::write_str(out, name);
            let _ = write!(
                out,
                ",\"ph\":\"C\",\"ts\":{now},\"pid\":0,\"tid\":0,\"args\":{{\"value\":{value}}}}}"
            );
            true
        }
        Record::Gauge { now, name, value } => {
            out.push_str("{\"name\":");
            json::write_str(out, name);
            let _ = write!(out, ",\"ph\":\"C\",\"ts\":{now},\"pid\":0,\"tid\":0,\"args\":{{\"value\":");
            json::write_f64(out, *value);
            out.push_str("}}");
            true
        }
        Record::Hist {
            now,
            name,
            p50,
            p99,
            max,
            ..
        } => {
            out.push_str("{\"name\":");
            json::write_str(out, name);
            let _ = write!(
                out,
                ",\"ph\":\"C\",\"ts\":{now},\"pid\":0,\"tid\":0,\"args\":{{\"p50\":{p50},\"p99\":{p99},\"max\":{max}}}}}"
            );
            true
        }
        Record::Event { now, name, fields } => {
            out.push_str("{\"name\":");
            json::write_str(out, name);
            let _ = write!(out, ",\"ph\":\"i\",\"ts\":{now},\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":");
            write_fields_obj(out, fields);
            out.push('}');
            true
        }
        Record::Attrib { now, name, cells } => {
            // Per-category totals render as one counter track per table.
            out.push_str("{\"name\":");
            json::write_str(out, name);
            let _ = write!(out, ",\"ph\":\"C\",\"ts\":{now},\"pid\":0,\"tid\":0,\"args\":{{");
            let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
            for c in cells {
                *totals.entry(c.category.name()).or_insert(0) += c.count;
            }
            for (i, (cat, n)) in totals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{cat}\":{n}");
            }
            out.push_str("}}");
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_inert() {
        let obs = ObsHandle::noop();
        assert!(!obs.is_enabled());
        let c = obs.counter("x");
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
        obs.gauge("g").set(1.5);
        obs.histogram("h").record(7);
        obs.event(1, "e", &[("k", Value::from(1u64))]);
        obs.snapshot(2);
        assert_eq!(obs.num_records(), 0);
        assert!(obs.render_jsonl().is_empty());
        assert!(obs.render_chrome_trace().is_empty());
    }

    #[test]
    fn counters_are_shared_by_name() {
        let obs = ObsHandle::enabled();
        let a = obs.counter("tlb.hits");
        let b = obs.counter("tlb.hits");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(obs.counter_value("tlb.hits"), 3);
        assert_eq!(obs.counter_value("missing"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_parses() {
        let obs = ObsHandle::enabled();
        obs.counter("z.second").add(2);
        obs.counter("a.first").inc();
        obs.gauge("m.load").set(0.75);
        let h = obs.histogram("probe");
        for v in [1u64, 2, 2, 3, 40] {
            h.record(v);
        }
        obs.snapshot(1000);
        let text = obs.render_jsonl();
        let a = text.find("a.first").expect("a.first present");
        let z = text.find("z.second").expect("z.second present");
        assert!(a < z, "counters must be sorted by name");
        for line in text.lines() {
            let v = json::parse(line).expect("every JSONL line parses");
            assert!(v.get("t").is_some());
        }
    }

    #[test]
    fn events_round_trip() {
        let obs = ObsHandle::enabled();
        obs.event(
            7,
            "fault.injected",
            &[("kind", Value::from("io")), ("n", Value::from(2u64))],
        );
        let text = obs.render_jsonl();
        let v = json::parse(text.trim()).unwrap();
        assert_eq!(v.get("t").and_then(json::Json::as_str), Some("event"));
        assert_eq!(v.get("ref").and_then(json::Json::as_u64), Some(7));
        assert_eq!(
            v.get("fields")
                .and_then(|f| f.get("kind"))
                .and_then(json::Json::as_str),
            Some("io")
        );
    }

    #[test]
    fn identical_runs_serialize_identically() {
        let run = || {
            let obs = ObsHandle::enabled();
            obs.meta(&[("bin", Value::from("test")), ("seed", Value::from(42u64))]);
            let c = obs.counter("c");
            let h = obs.histogram("h");
            for i in 0..1000u64 {
                c.add(i % 3);
                h.record(i * i % 257);
                if i % 100 == 0 {
                    obs.event(i, "tick", &[("i", Value::from(i))]);
                    obs.snapshot(i);
                }
            }
            obs.snapshot(1000);
            (obs.render_jsonl(), obs.render_chrome_trace())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let obs = ObsHandle::enabled();
        obs.meta(&[("bin", Value::from("t"))]);
        obs.counter("c").inc();
        obs.event(5, "e", &[("why", Value::from("test"))]);
        obs.snapshot(9);
        let doc = json::parse(&obs.render_chrome_trace()).expect("trace parses");
        let events = doc.get("traceEvents").and_then(json::Json::as_arr).unwrap();
        assert!(events.len() >= 3);
    }

    #[test]
    fn merge_adds_counters_and_merges_hists() {
        let parent = ObsHandle::enabled();
        parent.counter("shared").add(10);
        parent.histogram("lat").record(1);

        let child = ObsHandle::enabled();
        child.counter("shared").add(5);
        child.counter("child.only").add(3);
        child.gauge("util").set(0.5);
        child.histogram("lat").record(9);

        parent.merge_from(&child);
        assert_eq!(parent.counter_value("shared"), 15);
        assert_eq!(parent.counter_value("child.only"), 3);
        assert!((parent.gauge("util").get() - 0.5).abs() < 1e-12);
        let h = parent.histogram("lat").snapshot();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 10);
    }

    #[test]
    fn merge_appends_child_records_in_order() {
        let parent = ObsHandle::enabled();
        parent.event(1, "parent.first", &[]);
        let child = ObsHandle::enabled();
        child.event(2, "child.a", &[]);
        child.event(3, "child.b", &[]);
        parent.merge_from(&child);
        let jsonl = parent.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("parent.first"));
        assert!(lines[1].contains("child.a"));
        assert!(lines[2].contains("child.b"));
    }

    #[test]
    fn merge_in_fixed_order_is_deterministic() {
        let run = || {
            let parent = ObsHandle::enabled();
            let children: Vec<ObsHandle> = (0..4)
                .map(|i| {
                    let c = ObsHandle::enabled();
                    c.counter("n").add(i);
                    c.event(i, "cell.done", &[]);
                    c
                })
                .collect();
            for c in &children {
                parent.merge_from(c);
            }
            parent.snapshot(100);
            parent.render_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn attrib_is_gated_behind_opt_in() {
        let obs = ObsHandle::enabled();
        assert!(!obs.attrib_enabled());
        let off = obs.attrib("tlb.v");
        off.charge(AttribCategory::Conflict, 1, 1);
        obs.snapshot(10);
        assert!(!obs.render_jsonl().contains("\"attrib\""), "off = no records");

        obs.set_attrib(true);
        let on = obs.attrib("tlb.v");
        on.charge(AttribCategory::Conflict, 1, 2);
        on.charge_n(AttribCategory::Compulsory, 1, 1, 3);
        obs.snapshot(20);
        let text = obs.render_jsonl();
        assert!(
            text.contains("{\"t\":\"attrib\",\"ref\":20,\"name\":\"tlb.v\",\"cells\":[[\"compulsory\",1,1,3],[\"conflict\",1,2,1]]}"),
            "{text}"
        );
        assert_eq!(obs.attrib_table("tlb.v").total(), 4);
        assert_eq!(obs.attrib_names(), vec!["tlb.v".to_string()]);
    }

    #[test]
    fn attrib_merges_cell_wise() {
        let parent = ObsHandle::enabled();
        parent.set_attrib(true);
        parent.attrib("faults").charge(AttribCategory::Cold, 1, 1);
        let child = parent.child();
        assert!(child.attrib_enabled(), "child inherits the opt-in");
        child.attrib("faults").charge_n(AttribCategory::Cold, 1, 1, 4);
        child
            .attrib("faults")
            .charge(AttribCategory::CrossTenant, 2, 1);
        parent.merge_from(&child);
        let t = parent.attrib_table("faults");
        assert_eq!(t.category_total(AttribCategory::Cold), 5);
        assert_eq!(t.category_total(AttribCategory::CrossTenant), 1);
    }

    #[test]
    fn noop_child_of_disabled_handle() {
        let off = ObsHandle::noop();
        assert!(!off.child().is_enabled());
        assert!(!off.attrib("x").is_enabled());
        off.set_attrib(true); // no core to set: stays off
        assert!(!off.attrib_enabled());
    }

    #[test]
    fn merge_with_disabled_handles_is_a_noop() {
        let parent = ObsHandle::enabled();
        parent.counter("c").inc();
        parent.merge_from(&ObsHandle::noop());
        assert_eq!(parent.counter_value("c"), 1);
        assert_eq!(parent.num_records(), 0);
        let disabled = ObsHandle::noop();
        disabled.merge_from(&parent);
        assert_eq!(disabled.num_records(), 0);
    }
}
