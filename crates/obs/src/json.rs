//! Minimal hand-rolled JSON writer/parser.
//!
//! The build environment is offline (no serde), and the obs crate only
//! needs (a) deterministic serialization of its own flat records and
//! (b) enough parsing for `obs_report` to read those records back.
//! Numbers are written with Rust's shortest-roundtrip `{}` formatting,
//! which is deterministic across runs — a requirement for the golden
//! determinism gate in `scripts/check.sh`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (subset: no exponent-heavy edge semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; stored as f64 (integers up to 2^53 round-trip).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Field lookup on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value truncated to u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an f64 deterministically; non-finite values become `null`
/// (JSON has no NaN/inf).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest-roundtrip formatting; force a decimal point so the
        // value re-parses as observed (e.g. `1` stays distinguishable
        // only by schema, which is fine for our flat records).
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parse error: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Short description of the failure.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let b = src.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError {
            offset: self.i,
            msg,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err("unexpected token"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.i - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    if start + len > self.b.len() {
                        return Err(self.err("bad utf8"));
                    }
                    let s = std::str::from_utf8(&self.b[start..start + len])
                        .map_err(|_| self.err("bad utf8"))?;
                    out.push_str(s);
                    self.i = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("bad number"))?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.i += 1; // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.i += 1;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}f");
        let parsed = parse(&s).unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd\te\u{1}f".to_string()));
    }

    #[test]
    fn parses_nested_records() {
        let v = parse(r#"{"t":"event","ref":42,"fields":{"kind":"io","n":2.5},"arr":[1,2,3]}"#)
            .unwrap();
        assert_eq!(v.get("t").and_then(Json::as_str), Some("event"));
        assert_eq!(v.get("ref").and_then(Json::as_u64), Some(42));
        assert_eq!(
            v.get("fields").and_then(|f| f.get("n")).and_then(Json::as_f64),
            Some(2.5)
        );
        assert_eq!(v.get("arr").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{\"a\":1} x").is_err());
    }

    #[test]
    fn unicode_survives() {
        let mut s = String::new();
        write_str(&mut s, "π≈3.14");
        assert_eq!(parse(&s).unwrap(), Json::Str("π≈3.14".into()));
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("0").unwrap(), Json::Num(0.0));
    }
}
