//! Shared numeric-formatting helpers with division-by-zero guards.
//!
//! Every rate printed by the simulator is a ratio of two counters, and
//! every one of them must survive an empty stream (`den == 0`) without
//! leaking `NaN`/`inf` into a report. PR 1 scattered these guards
//! across `sim::report`, `mem::stats`, and `mmu::tlb::stats`; this
//! module is the single shared copy they all route through.

/// `num / den` guarded against an empty stream: `0.0` when `den == 0`
/// instead of NaN/infinity leaking into reports.
#[inline]
pub fn safe_ratio(num: u64, den: u64) -> f64 {
    safe_div(num as f64, den as f64)
}

/// Floating-point division returning `0.0` for a zero (or non-finite)
/// denominator.
#[inline]
pub fn safe_div(num: f64, den: f64) -> f64 {
    if den == 0.0 || !den.is_finite() {
        0.0
    } else {
        num / den
    }
}

/// Formats `num / den` as a percentage with one decimal, or `--` when
/// the denominator is zero (an empty stream has no meaningful rate).
pub fn fmt_pct(num: u64, den: u64) -> String {
    if den == 0 {
        "--".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Formats `num / den` with `decimals` fractional digits, or `--` when
/// the denominator is zero.
pub fn fmt_ratio(num: u64, den: u64, decimals: usize) -> String {
    if den == 0 {
        "--".to_string()
    } else {
        format!("{:.*}", decimals, num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_guard_zero_denominator() {
        assert_eq!(safe_ratio(3, 4), 0.75);
        assert_eq!(safe_ratio(3, 0), 0.0);
        assert_eq!(safe_ratio(0, 0), 0.0);
        assert_eq!(safe_div(1.0, 0.0), 0.0);
        assert_eq!(safe_div(1.0, f64::NAN), 0.0);
        assert_eq!(safe_div(1.0, f64::INFINITY), 0.0);
        assert_eq!(safe_div(3.0, 4.0), 0.75);
    }

    #[test]
    fn pct_and_ratio_render_dash_on_empty() {
        assert_eq!(fmt_pct(1, 8), "12.5%");
        assert_eq!(fmt_pct(0, 0), "--");
        assert_eq!(fmt_ratio(3, 4, 2), "0.75");
        assert_eq!(fmt_ratio(3, 0, 2), "--");
        assert_eq!(fmt_ratio(1, 3, 3), "0.333");
    }
}
