//! Log-linear histogram with bounded relative error.
//!
//! Values are bucketed HDR-style: the first 16 buckets are exact
//! (width 1), and every octave above that is split into 16 linear
//! sub-buckets, so the bucket width never exceeds 1/16th of the value
//! it covers (~6.25 % relative error). That bound is what the property
//! tests in this crate assert: any reported quantile lies within one
//! bucket width of the exact sample quantile.
//!
//! The layout is dense and fixed-size (976 buckets for the full `u64`
//! range), so merging two histograms is element-wise addition and a
//! histogram built from concatenated samples is *identical* (not just
//! approximately equal) to the merge of per-sample histograms.

/// Number of low bits kept linear per octave (16 sub-buckets).
const LINEAR_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: u64 = 1 << LINEAR_BITS;
/// Total bucket count covering all of `u64`.
/// Buckets `0..16` are exact; octave `o` (1..=60) holds 16 buckets.
pub const NUM_BUCKETS: usize = (61 * SUB) as usize;

/// Index of the bucket holding `v`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - LINEAR_BITS;
        let sub = ((v >> shift) & (SUB - 1)) as usize;
        ((msb - LINEAR_BITS + 1) as usize) * SUB as usize + sub
    }
}

/// Smallest value mapped to bucket `b` (the reported quantile estimate).
#[inline]
pub fn bucket_lower(b: usize) -> u64 {
    let b64 = b as u64;
    if b64 < SUB {
        b64
    } else {
        let octave = b64 / SUB;
        let sub = b64 % SUB;
        (SUB + sub) << (octave - 1)
    }
}

/// Width of bucket `b` (number of distinct values it covers).
#[inline]
pub fn bucket_width(b: usize) -> u64 {
    let b64 = b as u64;
    if b64 < SUB {
        1
    } else {
        1u64 << (b64 / SUB - 1)
    }
}

/// A plain (single-threaded) log-linear histogram.
///
/// This is the value type behind [`crate::Histogram`] handles; it is
/// also usable directly when no shared registry is needed.
#[derive(Clone, PartialEq, Eq)]
pub struct Histo {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histo {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histo")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl Histo {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation of `v`.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record `n` observations of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        crate::fmt::safe_div(self.sum as f64, self.count as f64)
    }

    /// Lower bound of the bucket containing the `q`-quantile
    /// (`0.0 <= q <= 1.0`). Returns 0 for an empty histogram.
    ///
    /// The exact sample quantile lies in the same bucket, so the error
    /// is below one bucket width (see [`bucket_width`]).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based ("nearest rank").
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_lower(b);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (element-wise addition).
    pub fn merge(&mut self, other: &Histo) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, in value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (bucket_lower(b), n))
            .collect()
    }

    /// Fixed summary quantiles: `(p50, p90, p99, max)`.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = bucket_of(0);
        assert_eq!(prev, 0);
        for v in 1u64..100_000 {
            let b = bucket_of(v);
            assert!(b == prev || b == prev + 1, "gap at v={v}: {prev} -> {b}");
            assert!(bucket_lower(b) <= v);
            assert!(v < bucket_lower(b) + bucket_width(b));
            prev = b;
        }
    }

    #[test]
    fn extremes_fit() {
        assert!(bucket_of(u64::MAX) < NUM_BUCKETS);
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_lower(bucket_of(16)), 16);
    }

    #[test]
    fn exact_below_sixteen() {
        let mut h = Histo::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert!((h.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histo::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.summary(), (0, 0, 0, 0));
    }

    #[test]
    fn merge_equals_concat_smoke() {
        let mut a = Histo::new();
        let mut b = Histo::new();
        let mut c = Histo::new();
        for v in 0..1000u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            c.record(x);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }
}
